package main

// The distributed crash/partition property harness — the e2e proof of
// the serving tier. The parent test spawns REAL tqserve processes (two
// shard groups, each a WAL-backed primary plus a replica, behind one
// scatter-gather frontend), drives a deterministic write history
// through the frontend while SIGKILLing and SIGSTOPping members at
// random acked-op counts, and holds the tier to the paper-grade
// contract: every answer the frontend returns is EXACTLY the answer of
// some acknowledged prefix of the history — per shard group, summed —
// and after recovery the tier converges back to byte-identity with a
// fresh single-process build of the full history. Failures may surface
// as refusals (503/504, retried); they must never surface as wrong
// values.
//
// The oracle exploits the scatter shape: /v1/servicevalues reads one
// atomic epoch per group per request, so an observed value vector W is
// valid iff W = V0[n0] + V1[n1] for some per-group acked-prefix
// vectors Vg[ng] — all of which the parent precomputes by replaying
// the same ops on in-process indexes. The Binary scenario keeps every
// value integral, so sums compare exactly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/dist"
	"github.com/trajcover/trajcover/internal/server"
)

const (
	distChildEnv = "TQSERVE_DIST_CHILD"
	distArgsEnv  = "TQSERVE_DIST_ARGS"
	distReadyEnv = "TQSERVE_DIST_READY"
)

// TestDistServeChild is the child-process entry point: one tqserve
// process wired exactly like main(), driven by env vars so the parent
// can SIGKILL it at any instant.
func TestDistServeChild(t *testing.T) {
	if os.Getenv(distChildEnv) == "" {
		t.Skip("spawned by TestDistCrashPartition")
	}
	sig := make(chan os.Signal, 4)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	args := strings.Split(os.Getenv(distArgsEnv), "\x1f")
	ready := func(addr string) {
		if err := os.WriteFile(os.Getenv(distReadyEnv), []byte(addr), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(args, os.Stdout, sig, ready); err != nil {
		t.Fatalf("child run: %v", err)
	}
}

// distStressN scales the write history under TRAJCOVER_STRESS (the CI
// dist-e2e job sets it).
func distStressN(n int) int {
	if os.Getenv("TRAJCOVER_STRESS") != "" {
		return n * 2
	}
	return n
}

// distOp is one scripted write (insert when insert != nil, else delete).
type distOp struct {
	insert *trajcover.Trajectory
	del    trajcover.ID
}

// distWorkload deterministically derives the bootstrap corpus, the
// write history, and the probe routes from seed.
func distWorkload(seed int64, extra int) (base []*trajcover.Trajectory, ops []distOp, routes []*trajcover.Facility) {
	city := trajcover.NewYorkCity()
	users := trajcover.TaxiTrips(city, 240+extra, seed)
	routes = trajcover.BusRoutes(city, 8, 8, seed+1)
	base = users[:240]
	live := append([]*trajcover.Trajectory(nil), base...)
	rng := rand.New(rand.NewSource(seed + 2))
	for _, u := range users[240:] {
		if len(live) > 0 && rng.Float64() < 0.3 {
			i := rng.Intn(len(live))
			ops = append(ops, distOp{del: live[i].ID})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		ops = append(ops, distOp{insert: u})
		live = append(live, u)
	}
	return base, ops, routes
}

func distIndexOpts() trajcover.LiveShardOptions {
	return trajcover.LiveShardOptions{
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
		Policy:      trajcover.LivePolicy{MaxDelta: 64}, // frequent rebuilds under fire
	}
}

func facilitiesJSON(fs []*trajcover.Facility) []server.FacilityJSON {
	out := make([]server.FacilityJSON, len(fs))
	for i, f := range fs {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		out[i] = server.FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	return out
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// distChild is one managed tqserve process, restartable on the same
// fixed port (so its peers' -replica-of / -backends URLs stay valid).
type distChild struct {
	t         *testing.T
	name      string
	args      []string
	readyFile string
	logFile   string
	cmd       *exec.Cmd
	exited    chan error
}

func newDistChild(t *testing.T, scratch, name string, args []string) *distChild {
	return &distChild{
		t: t, name: name, args: args,
		readyFile: filepath.Join(scratch, name+".ready"),
		logFile:   filepath.Join(scratch, name+".log"),
	}
}

func (c *distChild) start() {
	c.t.Helper()
	os.Remove(c.readyFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestDistServeChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		distChildEnv+"=1",
		distArgsEnv+"="+strings.Join(c.args, "\x1f"),
		distReadyEnv+"="+c.readyFile,
	)
	logf, err := os.OpenFile(c.logFile, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		c.t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		c.t.Fatalf("start %s: %v", c.name, err)
	}
	c.cmd = cmd
	c.exited = make(chan error, 1)
	exited := c.exited
	go func() { err := cmd.Wait(); logf.Close(); exited <- err }()
}

func (c *distChild) awaitReady() {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(c.readyFile); err == nil && len(data) > 0 {
			return
		}
		select {
		case err := <-c.exited:
			log, _ := os.ReadFile(c.logFile)
			c.t.Fatalf("%s exited before ready (%v):\n%s", c.name, err, log)
		default:
		}
		if time.Now().After(deadline) {
			log, _ := os.ReadFile(c.logFile)
			c.t.Fatalf("%s never became ready:\n%s", c.name, log)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sigkill is the crash: no drain, no flush beyond what the WAL already
// synced per acked write.
func (c *distChild) sigkill() {
	c.t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		c.t.Fatalf("kill %s: %v", c.name, err)
	}
	<-c.exited
}

func (c *distChild) signal(sig syscall.Signal) {
	c.t.Helper()
	if err := c.cmd.Process.Signal(sig); err != nil {
		c.t.Fatalf("signal %s %v: %v", c.name, sig, err)
	}
}

// terminate delivers SIGTERM and requires a clean (exit 0) drain.
func (c *distChild) terminate() {
	c.t.Helper()
	c.signal(syscall.SIGTERM)
	select {
	case err := <-c.exited:
		if err != nil {
			log, _ := os.ReadFile(c.logFile)
			c.t.Fatalf("%s did not drain cleanly: %v\n%s", c.name, err, log)
		}
	case <-time.After(60 * time.Second):
		c.t.Fatalf("%s never exited after SIGTERM", c.name)
	}
}

func (c *distChild) kill9IfAlive() {
	if c.cmd == nil {
		return
	}
	c.cmd.Process.Signal(syscall.SIGCONT) // a paused child must die too
	c.cmd.Process.Kill()
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// distHarness is the parent-side oracle and driver.
type distHarness struct {
	t           *testing.T
	feURL       string
	writeClient *http.Client
	readClient  *http.Client
	oracle      [2]*trajcover.LiveShardedIndex
	vecs        [2][][]float64 // vecs[g][n]: group g's values after n acked ops
	routes      []*trajcover.Facility
	svBody      []byte
	topkBody    []byte
	live        map[trajcover.ID]*trajcover.Trajectory
}

func (h *distHarness) groupValues(g int) []float64 {
	h.t.Helper()
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: trajcover.DefaultPsi}
	v, err := h.oracle[g].ServiceValues(h.routes, q, 1)
	if err != nil {
		h.t.Fatal(err)
	}
	return v
}

func (h *distHarness) post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// applyOp pushes one write through the frontend until acknowledged,
// then advances the oracle. Transient refusals (transport errors, 429,
// 5xx — a member down, paused, or restarting) retry; a 409 on an
// insert is the kill-window replay of our own earlier attempt (the op
// landed, the ack was lost) and counts as acked; any other 4xx is a
// contract violation.
func (h *distHarness) applyOp(op distOp) {
	h.t.Helper()
	var body []byte
	if op.insert != nil {
		pts := make([][2]float64, len(op.insert.Points))
		for j, p := range op.insert.Points {
			pts[j] = [2]float64{p.X, p.Y}
		}
		body = mustJSON(h.t, server.InsertRequest{ID: uint32(op.insert.ID), Points: pts})
	} else {
		body = mustJSON(h.t, server.DeleteRequest{ID: uint32(op.del)})
	}
	path := server.PathInsert
	if op.insert == nil {
		path = server.PathDelete
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		st, resp, err := h.post(h.writeClient, h.feURL+path, body)
		if err == nil && st == http.StatusOK {
			break
		}
		if err == nil && op.insert != nil && st == http.StatusConflict {
			break // our own retried write, already applied
		}
		if err == nil && st >= 400 && st < 500 && st != http.StatusConflict && st != http.StatusTooManyRequests {
			h.t.Fatalf("write %s rejected permanently: %d %s", path, st, resp)
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("write %s never acknowledged (last: %d %s, err %v)", path, st, resp, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var g int
	if op.insert != nil {
		g = dist.RouteID(uint32(op.insert.ID), 2)
		if err := h.oracle[g].Insert(op.insert); err != nil {
			h.t.Fatalf("oracle insert: %v", err)
		}
		h.live[op.insert.ID] = op.insert
	} else {
		g = dist.RouteID(uint32(op.del), 2)
		if _, err := h.oracle[g].Delete(op.del); err != nil {
			h.t.Fatalf("oracle delete: %v", err)
		}
		delete(h.live, op.del)
	}
	h.vecs[g] = append(h.vecs[g], h.groupValues(g))
}

// validCombo reports whether w is the sum of SOME acked prefix per
// group — the only answers the tier is ever allowed to give.
func (h *distHarness) validCombo(w []float64) (int, int, bool) {
	for n0 := range h.vecs[0] {
		for n1 := range h.vecs[1] {
			match := true
			for i := range w {
				if h.vecs[0][n0][i]+h.vecs[1][n1][i] != w[i] {
					match = false
					break
				}
			}
			if match {
				return n0, n1, true
			}
		}
	}
	return 0, 0, false
}

// probe reads /v1/servicevalues through the frontend. A non-200 is a
// permitted refusal when optional (mid-fault); a 200 must be a valid
// acked-prefix combination, never partial, every time.
func (h *distHarness) probe(optional bool) bool {
	h.t.Helper()
	st, body, err := h.post(h.readClient, h.feURL+server.PathServiceValues, h.svBody)
	if err != nil || st != http.StatusOK {
		if !optional {
			h.t.Fatalf("probe refused: %d %s (err %v)", st, body, err)
		}
		return false
	}
	if strings.Contains(string(body), `"partial":true`) {
		h.t.Fatalf("default-mode read answered partial: %s", body)
	}
	var vr server.ValuesResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		h.t.Fatalf("probe body: %v (%s)", err, body)
	}
	if _, _, ok := h.validCombo(vr.Values); !ok {
		h.t.Fatalf("frontend answered a value vector matching NO acked prefix combination:\n%v\n(acked %d/%d ops per group)",
			vr.Values, len(h.vecs[0])-1, len(h.vecs[1])-1)
	}
	return true
}

// probeEventually demands at least one successful (and, as always,
// valid) read within n attempts — degraded, not down.
func (h *distHarness) probeEventually(n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		if h.probe(true) {
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	h.t.Fatalf("no successful read in %d attempts", n)
}

func waitHTTPOK(t *testing.T, client *http.Client, url, wantSubstr, what string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(url)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(body), wantSubstr) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %s never answered 200 with %q", what, url, wantSubstr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDistCrashPartition is the tier's property test. See the package
// comment at the top of this file for the oracle.
func TestDistCrashPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash harness")
	}
	base, ops, routes := distWorkload(7, distStressN(100))
	scratch := t.TempDir()

	// Partition the bootstrap corpus exactly as the frontend routes
	// writes, seed each group's primary with a snapshot file, and keep
	// identically built in-process copies as the oracle.
	var parts [2][]*trajcover.Trajectory
	for _, u := range base {
		g := dist.RouteID(uint32(u.ID), 2)
		parts[g] = append(parts[g], u)
	}
	h := &distHarness{
		t:           t,
		writeClient: &http.Client{Timeout: 5 * time.Second},
		readClient:  &http.Client{Timeout: 20 * time.Second},
		routes:      routes,
		live:        map[trajcover.ID]*trajcover.Trajectory{},
	}
	for _, u := range base {
		h.live[u.ID] = u
	}
	seedPath := [2]string{}
	for g := 0; g < 2; g++ {
		idx, err := trajcover.NewLiveShardedIndex(parts[g], distIndexOpts())
		if err != nil {
			t.Fatal(err)
		}
		seedPath[g] = filepath.Join(scratch, fmt.Sprintf("seed%d.tqlive", g))
		f, err := os.Create(seedPath[g])
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.WriteSnapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		h.oracle[g] = idx
		h.vecs[g] = [][]float64{h.groupValues(g)}
	}
	fjs := facilitiesJSON(routes)
	h.svBody = mustJSON(t, server.QueryRequest{Facilities: fjs, Psi: trajcover.DefaultPsi})
	h.topkBody = mustJSON(t, server.QueryRequest{Facilities: fjs, K: 5, Psi: trajcover.DefaultPsi})

	// Fixed ports so restarted members come back at the address their
	// peers were configured with.
	var pPort, rPort [2]int
	for g := 0; g < 2; g++ {
		pPort[g], rPort[g] = freePort(t), freePort(t)
	}
	fePort := freePort(t)
	pURL := func(g int) string { return fmt.Sprintf("http://127.0.0.1:%d", pPort[g]) }
	rURL := func(g int) string { return fmt.Sprintf("http://127.0.0.1:%d", rPort[g]) }

	var prim, repl [2]*distChild
	for g := 0; g < 2; g++ {
		prim[g] = newDistChild(t, scratch, fmt.Sprintf("primary%d", g), []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", pPort[g]),
			"-snapshot", seedPath[g],
			"-wal-dir", filepath.Join(scratch, fmt.Sprintf("wal%d", g)),
			"-wal-sync", "always", "-maxdelta", "64",
			"-workers", "2", "-queue", "64", "-timeout", "10s",
		})
		repl[g] = newDistChild(t, scratch, fmt.Sprintf("replica%d", g), []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", rPort[g]),
			"-replica-of", pURL(g), "-repl-poll", "100ms",
			"-workers", "2", "-queue", "64", "-timeout", "10s",
		})
	}
	fe := newDistChild(t, scratch, "frontend", []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", fePort),
		"-frontend", "-backends",
		fmt.Sprintf("%s|%s,%s|%s", pURL(0), rURL(0), pURL(1), rURL(1)),
		"-timeout", "15s",
	})
	all := []*distChild{prim[0], prim[1], repl[0], repl[1], fe}
	t.Cleanup(func() {
		for _, c := range all {
			c.kill9IfAlive()
		}
	})
	for _, c := range all {
		c.start()
	}
	for _, c := range all {
		c.awaitReady()
	}
	h.feURL = fmt.Sprintf("http://127.0.0.1:%d", fePort)
	for g := 0; g < 2; g++ {
		waitHTTPOK(t, h.readClient, pURL(g)+server.PathHealth, `"ok"`, "primary health")
		waitHTTPOK(t, h.readClient, rURL(g)+dist.PathReplStatus, `"ready":true`, "replica sync")
	}
	waitHTTPOK(t, h.readClient, h.feURL+server.PathHealth, `"ok"`, "frontend health")
	h.probe(false)

	// The fault schedule: random acked-op counts, deterministic across
	// runs of the same seed.
	rng := rand.New(rand.NewSource(97))
	killRepAt := 2 + rng.Intn(len(ops)/4)
	restartRepAt := killRepAt + 1 + rng.Intn(len(ops)/8)
	pauseAt := restartRepAt + 2 + rng.Intn(len(ops)/4)
	killPrimAt := pauseAt + 2 + rng.Intn(len(ops)/4)
	t.Logf("%d ops; kill replica0 @%d, restart @%d, pause primary1 @%d, kill primary0 @%d",
		len(ops), killRepAt, restartRepAt, pauseAt, killPrimAt)

	for i, op := range ops {
		switch i {
		case killRepAt:
			repl[0].sigkill()
		case restartRepAt:
			repl[0].start() // re-bootstraps from primary0 by itself
		case pauseAt:
			// Partition: primary1 freezes mid-everything. Reads must fail
			// over to replica1 inside the same request; writes owned by
			// group 1 stall on retries until the thaw below fires.
			prim[1].signal(syscall.SIGSTOP)
			time.AfterFunc(3*time.Second, func() { prim[1].signal(syscall.SIGCONT) })
			h.probeEventually(5)
		case killPrimAt:
			// Crash the WAL-backed primary outright. Reads keep flowing
			// from replica0's last applied state (a valid acked prefix);
			// writes owned by group 0 retry until the restarted process
			// has recovered checkpoint + WAL tail.
			prim[0].sigkill()
			h.probeEventually(5)
			prim[0].start()
		}
		h.applyOp(op)
		if i%4 == 0 {
			h.probe(true)
		}
	}

	// Convergence: every member individually reaches the full acked
	// history, then the frontend is byte-identical to a fresh
	// single-process build of that history.
	wantVals := [2][]float64{h.vecs[0][len(h.vecs[0])-1], h.vecs[1][len(h.vecs[1])-1]}
	for g := 0; g < 2; g++ {
		for _, member := range []string{pURL(g), rURL(g)} {
			deadline := time.Now().Add(60 * time.Second)
			for {
				st, body, err := h.post(h.readClient, member+server.PathServiceValues, h.svBody)
				var vr server.ValuesResponse
				if err == nil && st == http.StatusOK && json.Unmarshal(body, &vr) == nil {
					caught := len(vr.Values) == len(wantVals[g])
					for i := range vr.Values {
						caught = caught && vr.Values[i] == wantVals[g][i]
					}
					if caught {
						break
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("group %d member %s never converged (last: %d %s, err %v)", g, member, st, body, err)
				}
				time.Sleep(100 * time.Millisecond)
			}
		}
	}
	waitHTTPOK(t, h.readClient, h.feURL+server.PathHealth, `"ok"`, "frontend health after recovery")
	h.probe(false)

	finalCorpus := make([]*trajcover.Trajectory, 0, len(h.live))
	for _, u := range h.live {
		finalCorpus = append(finalCorpus, u)
	}
	refIdx, err := trajcover.NewLiveShardedIndex(finalCorpus, distIndexOpts())
	if err != nil {
		t.Fatal(err)
	}
	refSrv := server.New(refIdx, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	defer refSrv.Close()
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	for _, probe := range []struct {
		path string
		body []byte
	}{
		{server.PathTopK, h.topkBody},
		{server.PathServiceValues, h.svBody},
	} {
		st, got, err := h.post(h.readClient, h.feURL+probe.path, probe.body)
		if err != nil || st != http.StatusOK {
			t.Fatalf("final %s via frontend: %d (err %v)", probe.path, st, err)
		}
		st, want, err := h.post(h.readClient, refTS.URL+probe.path, probe.body)
		if err != nil || st != http.StatusOK {
			t.Fatalf("final %s via reference: %d (err %v)", probe.path, st, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final %s diverged from single-process build\n got: %s\nwant: %s", probe.path, got, want)
		}
	}

	// Drain the whole tier gracefully: SIGTERM everywhere, exit 0
	// everywhere — including the twice-restarted members.
	for _, c := range all {
		c.terminate()
	}
	log, err := os.ReadFile(fe.logFile)
	if err != nil || !strings.Contains(string(log), "drained, bye") {
		t.Fatalf("frontend drain log missing (err %v):\n%s", err, log)
	}
}
