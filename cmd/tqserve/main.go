// Command tqserve is the long-running HTTP front end over a live
// trajectory-coverage index: a bounded worker pool with admission
// control (429 + Retry-After on queue overflow), per-request deadlines
// propagated into the cancellation-aware query executor, and graceful
// drain on SIGTERM/SIGINT. See internal/server for the endpoints and
// ARCHITECTURE.md "Serving front end" for the design.
//
// Usage:
//
//	tqserve -addr :8080 -snapshot live.tqlive
//	tqserve -addr :8080 -synthetic 50000 -shards 4
//	tqserve -addr :8080 -synthetic 50000 -wal-dir /var/lib/tqserve/wal
//	tqserve -addr :8080 -tenant-root /var/lib/tqserve/tenants -overrides-file limits.yaml
//	tqserve -addr :8081 -replica-of http://127.0.0.1:8080
//	tqserve -addr :8090 -frontend -backends "http://a:8080|http://a:8081,http://b:8080"
//
// The index is either restored from a TQLIVE01 snapshot (-snapshot,
// written by LiveIndex/LiveShardedIndex.WriteSnapshot or GET
// /v1/snapshot on a running tqserve) or generated (-synthetic N taxi
// trips over the synthetic New York). With -wal-dir every acknowledged
// Insert/Delete is also appended to a write-ahead log there (sync
// policy from -wal-sync), and on restart the index recovers from the
// newest checkpoint in that directory plus the WAL tail — -snapshot/
// -synthetic then only seed the FIRST boot. POST /v1/checkpoint (or a
// GET /v1/snapshot download) compacts the log. Once serving:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/topk -d '{"facilities":[{"id":1,"stops":[[500,500],[800,300]]}],"k":1,"psi":300}'
//
// Multi-tenancy: -tenant-root serves one independent index per tenant,
// each with its own WAL directory <root>/<tenant>/ and checkpoint
// lineage. Requests pick their tenant with the X-Tenant header or the
// "tenant" JSON field; writes create tenants lazily, reads of unknown
// tenants are 404. -synthetic seeds the "default" tenant's first boot
// (-snapshot is single-tenant only). -overrides-file names a YAML or
// JSON document of per-tenant admission limits (max_inflight,
// max_queue, writes_per_sec, max_timeout_ms), re-read on SIGHUP and
// every -overrides-poll; an invalid rewrite keeps the previous limits
// and logs the parse error. -tenant-max-open caps concurrently open
// tenant indexes (idle ones are checkpointed and evicted LRU).
//
// Distributed serving (see internal/dist and ARCHITECTURE.md
// "Distributed serving"): a single-tenant tqserve is a replication
// primary by default — acknowledged writes feed an in-memory
// replication log (-repl-log-cap entries; 0 disables) that replicas
// tail over GET /v1/changes. -replica-of turns the process into a
// read-only replica of the primary at that base URL: it bootstraps
// from the primary's GET /v1/snapshot, replays the tail, serves reads
// from its own index (writes answer 403), and re-bootstraps by itself
// when the primary restarts. -frontend (with -backends, a
// comma-separated list of shard groups, each "primary|replica|...")
// serves the same wire API by scatter-gathering over the groups:
// writes forward to their owner group's primary, top-k runs the
// distributed bound-merge, and ?partial=1 opts reads into partial
// answers when groups are down.
//
// On SIGTERM the server stops admitting work (healthz flips to 503 so
// load balancers drain), finishes in-flight requests up to
// -drain-timeout, and exits 0. SIGHUP reloads the overrides file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/dist"
	"github.com/trajcover/trajcover/internal/replog"
	"github.com/trajcover/trajcover/internal/server"
	"github.com/trajcover/trajcover/internal/tenant"
)

func main() {
	sig := make(chan os.Signal, 4)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	if err := run(os.Args[1:], os.Stdout, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tqserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing: tests drive it with their own
// signal channel and read the bound address from ready.
func run(args []string, stdout io.Writer, sig <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("tqserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		snapshot      = fs.String("snapshot", "", "serve a TQLIVE01 snapshot file")
		synthetic     = fs.Int("synthetic", 0, "serve N synthetic NYC taxi trips (when no -snapshot)")
		seed          = fs.Int64("seed", 1, "synthetic data seed")
		shards        = fs.Int("shards", 1, "shard count for -synthetic")
		partitioner   = fs.String("partitioner", "hash", "partitioner for -synthetic: hash or grid")
		workers       = fs.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		queue         = fs.Int("queue", 64, "admission queue depth (full queue => 429)")
		timeout       = fs.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTimeout    = fs.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
		maxBody       = fs.Int64("max-body", 8<<20, "request body cap in bytes")
		maxDelta      = fs.Int("maxdelta", 0, "pending writes per shard before a background rebuild (0 = default 4096)")
		drainTimeout  = fs.Duration("drain-timeout", 15*time.Second, "in-flight grace period on SIGTERM")
		walDir        = fs.String("wal-dir", "", "write-ahead log directory (empty = no durability; single-tenant)")
		walSync       = fs.String("wal-sync", "always", "WAL sync policy: always, interval, or none")
		walSyncEvery  = fs.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period under -wal-sync interval")
		walSegBytes   = fs.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation size")
		walProbeMin   = fs.Duration("wal-probe-min", 100*time.Millisecond, "initial backoff of the degraded-mode recovery probe")
		walProbeMax   = fs.Duration("wal-probe-max", 5*time.Second, "backoff cap of the degraded-mode recovery probe")
		tenantRoot    = fs.String("tenant-root", "", "multi-tenant WAL root: one index + WAL dir per tenant under it")
		tenantMaxOpen = fs.Int("tenant-max-open", 0, "max concurrently open tenant indexes (0 = unlimited)")
		overridesFile = fs.String("overrides-file", "", "per-tenant limits file (YAML or JSON), reloaded on SIGHUP and -overrides-poll")
		overridesPoll = fs.Duration("overrides-poll", 10*time.Second, "poll period for -overrides-file changes (0 = SIGHUP only)")
		mmapSnapshot  = fs.Bool("mmap", false, "restore -snapshot by memory-mapping it (columns served from the page cache)")
		resultCache   = fs.Int64("result-cache-bytes", 64<<20, "epoch-keyed result cache budget for topk/servicevalues (0 = disabled)")
		replicaOf     = fs.String("replica-of", "", "run as a read-only replica of the primary tqserve at this base URL")
		frontendOn    = fs.Bool("frontend", false, "run as a scatter-gather frontend over -backends (no local index)")
		backends      = fs.String("backends", "", "frontend shard-group map: comma-separated groups, each 'primary|replica|...' base URLs")
		replLogCap    = fs.Int("repl-log-cap", replog.DefaultCap, "replication log retention in entries on a single-tenant primary (0 = replication off)")
		replPoll      = fs.Duration("repl-poll", time.Second, "replica long-poll window against the primary's /v1/changes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenantRoot != "" && *walDir != "" {
		return fmt.Errorf("-tenant-root and -wal-dir are mutually exclusive (the root holds each tenant's WAL)")
	}
	if *tenantRoot != "" && *snapshot != "" {
		return fmt.Errorf("-snapshot is single-tenant; with -tenant-root use -synthetic to seed the default tenant")
	}
	if *frontendOn && (*replicaOf != "" || *tenantRoot != "" || *walDir != "" || *snapshot != "" || *synthetic > 0) {
		return fmt.Errorf("-frontend serves no local index: drop -replica-of/-tenant-root/-wal-dir/-snapshot/-synthetic")
	}
	if *backends != "" && !*frontendOn {
		return fmt.Errorf("-backends requires -frontend")
	}
	if *replicaOf != "" && (*tenantRoot != "" || *walDir != "" || *snapshot != "" || *synthetic > 0) {
		return fmt.Errorf("-replica-of bootstraps from the primary: drop -tenant-root/-wal-dir/-snapshot/-synthetic")
	}

	pol := trajcover.LivePolicy{MaxDelta: *maxDelta}

	if *frontendOn {
		if *backends == "" {
			return fmt.Errorf("-frontend needs -backends")
		}
		groups, err := dist.ParseMap(*backends)
		if err != nil {
			return err
		}
		fe, err := dist.NewFrontend(dist.FrontendConfig{
			Groups:         groups,
			DefaultTimeout: *timeout,
			MaxTimeout:     *maxTimeout,
			MaxBodyBytes:   *maxBody,
			Logf:           func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) },
		})
		if err != nil {
			return err
		}
		defer fe.Close()
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tqserve: frontend over %d shard group(s) on %s\n", len(groups), ln.Addr())
		if ready != nil {
			ready(ln.Addr().String())
		}
		err = serveLoop(newHTTPServer(fe.Handler()), ln, stdout, sig, nil, *drainTimeout, fe.BeginDrain)
		fmt.Fprintln(stdout, "tqserve: drained, bye")
		return err
	}

	if *replicaOf != "" {
		primary := strings.TrimSuffix(*replicaOf, "/")
		// The placeholder index never serves: ReplicaHandler answers 503
		// to reads until the replica's first catch-up swaps the real one
		// in. The result cache stays off — its keys carry the index's
		// write version but not its identity, and SetIndex changes the
		// identity.
		empty, err := trajcover.NewLiveShardedIndex(nil, trajcover.LiveShardOptions{Policy: pol})
		if err != nil {
			return err
		}
		srv := server.New(empty, server.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			DefaultTimeout: *timeout,
			MaxTimeout:     *maxTimeout,
			MaxBodyBytes:   *maxBody,
		})
		rep := dist.NewReplica(dist.ReplicaConfig{
			Primary:  primary,
			Policy:   pol,
			PollWait: *replPoll,
			OnSwap:   srv.SetIndex,
			Logf:     func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) },
		})
		repCtx, repCancel := context.WithCancel(context.Background())
		defer repCancel()
		go rep.Run(repCtx)
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tqserve: replica of %s on %s (syncing)\n", primary, ln.Addr())
		if ready != nil {
			ready(ln.Addr().String())
		}
		err = serveLoop(newHTTPServer(dist.ReplicaHandler(srv.Handler(), rep, time.Second)), ln, stdout, sig, nil, *drainTimeout, srv.BeginDrain)
		srv.Close()
		fmt.Fprintln(stdout, "tqserve: drained, bye")
		return err
	}
	var srv *server.Server
	if *tenantRoot != "" {
		syncPol, perr := trajcover.ParseWALSyncPolicy(*walSync)
		if perr != nil {
			return perr
		}
		part, perr := parsePartitioner(*partitioner)
		if perr != nil {
			return perr
		}
		reg, err := trajcover.OpenTenantRegistry(trajcover.TenantRegistryOptions{
			Root: *tenantRoot,
			WAL: trajcover.WALOptions{
				Sync:         syncPol,
				SyncEvery:    *walSyncEvery,
				SegmentBytes: *walSegBytes,
				ProbeMin:     *walProbeMin,
				ProbeMax:     *walProbeMax,
			},
			Policy:      pol,
			Shards:      *shards,
			Partitioner: part,
			Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
			MaxOpen:     *tenantMaxOpen,
			NewTenant: func(id string) ([]*trajcover.Trajectory, error) {
				// Only the default tenant gets the -synthetic seed; every
				// other tenant starts empty on its first write.
				if id == trajcover.TenantDefault && *synthetic > 0 {
					return trajcover.TaxiTrips(trajcover.NewYorkCity(), *synthetic, *seed), nil
				}
				return nil, nil
			},
		})
		if err != nil {
			return err
		}
		defer reg.Close()
		if *synthetic > 0 {
			// Materialize the default tenant now so first-boot reads work;
			// later boots find it on disk and recover from its WAL.
			_, release, err := reg.Acquire(trajcover.TenantDefault, true)
			if err != nil {
				return fmt.Errorf("seed default tenant: %w", err)
			}
			release()
		}
		srv = server.NewMulti(reg, server.Config{
			Workers:          *workers,
			QueueDepth:       *queue,
			DefaultTimeout:   *timeout,
			MaxTimeout:       *maxTimeout,
			MaxBodyBytes:     *maxBody,
			ResultCacheBytes: *resultCache,
		})
	} else {
		var idx *trajcover.LiveShardedIndex
		var err error
		if *walDir != "" {
			syncPol, perr := trajcover.ParseWALSyncPolicy(*walSync)
			if perr != nil {
				return perr
			}
			idx, err = trajcover.OpenLiveShardedIndex(trajcover.WALOptions{
				Dir:          *walDir,
				Sync:         syncPol,
				SyncEvery:    *walSyncEvery,
				SegmentBytes: *walSegBytes,
				ProbeMin:     *walProbeMin,
				ProbeMax:     *walProbeMax,
			}, pol, func() (*trajcover.LiveShardedIndex, error) {
				return buildIndex(*snapshot, *mmapSnapshot, *synthetic, *seed, *shards, *partitioner, pol)
			})
		} else {
			idx, err = buildIndex(*snapshot, *mmapSnapshot, *synthetic, *seed, *shards, *partitioner, pol)
		}
		if err != nil {
			return err
		}
		defer idx.Close()
		// Single-tenant servers are replication primaries by default:
		// every acknowledged write also lands in this bounded in-memory
		// log, which replicas tail over GET /v1/changes.
		var rl *replog.Log
		if *replLogCap > 0 {
			rl = replog.New(*replLogCap)
		}
		srv = server.New(idx, server.Config{
			Workers:          *workers,
			QueueDepth:       *queue,
			DefaultTimeout:   *timeout,
			MaxTimeout:       *maxTimeout,
			MaxBodyBytes:     *maxBody,
			ResultCacheBytes: *resultCache,
			ReplLog:          rl,
		})
	}

	// The overrides watcher: a bad file at boot is a refusal to start; a
	// bad rewrite later keeps the old limits and logs the reason.
	var watcher *tenant.Watcher
	if *overridesFile != "" {
		watcher = tenant.NewWatcher(*overridesFile,
			func(o *tenant.Overrides) { srv.SetOverrides(o) },
			func(err error) { fmt.Fprintln(stdout, "tqserve: overrides:", err) },
		)
		if err := watcher.Load(); err != nil {
			return fmt.Errorf("overrides: %w", err)
		}
		srv.SetOverridesStatus(func() server.OverridesSnapshot {
			reloads, fails := watcher.Stats()
			return server.OverridesSnapshot{Reloads: reloads, Fails: fails}
		})
		if *overridesPoll > 0 {
			watcher.Start(*overridesPoll)
			defer watcher.Stop()
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if idx := srv.Index(); idx != nil {
		fmt.Fprintf(stdout, "tqserve: serving %d trajectories across %d shard(s) on %s\n",
			idx.Len(), idx.NumShards(), ln.Addr())
	} else {
		fmt.Fprintf(stdout, "tqserve: serving on %s (no default tenant yet)\n", ln.Addr())
	}
	if *tenantRoot != "" {
		fmt.Fprintf(stdout, "tqserve: tenants under %s (sync=%s)\n", *tenantRoot, *walSync)
	} else if idx := srv.Index(); idx != nil {
		if _, ok := idx.WALStats(); ok {
			fmt.Fprintf(stdout, "tqserve: wal %s (sync=%s)\n", *walDir, *walSync)
		}
	}
	if *overridesFile != "" {
		fmt.Fprintf(stdout, "tqserve: overrides %s (poll=%s, SIGHUP reloads)\n", *overridesFile, *overridesPoll)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	err = serveLoop(newHTTPServer(srv.Handler()), ln, stdout, sig, watcher, *drainTimeout, srv.BeginDrain)
	srv.Close()
	fmt.Fprintln(stdout, "tqserve: drained, bye")
	return err
}

// newHTTPServer wraps a handler with the timeouts every tqserve mode
// shares. Slow clients must not hold handler goroutines outside the
// admission/deadline machinery (which starts only once the body is
// read): bound the header, the whole request read, and idle
// keep-alives.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveLoop runs hs on ln until the signal channel asks for a drain:
// SIGHUP reloads the overrides watcher in place (when there is one),
// anything else (or a closed channel) flips the server into drain mode
// via beginDrain, shuts the HTTP layer down within drainTimeout, and
// force-closes whatever outlives the grace period.
func serveLoop(hs *http.Server, ln net.Listener, stdout io.Writer, sig <-chan os.Signal, watcher *tenant.Watcher, drainTimeout time.Duration, beginDrain func()) error {
	drained := make(chan error, 1)
	go func() {
		for {
			s, ok := <-sig
			if ok && s == syscall.SIGHUP {
				if watcher == nil {
					fmt.Fprintln(stdout, "tqserve: SIGHUP ignored (no -overrides-file)")
					continue
				}
				// Failures are logged by the watcher's OnError hook.
				if err := watcher.Reload(); err == nil {
					fmt.Fprintln(stdout, "tqserve: overrides reloaded")
				}
				continue
			}
			break
		}
		fmt.Fprintln(stdout, "tqserve: draining")
		beginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := hs.Shutdown(ctx)
		if err != nil {
			// Grace period elapsed with connections still alive: force
			// them closed so no handler outlives the HTTP layer.
			hs.Close()
		}
		drained <- err
	}()

	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-drained
}

func parsePartitioner(name string) (trajcover.Partitioner, error) {
	switch name {
	case "hash":
		return trajcover.HashPartitioner(), nil
	case "grid":
		return trajcover.GridPartitioner(), nil
	}
	return nil, fmt.Errorf("unknown partitioner %q (want hash or grid)", name)
}

// buildIndex restores or generates the served index.
func buildIndex(snapshot string, mmapSnapshot bool, synthetic int, seed int64, shards int, partitioner string, pol trajcover.LivePolicy) (*trajcover.LiveShardedIndex, error) {
	if snapshot != "" {
		if mmapSnapshot {
			return trajcover.OpenMappedLiveSnapshot(snapshot, pol)
		}
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trajcover.ReadLiveSnapshot(f, pol)
	}
	if synthetic <= 0 {
		return nil, fmt.Errorf("need -snapshot or -synthetic N")
	}
	part, err := parsePartitioner(partitioner)
	if err != nil {
		return nil, err
	}
	users := trajcover.TaxiTrips(trajcover.NewYorkCity(), synthetic, seed)
	return trajcover.NewLiveShardedIndex(users, trajcover.LiveShardOptions{
		Shards:      shards,
		Partitioner: part,
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
		Policy:      pol,
	})
}
