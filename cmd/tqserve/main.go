// Command tqserve is the long-running HTTP front end over a live
// trajectory-coverage index: a bounded worker pool with admission
// control (429 + Retry-After on queue overflow), per-request deadlines
// propagated into the cancellation-aware query executor, and graceful
// drain on SIGTERM/SIGINT. See internal/server for the endpoints and
// ARCHITECTURE.md "Serving front end" for the design.
//
// Usage:
//
//	tqserve -addr :8080 -snapshot live.tqlive
//	tqserve -addr :8080 -synthetic 50000 -shards 4
//	tqserve -addr :8080 -synthetic 50000 -wal-dir /var/lib/tqserve/wal
//
// The index is either restored from a TQLIVE01 snapshot (-snapshot,
// written by LiveIndex/LiveShardedIndex.WriteSnapshot or GET
// /v1/snapshot on a running tqserve) or generated (-synthetic N taxi
// trips over the synthetic New York). With -wal-dir every acknowledged
// Insert/Delete is also appended to a write-ahead log there (sync
// policy from -wal-sync), and on restart the index recovers from the
// newest checkpoint in that directory plus the WAL tail — -snapshot/
// -synthetic then only seed the FIRST boot. POST /v1/checkpoint (or a
// GET /v1/snapshot download) compacts the log. Once serving:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/topk -d '{"facilities":[{"id":1,"stops":[[500,500],[800,300]]}],"k":1,"psi":300}'
//
// On SIGTERM the server stops admitting work (healthz flips to 503 so
// load balancers drain), finishes in-flight requests up to
// -drain-timeout, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/server"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stdout, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tqserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing: tests drive it with their own
// signal channel and read the bound address from ready.
func run(args []string, stdout io.Writer, sig <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("tqserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		snapshot     = fs.String("snapshot", "", "serve a TQLIVE01 snapshot file")
		synthetic    = fs.Int("synthetic", 0, "serve N synthetic NYC taxi trips (when no -snapshot)")
		seed         = fs.Int64("seed", 1, "synthetic data seed")
		shards       = fs.Int("shards", 1, "shard count for -synthetic")
		partitioner  = fs.String("partitioner", "hash", "partitioner for -synthetic: hash or grid")
		workers      = fs.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "admission queue depth (full queue => 429)")
		timeout      = fs.Duration("timeout", 2*time.Second, "default per-request deadline")
		maxTimeout   = fs.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
		maxBody      = fs.Int64("max-body", 8<<20, "request body cap in bytes")
		maxDelta     = fs.Int("maxdelta", 0, "pending writes per shard before a background rebuild (0 = default 4096)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "in-flight grace period on SIGTERM")
		walDir       = fs.String("wal-dir", "", "write-ahead log directory (empty = no durability)")
		walSync      = fs.String("wal-sync", "always", "WAL sync policy: always, interval, or none")
		walSyncEvery = fs.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period under -wal-sync interval")
		walSegBytes  = fs.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation size")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol := trajcover.LivePolicy{MaxDelta: *maxDelta}
	var idx *trajcover.LiveShardedIndex
	var err error
	if *walDir != "" {
		syncPol, perr := trajcover.ParseWALSyncPolicy(*walSync)
		if perr != nil {
			return perr
		}
		idx, err = trajcover.OpenLiveShardedIndex(trajcover.WALOptions{
			Dir:          *walDir,
			Sync:         syncPol,
			SyncEvery:    *walSyncEvery,
			SegmentBytes: *walSegBytes,
		}, pol, func() (*trajcover.LiveShardedIndex, error) {
			return buildIndex(*snapshot, *synthetic, *seed, *shards, *partitioner, pol)
		})
	} else {
		idx, err = buildIndex(*snapshot, *synthetic, *seed, *shards, *partitioner, pol)
	}
	if err != nil {
		return err
	}
	defer idx.Close()

	srv := server.New(idx, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tqserve: serving %d trajectories across %d shard(s) on %s\n",
		idx.Len(), idx.NumShards(), ln.Addr())
	if _, ok := idx.WALStats(); ok {
		fmt.Fprintf(stdout, "tqserve: wal %s (sync=%s)\n", *walDir, *walSync)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{
		Handler: srv.Handler(),
		// Slow clients must not hold handler goroutines outside the
		// admission/deadline machinery (which starts only once the body
		// is read): bound the header, the whole request read, and idle
		// keep-alives.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan error, 1)
	go func() {
		<-sig
		fmt.Fprintln(stdout, "tqserve: draining")
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := hs.Shutdown(ctx)
		if err != nil {
			// Grace period elapsed with connections still alive: force
			// them closed so no handler outlives the HTTP layer.
			hs.Close()
		}
		drained <- err
	}()

	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	err = <-drained
	srv.Close()
	fmt.Fprintln(stdout, "tqserve: drained, bye")
	return err
}

// buildIndex restores or generates the served index.
func buildIndex(snapshot string, synthetic int, seed int64, shards int, partitioner string, pol trajcover.LivePolicy) (*trajcover.LiveShardedIndex, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trajcover.ReadLiveSnapshot(f, pol)
	}
	if synthetic <= 0 {
		return nil, fmt.Errorf("need -snapshot or -synthetic N")
	}
	var part trajcover.Partitioner
	switch partitioner {
	case "hash":
		part = trajcover.HashPartitioner()
	case "grid":
		part = trajcover.GridPartitioner()
	default:
		return nil, fmt.Errorf("unknown partitioner %q (want hash or grid)", partitioner)
	}
	users := trajcover.TaxiTrips(trajcover.NewYorkCity(), synthetic, seed)
	return trajcover.NewLiveShardedIndex(users, trajcover.LiveShardOptions{
		Shards:      shards,
		Partitioner: part,
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
		Policy:      pol,
	})
}
