package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
)

// TestRunServesAndDrains boots tqserve on an ephemeral port with a
// synthetic corpus, serves a health check and a topk query, then
// delivers SIGTERM and asserts a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-synthetic", "500", "-shards", "2", "-workers", "2", "-queue", "8"},
			&out, sig, func(addr string) { ready <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"facilities":[{"id":1,"stops":[[500,500],[20000,15000]]}],"k":1,"psi":300}`
	resp, err = http.Post(base+"/v1/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"results"`) {
		t.Fatalf("topk: %d %s", resp.StatusCode, got)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "drained") {
		t.Fatalf("drain log missing: %s", out.String())
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestBuildIndexErrors pins the CLI's configuration failure modes.
func TestBuildIndexErrors(t *testing.T) {
	var pol trajcover.LivePolicy
	if _, err := buildIndex("", 0, 1, 1, "hash", pol); err == nil {
		t.Fatal("no data source accepted")
	}
	if _, err := buildIndex("", 10, 1, 1, "bogus", pol); err == nil {
		t.Fatal("bogus partitioner accepted")
	}
	if _, err := buildIndex("/does/not/exist.tqlive", 0, 1, 1, "hash", pol); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
