package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
)

// TestRunServesAndDrains boots tqserve on an ephemeral port with a
// synthetic corpus, serves a health check and a topk query, then
// delivers SIGTERM and asserts a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-synthetic", "500", "-shards", "2", "-workers", "2", "-queue", "8"},
			&out, sig, func(addr string) { ready <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"facilities":[{"id":1,"stops":[[500,500],[20000,15000]]}],"k":1,"psi":300}`
	resp, err = http.Post(base+"/v1/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"results"`) {
		t.Fatalf("topk: %d %s", resp.StatusCode, got)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "drained") {
		t.Fatalf("drain log missing: %s", out.String())
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestBuildIndexErrors pins the CLI's configuration failure modes.
func TestBuildIndexErrors(t *testing.T) {
	var pol trajcover.LivePolicy
	if _, err := buildIndex("", 0, 1, 1, "hash", pol); err == nil {
		t.Fatal("no data source accepted")
	}
	if _, err := buildIndex("", 10, 1, 1, "bogus", pol); err == nil {
		t.Fatal("bogus partitioner accepted")
	}
	if _, err := buildIndex("/does/not/exist.tqlive", 0, 1, 1, "hash", pol); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// TestRunWALRecovery boots tqserve with -wal-dir, writes through HTTP,
// drains, then reboots against the same directory: the -synthetic seed
// only applies to the first boot, and the second boot must recover the
// corpus including the post-seed writes from checkpoint + WAL.
func TestRunWALRecovery(t *testing.T) {
	walDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-synthetic", "300", "-shards", "2",
		"-workers", "2", "-queue", "8", "-wal-dir", walDir, "-wal-sync", "always",
	}

	boot := func() (addr string, sig chan os.Signal, done chan error, out *bytes.Buffer) {
		sig = make(chan os.Signal, 1)
		ready := make(chan string, 1)
		out = &bytes.Buffer{}
		done = make(chan error, 1)
		go func() { done <- run(args, out, sig, func(a string) { ready <- a }) }()
		select {
		case addr = <-ready:
		case err := <-done:
			t.Fatalf("run exited before ready: %v\n%s", err, out.String())
		case <-time.After(60 * time.Second):
			t.Fatal("server never became ready")
		}
		return addr, sig, done, out
	}
	stop := func(sig chan os.Signal, done chan error, out *bytes.Buffer) {
		sig <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("server did not drain after SIGTERM")
		}
	}
	indexLen := func(addr string) int {
		resp, err := http.Get("http://" + addr + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Index struct {
				Len int `json:"len"`
			} `json:"index"`
			WAL *struct {
				Records uint64 `json:"records"`
			} `json:"wal"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.WAL == nil {
			t.Fatal("statsz has no wal section on a -wal-dir boot")
		}
		return st.Index.Len
	}

	addr, sig, done, out := boot()
	if !strings.Contains(out.String(), "tqserve: wal "+walDir) {
		t.Fatalf("wal banner missing: %s", out.String())
	}
	if n := indexLen(addr); n != 300 {
		t.Fatalf("first boot len %d, want 300", n)
	}
	body := `{"id":900001,"points":[[123,456],[789,1011]]}`
	resp, err := http.Post("http://"+addr+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, got)
	}
	resp, err = http.Post("http://"+addr+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"ok":true`) {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, got)
	}
	stop(sig, done, out)
	http.DefaultClient.CloseIdleConnections()

	// Second boot: same flags, but the corpus must come from the WAL
	// directory (300 seeded + 1 inserted), not a fresh -synthetic build.
	addr, sig, done, out = boot()
	if n := indexLen(addr); n != 301 {
		t.Fatalf("recovered len %d, want 301", n)
	}
	resp, err = http.Post("http://"+addr+"/v1/delete", "application/json", strings.NewReader(`{"id":900001}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"found":true`) {
		t.Fatalf("delete of recovered trajectory: %d %s", resp.StatusCode, got)
	}
	stop(sig, done, out)
	http.DefaultClient.CloseIdleConnections()
}
