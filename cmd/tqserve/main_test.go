package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
)

// TestRunServesAndDrains boots tqserve on an ephemeral port with a
// synthetic corpus, serves a health check and a topk query, then
// delivers SIGTERM and asserts a clean drain.
func TestRunServesAndDrains(t *testing.T) {
	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-synthetic", "500", "-shards", "2", "-workers", "2", "-queue", "8"},
			&out, sig, func(addr string) { ready <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"facilities":[{"id":1,"stops":[[500,500],[20000,15000]]}],"k":1,"psi":300}`
	resp, err = http.Post(base+"/v1/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"results"`) {
		t.Fatalf("topk: %d %s", resp.StatusCode, got)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "drained") {
		t.Fatalf("drain log missing: %s", out.String())
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestBuildIndexErrors pins the CLI's configuration failure modes.
func TestBuildIndexErrors(t *testing.T) {
	var pol trajcover.LivePolicy
	if _, err := buildIndex("", false, 0, 1, 1, "hash", pol); err == nil {
		t.Fatal("no data source accepted")
	}
	if _, err := buildIndex("", false, 10, 1, 1, "bogus", pol); err == nil {
		t.Fatal("bogus partitioner accepted")
	}
	if _, err := buildIndex("/does/not/exist.tqlive", false, 0, 1, 1, "hash", pol); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// TestRunWALRecovery boots tqserve with -wal-dir, writes through HTTP,
// drains, then reboots against the same directory: the -synthetic seed
// only applies to the first boot, and the second boot must recover the
// corpus including the post-seed writes from checkpoint + WAL.
func TestRunWALRecovery(t *testing.T) {
	walDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0", "-synthetic", "300", "-shards", "2",
		"-workers", "2", "-queue", "8", "-wal-dir", walDir, "-wal-sync", "always",
	}

	boot := func() (addr string, sig chan os.Signal, done chan error, out *bytes.Buffer) {
		sig = make(chan os.Signal, 1)
		ready := make(chan string, 1)
		out = &bytes.Buffer{}
		done = make(chan error, 1)
		go func() { done <- run(args, out, sig, func(a string) { ready <- a }) }()
		select {
		case addr = <-ready:
		case err := <-done:
			t.Fatalf("run exited before ready: %v\n%s", err, out.String())
		case <-time.After(60 * time.Second):
			t.Fatal("server never became ready")
		}
		return addr, sig, done, out
	}
	stop := func(sig chan os.Signal, done chan error, out *bytes.Buffer) {
		sig <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("server did not drain after SIGTERM")
		}
	}
	indexLen := func(addr string) int {
		resp, err := http.Get("http://" + addr + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Index struct {
				Len int `json:"len"`
			} `json:"index"`
			WAL *struct {
				Records uint64 `json:"records"`
			} `json:"wal"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.WAL == nil {
			t.Fatal("statsz has no wal section on a -wal-dir boot")
		}
		return st.Index.Len
	}

	addr, sig, done, out := boot()
	if !strings.Contains(out.String(), "tqserve: wal "+walDir) {
		t.Fatalf("wal banner missing: %s", out.String())
	}
	if n := indexLen(addr); n != 300 {
		t.Fatalf("first boot len %d, want 300", n)
	}
	body := `{"id":900001,"points":[[123,456],[789,1011]]}`
	resp, err := http.Post("http://"+addr+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, got)
	}
	resp, err = http.Post("http://"+addr+"/v1/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"ok":true`) {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, got)
	}
	stop(sig, done, out)
	http.DefaultClient.CloseIdleConnections()

	// Second boot: same flags, but the corpus must come from the WAL
	// directory (300 seeded + 1 inserted), not a fresh -synthetic build.
	addr, sig, done, out = boot()
	if n := indexLen(addr); n != 301 {
		t.Fatalf("recovered len %d, want 301", n)
	}
	resp, err = http.Post("http://"+addr+"/v1/delete", "application/json", strings.NewReader(`{"id":900001}`))
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(got), `"found":true`) {
		t.Fatalf("delete of recovered trajectory: %d %s", resp.StatusCode, got)
	}
	stop(sig, done, out)
	http.DefaultClient.CloseIdleConnections()
}

// TestRunMultiTenantOverridesReload boots tqserve in multi-tenant mode
// with an overrides file and drives the full reload story over HTTP:
// the boot limits throttle a tenant's writes, a loosened rewrite +
// SIGHUP lifts the limit without a restart, an INVALID rewrite keeps
// the loosened limits in force (and counts a failure on /statsz), and
// the poll loop picks up a tightening rewrite with no signal at all.
func TestRunMultiTenantOverridesReload(t *testing.T) {
	root := t.TempDir()
	ovrPath := filepath.Join(t.TempDir(), "limits.yaml")
	// writes_per_sec 0.001 => burst 1: the first write lands, the second
	// is a deterministic 429 (the next token is ~17 minutes away).
	tight := "tenants:\n  t1:\n    writes_per_sec: 0.001\n"
	if err := os.WriteFile(ovrPath, []byte(tight), 0o644); err != nil {
		t.Fatal(err)
	}

	sig := make(chan os.Signal, 4)
	ready := make(chan string, 1)
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(
			[]string{"-addr", "127.0.0.1:0", "-tenant-root", root, "-synthetic", "100",
				"-shards", "2", "-workers", "2", "-queue", "8",
				"-overrides-file", ovrPath, "-overrides-poll", "25ms"},
			&out, sig, func(addr string) { ready <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr
	if !strings.Contains(out.String(), "tqserve: tenants under "+root) {
		t.Fatalf("tenant banner missing: %s", out.String())
	}

	insert := func(id int) (int, string) {
		t.Helper()
		body := fmt.Sprintf(`{"id":%d,"points":[[100,100],[200,200]],"tenant":"t1"}`, id)
		resp, err := http.Post(base+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(got)
	}

	// Boot limits in force: one write per ~17 min for t1.
	if status, body := insert(1); status != http.StatusOK {
		t.Fatalf("first t1 insert: %d %s", status, body)
	}
	if status, body := insert(2); status != http.StatusTooManyRequests || !strings.Contains(body, "writes_per_sec") {
		t.Fatalf("second t1 insert: %d %s (want 429 over writes_per_sec)", status, body)
	}
	if !dirExistsForTest(filepath.Join(root, "t1")) {
		t.Fatal("t1 write did not create its tenant directory")
	}

	// Loosen + SIGHUP: the same write that just bounced must now land —
	// no restart.
	if err := os.WriteFile(ovrPath, []byte("tenants:\n  t1:\n    writes_per_sec: -1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sig <- syscall.SIGHUP
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "overrides reloaded") {
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never logged: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status, body := insert(2); status != http.StatusOK {
		t.Fatalf("t1 insert after loosening: %d %s", status, body)
	}

	// Invalid rewrite + SIGHUP: the old (loosened) limits stay in force
	// and the failure is logged and counted.
	if err := os.WriteFile(ovrPath, []byte("tenants:\n  t1:\n    writes_per_secc: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sig <- syscall.SIGHUP
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "keeping previous limits") {
		if time.Now().After(deadline) {
			t.Fatalf("invalid reload never logged: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status, body := insert(3); status != http.StatusOK {
		t.Fatalf("t1 insert after invalid rewrite (limits must not tighten): %d %s", status, body)
	}
	var st struct {
		Overrides *struct {
			Reloads uint64 `json:"reloads"`
			Fails   uint64 `json:"fails"`
		} `json:"overrides"`
	}
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Overrides == nil || st.Overrides.Reloads != 2 || st.Overrides.Fails == 0 {
		t.Fatalf("statsz overrides section %+v, want 2 reloads and >=1 fail", st.Overrides)
	}

	// Tighten again with NO signal: the 25ms poll loop must notice the
	// rewrite. The re-clamped bucket admits one write, then throttles.
	if err := os.WriteFile(ovrPath, []byte(tight), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	throttled := false
	for id := 10; time.Now().Before(deadline); id++ {
		status, body := insert(id)
		if status == http.StatusTooManyRequests && strings.Contains(body, "writes_per_sec") {
			throttled = true
			break
		}
		if status != http.StatusOK {
			t.Fatalf("insert %d while waiting for poll reload: %d %s", id, status, body)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !throttled {
		t.Fatalf("poll loop never applied the tightened overrides: %s", out.String())
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestRunFlagConflictsAndBadOverrides pins the CLI's refusal modes: a
// bad overrides file at boot, -tenant-root combined with -wal-dir, and
// -tenant-root with -snapshot are all startup errors, not silent
// serving with wrong config.
func TestRunFlagConflictsAndBadOverrides(t *testing.T) {
	badOvr := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(badOvr, []byte("tenants:\n  t1:\n    bogus_key: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-addr", "127.0.0.1:0", "-tenant-root", t.TempDir(), "-synthetic", "10", "-overrides-file", badOvr},
		{"-addr", "127.0.0.1:0", "-tenant-root", t.TempDir(), "-wal-dir", t.TempDir(), "-synthetic", "10"},
		{"-addr", "127.0.0.1:0", "-tenant-root", t.TempDir(), "-snapshot", "x.tqlive"},
	} {
		var out bytes.Buffer
		sig := make(chan os.Signal)
		if err := run(args, &out, sig, func(string) {}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// dirExistsForTest mirrors the registry's on-disk tenant check.
func dirExistsForTest(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

// syncBuffer is a bytes.Buffer safe for the run goroutine to write
// while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
