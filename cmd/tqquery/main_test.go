package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// writeWorkload generates a tiny dataset pair on disk and returns the
// file paths.
func writeWorkload(t *testing.T) (usersPath, routesPath string) {
	t.Helper()
	dir := t.TempDir()
	city := datagen.NewYork()
	usersPath = filepath.Join(dir, "users.csv")
	routesPath = filepath.Join(dir, "routes.csv")

	uf, err := os.Create(usersPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trajectory.WriteCSV(uf, datagen.TaxiTrips(city, 500, 1)); err != nil {
		t.Fatal(err)
	}
	uf.Close()

	rf, err := os.Create(routesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trajectory.WriteFacilitiesCSV(rf, datagen.BusRoutes(city, 20, 8, 2)); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	return usersPath, routesPath
}

func TestRunTopK(t *testing.T) {
	users, routes := writeWorkload(t)
	var out strings.Builder
	err := run([]string{"-users", users, "-routes", routes, "-query", "topk", "-k", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "loaded 500 user trajectories, 20 facility routes") {
		t.Errorf("missing load line:\n%s", got)
	}
	if !strings.Contains(got, "top-3 facilities") {
		t.Errorf("missing results header:\n%s", got)
	}
	if strings.Count(got, "route ") < 3 {
		t.Errorf("fewer than 3 result rows:\n%s", got)
	}
}

func TestRunMaxCovAllAlgorithms(t *testing.T) {
	users, routes := writeWorkload(t)
	for _, alg := range []string{"twostep", "greedy", "genetic", "annealing"} {
		var out strings.Builder
		err := run([]string{"-users", users, "-routes", routes,
			"-query", "maxcov", "-k", "2", "-alg", alg}, &out)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !strings.Contains(out.String(), "max-2-coverage") {
			t.Errorf("%s: missing result line:\n%s", alg, out.String())
		}
	}
}

func TestRunServiceQuery(t *testing.T) {
	users, routes := writeWorkload(t)
	var out strings.Builder
	err := run([]string{"-users", users, "-routes", routes,
		"-query", "service", "-facility", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "service value of route 0") {
		t.Errorf("missing service line:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	users, routes := writeWorkload(t)
	cases := [][]string{
		{},                // missing required flags
		{"-users", users}, // missing routes
		{"-users", "/nope.csv", "-routes", routes},
		{"-users", users, "-routes", routes, "-variant", "bogus"},
		{"-users", users, "-routes", routes, "-ordering", "bogus"},
		{"-users", users, "-routes", routes, "-scenario", "bogus"},
		{"-users", users, "-routes", routes, "-query", "bogus"},
		{"-users", users, "-routes", routes, "-query", "maxcov", "-alg", "bogus"},
		{"-users", users, "-routes", routes, "-query", "service"}, // no -facility
		{"-users", users, "-routes", routes, "-query", "service", "-facility", "9999"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunMultipointVariants(t *testing.T) {
	dir := t.TempDir()
	city := datagen.NewYork()
	usersPath := filepath.Join(dir, "checkins.csv")
	routesPath := filepath.Join(dir, "routes.csv")
	uf, _ := os.Create(usersPath)
	if err := trajectory.WriteCSV(uf, datagen.Checkins(city, 300, 5, 3)); err != nil {
		t.Fatal(err)
	}
	uf.Close()
	rf, _ := os.Create(routesPath)
	if err := trajectory.WriteFacilitiesCSV(rf, datagen.BusRoutes(city, 10, 8, 4)); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	for _, variant := range []string{"segmented", "full"} {
		var out strings.Builder
		err := run([]string{"-users", usersPath, "-routes", routesPath,
			"-variant", variant, "-scenario", "pointcount", "-query", "topk", "-k", "2"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
	}
	// TwoPoint + pointcount over multipoint data must fail loudly.
	var out strings.Builder
	err := run([]string{"-users", usersPath, "-routes", routesPath,
		"-variant", "twopoint", "-scenario", "pointcount", "-query", "topk"}, &out)
	if err == nil {
		t.Error("twopoint+pointcount over multipoint data did not error")
	}
}

// TestRunShardedTopKMatchesSingleTree checks the -shards path answers the
// same topk as the single-tree path, for both partitioners.
func TestRunShardedTopKMatchesSingleTree(t *testing.T) {
	users, routes := writeWorkload(t)
	var single strings.Builder
	if err := run([]string{"-users", users, "-routes", routes, "-query", "topk", "-k", "5"}, &single); err != nil {
		t.Fatal(err)
	}
	wantRows := resultRows(single.String())
	for _, part := range []string{"hash", "grid"} {
		var out strings.Builder
		err := run([]string{
			"-users", users, "-routes", routes, "-query", "topk", "-k", "5",
			"-shards", "4", "-partitioner", part,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		got := out.String()
		if !strings.Contains(got, "sharded into 4 TQ-trees") {
			t.Errorf("%s: missing shard line:\n%s", part, got)
		}
		if gotRows := resultRows(got); gotRows != wantRows {
			t.Errorf("%s: sharded results differ:\n%s\nwant:\n%s", part, gotRows, wantRows)
		}
	}
}

// resultRows extracts the ranked result lines ("  1. route ...") from
// tqquery output so sharded and single runs can be compared directly.
func resultRows(out string) string {
	var rows []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, ". route ") {
			rows = append(rows, strings.TrimSpace(line))
		}
	}
	return strings.Join(rows, "\n")
}

// TestRunShardedRejections covers the sharded-mode error paths.
func TestRunShardedRejections(t *testing.T) {
	users, routes := writeWorkload(t)
	var out strings.Builder
	if err := run([]string{
		"-users", users, "-routes", routes, "-query", "maxcov", "-shards", "2",
	}, &out); err == nil {
		t.Error("maxcov with shards accepted")
	}
	if err := run([]string{
		"-users", users, "-routes", routes, "-query", "topk", "-shards", "2", "-partitioner", "nope",
	}, &out); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

// TestRunLiveTopKMatchesSingleTree: -live serving answers the same
// top-k as the plain mutable index, for 1 and 2 shards.
func TestRunLiveTopKMatchesSingleTree(t *testing.T) {
	users, routes := writeWorkload(t)
	var single strings.Builder
	if err := run([]string{"-users", users, "-routes", routes, "-query", "topk", "-k", "5"}, &single); err != nil {
		t.Fatal(err)
	}
	wantRows := resultRows(single.String())
	for _, shards := range []string{"1", "2"} {
		var out strings.Builder
		err := run([]string{
			"-users", users, "-routes", routes, "-query", "topk", "-k", "5",
			"-live", "-shards", shards,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		got := out.String()
		if !strings.Contains(got, "serving live from "+shards+" epoch shard(s)") {
			t.Errorf("missing live line:\n%s", got)
		}
		if gotRows := resultRows(got); gotRows != wantRows {
			t.Errorf("live (%s shards) results differ:\n%s\nwant:\n%s", shards, gotRows, wantRows)
		}
	}
}

// TestRunLiveChurn exercises the -churn harness: concurrent writes
// against a repeating query, with the latency summary line emitted.
func TestRunLiveChurn(t *testing.T) {
	users, routes := writeWorkload(t)
	var out strings.Builder
	err := run([]string{
		"-users", users, "-routes", routes, "-query", "topk", "-k", "3",
		"-live", "-churn", "300", "-churn-maxdelta", "48",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "churn: 300 writes concurrent with ") {
		t.Errorf("missing churn summary:\n%s", got)
	}
	if !strings.Contains(got, "background swaps ") {
		t.Errorf("missing swap count:\n%s", got)
	}
}

// TestRunLiveRejections covers the live-mode error paths.
func TestRunLiveRejections(t *testing.T) {
	users, routes := writeWorkload(t)
	var out strings.Builder
	if err := run([]string{
		"-users", users, "-routes", routes, "-query", "maxcov", "-live",
	}, &out); err == nil {
		t.Error("maxcov with -live accepted")
	}
	if err := run([]string{
		"-users", users, "-routes", routes, "-query", "topk", "-live", "-frozen",
	}, &out); err == nil {
		t.Error("-live -frozen accepted")
	}
	if err := run([]string{
		"-users", users, "-routes", routes, "-query", "topk", "-churn", "10",
	}, &out); err == nil {
		t.Error("-churn without -live accepted")
	}
}
