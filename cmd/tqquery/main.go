// Command tqquery loads user trajectories and candidate facility routes
// from CSV files (see cmd/datagen for the format) and answers kMaxRRST or
// MaxkCovRST queries from the command line.
//
// Usage:
//
//	tqquery -users trips.csv -routes routes.csv -query topk -k 8 -psi 300
//	tqquery -users trips.csv -routes routes.csv -query maxcov -k 4 -alg genetic
//	tqquery -users checkins.csv -routes routes.csv -variant full -scenario pointcount -query topk
//	tqquery -users trips.csv -routes routes.csv -query topk -shards 4 -partitioner grid
//	tqquery -users trips.csv -routes routes.csv -query topk -frozen
//	tqquery -users trips.csv -routes routes.csv -query topk -live -churn 500
//
// -live serves from the epoch-swapping live index (writes safe
// concurrently with queries); -churn N additionally runs N insert/delete
// operations concurrently with the query, which is repeated until the
// writer finishes, and reports the query latency distribution plus the
// background swaps that completed mid-run.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync/atomic"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tqquery:", err)
		os.Exit(1)
	}
}

// run parses args and executes the query, writing results to w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tqquery", flag.ContinueOnError)
	var (
		usersPath  = fs.String("users", "", "user trajectories CSV (required)")
		routesPath = fs.String("routes", "", "facility routes CSV (required)")
		queryKind  = fs.String("query", "topk", "query: topk|maxcov|service")
		scenario   = fs.String("scenario", "binary", "service scenario: binary|pointcount|length")
		variant    = fs.String("variant", "twopoint", "index variant: twopoint|segmented|full")
		ordering   = fs.String("ordering", "zorder", "list ordering: basic|zorder")
		alg        = fs.String("alg", "twostep", "maxcov algorithm: twostep|greedy|genetic|annealing|exact")
		k          = fs.Int("k", 8, "number of facilities to return/choose")
		psi        = fs.Float64("psi", 300, "serving distance threshold ψ")
		facility   = fs.Int("facility", -1, "facility id (query=service)")
		shards     = fs.Int("shards", 1, "partition users across this many TQ-trees (scatter-gather serving)")
		partition  = fs.String("partitioner", "hash", "shard partitioner: hash|grid")
		frozen     = fs.Bool("frozen", false, "serve from the frozen columnar index (faster reads, immutable)")
		live       = fs.Bool("live", false, "serve from the live epoch-swapping index (writes safe concurrently with queries)")
		churn      = fs.Int("churn", 0, "with -live: run this many concurrent insert/delete ops while the query repeats, and report latency quantiles")
		churnDelta = fs.Int("churn-maxdelta", 64, "with -churn: background rebuild threshold (pending writes per shard)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *usersPath == "" || *routesPath == "" {
		return fmt.Errorf("-users and -routes are required")
	}

	users, err := loadUsers(*usersPath)
	if err != nil {
		return err
	}
	routes, err := loadRoutes(*routesPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "loaded %d user trajectories, %d facility routes\n", len(users), len(routes))

	opts := trajcover.IndexOptions{}
	switch *variant {
	case "twopoint":
		opts.Variant = trajcover.TwoPoint
	case "segmented":
		opts.Variant = trajcover.Segmented
	case "full":
		opts.Variant = trajcover.FullTrajectory
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	switch *ordering {
	case "basic":
		opts.Ordering = trajcover.BasicOrdering
	case "zorder":
		opts.Ordering = trajcover.ZOrdering
	default:
		return fmt.Errorf("unknown ordering %q", *ordering)
	}

	q := trajcover.Query{Psi: *psi}
	switch *scenario {
	case "binary":
		q.Scenario = trajcover.Binary
	case "pointcount":
		q.Scenario = trajcover.PointCount
	case "length":
		q.Scenario = trajcover.Length
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	// Both Index and ShardedIndex answer topk/service; MaxkCovRST remains
	// single-tree (its coverage solvers need one engine's coverage masks).
	var idx interface {
		TopK([]*trajcover.Facility, int, trajcover.Query) ([]trajcover.Ranked, error)
		ServiceValue(*trajcover.Facility, trajcover.Query) (float64, error)
	}
	var single *trajcover.Index
	var liveIdx *trajcover.LiveShardedIndex
	if *churn > 0 && !*live {
		return fmt.Errorf("-churn requires -live")
	}
	if *live {
		if *queryKind == "maxcov" {
			return fmt.Errorf("query=maxcov is not supported with -live; the coverage solvers need the mutable index")
		}
		if *frozen {
			return fmt.Errorf("-live and -frozen are mutually exclusive")
		}
		var part trajcover.Partitioner
		switch *partition {
		case "hash":
			part = trajcover.HashPartitioner()
		case "grid":
			part = trajcover.GridPartitioner()
		default:
			return fmt.Errorf("unknown partitioner %q", *partition)
		}
		lidx, err := trajcover.NewLiveShardedIndex(users, trajcover.LiveShardOptions{
			Shards: *shards, Partitioner: part, Index: opts,
			Policy: trajcover.LivePolicy{MaxDelta: *churnDelta, MaxDeltaFraction: -1},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "serving live from %d epoch shard(s) (%s): sizes %v\n",
			lidx.NumShards(), *partition, lidx.ShardSizes())
		liveIdx = lidx
		idx = lidx
	} else if *shards > 1 {
		var part trajcover.Partitioner
		switch *partition {
		case "hash":
			part = trajcover.HashPartitioner()
		case "grid":
			part = trajcover.GridPartitioner()
		default:
			return fmt.Errorf("unknown partitioner %q", *partition)
		}
		if *queryKind == "maxcov" {
			return fmt.Errorf("query=maxcov is not supported with -shards > 1; omit -shards")
		}
		sidx, err := trajcover.NewShardedIndex(users, trajcover.ShardOptions{
			Shards: *shards, Partitioner: part, Index: opts,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "sharded into %d TQ-trees (%s): sizes %v\n", sidx.NumShards(), *partition, sidx.ShardSizes())
		if *frozen {
			fidx, err := sidx.Freeze()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "serving from frozen columnar shards")
			idx = fidx
		} else {
			idx = sidx
		}
	} else if *frozen {
		if *queryKind == "maxcov" {
			return fmt.Errorf("query=maxcov is not supported with -frozen; the coverage solvers need the mutable index")
		}
		fidx, err := trajcover.NewFrozenIndex(users, opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "serving from the frozen columnar index")
		idx = fidx
	} else {
		s, err := trajcover.NewIndex(users, opts)
		if err != nil {
			return err
		}
		single = s
		idx = s
	}

	switch *queryKind {
	case "topk":
		res, err := idx.TopK(routes, *k, q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "top-%d facilities by %s service (psi %.0f):\n", *k, *scenario, *psi)
		for i, r := range res {
			fmt.Fprintf(w, "%3d. route %-6d service %.4f\n", i+1, r.Facility.ID, r.Service)
		}
		if *churn > 0 {
			return runChurn(w, liveIdx, users, *churn, func() error {
				_, err := idx.TopK(routes, *k, q)
				return err
			})
		}
	case "maxcov":
		copts := trajcover.CoverageOptions{}
		switch *alg {
		case "twostep":
			copts.Algorithm = trajcover.TwoStepGreedy
		case "greedy":
			copts.Algorithm = trajcover.FullGreedy
		case "genetic":
			copts.Algorithm = trajcover.Genetic
		case "annealing":
			copts.Algorithm = trajcover.Annealing
		case "exact":
			copts.Algorithm = trajcover.Exact
		default:
			return fmt.Errorf("unknown algorithm %q", *alg)
		}
		res, err := single.MaxCoverage(routes, *k, q, copts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "max-%d-coverage (%s, psi %.0f): combined service %.4f, users served %d\n",
			*k, *alg, *psi, res.Value, res.UsersServed)
		for i, f := range res.Facilities {
			fmt.Fprintf(w, "%3d. route %d\n", i+1, f.ID)
		}
	case "service":
		if *facility < 0 {
			return fmt.Errorf("query=service needs -facility")
		}
		var target *trajcover.Facility
		for _, f := range routes {
			if int(f.ID) == *facility {
				target = f
			}
		}
		if target == nil {
			return fmt.Errorf("facility %d not found", *facility)
		}
		v, err := idx.ServiceValue(target, q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "service value of route %d: %.4f\n", target.ID, v)
		if *churn > 0 {
			return runChurn(w, liveIdx, users, *churn, func() error {
				_, err := idx.ServiceValue(target, q)
				return err
			})
		}
	default:
		return fmt.Errorf("unknown query %q", *queryKind)
	}
	return nil
}

// runChurn exercises concurrent writes against the live index: a writer
// applies `ops` insert/delete operations (70% inserts of perturbed
// copies of loaded trajectories under fresh IDs, 30% deletes of those
// copies) while the query repeats, then reports the query latency
// distribution and how many background epoch swaps completed mid-run.
func runChurn(w io.Writer, lv *trajcover.LiveShardedIndex, users []*trajcover.Trajectory, ops int, query func() error) error {
	maxID := trajcover.ID(0)
	for _, u := range users {
		if u.ID > maxID {
			maxID = u.ID
		}
	}
	startSwaps := uint64(0)
	for _, st := range lv.Stats() {
		startSwaps += st.Compactions
	}

	writeErr := make(chan error, 1)
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		rng := rand.New(rand.NewSource(1))
		var inserted []trajcover.ID
		nextID := maxID
		for i := 0; i < ops; i++ {
			if rng.Float64() < 0.7 || len(inserted) == 0 {
				src := users[rng.Intn(len(users))]
				pts := make([]trajcover.Point, len(src.Points))
				for j, p := range src.Points {
					pts[j] = trajcover.Pt(p.X+rng.NormFloat64()*10, p.Y+rng.NormFloat64()*10)
				}
				nextID++
				u, err := trajcover.NewTrajectory(nextID, pts)
				if err != nil {
					writeErr <- err
					return
				}
				if err := lv.Insert(u); err != nil {
					writeErr <- err
					return
				}
				inserted = append(inserted, u.ID)
			} else {
				j := rng.Intn(len(inserted))
				lv.Delete(inserted[j])
				inserted[j] = inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
			}
		}
		writeErr <- nil
	}()

	var latencies []float64
	for first := true; first || !done.Load(); first = false {
		start := time.Now()
		if err := query(); err != nil {
			return err
		}
		latencies = append(latencies, time.Since(start).Seconds())
	}
	if err := <-writeErr; err != nil {
		return err
	}
	// Drain in-flight background rebuilds before reading the error and
	// the swap count: the last trigger may still be folding when the
	// writer exits, and its failure (or its swap) must not be missed. A
	// rebuild at CLI scale completes well within the settle window; the
	// stability loop then catches a follow-up trigger chain.
	swapsOf := func() uint64 {
		n := uint64(0)
		for _, st := range lv.Stats() {
			n += st.Compactions
		}
		return n
	}
	time.Sleep(500 * time.Millisecond)
	settled := swapsOf()
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		time.Sleep(100 * time.Millisecond)
		next := swapsOf()
		if next == settled {
			break
		}
		settled = next
	}
	if err := lv.Err(); err != nil {
		return fmt.Errorf("background rebuild: %w", err)
	}
	sort.Float64s(latencies)
	endSwaps := swapsOf()
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(q*float64(len(latencies)-1))]
	}
	fmt.Fprintf(w, "churn: %d writes concurrent with %d queries; query p50 %.6fs p99 %.6fs; background swaps %d; final corpus %d\n",
		ops, len(latencies), pct(0.50), pct(0.99), endSwaps-startSwaps, lv.Len())
	return nil
}

func loadUsers(path string) ([]*trajcover.Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trajectory.ReadCSV(f)
}

func loadRoutes(path string) ([]*trajcover.Facility, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trajectory.ReadFacilitiesCSV(f)
}
