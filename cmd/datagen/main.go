// Command datagen emits synthetic trajectory datasets to CSV files in the
// row-per-trajectory format (id,x1,y1,x2,y2,...), for use with tqquery or
// external tooling.
//
// Usage:
//
//	datagen -kind taxi -n 10000 -seed 1 -out trips.csv
//	datagen -kind checkins -n 5000 -out checkins.csv
//	datagen -kind traces -city bj -n 1000 -out traces.csv
//	datagen -kind routes -n 200 -stops 32 -out routes.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func main() {
	var (
		kind  = flag.String("kind", "taxi", "dataset kind: taxi|checkins|traces|routes")
		city  = flag.String("city", "ny", "city model: ny|bj")
		n     = flag.Int("n", 10000, "number of trajectories/routes")
		stops = flag.Int("stops", 32, "stops per route (kind=routes)")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	model := datagen.NewYork()
	if *city == "bj" {
		model = datagen.Beijing()
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "taxi":
		err := trajectory.WriteCSV(w, datagen.TaxiTrips(model, *n, *seed))
		if err != nil {
			fatal(err)
		}
	case "checkins":
		err := trajectory.WriteCSV(w, datagen.Checkins(model, *n, 8, *seed))
		if err != nil {
			fatal(err)
		}
	case "traces":
		err := trajectory.WriteCSV(w, datagen.GPSTraces(model, *n, 10, 60, *seed))
		if err != nil {
			fatal(err)
		}
	case "routes":
		err := trajectory.WriteFacilitiesCSV(w, datagen.BusRoutes(model, *n, *stops, *seed))
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q (want taxi|checkins|traces|routes)", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
