package main

// The `serve` experiment: end-to-end throughput of the tqserve
// worker-pool HTTP front end — the ROADMAP's SLO metric measured at the
// system boundary instead of the library call. A live sharded index is
// wrapped in internal/server, bound to a loopback listener, and hammered
// with concurrent /v1/topk and /v1/servicevalues POSTs; the series sweep
// the worker-pool size. On one core the series stay roughly flat and
// sit below the library-level `thrpt` numbers by the HTTP+JSON tax; on n
// cores the pool should scale like the batch executor underneath it. It
// lives here rather than in internal/bench because internal/server
// fronts the public package (like the restore experiment's snapshots).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/server"
)

// serveRequests is how many requests one measurement fires per series.
const serveRequests = 16

func expServe(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "serve", Title: "tqserve worker-pool front end throughput vs pool size (NYT)",
		XLabel: "workers", YLabel: "requests/sec",
		Series: []bench.Series{{Method: "topk"}, {Method: "servicevalues"}},
	}
	users := ctx.Users("nyt", datagen.NYT1Day)
	idx, err := trajcover.NewLiveShardedIndex(users.All, trajcover.LiveShardOptions{
		Shards: 2,
		Index:  trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
		Policy: trajcover.LivePolicy{Manual: true},
	})
	if err != nil {
		return nil, err
	}
	routes := ctx.Routes("ny", 128, 32)
	fjs := make([]server.FacilityJSON, len(routes))
	for i, f := range routes {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		fjs[i] = server.FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	// Per-request workers stay 1 so concurrency comes from the pool, not
	// from intra-request parallelism fighting it for cores.
	topkBody := mustJSON(server.QueryRequest{Facilities: fjs, K: 8, Psi: ctx.Cfg.Psi, Workers: 1, TimeoutMS: 60_000})
	svBody := mustJSON(server.QueryRequest{Facilities: fjs, Psi: ctx.Cfg.Psi, Workers: 1, TimeoutMS: 60_000})

	for _, w := range []int{1, 2, 4, 8} {
		srv := server.New(idx, server.Config{
			Workers:        w,
			QueueDepth:     4 * serveRequests,
			DefaultTimeout: time.Minute,
			MaxTimeout:     time.Minute,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String()
		client := &http.Client{Timeout: 2 * time.Minute}

		var qerr error
		fire := func(path string, body []byte) float64 {
			clients := w
			if clients > 4 {
				clients = 4
			}
			return ctx.Time(func() {
				if err := hammer(client, url+path, body, serveRequests, clients); err != nil {
					qerr = err
				}
			})
		}
		topkSec := fire(server.PathTopK, topkBody)
		svSec := fire(server.PathServiceValues, svBody)

		hs.Close()
		srv.Close()
		client.CloseIdleConnections()
		if qerr != nil {
			return nil, qerr
		}
		rate := func(sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return serveRequests / sec
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(w))
		t.Series[0].Y = append(t.Series[0].Y, rate(topkSec))
		t.Series[1].Y = append(t.Series[1].Y, rate(svSec))
	}
	return t, nil
}

// hammer fires n POSTs at the URL from `clients` concurrent goroutines
// and fails on any non-200.
func hammer(client *http.Client, url string, body []byte, n, clients int) error {
	if clients < 1 {
		clients = 1
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	per := n / clients
	extra := n % clients
	for c := 0; c < clients; c++ {
		reqs := per
		if c < extra {
			reqs++
		}
		wg.Add(1)
		go func(reqs int) {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					errs <- fmt.Errorf("serve: %s returned %d", url, resp.StatusCode)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					resp.Body.Close()
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}(reqs)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
