// Command tqbench regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-in datasets.
//
// Usage:
//
//	tqbench [-exp fig7a,fig7c] [-scale 0.05] [-psi 300] [-repeats 3] [-seed 1] [-json out.json]
//
// -exp all (the default) runs every experiment in paper order. -scale is
// the fraction of the paper-scale dataset cardinalities to generate;
// scale 1.0 reproduces Table II sizes (slow: the baseline methods are two
// to three orders of magnitude slower than TQ(Z), which is the point).
// Output is the same rows/series the paper's figures plot; see
// EXPERIMENTS.md for a recorded run and the paper-vs-measured comparison.
// -json additionally writes the measurements as machine-readable rows
// (config + one row per experiment/method/x-tick), the format CI and
// perf-trajectory tooling consume (BENCH_*.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trajcover/trajcover/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 0.02, "fraction of paper-scale dataset sizes")
		psi      = flag.Float64("psi", 300, "serving distance threshold ψ in meters")
		repeats  = flag.Int("repeats", 3, "timing repetitions (minimum is reported)")
		seed     = flag.Int64("seed", 1, "data generation seed")
		jsonPath = flag.String("json", "", "also write results as JSON to this path")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	cfg := bench.Config{Scale: *scale, Psi: *psi, Repeats: *repeats, Seed: *seed}
	// Create the JSON file up front so a bad path fails before, not
	// after, a potentially hours-long run.
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			os.Exit(1)
		}
		jsonFile = f
	}
	tables, err := bench.Run(ids, cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqbench:", err)
		os.Exit(1)
	}
	if jsonFile != nil {
		if err := bench.WriteJSON(jsonFile, cfg, tables); err != nil {
			jsonFile.Close()
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			os.Exit(1)
		}
		if err := jsonFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tqbench: wrote %s\n", *jsonPath)
	}
}
