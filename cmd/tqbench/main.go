// Command tqbench regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-in datasets, and diffs the
// machine-readable output of two runs for the CI perf-regression gate.
//
// Usage:
//
//	tqbench [-exp fig7a,fig7c] [-scale 0.05] [-psi 300] [-repeats 3] [-seed 1] [-json out.json]
//	tqbench -diff [-threshold 0.25] old.json new.json
//
// -exp all (the default) runs every experiment in paper order. -scale is
// the fraction of the paper-scale dataset cardinalities to generate;
// scale 1.0 reproduces Table II sizes (slow: the baseline methods are two
// to three orders of magnitude slower than TQ(Z), which is the point).
// Output is the same rows/series the paper's figures plot; see
// EXPERIMENTS.md for a recorded run and the paper-vs-measured comparison.
// -json additionally writes the measurements as machine-readable rows
// (config + one row per experiment/method/x-tick), the format CI and
// perf-trajectory tooling consume (BENCH_*.json).
//
// -diff joins two BENCH_*.json documents on (experiment, x, method),
// prints the per-series deltas, and exits non-zero when any timing or
// throughput series is worse than -threshold (relative; 0.25 = 25%).
// Quality metrics and rows present in only one run are reported but
// never gate. CI runs this against the previous workflow artifact so
// perf regressions fail the build.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 0.02, "fraction of paper-scale dataset sizes")
		psi       = flag.Float64("psi", 300, "serving distance threshold ψ in meters")
		repeats   = flag.Int("repeats", 3, "timing repetitions (minimum is reported)")
		seed      = flag.Int64("seed", 1, "data generation seed")
		jsonPath  = flag.String("json", "", "also write results as JSON to this path")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		diff      = flag.Bool("diff", false, "diff two BENCH_*.json runs: tqbench -diff old.json new.json")
		threshold = flag.Float64("threshold", 0.25, "relative regression threshold for -diff (0.25 = 25% worse fails)")
	)
	flag.Parse()

	if *diff {
		os.Exit(runDiff(flag.Args(), *threshold))
	}

	bench.RegisterExtra(bench.Experiment{
		ID:    "restore",
		Title: "extra — snapshot restore: frozen columnar read vs tree rebuild (NYT, not in the paper)",
		Run:   expRestore,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "serve",
		Title: "extra — tqserve worker-pool HTTP front end requests/sec vs pool size (NYT, not in the paper)",
		Run:   expServe,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "wal",
		Title: "extra — WAL append throughput and replay speed vs sync policy (NYT, not in the paper)",
		Run:   expWAL,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "tenants",
		Title: "extra — quiet-tenant request rate vs noisy co-tenant load, with and without quotas (NYT, not in the paper)",
		Run:   expTenants,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "faults",
		Title: "extra — query latency through a WAL wedge and degraded-mode auto-recovery (NYT, not in the paper)",
		Run:   expFaults,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "mmaptier",
		Title: "extra — frozen snapshot open: heap restore vs mmap alias, with RSS deltas (NYT, not in the paper)",
		Run:   expMmaptier,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "rescache",
		Title: "extra — tqserve repeated-query throughput with the result cache off vs on (NYT, not in the paper)",
		Run:   expRescache,
	})
	bench.RegisterExtra(bench.Experiment{
		ID:    "dist",
		Title: "extra — scatter-gather frontend over shard-group backends vs one process, with prune counters (NYT, not in the paper)",
		Run:   expDist,
	})

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	cfg := bench.Config{Scale: *scale, Psi: *psi, Repeats: *repeats, Seed: *seed}
	// Create the JSON file up front so a bad path fails before, not
	// after, a potentially hours-long run.
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			os.Exit(1)
		}
		jsonFile = f
	}
	tables, err := bench.Run(ids, cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqbench:", err)
		os.Exit(1)
	}
	if jsonFile != nil {
		if err := bench.WriteJSON(jsonFile, cfg, tables); err != nil {
			jsonFile.Close()
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			os.Exit(1)
		}
		if err := jsonFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tqbench: wrote %s\n", *jsonPath)
	}
}

// runDiff implements the -diff subcommand; the return value is the
// process exit code.
func runDiff(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "tqbench: -diff needs exactly two arguments: old.json new.json")
		return 2
	}
	docs := make([]bench.RunDoc, 2)
	for i, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqbench:", err)
			return 2
		}
		docs[i], err = bench.ReadRunDoc(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqbench: %s: %v\n", path, err)
			return 2
		}
	}
	rows, regressions := bench.DiffDocs(docs[0], docs[1], threshold)
	bench.PrintDiff(os.Stdout, rows, threshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "tqbench: %d series regressed beyond %.0f%%\n", regressions, threshold*100)
		return 1
	}
	fmt.Println("# no regressions")
	return 0
}

// expRestore measures snapshot restore for the two single-index formats:
// TQSNAP02 (store trajectories, rebuild the tree on read) against
// TQSNAP03 (frozen columns, bulk read + bounds check + CRC). Both
// streams describe the same index; the frozen restore's advantage is
// precisely the rebuild it skips. It lives here rather than in
// internal/bench because only the public package exposes the snapshot
// formats.
func expRestore(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "restore", Title: "snapshot restore: frozen columns vs tree rebuild (NYT)",
		XLabel: "users", YLabel: "restores/sec",
		Series: []bench.Series{{Method: "rebuild(TQSNAP02)"}, {Method: "frozen(TQSNAP03)"}},
	}
	for _, paperN := range []int{datagen.NYT1Day, datagen.NYT3Days} {
		users := ctx.Users("nyt", paperN)
		idx, err := trajcover.NewIndex(users.All, trajcover.IndexOptions{Ordering: trajcover.ZOrdering})
		if err != nil {
			return nil, err
		}
		fz, err := idx.Freeze()
		if err != nil {
			return nil, err
		}
		var rebuildBuf, frozenBuf bytes.Buffer
		if err := idx.WriteSnapshot(&rebuildBuf); err != nil {
			return nil, err
		}
		if err := fz.WriteSnapshot(&frozenBuf); err != nil {
			return nil, err
		}
		var rerr error
		rebuildSec := ctx.Time(func() {
			if _, err := trajcover.ReadSnapshot(bytes.NewReader(rebuildBuf.Bytes())); err != nil {
				rerr = err
			}
		})
		frozenSec := ctx.Time(func() {
			if _, err := trajcover.ReadFrozenSnapshot(bytes.NewReader(frozenBuf.Bytes())); err != nil {
				rerr = err
			}
		})
		if rerr != nil {
			return nil, rerr
		}
		rate := func(sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return 1 / sec
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(users.Len()))
		t.Series[0].Y = append(t.Series[0].Y, rate(rebuildSec))
		t.Series[1].Y = append(t.Series[1].Y, rate(frozenSec))
	}
	return t, nil
}
