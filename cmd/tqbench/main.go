// Command tqbench regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-in datasets.
//
// Usage:
//
//	tqbench [-exp fig7a,fig7c] [-scale 0.05] [-psi 300] [-repeats 3] [-seed 1]
//
// -exp all (the default) runs every experiment in paper order. -scale is
// the fraction of the paper-scale dataset cardinalities to generate;
// scale 1.0 reproduces Table II sizes (slow: the baseline methods are two
// to three orders of magnitude slower than TQ(Z), which is the point).
// Output is the same rows/series the paper's figures plot; see
// EXPERIMENTS.md for a recorded run and the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trajcover/trajcover/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 0.02, "fraction of paper-scale dataset sizes")
		psi     = flag.Float64("psi", 300, "serving distance threshold ψ in meters")
		repeats = flag.Int("repeats", 3, "timing repetitions (minimum is reported)")
		seed    = flag.Int64("seed", 1, "data generation seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	cfg := bench.Config{Scale: *scale, Psi: *psi, Repeats: *repeats, Seed: *seed}
	if err := bench.Run(ids, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tqbench:", err)
		os.Exit(1)
	}
}
