package main

// The `mmaptier` and `rescache` experiments: the two memory tiers
// added for cold-start and hot-query cost. mmaptier times opening the
// SAME TQSNAP03 file through the heap restore (parse + copy every
// column) and the mapped open (CRC + bounds checks, columns aliased
// onto the page cache) and reports the resident-memory cost of each
// as informational series — the mapped open's RSS stays near zero
// because untouched pages are never faulted in. rescache drives the
// tqserve front end with a repeated identical query, cache off vs on,
// and reports the hit rate alongside the throughput. Both live here
// rather than in internal/bench because they front the public
// package's snapshot and server layers.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/server"
)

// rssAnonBytes reads the process's anonymous resident set (RssAnon
// from /proc/self/status) — the honest "heap cost" comparison for the
// two opens, since a mapped snapshot's resident file pages are shared,
// evictable page cache, not process-private memory. Returns 0 when
// unreadable (non-Linux), keeping the series informational rather
// than failing the run.
func rssAnonBytes() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "RssAnon:") {
			continue
		}
		var kb float64
		if _, err := fmt.Sscanf(line, "RssAnon: %f kB", &kb); err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

func expMmaptier(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "mmaptier", Title: "frozen snapshot open: heap restore vs mmap alias (NYT)",
		XLabel: "users", YLabel: "restores/sec",
		Series: []bench.Series{
			{Method: "heap(TQSNAP03)"},
			{Method: "mapped(TQSNAP03)"},
			{Method: "speedup (n)"},
			{Method: "heap anon RSS delta MB (n)"},
			{Method: "mapped anon RSS delta MB (n)"},
		},
	}
	dir, err := os.MkdirTemp("", "tqbench-mmap-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	for _, paperN := range []int{datagen.NYT1Day, datagen.NYT3Days} {
		users := ctx.Users("nyt", paperN)
		idx, err := trajcover.NewIndex(users.All, trajcover.IndexOptions{Ordering: trajcover.ZOrdering})
		if err != nil {
			return nil, err
		}
		fz, err := idx.Freeze()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("frozen-%d.tqsnap", users.Len()))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := fz.WriteSnapshot(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}

		// RSS deltas from one fresh open each, GC'd to a quiet baseline.
		// Resident memory is scheduler- and allocator-noisy, hence the
		// informational "(n)" marking; the point is the order of
		// magnitude — heap restores materialize every column, mapped
		// opens only fault in what the CRC pass touches.
		measureRSS := func(open func() error) (float64, error) {
			runtime.GC()
			debug.FreeOSMemory()
			before := rssAnonBytes()
			if err := open(); err != nil {
				return 0, err
			}
			after := rssAnonBytes()
			delta := after - before
			if delta < 0 {
				delta = 0
			}
			return delta / (1 << 20), nil
		}
		heapRSS, err := measureRSS(func() error {
			r, err := os.Open(path)
			if err != nil {
				return err
			}
			defer r.Close()
			_, err = trajcover.ReadFrozenSnapshot(r)
			return err
		})
		if err != nil {
			return nil, err
		}
		mappedRSS, err := measureRSS(func() error {
			_, err := trajcover.OpenMappedFrozenSnapshot(path)
			return err
		})
		if err != nil {
			return nil, err
		}

		// Quiesce between timed sections so one open's GC debt (a heap
		// restore allocates every column) is not billed to the other.
		var oerr error
		runtime.GC()
		heapSec := ctx.Time(func() {
			r, err := os.Open(path)
			if err != nil {
				oerr = err
				return
			}
			defer r.Close()
			if _, err := trajcover.ReadFrozenSnapshot(r); err != nil {
				oerr = err
			}
		})
		runtime.GC()
		mappedSec := ctx.Time(func() {
			if _, err := trajcover.OpenMappedFrozenSnapshot(path); err != nil {
				oerr = err
			}
		})
		if oerr != nil {
			return nil, oerr
		}
		rate := func(sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return 1 / sec
		}
		speedup := 0.0
		if mappedSec > 0 {
			speedup = heapSec / mappedSec
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(users.Len()))
		t.Series[0].Y = append(t.Series[0].Y, rate(heapSec))
		t.Series[1].Y = append(t.Series[1].Y, rate(mappedSec))
		t.Series[2].Y = append(t.Series[2].Y, speedup)
		t.Series[3].Y = append(t.Series[3].Y, heapRSS)
		t.Series[4].Y = append(t.Series[4].Y, mappedRSS)
	}
	return t, nil
}

// rescacheRequests is how many identical requests each measurement
// fires; past the first miss they are all cache hits when the cache
// is on.
const rescacheRequests = 64

func expRescache(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "rescache", Title: "tqserve repeated-query throughput: result cache off vs on (NYT)",
		XLabel: "result cache", YLabel: "requests/sec",
		Series: []bench.Series{
			{Method: "servicevalues"},
			{Method: "hit rate % (n)"},
		},
	}
	users := ctx.Users("nyt", datagen.NYT1Day)
	idx, err := trajcover.NewLiveShardedIndex(users.All, trajcover.LiveShardOptions{
		Shards: 2,
		Index:  trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
		Policy: trajcover.LivePolicy{Manual: true},
	})
	if err != nil {
		return nil, err
	}
	routes := ctx.Routes("ny", 128, 32)
	fjs := make([]server.FacilityJSON, len(routes))
	for i, f := range routes {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		fjs[i] = server.FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	body := mustJSON(server.QueryRequest{Facilities: fjs, Psi: ctx.Cfg.Psi, Workers: 1, TimeoutMS: 60_000})

	for _, cacheBytes := range []int64{0, 64 << 20} {
		srv := server.New(idx, server.Config{
			Workers:          2,
			QueueDepth:       2 * rescacheRequests,
			DefaultTimeout:   time.Minute,
			MaxTimeout:       time.Minute,
			ResultCacheBytes: cacheBytes,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String()
		client := &http.Client{Timeout: 2 * time.Minute}

		// Warm once so the cached measurement times steady-state hits,
		// not the first miss.
		if err := hammer(client, url+server.PathServiceValues, body, 1, 1); err != nil {
			hs.Close()
			srv.Close()
			return nil, err
		}
		var qerr error
		sec := ctx.Time(func() {
			if err := hammer(client, url+server.PathServiceValues, body, rescacheRequests, 1); err != nil {
				qerr = err
			}
		})
		hitRate := 0.0
		if rc := srv.Stats().ResultCache; rc != nil && rc.Hits+rc.Misses > 0 {
			hitRate = 100 * float64(rc.Hits) / float64(rc.Hits+rc.Misses)
		}
		hs.Close()
		srv.Close()
		if qerr != nil {
			return nil, qerr
		}
		rate := 0.0
		if sec > 0 {
			rate = float64(rescacheRequests) / sec
		}
		tick := "off"
		if cacheBytes > 0 {
			tick = "on"
		}
		t.XTicks = append(t.XTicks, tick)
		t.Series[0].Y = append(t.Series[0].Y, rate)
		t.Series[1].Y = append(t.Series[1].Y, hitRate)
	}
	return t, nil
}
