package main

// The `wal` experiment: append throughput and replay speed of the
// durability log under each sync policy. Appends go through the real
// wal.Log (group commit included — the measurement loop is one writer,
// so `always` pays one fsync per record, the worst case; `interval`
// amortizes; `none` is the OS-cache ceiling). Replay is the cold-boot
// cost: records/sec through wal.Replay over everything the append runs
// accumulated. It lives here rather than in internal/bench with the
// other extras because it measures infrastructure (internal/wal), not
// a query method from the paper.

import (
	"os"
	"time"

	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/wal"
)

func expWAL(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "wal", Title: "WAL append throughput and replay speed vs sync policy (NYT)",
		XLabel: "sync policy", YLabel: "records/sec",
		Series: []bench.Series{{Method: "append"}, {Method: "replay"}},
	}
	users := ctx.Users("nyt", datagen.NYT1Day).All
	recs := make([]wal.Record, len(users))
	for i, u := range users {
		recs[i] = wal.Record{Op: wal.OpInsert, Trajectory: u, ID: u.ID}
	}
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone} {
		dir, err := os.MkdirTemp("", "tqbench-wal-*")
		if err != nil {
			return nil, err
		}
		log, err := wal.Open(dir, wal.Options{Sync: pol, SyncEvery: time.Millisecond})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		var aerr error
		appendSec := ctx.Time(func() {
			var lsn uint64
			for _, rec := range recs {
				if lsn, aerr = log.Append(rec); aerr != nil {
					return
				}
			}
			aerr = log.WaitDurable(lsn)
		})
		cerr := log.Close()
		if aerr == nil {
			aerr = cerr
		}
		// Replay everything the repeated append runs accumulated; rate is
		// per record actually replayed, so repeats don't skew it.
		replayed := 0
		replaySec := ctx.Time(func() {
			n, _, rerr := wal.Replay(dir, func(wal.Record) error { return nil })
			if rerr != nil {
				aerr = rerr
			}
			replayed = n
		})
		os.RemoveAll(dir)
		if aerr != nil {
			return nil, aerr
		}
		rate := func(n int, sec float64) float64 {
			if sec <= 0 {
				return 0
			}
			return float64(n) / sec
		}
		t.XTicks = append(t.XTicks, pol.String())
		t.Series[0].Y = append(t.Series[0].Y, rate(len(recs), appendSec))
		t.Series[1].Y = append(t.Series[1].Y, rate(replayed, replaySec))
	}
	return t, nil
}
