package main

// The `tenants` experiment: what per-tenant admission control buys the
// quiet tenant. A multi-tenant front end hosts two tenants over the
// same NYT corpus; the noisy tenant floods /v1/insert from an
// increasing number of client goroutines while the quiet tenant runs a
// fixed batch of top-k queries. The noisy tenant's writes_per_sec
// override pins its token bucket, so the "noisy accepted" series stays
// flat at the configured rate no matter how many clients it adds — its
// extra offered load is turned into 429s at admission instead of into
// index work — and the quiet tenant's query rate holds. Lives here
// rather than in internal/bench because internal/server and the tenant
// registry front the public package.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/server"
	"github.com/trajcover/trajcover/internal/tenant"
)

const (
	// tenantsRequests is the quiet tenant's measured query batch per
	// series point.
	tenantsRequests = 16
	// tenantsWriteRate is the noisy tenant's writes_per_sec override —
	// the ceiling its accepted series must hug.
	tenantsWriteRate = 25.0
)

func expTenants(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "tenants", Title: "per-tenant admission control: noisy tenant pinned to its write quota, quiet tenant unharmed (NYT)",
		XLabel: "noisy clients", YLabel: "requests/sec",
		Series: []bench.Series{
			{Method: "quiet queries"},
			{Method: "noisy writes accepted"},
			{Method: "noisy writes offered"},
		},
	}
	users := ctx.Users("nyt", datagen.NYT1Day)
	routes := ctx.Routes("ny", 128, 32)
	fjs := make([]server.FacilityJSON, len(routes))
	for i, f := range routes {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		fjs[i] = server.FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	queryBody := mustJSON(server.QueryRequest{Facilities: fjs, K: 8, Psi: ctx.Cfg.Psi, Workers: 1, TimeoutMS: 60_000})

	for _, noisyClients := range []int{1, 4, 8} {
		quiet, accepted, offered, err := tenantRatesUnder(ctx, users.All, queryBody, noisyClients)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(noisyClients))
		t.Series[0].Y = append(t.Series[0].Y, quiet)
		t.Series[1].Y = append(t.Series[1].Y, accepted)
		t.Series[2].Y = append(t.Series[2].Y, offered)
	}
	return t, nil
}

// tenantRatesUnder boots a two-tenant in-memory server with the noisy
// tenant's write bucket pinned to tenantsWriteRate, runs noisyClients
// insert-flooding goroutines against it, and times the quiet tenant's
// query batch. It returns the quiet tenant's achieved queries/sec and
// the noisy tenant's accepted and offered writes/sec over the same
// window.
func tenantRatesUnder(ctx *bench.Context, users []*trajcover.Trajectory, queryBody []byte, noisyClients int) (quiet, accepted, offered float64, err error) {
	reg, err := trajcover.OpenTenantRegistry(trajcover.TenantRegistryOptions{
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
		Policy:      trajcover.LivePolicy{Manual: true},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer reg.Close()
	for _, id := range []string{"quiet", "noisy"} {
		idx, err := trajcover.NewLiveShardedIndex(users, trajcover.LiveShardOptions{
			Shards:      2,
			Partitioner: trajcover.HashPartitioner(),
			Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
			Policy:      trajcover.LivePolicy{Manual: true},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if err := reg.Bind(id, idx); err != nil {
			return 0, 0, 0, err
		}
	}
	srv := server.NewMulti(reg, server.Config{
		Workers:        2,
		QueueDepth:     8,
		DefaultTimeout: time.Minute,
		MaxTimeout:     time.Minute,
	})
	srv.SetOverrides(&tenant.Overrides{Tenants: map[string]tenant.Limits{
		"noisy": {WritesPerSec: tenantsWriteRate},
	}})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}
	defer client.CloseIdleConnections()

	// The noisy flood: fresh-ID inserts as fast as each client can push,
	// a short honor-the-429 backoff when the bucket is dry.
	var (
		stop       atomic.Bool
		nAccepted  atomic.Int64
		nOffered   atomic.Int64
		nextID     atomic.Int64
		floodError atomic.Value
		wg         sync.WaitGroup
	)
	nextID.Store(10_000_000)
	for c := 0; c < noisyClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				body := []byte(fmt.Sprintf(`{"id":%d,"points":[[100,100],[200,200]]}`, nextID.Add(1)))
				code, err := postTenant(client, url+server.PathInsert, "noisy", body)
				if err != nil {
					floodError.Store(err)
					return
				}
				nOffered.Add(1)
				switch code {
				case http.StatusOK:
					nAccepted.Add(1)
				case http.StatusTooManyRequests:
					time.Sleep(5 * time.Millisecond)
				default:
					floodError.Store(fmt.Errorf("tenants: noisy insert returned %d", code))
					return
				}
			}
		}()
	}

	// Let the flood drain the bucket's initial burst (burst == rate, one
	// second of tokens) so the measured window sees the steady-state
	// refill rate, not burst + refill.
	time.Sleep(1500 * time.Millisecond)
	baseAccepted, baseOffered := nAccepted.Load(), nOffered.Load()

	start := time.Now()
	var qerr error
	quietSec := ctx.Time(func() {
		for i := 0; i < tenantsRequests; i++ {
			code, err := postTenant(client, url+server.PathTopK, "quiet", queryBody)
			if err != nil {
				qerr = err
				return
			}
			if code != http.StatusOK {
				qerr = fmt.Errorf("tenants: quiet topk returned %d", code)
				return
			}
		}
	})
	wall := time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	if qerr != nil {
		return 0, 0, 0, qerr
	}
	if ferr, ok := floodError.Load().(error); ok && ferr != nil {
		return 0, 0, 0, ferr
	}
	if quietSec > 0 {
		quiet = tenantsRequests / quietSec
	}
	if wall > 0 {
		accepted = float64(nAccepted.Load()-baseAccepted) / wall
		offered = float64(nOffered.Load()-baseOffered) / wall
	}
	return quiet, accepted, offered, nil
}

// postTenant fires one tenant-tagged POST and reports the status code.
func postTenant(client *http.Client, url, tid string, body []byte) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tid)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if cerr != nil {
		return 0, cerr
	}
	return resp.StatusCode, nil
}
