package main

// The `dist` experiment: what the distributed serving tier costs and
// what the cross-process prune saves. The same NYT corpus is served two
// ways — one tqserve core holding everything, and a scatter-gather
// frontend over n shard-group backends (in-process HTTP, so the deltas
// are protocol cost, not network) — and hammered with the same topk
// requests. The frontend's answers are byte-identical to the single
// process (that's the dist package's property suite); this experiment
// records the throughput tax of the extra hop and the `pruned/query`
// counter, the facilities whose exact RPCs the upper-bound merge never
// had to pay for. It lives here rather than in internal/bench because
// internal/dist fronts the server wire format.

import (
	"fmt"
	"net"
	"net/http"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/dist"
	"github.com/trajcover/trajcover/internal/server"
)

func expDist(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "dist", Title: "distributed frontend: scatter-gather topk vs one process (NYT)",
		XLabel: "shard groups", YLabel: "requests/sec",
		Series: []bench.Series{
			{Method: "single-process"},
			{Method: "frontend"},
			{Method: "pruned/query (n)"},
		},
	}
	users := ctx.Users("nyt", datagen.NYT1Day)
	routes := ctx.Routes("ny", 64, 16)
	fjs := make([]server.FacilityJSON, len(routes))
	for i, f := range routes {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		fjs[i] = server.FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	topkBody := mustJSON(server.QueryRequest{Facilities: fjs, K: 8, Psi: ctx.Cfg.Psi, Workers: 1, TimeoutMS: 60_000})

	newBackend := func(us []*trajcover.Trajectory) (*server.Server, *http.Server, string, error) {
		idx, err := trajcover.NewLiveShardedIndex(us, trajcover.LiveShardOptions{
			Index:  trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
			Policy: trajcover.LivePolicy{Manual: true},
		})
		if err != nil {
			return nil, nil, "", err
		}
		srv := server.New(idx, server.Config{
			Workers:        2,
			QueueDepth:     4 * serveRequests,
			DefaultTimeout: time.Minute,
			MaxTimeout:     time.Minute,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, nil, "", err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return srv, hs, "http://" + ln.Addr().String(), nil
	}

	// The single-process reference: one core, the whole corpus.
	refSrv, refHS, refURL, err := newBackend(users.All)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	var qerr error
	refSec := ctx.Time(func() {
		if err := hammer(client, refURL+server.PathTopK, topkBody, serveRequests, 4); err != nil {
			qerr = err
		}
	})
	refHS.Close()
	refSrv.Close()
	if qerr != nil {
		return nil, qerr
	}

	rate := func(sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return serveRequests / sec
	}
	for _, n := range []int{1, 2, 4} {
		// Partition exactly as the frontend routes writes, so each
		// backend is a true shard-group owner.
		parts := make([][]*trajcover.Trajectory, n)
		for _, u := range users.All {
			g := dist.RouteID(uint32(u.ID), n)
			parts[g] = append(parts[g], u)
		}
		var groups []dist.Group
		var srvs []*server.Server
		var hss []*http.Server
		for g := 0; g < n; g++ {
			srv, hs, url, err := newBackend(parts[g])
			if err != nil {
				return nil, err
			}
			srvs, hss = append(srvs, srv), append(hss, hs)
			groups = append(groups, dist.Group{Members: []string{url}})
		}
		fe, err := dist.NewFrontend(dist.FrontendConfig{
			Groups:         groups,
			DefaultTimeout: time.Minute,
			MaxTimeout:     time.Minute,
			RPCTimeout:     time.Minute,
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		feHS := &http.Server{Handler: fe.Handler()}
		go feHS.Serve(ln)
		feURL := "http://" + ln.Addr().String()

		feSec := ctx.Time(func() {
			if err := hammer(client, feURL+server.PathTopK, topkBody, serveRequests, 4); err != nil {
				qerr = err
			}
		})
		stats := fe.Stats()
		feHS.Close()
		fe.Close()
		for i := range hss {
			hss[i].Close()
			srvs[i].Close()
		}
		client.CloseIdleConnections()
		if qerr != nil {
			return nil, qerr
		}
		prunedPerQuery := 0.0
		if stats.Requests > 0 {
			prunedPerQuery = float64(stats.PrunedFacilities) / float64(stats.Requests)
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		t.Series[0].Y = append(t.Series[0].Y, rate(refSec))
		t.Series[1].Y = append(t.Series[1].Y, rate(feSec))
		t.Series[2].Y = append(t.Series[2].Y, prunedPerQuery)
	}
	return t, nil
}
