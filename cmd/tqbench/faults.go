package main

// The `faults` experiment: the cost of a dying disk at the query layer.
// A WAL-backed live index serves timed single-facility queries while
// writes flow; mid-row the injected filesystem wedges every fsync (the
// index enters degraded read-only mode, writes fail fast with
// ErrDegraded) and is then healed (the backoff probe reopens the WAL
// and recovers without a restart). The series report query p50/p99 per
// phase — the claim under test is that a wedged disk must not move
// query latency, because reads only ever load an epoch pointer — plus
// the fraction of writes acknowledged, which collapses to ~0 while
// degraded and returns to 1 after recovery. It lives here rather than
// in internal/bench because it exercises the public degraded-mode API.

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/faultfs"
)

// faultQueries is the number of timed queries per phase.
const faultQueries = 150

func expFaults(ctx *bench.Context) (*bench.Table, error) {
	t := &bench.Table{
		ID: "faults", Title: "query latency through a WAL wedge and auto-recovery (NYT)",
		XLabel: "phase", YLabel: "seconds per query (write_ok: fraction of writes acked)",
		Series: []bench.Series{{Method: "p50"}, {Method: "p99"}, {Method: "write_ok"}},
	}
	users := ctx.Users("nyt", datagen.NYT1Day)
	routes := ctx.Routes("ny", 64, 16)
	baseN := users.Len() * 1 / 2
	base, feed := users.All[:baseN], users.All[baseN:]

	dir, err := os.MkdirTemp("", "tqbench-faults-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	inj := faultfs.NewInjector(nil, ctx.Cfg.Seed)
	x, err := trajcover.OpenLiveShardedIndex(trajcover.WALOptions{
		Dir: dir, Sync: trajcover.WALSyncAlways, SegmentBytes: 1 << 20,
		FS: inj, ProbeMin: 5 * time.Millisecond, ProbeMax: 100 * time.Millisecond,
	}, trajcover.LivePolicy{MaxDelta: 512}, func() (*trajcover.LiveShardedIndex, error) {
		return trajcover.NewLiveShardedIndex(base, trajcover.LiveShardOptions{
			Shards: 2,
			Index:  trajcover.IndexOptions{Ordering: trajcover.ZOrdering},
			Policy: trajcover.LivePolicy{MaxDelta: 512},
		})
	})
	if err != nil {
		return nil, err
	}
	defer x.Close()

	q := trajcover.Query{Scenario: trajcover.Binary, Psi: ctx.Cfg.Psi}
	// phase interleaves one write attempt per timed query, tolerating
	// only the degraded-mode rejections the experiment is about.
	phase := func() (p50, p99, writeOK float64, err error) {
		lat := make([]float64, 0, faultQueries)
		writes, acked := 0, 0
		for i := 0; i < faultQueries; i++ {
			if len(feed) > 0 {
				u := feed[0]
				writes++
				switch werr := x.Insert(u); {
				case werr == nil:
					acked++
					feed = feed[1:]
				case trajcover.IsDegraded(werr):
					// Rejected unacked; retry the same user next round.
				case errors.Is(werr, trajcover.ErrDuplicateID):
					// The wedging write: applied-but-unacked when the disk
					// died, made durable by the recovery checkpoint.
					acked++
					feed = feed[1:]
				default:
					return 0, 0, 0, werr
				}
			}
			f := routes[i%len(routes)]
			start := time.Now()
			if _, qerr := x.ServiceValues([]*trajcover.Facility{f}, q, 1); qerr != nil {
				return 0, 0, 0, qerr
			}
			lat = append(lat, time.Since(start).Seconds())
		}
		sort.Float64s(lat)
		ok := 0.0
		if writes > 0 {
			ok = float64(acked) / float64(writes)
		}
		return pctile(lat, 0.50), pctile(lat, 0.99), ok, nil
	}

	addRow := func(name string, setup func() error) error {
		if setup != nil {
			if err := setup(); err != nil {
				return err
			}
		}
		p50, p99, ok, err := phase()
		if err != nil {
			return fmt.Errorf("faults phase %s: %w", name, err)
		}
		t.XTicks = append(t.XTicks, name)
		t.Series[0].Y = append(t.Series[0].Y, p50)
		t.Series[1].Y = append(t.Series[1].Y, p99)
		t.Series[2].Y = append(t.Series[2].Y, ok)
		return nil
	}

	if err := addRow("healthy", nil); err != nil {
		return nil, err
	}
	// Wedge every fsync persistently: the first write of the phase
	// degrades the index and the probe's recovery attempts keep failing,
	// so the whole row is measured inside the degraded window.
	if err := addRow("degraded", func() error {
		inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Times: 1 << 30})
		return nil
	}); err != nil {
		return nil, err
	}
	// Heal the disk and let the backoff probe recover — no restart.
	if err := addRow("recovered", func() error {
		inj.Heal()
		deadline := time.Now().Add(30 * time.Second)
		for x.Degraded() {
			if time.Now().After(deadline) {
				return fmt.Errorf("probe did not recover: %+v", x.Health())
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// pctile returns the q-quantile of sorted samples.
func pctile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
