package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/trajcover/trajcover/internal/bench"
)

// writeRunDoc writes a minimal BENCH_*.json document for runDiff.
func writeRunDoc(t *testing.T, dir, name string, rows []bench.Row) string {
	t.Helper()
	doc := bench.RunDoc{Rows: rows}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// row builds one gateable/informational measurement row.
func row(exp, x, method, yLabel string, y float64) bench.Row {
	return bench.Row{Experiment: exp, X: x, Method: method, YLabel: yLabel, Y: y}
}

// TestRunDiffExitCodes pins the -diff exit-code contract that CI
// depends on: 0 for clean runs AND for worsened informational "(n)"
// series (they print but never gate), 1 only when a genuine
// timing/throughput series regresses beyond the threshold, 2 for
// usage and parse errors.
func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := []bench.Row{
		row("churn", "1000", "insert", "seconds", 1.0),
		row("churn", "1000", "swaps (n)", "seconds", 4),
		row("restore", "1000", "frozen(TQSNAP03)", "restores/sec", 5.0),
		// Sub-millisecond baseline: below the gate floor, never fails.
		row("micro", "10", "lookup", "seconds", 1e-5),
	}
	old := writeRunDoc(t, dir, "old.json", base)

	clone := func(mutate func(rows []bench.Row)) []bench.Row {
		rows := append([]bench.Row(nil), base...)
		mutate(rows)
		return rows
	}

	badPath := filepath.Join(dir, "malformed.json")
	if err := os.WriteFile(badPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"usage: one arg", []string{old}, 2},
		{"usage: missing file", []string{old, filepath.Join(dir, "absent.json")}, 2},
		{"parse error", []string{old, badPath}, 2},
		{"identical runs are clean", []string{old, writeRunDoc(t, dir, "same.json", base)}, 0},
		{"informational (n) worsening does not gate", []string{old, writeRunDoc(t, dir, "info.json", clone(func(r []bench.Row) {
			r[1].Y = 40 // 10x more swaps: printed, never a regression
		}))}, 0},
		{"below-floor timing swing does not gate", []string{old, writeRunDoc(t, dir, "floor.json", clone(func(r []bench.Row) {
			r[3].Y = 1e-4 // 10x slower but sub-millisecond baseline
		}))}, 0},
		{"timing regression gates", []string{old, writeRunDoc(t, dir, "slow.json", clone(func(r []bench.Row) {
			r[0].Y = 2.0 // 2x slower insert
		}))}, 1},
		{"throughput regression gates", []string{old, writeRunDoc(t, dir, "tput.json", clone(func(r []bench.Row) {
			r[2].Y = 2.0 // restores/sec drops 60%
		}))}, 1},
		{"improvement is clean", []string{old, writeRunDoc(t, dir, "fast.json", clone(func(r []bench.Row) {
			r[0].Y = 0.5
			r[2].Y = 10.0
		}))}, 0},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := runDiff(tc.args, 0.25); got != tc.want {
				t.Fatalf("runDiff(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
