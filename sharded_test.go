package trajcover

import (
	"math"
	"sync"
	"testing"
)

// TestShardedEquivalenceProperty is the PR's acceptance property: for
// random datasets, the sharded index returns byte-identical answers to
// the single-tree index across 1/2/4/8 shards and both partitioners.
// Binary service values are integral, so float64 sums are exact and ==
// is the right comparison; run under -race this also exercises the
// concurrent scatter-gather merge.
func TestShardedEquivalenceProperty(t *testing.T) {
	city := NewYorkCity()
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	for _, seed := range []int64{3, 17, 99} {
		users := TaxiTrips(city, 1500+500*int(seed%3), seed)
		routes := BusRoutes(city, 48, 12, seed+1)
		single, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
		if err != nil {
			t.Fatal(err)
		}
		wantTop, err := single.TopK(routes, 10, q)
		if err != nil {
			t.Fatal(err)
		}
		wantSV, err := single.ServiceValues(routes, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range []Partitioner{HashPartitioner(), GridPartitioner()} {
			for _, shards := range []int{1, 2, 4, 8} {
				idx, err := NewShardedIndex(users, ShardOptions{
					Shards:      shards,
					Partitioner: part,
					Index:       IndexOptions{Ordering: ZOrdering},
				})
				if err != nil {
					t.Fatal(err)
				}
				if idx.NumShards() != shards || idx.Len() != len(users) {
					t.Fatalf("seed %d %s/%d: %d shards over %d trajectories, want %d over %d",
						seed, part.Kind(), shards, idx.NumShards(), idx.Len(), shards, len(users))
				}
				gotSV, err := idx.ServiceValues(routes, q, 2)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantSV {
					if gotSV[i] != wantSV[i] {
						t.Fatalf("seed %d %s/%d: facility %d service %v, single-tree %v",
							seed, part.Kind(), shards, routes[i].ID, gotSV[i], wantSV[i])
					}
				}
				for name, topk := range map[string]func() ([]Ranked, error){
					"TopK":         func() ([]Ranked, error) { return idx.TopK(routes, 10, q) },
					"TopKParallel": func() ([]Ranked, error) { return idx.TopKParallel(routes, 10, q, 4) },
				} {
					got, err := topk()
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(wantTop) {
						t.Fatalf("seed %d %s/%d %s: %d results, want %d",
							seed, part.Kind(), shards, name, len(got), len(wantTop))
					}
					for i := range wantTop {
						if got[i].Facility.ID != wantTop[i].Facility.ID ||
							got[i].Service != wantTop[i].Service {
							t.Fatalf("seed %d %s/%d %s: rank %d = (%d, %v), single-tree (%d, %v)",
								seed, part.Kind(), shards, name, i,
								got[i].Facility.ID, got[i].Service,
								wantTop[i].Facility.ID, wantTop[i].Service)
						}
					}
				}
			}
		}
	}
}

// TestShardedFractionalScenariosStayClose checks the documented float
// caveat: fractional scenarios (PointCount/Length) agree with the
// single tree up to summation order, not bit-exactly.
func TestShardedFractionalScenariosStayClose(t *testing.T) {
	city := NewYorkCity()
	users := Checkins(city, 1200, 4, 5)
	routes := BusRoutes(city, 24, 10, 6)
	opts := IndexOptions{Variant: FullTrajectory, Ordering: ZOrdering}
	single, err := NewIndex(users, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewShardedIndex(users, ShardOptions{Shards: 4, Index: opts})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scenario{PointCount, Length} {
		q := Query{Scenario: sc, Psi: DefaultPsi}
		want, err := single.ServiceValues(routes, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.ServiceValues(routes, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+want[i]) {
				t.Fatalf("scenario %v facility %d: %v, want %v", sc, routes[i].ID, got[i], want[i])
			}
		}
	}
}

// TestShardedIndexConcurrentReaders checks a built ShardedIndex is safe
// for concurrent readers, like the single-tree Index (-race verifies).
func TestShardedIndexConcurrentReaders(t *testing.T) {
	city := NewYorkCity()
	users := TaxiTrips(city, 2000, 8)
	routes := BusRoutes(city, 32, 10, 9)
	idx, err := NewShardedIndex(users, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	want, err := idx.TopK(routes, 6, q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got, err := idx.TopKParallel(routes, 6, q, 2)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range want {
					if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
						t.Errorf("worker %d: rank %d drifted", w, i)
						return
					}
				}
				if _, err := idx.ServiceValue(routes[(w+rep)%len(routes)], q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
