package trajcover

// Streaming service values: every index flavor gains a
// ServiceValuesStreamCtx variant that yields per-facility results
// chunk by chunk instead of materializing the whole batch. Each
// chunk's values are computed by the same batch core as
// ServiceValuesCtx, and a facility's value does not depend on which
// other facilities share its batch — so streamed values are
// bit-identical to the batch answer over the same facility list. The
// live variants capture their epoch set once before the first chunk:
// one stream answers from one write-consistent cut even while writes
// land concurrently.

import "context"

// StreamVisitor receives one chunk of streamed service values:
// vals[i] is the service value of facilities[start+i]. Chunks arrive
// in facility order. Returning a non-nil error aborts the stream and
// surfaces that error from ServiceValuesStreamCtx.
type StreamVisitor func(start int, vals []float64) error

// ServiceValuesStreamCtx streams SO(U, f) for every facility in chunks
// of the given size (<= 0 uses a default of a few hundred), calling
// yield once per chunk in facility order. Values are bit-identical to
// ServiceValuesCtx over the same facilities. A yield error or a done
// context aborts the stream early.
func (x *Index) ServiceValuesStreamCtx(ctx context.Context, facilities []*Facility, q Query, workers, chunk int, yield StreamVisitor) error {
	_, err := x.engine.ServiceValuesStreamCtx(ctx, facilities, q.params(), workers, chunk, yield)
	return err
}

// ServiceValuesStreamCtx streams service values over the heap shards;
// see Index.ServiceValuesStreamCtx.
func (x *ShardedIndex) ServiceValuesStreamCtx(ctx context.Context, facilities []*Facility, q Query, workers, chunk int, yield StreamVisitor) error {
	_, err := x.s.ServiceValuesStreamCtx(ctx, facilities, q.params(), workers, chunk, yield)
	return err
}

// ServiceValuesStreamCtx streams service values over the frozen
// columns; see Index.ServiceValuesStreamCtx.
func (x *FrozenIndex) ServiceValuesStreamCtx(ctx context.Context, facilities []*Facility, q Query, workers, chunk int, yield StreamVisitor) error {
	_, err := x.engine.ServiceValuesStreamCtx(ctx, facilities, q.params(), workers, chunk, yield)
	return err
}

// ServiceValuesStreamCtx streams service values over the frozen
// shards; see Index.ServiceValuesStreamCtx.
func (x *FrozenShardedIndex) ServiceValuesStreamCtx(ctx context.Context, facilities []*Facility, q Query, workers, chunk int, yield StreamVisitor) error {
	_, err := x.s.ServiceValuesStreamCtx(ctx, facilities, q.params(), workers, chunk, yield)
	return err
}

// ServiceValuesStreamCtx streams service values over the live index.
// The epoch set is captured once before the first chunk, so the whole
// stream answers from one write-consistent cut; see
// Index.ServiceValuesStreamCtx for the chunking contract.
func (x *LiveIndex) ServiceValuesStreamCtx(ctx context.Context, facilities []*Facility, q Query, workers, chunk int, yield StreamVisitor) error {
	_, err := x.s.ServiceValuesStreamCtx(ctx, facilities, q.params(), workers, chunk, yield)
	return err
}

// ServiceValuesStreamCtx streams service values over the live shards;
// see LiveIndex.ServiceValuesStreamCtx.
func (x *LiveShardedIndex) ServiceValuesStreamCtx(ctx context.Context, facilities []*Facility, q Query, workers, chunk int, yield StreamVisitor) error {
	_, err := x.s.ServiceValuesStreamCtx(ctx, facilities, q.params(), workers, chunk, yield)
	return err
}
