//go:build !race

package trajcover

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
