package trajcover

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rewriteShardedHeaderCRC recomputes the TQSHRD01 header checksum over
// data[:headerEnd] in place — used to forge a snapshot whose partitioner
// kind this build does not know without tripping the CRC.
func rewriteShardedHeaderCRC(t *testing.T, data []byte, headerEnd int) []byte {
	t.Helper()
	if headerEnd+4 > len(data) {
		t.Fatal("stream too short for header CRC")
	}
	binary.LittleEndian.PutUint32(data[headerEnd:], crc32.ChecksumIEEE(data[:headerEnd]))
	return data
}

// liveWorkload returns a serving corpus, an insert feed, and routes.
func liveWorkload(t *testing.T) (base, feed []*Trajectory, routes []*Facility) {
	t.Helper()
	city := NewYorkCity()
	users := TaxiTrips(city, 3000, 11)
	routes = BusRoutes(city, 24, 12, 12)
	return users[:2000], users[2000:], routes
}

// TestLiveIndexMatchesIndex: a LiveIndex after churn answers exactly
// like a mutable Index that applied the same operations (Binary, so
// values are integral and comparisons exact).
func TestLiveIndexMatchesIndex(t *testing.T) {
	base, feed, routes := liveWorkload(t)
	q := Query{Scenario: Binary, Psi: DefaultPsi}

	lv, err := NewLiveIndex(base, LiveIndexOptions{
		Index:  IndexOptions{Ordering: ZOrdering},
		Policy: LivePolicy{Manual: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewIndex(base, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range feed[:500] {
		if err := lv.Insert(u); err != nil {
			t.Fatal(err)
		}
		if err := ref.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range base[:300] {
		if ok, err := lv.Delete(u.ID); err != nil || !ok {
			t.Fatalf("live Delete(%d) = %v, %v", u.ID, ok, err)
		}
		if !ref.Delete(u) {
			t.Fatalf("ref Delete(%d) failed", u.ID)
		}
	}
	if lv.Len() != ref.Len() {
		t.Fatalf("Len = %d, ref = %d", lv.Len(), ref.Len())
	}

	compare := func(stage string) {
		wantVals, err := ref.ServiceValues(routes, q, 2)
		if err != nil {
			t.Fatal(err)
		}
		gotVals, err := lv.ServiceValues(routes, q, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantVals {
			if gotVals[i] != wantVals[i] {
				t.Fatalf("%s: ServiceValues[%d] = %v, ref = %v", stage, i, gotVals[i], wantVals[i])
			}
		}
		want, err := ref.TopK(routes, 8, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lv.TopK(routes, 8, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
				t.Fatalf("%s: TopK[%d] = (%d, %v), ref = (%d, %v)", stage, i,
					got[i].Facility.ID, got[i].Service, want[i].Facility.ID, want[i].Service)
			}
		}
		gotPar, err := lv.TopKParallel(routes, 8, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if gotPar[i] != got[i] {
				t.Fatalf("%s: TopKParallel[%d] differs from TopK", stage, i)
			}
		}
	}
	compare("overlay")
	st := lv.Stats()
	if st.DeltaLen != 500 || st.Tombstones != 300 {
		t.Fatalf("Stats = %+v, want delta 500 tombstones 300", st)
	}
	if err := lv.Compact(); err != nil {
		t.Fatal(err)
	}
	st = lv.Stats()
	if st.DeltaLen != 0 || st.Tombstones != 0 || st.Compactions != 1 {
		t.Fatalf("post-compact Stats = %+v", st)
	}
	compare("compacted")
}

// TestIndexLiveConversion: Index.Live and ShardedIndex.Live preserve
// answers and make the result mutable.
func TestIndexLiveConversion(t *testing.T) {
	base, feed, routes := liveWorkload(t)
	q := Query{Scenario: Binary, Psi: DefaultPsi}

	idx, err := NewIndex(base, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	lv, err := idx.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.TopK(routes, 6, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lv.TopK(routes, 6, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
			t.Fatalf("converted TopK[%d] differs", i)
		}
	}
	if err := lv.Insert(feed[0]); err != nil {
		t.Fatal(err)
	}
	if lv.Len() != idx.Len()+1 {
		t.Fatalf("Len after insert = %d", lv.Len())
	}

	sidx, err := NewShardedIndex(base, ShardOptions{Shards: 3, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	slv, err := sidx.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if slv.NumShards() != 3 {
		t.Fatalf("NumShards = %d", slv.NumShards())
	}
	if err := slv.Insert(feed[1]); err != nil {
		t.Fatal(err)
	}
	if ok, err := slv.Delete(base[0].ID); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}

	fidx, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	flv, err := fidx.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := flv.Insert(feed[2]); err != nil {
		t.Fatal(err)
	}
	if flv.Len() != len(base)+1 {
		t.Fatalf("frozen-converted Len = %d", flv.Len())
	}
}

// TestRestoredSnapshotBecomesMutable: the restored-snapshot types route
// into the live path — including the previously write-rejecting
// unknown-partitioner case, which now yields a typed ErrImmutable from
// Insert while Delete keeps working.
func TestRestoredSnapshotBecomesMutable(t *testing.T) {
	base, feed, routes := liveWorkload(t)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	sidx, err := NewShardedIndex(base, ShardOptions{Shards: 2, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sidx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadShardedSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lv, err := restored.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.Insert(feed[0]); err != nil {
		t.Fatal(err)
	}
	if ok, err := lv.Delete(base[1].ID); err != nil || !ok {
		t.Fatalf("Delete on restored live index = %v, %v", ok, err)
	}
	want, err := sidx.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lv.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	add, err := NewIndex([]*Trajectory{feed[0]}, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := add.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	del, err := NewIndex([]*Trajectory{base[1]}, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	rv, err := del.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want+dv-rv {
		t.Fatalf("restored live ServiceValue = %v, want %v", got, want+dv-rv)
	}

	// A frozen sharded snapshot converts too.
	ffz, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ffz.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	frestored, err := ReadFrozenShardedSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	flv, err := frestored.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := flv.Insert(feed[1]); err != nil {
		t.Fatal(err)
	}
}

// TestErrImmutableTyped: restored indexes whose partitioner kind this
// build does not know report ErrImmutable (testable with errors.Is and
// IsImmutable) from Insert — on both the classic ShardedIndex and its
// live conversion — while Delete on the live form still works.
func TestErrImmutableTyped(t *testing.T) {
	base, feed, _ := liveWorkload(t)
	sidx, err := NewShardedIndex(base[:500], ShardOptions{Shards: 2, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sidx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Forge an unknown partitioner kind in the header ("hash" -> "hasq")
	// and fix up the header CRC so only the kind differs.
	data := buf.Bytes()
	i := bytes.Index(data, []byte("hash"))
	if i < 0 {
		t.Fatal("kind not found in stream")
	}
	data[i+3] = 'q'
	// Header CRC covers magic..kind; recompute it in place.
	fixed := rewriteShardedHeaderCRC(t, data, i+4)
	restored, err := ReadShardedSnapshot(bytes.NewReader(fixed))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Insert(feed[0]); !errors.Is(err, ErrImmutable) || !IsImmutable(err) {
		t.Fatalf("restored Insert = %v, want ErrImmutable", err)
	}
	lv, err := restored.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lv.Insert(feed[0]); !errors.Is(err, ErrImmutable) {
		t.Fatalf("live Insert = %v, want ErrImmutable", err)
	}
	if ok, err := lv.Delete(base[0].ID); err != nil || !ok {
		t.Fatalf("live Delete on unknown-partitioner index = %v, %v", ok, err)
	}
}

// TestLiveSnapshotUnderWrites checkpoints a live index while a writer
// keeps churning: the stream must restore to a consistent index whose
// corpus is some prefix of the write history, and the writer is never
// blocked for the duration of the serialization.
func TestLiveSnapshotUnderWrites(t *testing.T) {
	base, feed, routes := liveWorkload(t)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	lv, err := NewLiveShardedIndex(base, LiveShardOptions{
		Shards: 2,
		Index:  IndexOptions{Ordering: ZOrdering},
		Policy: LivePolicy{MaxDelta: 128, MaxDeltaFraction: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, u := range feed {
			if err := lv.Insert(u); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	var buf bytes.Buffer
	if err := lv.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	restored, err := ReadLiveSnapshot(bytes.NewReader(buf.Bytes()), LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint captured some per-shard prefix of the history.
	if n := restored.Len(); n < len(base) || n > len(base)+len(feed) {
		t.Fatalf("restored Len = %d, want within [%d, %d]", n, len(base), len(base)+len(feed))
	}
	// The restored index serves and stays mutable.
	if _, err := restored.TopK(routes, 4, q); err != nil {
		t.Fatal(err)
	}
	extra := TaxiTrips(NewYorkCity(), len(base)+len(feed)+1, 99)[len(base)+len(feed):]
	if err := restored.Insert(extra[0]); err != nil {
		t.Fatal(err)
	}
	if err := restored.Compact(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveConcurrentPublicAPI exercises the public concurrency
// guarantee end to end: goroutines on every query method while a writer
// inserts and deletes and background compactions swap epochs.
func TestLiveConcurrentPublicAPI(t *testing.T) {
	base, feed, routes := liveWorkload(t)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	lv, err := NewLiveShardedIndex(base, LiveShardOptions{
		Shards: 2,
		Index:  IndexOptions{Ordering: ZOrdering},
		Policy: LivePolicy{MaxDelta: 64, MaxDeltaFraction: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i, u := range feed {
			if err := lv.Insert(u); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if i%3 == 0 {
				lv.Delete(base[i].ID)
			}
			if i%16 == 15 {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 16 || !done.Load(); i++ {
				switch i % 4 {
				case 0:
					if _, err := lv.ServiceValue(routes[i%len(routes)], q); err != nil {
						t.Errorf("ServiceValue: %v", err)
						return
					}
				case 1:
					if _, err := lv.TopK(routes, 4, q); err != nil {
						t.Errorf("TopK: %v", err)
						return
					}
				case 2:
					if _, err := lv.ServiceValues(routes[:6], q, 2); err != nil {
						t.Errorf("ServiceValues: %v", err)
						return
					}
				default:
					if _, err := lv.TopKParallel(routes, 4, q, 2); err != nil {
						t.Errorf("TopKParallel: %v", err)
						return
					}
				}
				// Yield so the hammering readers cannot starve the writer
				// on small core counts.
				time.Sleep(50 * time.Microsecond)
			}
		}(r)
	}
	wg.Wait()
	if err := lv.Err(); err != nil {
		t.Fatalf("background rebuild error: %v", err)
	}
	// Writer applied len(feed) inserts and len(feed)/3 (+1: i=0) deletes.
	wantLen := len(base) + len(feed) - (len(feed)+2)/3
	if lv.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", lv.Len(), wantLen)
	}
}
