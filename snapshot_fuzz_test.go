package trajcover

// Robustness properties of every snapshot format, rebuild and frozen:
//
//   - write → read → write is byte-identical (the stream is a pure
//     function of the index state, so re-snapshotting a restored index
//     reproduces the original bytes);
//   - every truncation and every single-bit flip of a valid stream is
//     rejected with an error — never a panic, never a silently wrong
//     index (all four formats checksum every byte they read).
//
// The corruption sweeps run the full decode for every mutation, so they
// use a small corpus; the fuzz targets below extend the same no-panic
// property to arbitrary adversarial bytes.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trajcover/trajcover/internal/wal"
)

// snapshotFormat is one (writer, reader) pair under test.
type snapshotFormat struct {
	name  string
	write func(w io.Writer) error
	read  func(r io.Reader) error
}

// snapshotFormats builds one small index per layout and returns all five
// formats wired to it.
func snapshotFormats(t testing.TB) []snapshotFormat {
	t.Helper()
	ny := NewYorkCity()
	users := TaxiTrips(ny, 30, 41)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sidx, err := NewShardedIndex(users, ShardOptions{Shards: 2, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	sfz, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	lv := churnedLiveIndex(t, users)
	return []snapshotFormat{
		{"TQSNAP02", idx.WriteSnapshot, func(r io.Reader) error { _, err := ReadSnapshot(r); return err }},
		{"TQSNAP03", fz.WriteSnapshot, func(r io.Reader) error { _, err := ReadFrozenSnapshot(r); return err }},
		{"TQSHRD01", sidx.WriteSnapshot, func(r io.Reader) error { _, err := ReadShardedSnapshot(r); return err }},
		{"TQSHRD02", sfz.WriteSnapshot, func(r io.Reader) error { _, err := ReadFrozenShardedSnapshot(r); return err }},
		{"TQLIVE01", lv.WriteSnapshot, func(r io.Reader) error { _, err := ReadLiveSnapshot(r, LivePolicy{}); return err }},
	}
}

// churnedLiveIndex builds a small live index whose snapshot exercises
// every TQLIVE01 section: a frozen base, pending delta, and tombstones.
func churnedLiveIndex(t testing.TB, users []*Trajectory) *LiveShardedIndex {
	t.Helper()
	lv, err := NewLiveShardedIndex(users[:20], LiveShardOptions{
		Shards: 2, Index: IndexOptions{Ordering: ZOrdering}, Policy: LivePolicy{Manual: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[20:] {
		if err := lv.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range users[:6] {
		if ok, err := lv.Delete(u.ID); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", u.ID, ok, err)
		}
	}
	return lv
}

func snapshotBytes(t testing.TB, f snapshotFormat) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.write(&buf); err != nil {
		t.Fatalf("%s: write: %v", f.name, err)
	}
	return buf.Bytes()
}

func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

// readNoPanic runs the reader and converts any panic into an error the
// test can assert on — the property under test is that corrupt streams
// never panic.
func readNoPanic(f snapshotFormat, data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v", r)
		}
	}()
	return f.read(bytes.NewReader(data))
}

// TestSnapshotRoundTripByteIdentical: restoring a snapshot and
// re-snapshotting the restored index reproduces the original stream
// byte for byte, for all four formats.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 60, 41)

	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sidx, err := NewShardedIndex(users, ShardOptions{Shards: 2, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	sfz, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, first []byte, rewrite func() ([]byte, error)) {
		t.Helper()
		second, err := rewrite()
		if err != nil {
			t.Fatalf("%s: rewrite: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: rewrite differs (%d vs %d bytes)", name, len(first), len(second))
		}
	}

	var b1 bytes.Buffer
	if err := idx.WriteSnapshot(&b1); err != nil {
		t.Fatal(err)
	}
	check("TQSNAP02", b1.Bytes(), func() ([]byte, error) {
		r, err := ReadSnapshot(bytes.NewReader(b1.Bytes()))
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		err = r.WriteSnapshot(&out)
		return out.Bytes(), err
	})

	var b2 bytes.Buffer
	if err := fz.WriteSnapshot(&b2); err != nil {
		t.Fatal(err)
	}
	check("TQSNAP03", b2.Bytes(), func() ([]byte, error) {
		r, err := ReadFrozenSnapshot(bytes.NewReader(b2.Bytes()))
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		err = r.WriteSnapshot(&out)
		return out.Bytes(), err
	})

	var b3 bytes.Buffer
	if err := sidx.WriteSnapshot(&b3); err != nil {
		t.Fatal(err)
	}
	check("TQSHRD01", b3.Bytes(), func() ([]byte, error) {
		r, err := ReadShardedSnapshot(bytes.NewReader(b3.Bytes()))
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		err = r.WriteSnapshot(&out)
		return out.Bytes(), err
	})

	var b4 bytes.Buffer
	if err := sfz.WriteSnapshot(&b4); err != nil {
		t.Fatal(err)
	}
	check("TQSHRD02", b4.Bytes(), func() ([]byte, error) {
		r, err := ReadFrozenShardedSnapshot(bytes.NewReader(b4.Bytes()))
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		err = r.WriteSnapshot(&out)
		return out.Bytes(), err
	})

	lv := churnedLiveIndex(t, users)
	var b5 bytes.Buffer
	if err := lv.WriteSnapshot(&b5); err != nil {
		t.Fatal(err)
	}
	check("TQLIVE01", b5.Bytes(), func() ([]byte, error) {
		r, err := ReadLiveSnapshot(bytes.NewReader(b5.Bytes()), LivePolicy{Manual: true})
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		err = r.WriteSnapshot(&out)
		return out.Bytes(), err
	})

	// The frozen restore must answer like the original frozen index.
	routes := BusRoutes(ny, 8, 6, 2)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	want, err := fz.TopK(routes, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFrozenSnapshot(bytes.NewReader(b2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.TopK(routes, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	compareRanked(t, q.Scenario, want, got)
}

// TestSnapshotTruncation: every proper prefix of a valid stream is
// rejected with an error and never panics.
func TestSnapshotTruncation(t *testing.T) {
	for _, f := range snapshotFormats(t) {
		data := snapshotBytes(t, f)
		// Every length would be O(n²); step through all short prefixes
		// (headers, counts) and sample the long tail densely.
		step := 1
		if len(data) > 2048 {
			step = 7
		}
		for cut := 0; cut < len(data); cut += step {
			if err := readNoPanic(f, data[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d bytes accepted", f.name, cut, len(data))
			}
		}
	}
}

// TestSnapshotBitFlip: flipping any single bit of a valid stream is
// rejected with an error and never panics — every byte of every format
// is covered by a checksum (or is the checksum itself).
func TestSnapshotBitFlip(t *testing.T) {
	for _, f := range snapshotFormats(t) {
		data := snapshotBytes(t, f)
		// Flipping every byte of every stream is O(n²) decode work; cover
		// all of the header/count region and sample the bulk + trailer.
		step := 1
		if len(data) > 2048 {
			step = 11
		}
		for i := 0; i < len(data); i += pick(i < 128 || i >= len(data)-8, 1, step) {
			data[i] ^= 1 << (i % 8)
			err := readNoPanic(f, data)
			data[i] ^= 1 << (i % 8)
			if err == nil {
				t.Fatalf("%s: bit flip at byte %d/%d accepted", f.name, i, len(data))
			}
		}
	}
}

// FuzzReadSnapshot feeds arbitrary bytes to both single-index readers;
// neither may panic.
func FuzzReadSnapshot(f *testing.F) {
	formats := snapshotFormats(f)
	for _, sf := range formats {
		data := snapshotBytes(f, sf)
		f.Add(data)
		if len(data) > 64 {
			f.Add(data[:64])
		}
	}
	f.Add([]byte("TQSNAP03"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadSnapshot(bytes.NewReader(data))
		_, _ = ReadFrozenSnapshot(bytes.NewReader(data))
	})
}

// FuzzReadShardedSnapshot feeds arbitrary bytes to both sharded readers;
// neither may panic.
func FuzzReadShardedSnapshot(f *testing.F) {
	formats := snapshotFormats(f)
	for _, sf := range formats {
		f.Add(snapshotBytes(f, sf))
	}
	f.Add([]byte("TQSHRD02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadShardedSnapshot(bytes.NewReader(data))
		_, _ = ReadFrozenShardedSnapshot(bytes.NewReader(data))
	})
}

// FuzzReadLiveSnapshot feeds arbitrary bytes to the live reader; it may
// never panic.
func FuzzReadLiveSnapshot(f *testing.F) {
	for _, sf := range snapshotFormats(f) {
		f.Add(snapshotBytes(f, sf))
	}
	f.Add([]byte("TQLIVE01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadLiveSnapshot(bytes.NewReader(data), LivePolicy{})
	})
}

// --- WAL segment format -------------------------------------------------
//
// The same robustness contract extends to the durability log, with one
// deliberate relaxation: a WAL segment's FINAL record may be torn by a
// crash mid-append, so a mutation confined to the tail may be *tolerated*
// (replay drops the torn record and reports torn=true) instead of
// rejected. Everything else holds: byte-identical round-trip, no panics,
// and a tolerated replay only ever yields a strict prefix of the
// original records — never a reordered, altered, or invented one.

// walTestRecords is a small deterministic history of inserts and
// deletes covering both record codecs.
func walTestRecords() []wal.Record {
	users := TaxiTrips(NewYorkCity(), 24, 43)
	recs := make([]wal.Record, 0, len(users)+6)
	for _, u := range users {
		recs = append(recs, wal.Record{Op: wal.OpInsert, Trajectory: u, ID: u.ID})
	}
	for _, u := range users[:6] {
		recs = append(recs, wal.Record{Op: wal.OpDelete, ID: u.ID})
	}
	return recs
}

// walSegmentFile appends recs into a fresh one-segment log and returns
// the segment's bytes (Close flushes).
func walSegmentFile(t testing.TB, recs []wal.Record) []byte {
	t.Helper()
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %v", segs)
	}
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", segs[0])))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// replayWALBytes plants data as the only segment of a fresh directory
// and replays it, converting panics into errors.
func replayWALBytes(t testing.TB, data []byte) (recs []wal.Record, torn bool, err error) {
	t.Helper()
	dir := t.TempDir()
	if werr := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); werr != nil {
		t.Fatal(werr)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v", r)
		}
	}()
	_, torn, err = wal.Replay(dir, func(rec wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, torn, err
}

// walRecordsEqual compares two records structurally (points included).
func walRecordsEqual(a, b wal.Record) bool {
	if a.Op != b.Op || a.ID != b.ID {
		return false
	}
	if (a.Trajectory == nil) != (b.Trajectory == nil) {
		return false
	}
	if a.Trajectory == nil {
		return true
	}
	ap, bp := a.Trajectory.Points, b.Trajectory.Points
	if a.Trajectory.ID != b.Trajectory.ID || len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	return true
}

// walIsPrefix reports whether got is a strict-or-full prefix of want.
func walIsPrefix(got, want []wal.Record) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !walRecordsEqual(got[i], want[i]) {
			return false
		}
	}
	return true
}

// TestWALSegmentRoundTripByteIdentical: replaying a segment and
// re-appending the replayed records into a fresh log reproduces the
// original segment byte for byte — the encoding is a pure function of
// the record sequence.
func TestWALSegmentRoundTripByteIdentical(t *testing.T) {
	recs := walTestRecords()
	first := walSegmentFile(t, recs)
	replayed, torn, err := replayWALBytes(t, first)
	if err != nil || torn {
		t.Fatalf("replay of pristine segment: torn=%v err=%v", torn, err)
	}
	if !walIsPrefix(replayed, recs) || len(replayed) != len(recs) {
		t.Fatalf("replay returned %d records, want the original %d", len(replayed), len(recs))
	}
	second := walSegmentFile(t, replayed)
	if !bytes.Equal(first, second) {
		t.Fatalf("segment rewrite differs (%d vs %d bytes)", len(first), len(second))
	}
}

// TestWALSegmentTruncation: every truncation of a segment either fails
// replay with an error (header or mid-log damage) or is tolerated as a
// torn tail replaying a strict prefix. Never a panic, never a non-prefix.
func TestWALSegmentTruncation(t *testing.T) {
	recs := walTestRecords()
	data := walSegmentFile(t, recs)
	step := 1
	if len(data) > 2048 {
		step = 7
	}
	for cut := 0; cut < len(data); cut += step {
		got, torn, err := replayWALBytes(t, data[:cut])
		if err != nil {
			if strings.HasPrefix(err.Error(), "PANIC") {
				t.Fatalf("truncation at %d/%d bytes: %v", cut, len(data), err)
			}
			continue
		}
		if !walIsPrefix(got, recs) {
			t.Fatalf("truncation at %d/%d bytes replayed a non-prefix (%d records)", cut, len(data), len(got))
		}
		// torn=false with a short prefix is legal only when the cut lands
		// exactly on a record boundary — then the file is bytewise
		// indistinguishable from a crash right after a complete append.
		// internal/wal's TestTornTailTruncationTolerated pins that
		// distinction with boundary bookkeeping; here we only require the
		// prefix property and no panic.
		_ = torn
	}
}

// TestWALSegmentBitFlip: every single-bit flip either fails replay or —
// when the damage is confined to the final record, indistinguishable
// from a torn append — replays a strict prefix with torn reported. A
// full-length clean replay of flipped bytes is a checksum hole.
func TestWALSegmentBitFlip(t *testing.T) {
	recs := walTestRecords()
	data := walSegmentFile(t, recs)
	step := 1
	if len(data) > 2048 {
		step = 11
	}
	for i := 0; i < len(data); i += pick(i < 128 || i >= len(data)-8, 1, step) {
		data[i] ^= 1 << (i % 8)
		got, torn, err := replayWALBytes(t, data)
		data[i] ^= 1 << (i % 8)
		if err != nil {
			if strings.HasPrefix(err.Error(), "PANIC") {
				t.Fatalf("bit flip at byte %d/%d: %v", i, len(data), err)
			}
			continue
		}
		if !walIsPrefix(got, recs) {
			t.Fatalf("bit flip at byte %d/%d replayed a non-prefix (%d records)", i, len(data), len(got))
		}
		if len(got) == len(recs) {
			t.Fatalf("bit flip at byte %d/%d accepted as a clean full replay", i, len(data))
		}
		if !torn {
			t.Fatalf("bit flip at byte %d/%d dropped records without reporting torn", i, len(data))
		}
	}
}

// FuzzReplayWALSegment feeds arbitrary bytes as a segment file; replay
// may reject or tolerate them but never panics and never yields a
// record the codec would not re-encode.
func FuzzReplayWALSegment(f *testing.F) {
	data := walSegmentFile(f, walTestRecords())
	f.Add(data)
	if len(data) > 64 {
		f.Add(data[:64])
	}
	f.Add([]byte("TQWAL001"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = replayWALBytes(t, data)
	})
}
