package trajcover_test

import (
	"fmt"
	"log"

	trajcover "github.com/trajcover/trajcover"
)

// Three commuters: two share a corridor served by route 1; the third
// lives near route 2's stops.
func exampleWorkload() ([]*trajcover.Trajectory, []*trajcover.Facility) {
	mustT := func(id trajcover.ID, pts ...trajcover.Point) *trajcover.Trajectory {
		t, err := trajcover.NewTrajectory(id, pts)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	mustF := func(id trajcover.ID, pts ...trajcover.Point) *trajcover.Facility {
		f, err := trajcover.NewFacility(id, pts)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	users := []*trajcover.Trajectory{
		mustT(1, trajcover.Pt(0, 0), trajcover.Pt(100, 0)),
		mustT(2, trajcover.Pt(5, 5), trajcover.Pt(95, 5)),
		mustT(3, trajcover.Pt(0, 100), trajcover.Pt(100, 100)),
	}
	routes := []*trajcover.Facility{
		mustF(1, trajcover.Pt(0, 2), trajcover.Pt(50, 2), trajcover.Pt(100, 2)),
		mustF(2, trajcover.Pt(0, 98), trajcover.Pt(100, 98)),
	}
	return users, routes
}

// ExampleIndex_TopK ranks candidate routes by how many commuters they
// serve end to end (Binary service, ψ = 10).
func ExampleIndex_TopK() {
	users, routes := exampleWorkload()
	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	top, err := idx.TopK(routes, 2, trajcover.Query{Scenario: trajcover.Binary, Psi: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top {
		fmt.Printf("route %d serves %.0f commuters\n", r.Facility.ID, r.Service)
	}
	// Output:
	// route 1 serves 2 commuters
	// route 2 serves 1 commuters
}

// ExampleIndex_MaxCoverage picks the route pair with the best combined
// coverage — both routes together serve all three commuters.
func ExampleIndex_MaxCoverage() {
	users, routes := exampleWorkload()
	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := idx.MaxCoverage(routes, 2,
		trajcover.Query{Scenario: trajcover.Binary, Psi: 10},
		trajcover.CoverageOptions{Algorithm: trajcover.Exact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d users served by %d routes\n", res.UsersServed, len(res.Facilities))
	// Output:
	// 3 users served by 2 routes
}

// ExampleIndex_TopKParallel answers the same kMaxRRST query as TopK with
// concurrent best-first relaxations — identical results, scaled across
// cores (workers <= 0 uses GOMAXPROCS).
func ExampleIndex_TopKParallel() {
	users, routes := exampleWorkload()
	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	top, err := idx.TopKParallel(routes, 2, trajcover.Query{Scenario: trajcover.Binary, Psi: 10}, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top {
		fmt.Printf("route %d serves %.0f commuters\n", r.Facility.ID, r.Service)
	}
	// Output:
	// route 1 serves 2 commuters
	// route 2 serves 1 commuters
}

// Example_shardedIndex partitions commuters across several TQ-trees and
// answers the same query by scatter-gather — the serving shape for
// datasets too large for one tree. Results match the single-tree index.
func Example_shardedIndex() {
	users, routes := exampleWorkload()
	idx, err := trajcover.NewShardedIndex(users, trajcover.ShardOptions{
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d commuters across %d shards\n", idx.Len(), idx.NumShards())
	top, err := idx.TopK(routes, 2, trajcover.Query{Scenario: trajcover.Binary, Psi: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top {
		fmt.Printf("route %d serves %.0f commuters\n", r.Facility.ID, r.Service)
	}
	// Output:
	// 3 commuters across 2 shards
	// route 1 serves 2 commuters
	// route 2 serves 1 commuters
}

// ExampleIndex_ServedUsers lists exactly which commuters a route serves.
func ExampleIndex_ServedUsers() {
	users, routes := exampleWorkload()
	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	served, err := idx.ServedUsers(routes[0], trajcover.Query{Scenario: trajcover.Binary, Psi: 10})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range served {
		fmt.Printf("user %d (service %.0f)\n", s.User, s.Value)
	}
	// Output:
	// user 1 (service 1)
	// user 2 (service 1)
}
