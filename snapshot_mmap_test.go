package trajcover

// Mapped restore must be indistinguishable from the streaming readers:
// bit-identical answers, byte-identical re-snapshots, and the same
// loud-rejection contract for corrupt files — a truncated or flipped
// mapped file errors at open, never SIGBUSes or serves wrong values.

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/trajcover/trajcover/internal/mmap"
)

// writeTempSnapshot materializes a snapshot stream as a file for the
// mapped open paths.
func writeTempSnapshot(t testing.TB, name string, write func(w *os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// queryOracle is the answer surface we compare across restore paths.
type queryOracle interface {
	Len() int
	ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error)
	TopK(facilities []*Facility, k int, q Query) ([]Ranked, error)
}

// assertMappedAnswers requires got to answer bit-identically to want
// across scenarios, for both batch service values and top-k.
func assertMappedAnswers(t *testing.T, name string, want, got queryOracle) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: Len %d, want %d", name, got.Len(), want.Len())
	}
	ny := NewYorkCity()
	routes := BusRoutes(ny, 12, 6, 2)
	for _, sc := range []Scenario{Binary, PointCount, Length} {
		q := Query{Scenario: sc, Psi: DefaultPsi}
		wv, err := want.ServiceValues(routes, q, 2)
		if err != nil {
			t.Fatal(err)
		}
		gv, err := got.ServiceValues(routes, q, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wv {
			if math.Float64bits(wv[i]) != math.Float64bits(gv[i]) {
				t.Fatalf("%s: scenario %v facility %d: value %v, want %v (bit-exact)", name, sc, i, gv[i], wv[i])
			}
		}
		wr, err := want.TopK(routes, 4, q)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := got.TopK(routes, 4, q)
		if err != nil {
			t.Fatal(err)
		}
		compareRanked(t, sc, wr, gr)
	}
}

// TestMappedFrozenMatchesHeap: OpenMappedFrozenSnapshot answers
// bit-identically to ReadFrozenSnapshot of the same TQSNAP03 file, and
// re-snapshotting the mapped restore reproduces the file byte for byte.
func TestMappedFrozenMatchesHeap(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 60, 41)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	path := writeTempSnapshot(t, "frozen.tqsnap", func(w *os.File) error { return fz.WriteSnapshot(w) })

	mapped, err := OpenMappedFrozenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	assertMappedAnswers(t, "TQSNAP03 mapped", fz, mapped)

	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := mapped.WriteSnapshot(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, out.Bytes()) {
		t.Fatalf("mapped re-snapshot differs (%d vs %d bytes)", len(out.Bytes()), len(orig))
	}
}

// TestMappedFrozenShardedMatchesHeap: the sharded container, same
// contract.
func TestMappedFrozenShardedMatchesHeap(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 60, 41)
	sidx, err := NewShardedIndex(users, ShardOptions{Shards: 3, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	sfz, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	path := writeTempSnapshot(t, "frozen.tqshrd", func(w *os.File) error { return sfz.WriteSnapshot(w) })

	mapped, err := OpenMappedFrozenShardedSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.NumShards() != sfz.NumShards() {
		t.Fatalf("NumShards = %d, want %d", mapped.NumShards(), sfz.NumShards())
	}
	assertMappedAnswers(t, "TQSHRD02 mapped", sfz, mapped)

	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := mapped.WriteSnapshot(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, out.Bytes()) {
		t.Fatalf("mapped re-snapshot differs (%d vs %d bytes)", len(out.Bytes()), len(orig))
	}
}

// TestMappedLiveMatchesHeapAndStaysMutable: a mapped live restore
// answers bit-identically to the streaming restore — and remains fully
// writable: inserts, deletes, and compaction (which folds the mapped
// base into a fresh heap base) all work on top of mapped columns.
func TestMappedLiveMatchesHeapAndStaysMutable(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 60, 41)
	lv := churnedLiveIndex(t, users)
	path := writeTempSnapshot(t, "live.tqlive", func(w *os.File) error { return lv.WriteSnapshot(w) })

	heap, err := func() (*LiveShardedIndex, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return ReadLiveSnapshot(bytes.NewReader(data), LivePolicy{Manual: true})
	}()
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMappedLiveSnapshot(path, LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	assertMappedAnswers(t, "TQLIVE01 mapped", heap, mapped)

	// Mutate both restores identically; answers must stay identical.
	extra := TaxiTrips(ny, 80, 97)[60:]
	for _, u := range extra {
		if err := heap.Insert(u); err != nil {
			t.Fatal(err)
		}
		if err := mapped.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range users[10:14] {
		if ok, err := heap.Delete(u.ID); err != nil || !ok {
			t.Fatalf("heap Delete(%d) = %v, %v", u.ID, ok, err)
		}
		if ok, err := mapped.Delete(u.ID); err != nil || !ok {
			t.Fatalf("mapped Delete(%d) = %v, %v", u.ID, ok, err)
		}
	}
	assertMappedAnswers(t, "TQLIVE01 mapped after churn", heap, mapped)

	// Compaction rebuilds heap bases from mapped trajectories; answers
	// must survive the fold.
	if err := mapped.Compact(); err != nil {
		t.Fatal(err)
	}
	assertMappedAnswers(t, "TQLIVE01 mapped after compact", heap, mapped)
}

// mappedOpenFormats wires each mapped open path to a valid file image.
func mappedOpenFormats(t testing.TB) []struct {
	name string
	data []byte
	open func(path string) error
} {
	t.Helper()
	ny := NewYorkCity()
	users := TaxiTrips(ny, 30, 41)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sidx, err := NewShardedIndex(users, ShardOptions{Shards: 2, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	sfz, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	lv := churnedLiveIndex(t, users)
	var b1, b2, b3 bytes.Buffer
	if err := fz.WriteSnapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := sfz.WriteSnapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if err := lv.WriteSnapshot(&b3); err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		data []byte
		open func(path string) error
	}{
		{"TQSNAP03", b1.Bytes(), func(p string) error { _, err := OpenMappedFrozenSnapshot(p); return err }},
		{"TQSHRD02", b2.Bytes(), func(p string) error { _, err := OpenMappedFrozenShardedSnapshot(p); return err }},
		{"TQLIVE01", b3.Bytes(), func(p string) error { _, err := OpenMappedLiveSnapshot(p, LivePolicy{}); return err }},
	}
}

// openMappedNoPanic runs a mapped open and converts panics to errors;
// the property is that corrupt mapped files fail loudly at open.
func openMappedNoPanic(open func(string) error, path string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("PANIC: %v", r)
		}
	}()
	return open(path)
}

// TestMappedSnapshotTruncation: every proper prefix of a valid snapshot
// file is rejected by the mapped open with an error — never a panic and
// never an out-of-bounds fault (every cursor read is length-checked).
func TestMappedSnapshotTruncation(t *testing.T) {
	dir := t.TempDir()
	for _, f := range mappedOpenFormats(t) {
		path := filepath.Join(dir, f.name)
		step := 1
		if len(f.data) > 2048 {
			step = 7
		}
		for cut := 0; cut < len(f.data); cut += step {
			if err := os.WriteFile(path, f.data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := openMappedNoPanic(f.open, path); err == nil {
				t.Fatalf("%s: mapped open of %d/%d-byte truncation accepted", f.name, cut, len(f.data))
			}
		}
	}
}

// TestMappedSnapshotBitFlip: flipping any single bit of a valid
// snapshot file is rejected by the mapped open — the CRCs are verified
// over the raw mapping before any column is trusted.
func TestMappedSnapshotBitFlip(t *testing.T) {
	dir := t.TempDir()
	for _, f := range mappedOpenFormats(t) {
		path := filepath.Join(dir, f.name)
		data := f.data
		step := 1
		if len(data) > 2048 {
			step = 11
		}
		for i := 0; i < len(data); i += pick(i < 128 || i >= len(data)-8, 1, step) {
			data[i] ^= 1 << (i % 8)
			werr := os.WriteFile(path, data, 0o644)
			data[i] ^= 1 << (i % 8)
			if werr != nil {
				t.Fatal(werr)
			}
			if err := openMappedNoPanic(f.open, path); err == nil {
				t.Fatalf("%s: mapped open with bit flip at byte %d/%d accepted", f.name, i, len(data))
			}
		}
	}
}

// TestMappedOpenWrongFormat: each mapped open rejects the other
// formats' magics with a pointed error instead of misparsing.
func TestMappedOpenWrongFormat(t *testing.T) {
	formats := mappedOpenFormats(t)
	dir := t.TempDir()
	for _, f := range formats {
		for _, g := range formats {
			if f.name == g.name {
				continue
			}
			path := filepath.Join(dir, "cross")
			if err := os.WriteFile(path, g.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := f.open(path); err == nil {
				t.Fatalf("%s open accepted a %s file", f.name, g.name)
			}
		}
	}
}

// TestMappedOpenMissingFile: opening a nonexistent path errors cleanly.
func TestMappedOpenMissingFile(t *testing.T) {
	if _, err := OpenMappedFrozenSnapshot(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

// TestMappedZeroCopyMode documents which alias mode this build runs:
// on little-endian builds the columns must alias the mapping (no copy).
func TestMappedZeroCopyMode(t *testing.T) {
	t.Logf("mmap zero-copy aliasing: %v", mmap.ZeroCopy())
}

// benchSnapshotPath builds a moderately sized frozen snapshot once per
// benchmark run.
func benchSnapshotPath(b *testing.B) string {
	b.Helper()
	ny := NewYorkCity()
	users := TaxiTrips(ny, 20000, 47)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		b.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	return writeTempSnapshot(b, "bench.tqsnap", func(w *os.File) error { return fz.WriteSnapshot(w) })
}

func BenchmarkHeapRestore(b *testing.B) {
	path := benchSnapshotPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrozenSnapshot(f); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkMappedOpen(b *testing.B) {
	path := benchSnapshotPath(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenMappedFrozenSnapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}
