package trajcover

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRegistryOptions(root string) TenantRegistryOptions {
	return TenantRegistryOptions{
		Root:        root,
		WAL:         WALOptions{Sync: WALSyncAlways, SegmentBytes: 1 << 15},
		Policy:      LivePolicy{MaxDelta: 64},
		Shards:      2,
		Partitioner: HashPartitioner(),
		Index:       IndexOptions{Ordering: ZOrdering},
	}
}

func registryWorkload(seed int64) ([]*Trajectory, []*Facility) {
	city := NewYorkCity()
	return TaxiTrips(city, 120, seed), BusRoutes(city, 6, 8, seed+1)
}

func TestTenantRegistryLazyCreateAndRecover(t *testing.T) {
	root := t.TempDir()
	reg, err := OpenTenantRegistry(testRegistryOptions(root))
	if err != nil {
		t.Fatal(err)
	}

	// Reads never create tenants.
	if _, _, err := reg.Acquire("ghost", false); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("read of unknown tenant: %v", err)
	}
	if dirExists(filepath.Join(root, "ghost")) {
		t.Fatal("read created a tenant directory")
	}

	// Invalid IDs are client errors and leave no trace.
	for _, id := range []string{"", "../evil", "a/b", ".."} {
		if _, _, err := reg.Acquire(id, true); !IsBadTenantID(err) {
			t.Fatalf("Acquire(%q): %v", id, err)
		}
	}
	if ents, _ := os.ReadDir(root); len(ents) != 0 {
		t.Fatalf("invalid acquires left entries: %v", ents)
	}

	// A write lazily creates the tenant with its own WAL directory.
	users, routes := registryWorkload(41)
	idx, release, err := reg.Acquire("acme", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if err := idx.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	want, err := idx.ServiceValues(routes, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if !dirExists(filepath.Join(root, "acme")) {
		t.Fatal("tenant directory missing")
	}
	if got := reg.Tenants(); !reflect.DeepEqual(got, []string{"acme"}) {
		t.Fatalf("Tenants() = %v", got)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh registry over the same root recovers the tenant from its
	// own WAL lineage.
	reg2, err := OpenTenantRegistry(testRegistryOptions(root))
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	idx2, release2, err := reg2.Acquire("acme", false)
	if err != nil {
		t.Fatalf("reopen acme: %v", err)
	}
	defer release2()
	got, err := idx2.ServiceValues(routes, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered answers differ: %v vs %v", got, want)
	}
	if st := reg2.Stats(); st.Reopened != 1 || st.Created != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTenantRegistryEviction(t *testing.T) {
	root := t.TempDir()
	opts := testRegistryOptions(root)
	opts.MaxOpen = 1
	reg, err := OpenTenantRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	users, routes := registryWorkload(43)
	q := Query{Scenario: Binary, Psi: DefaultPsi}

	// Populate tenant a, release it (idle), then open tenant b: a must
	// be checkpointed + evicted to honor MaxOpen.
	ia, rel, err := reg.Acquire("a", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[:60] {
		if err := ia.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ia.ServiceValues(routes, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	rel()

	if _, relB, err := reg.Acquire("b", true); err != nil {
		t.Fatal(err)
	} else {
		defer relB()
	}
	st := reg.Stats()
	if st.Evicted != 1 || st.Open != 1 {
		t.Fatalf("after opening b: stats %+v", st)
	}

	// Accessing a again reopens it from disk with answers intact. b is
	// held (refs > 0), so it survives even though the cap is exceeded
	// while both are in use.
	ia2, rel2, err := reg.Acquire("a", false)
	if err != nil {
		t.Fatalf("reopen evicted tenant: %v", err)
	}
	got, err := ia2.ServiceValues(routes, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("evicted tenant lost state: %v vs %v", got, want)
	}
	if st := reg.Stats(); st.Reopened != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTenantRegistryBindPinned(t *testing.T) {
	opts := testRegistryOptions(t.TempDir())
	opts.MaxOpen = 1
	reg, err := OpenTenantRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	users, _ := registryWorkload(47)
	def, err := NewLiveShardedIndex(users[:30], LiveShardOptions{
		Shards: 2, Partitioner: HashPartitioner(),
		Index: IndexOptions{Ordering: ZOrdering}, Policy: LivePolicy{MaxDelta: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Bind(TenantDefault, def); err != nil {
		t.Fatal(err)
	}
	if err := reg.Bind(TenantDefault, def); err == nil {
		t.Fatal("duplicate Bind accepted")
	}
	if err := reg.Bind("../x", def); !IsBadTenantID(err) {
		t.Fatalf("Bind bad id: %v", err)
	}

	// The pinned default is never evicted, even past MaxOpen.
	if _, rel, err := reg.Acquire("other", true); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
	got, rel, err := reg.Acquire(TenantDefault, false)
	if err != nil {
		t.Fatalf("default after eviction pressure: %v", err)
	}
	if got != def {
		t.Fatal("default tenant is not the bound index")
	}
	rel()
	// Eviction pressure lands on the idle durable tenant, never the
	// pinned default — which must still be the same live instance after
	// the cap has been enforced repeatedly.
	for i := 0; i < 3; i++ {
		idx, rel2, err := reg.Acquire("other", false)
		if err != nil {
			t.Fatalf("reopen other: %v", err)
		}
		_ = idx
		rel2()
		d, rel3, err := reg.Acquire(TenantDefault, false)
		if err != nil {
			t.Fatal(err)
		}
		if d != def {
			t.Fatal("pinned default was evicted and rebuilt")
		}
		rel3()
	}
}

func TestTenantRegistryDisableCreate(t *testing.T) {
	opts := testRegistryOptions(t.TempDir())
	opts.DisableCreate = true
	reg, err := OpenTenantRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, _, err := reg.Acquire("newbie", true); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("DisableCreate write: %v", err)
	}
}

func TestTenantRegistryInMemory(t *testing.T) {
	reg, err := OpenTenantRegistry(TenantRegistryOptions{
		Shards: 1, Partitioner: HashPartitioner(),
		Index: IndexOptions{Ordering: ZOrdering}, Policy: LivePolicy{MaxDelta: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	idx, rel, err := reg.Acquire("mem", true)
	if err != nil {
		t.Fatal(err)
	}
	users, _ := registryWorkload(53)
	if err := idx.Insert(users[0]); err != nil {
		t.Fatal(err)
	}
	rel()
	// No WAL: checkpoints are meaningless and must fail loudly.
	if err := reg.Checkpoint("mem"); err == nil {
		t.Fatal("checkpoint of in-memory tenant succeeded")
	}
}
