package trajcover

// Mapped snapshot restore. OpenMappedFrozenSnapshot and friends map a
// TQSNAP03/TQSHRD02/TQLIVE01 file and alias the frozen column slices
// (node rects, upper-bound columns, bucket and entry slabs, trajectory
// points) directly onto the mapping via internal/mmap — a restore that
// costs one CRC pass plus the structural validation, no per-point work
// and no column copies (on little-endian hosts; elsewhere the views
// decode into heap and everything below still holds). The OS pages the
// columns in and out on demand, so one process can serve snapshots
// larger than RAM and restarts touch only the pages a query walks.
//
// Lifetime. Aliased slices are views into the mapping, so the mapping
// must outlive every object that can reach one. Each mapped file gets
// one token holding the mapping; the restored tqtree.Frozen pins the
// token (Frozen.SetPin), and every mapped trajectory pins it too
// (trajectory.FromParts) — the latter matters because a background
// rebuild builds a fresh heap base that keeps referencing the *same*
// trajectory objects, so the mapping stays alive exactly as long as any
// epoch (original or rebuilt) can still dereference mapped points, and
// is released by the token's finalizer when the last such epoch is
// dropped. Query entry points pin their engine with runtime.KeepAlive so
// the finalizer cannot fire mid-query. Background rebuilds therefore
// retire a mapping naturally: once compaction has folded every mapped
// trajectory out of the live set and the old epochs are gone, the token
// becomes unreachable and the file is unmapped.
//
// Integrity. The CRCs (trailer for TQSNAP03, header+frame for the
// containers) are verified once at open over the raw bytes, before any
// column is trusted; every cursor read is bounds-checked against the
// file length, and the decoded counts go through the same plausibility
// and structural validation as the streaming readers — a truncated or
// bit-flipped file is a loud ErrBadSnapshot at open, never a fault
// inside a query.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/mmap"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// mappedToken owns one reference to a file mapping on behalf of every
// index object restored from it. The finalizer releases the mapping
// when the last pinning object (Frozen or Trajectory) is collected.
type mappedToken struct {
	m *mmap.Mapping
}

func newMappedToken(m *mmap.Mapping) *mappedToken {
	t := &mappedToken{m: m}
	runtime.SetFinalizer(t, func(t *mappedToken) { t.m.Release() })
	return t
}

// drop abandons the token on an open-error path: the finalizer is
// cleared and the mapping released immediately.
func (t *mappedToken) drop() {
	runtime.SetFinalizer(t, nil)
	t.m.Release()
}

// mapCursor is the bounds-checked reader over a mapped payload. Every
// take is validated against the remaining length, so corrupt counts
// produce ErrBadSnapshot instead of an out-of-range slice.
type mapCursor struct {
	b   []byte
	off int
}

func (c *mapCursor) remaining() int { return len(c.b) - c.off }

func (c *mapCursor) take(n uint64) ([]byte, error) {
	if n > uint64(c.remaining()) {
		return nil, fmt.Errorf("%w: truncated payload (need %d bytes, have %d)", ErrBadSnapshot, n, c.remaining())
	}
	b := c.b[c.off : c.off+int(n) : c.off+int(n)]
	c.off += int(n)
	return b, nil
}

func (c *mapCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *mapCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// rects / points / i32s / f64s / u64s / u32s alias (or decode) a column
// of n values off the cursor.

func (c *mapCursor) rects(n uint64) ([]geo.Rect, error) {
	b, err := c.take(n * 32)
	if err != nil {
		return nil, err
	}
	return mmap.Rects(b), nil
}

func (c *mapCursor) points(n uint64) ([]geo.Point, error) {
	b, err := c.take(n * 16)
	if err != nil {
		return nil, err
	}
	return mmap.Points(b), nil
}

func (c *mapCursor) i32s(n uint64) ([]int32, error) {
	b, err := c.take(n * 4)
	if err != nil {
		return nil, err
	}
	return mmap.I32s(b), nil
}

func (c *mapCursor) f64s(n uint64) ([]float64, error) {
	b, err := c.take(n * 8)
	if err != nil {
		return nil, err
	}
	return mmap.F64s(b), nil
}

func (c *mapCursor) u64s(n uint64) ([]uint64, error) {
	b, err := c.take(n * 8)
	if err != nil {
		return nil, err
	}
	return mmap.U64s(b), nil
}

func (c *mapCursor) u32s(n uint64) ([]uint32, error) {
	b, err := c.take(n * 4)
	if err != nil {
		return nil, err
	}
	return mmap.U32s(b), nil
}

func (c *mapCursor) skip(n uint64) error {
	_, err := c.take(n)
	return err
}

// readFrozenPayloadMapped is readFrozenPayload over a mapped cursor:
// identical header parse, plausibility checks, and structural validation
// (tqtree.FrozenFromColumns), but every column aliases the mapping and
// each trajectory adopts its recorded length/MBR instead of recomputing
// them from the points — the open never touches point data.
func readFrozenPayloadMapped(cur *mapCursor, pin *mappedToken) (*tqtree.Frozen, *trajectory.Set, error) {
	var header [12]uint64
	for i := range header {
		v, err := cur.u64()
		if err != nil {
			return nil, nil, err
		}
		header[i] = v
	}
	c := tqtree.FrozenColumns{
		Variant:  tqtree.Variant(header[0]),
		Ordering: tqtree.Ordering(header[1]),
		Beta:     int(header[2]),
		MaxDepth: int(header[3]),
		Bounds: geo.Rect{
			MinX: math.Float64frombits(header[4]),
			MinY: math.Float64frombits(header[5]),
			MaxX: math.Float64frombits(header[6]),
			MaxY: math.Float64frombits(header[7]),
		},
	}
	nn, nb, ne, nt := header[8], header[9], header[10], header[11]
	if c.Ordering != tqtree.ZOrder && c.Ordering != tqtree.Basic {
		return nil, nil, fmt.Errorf("%w: invalid ordering %d", ErrBadSnapshot, header[1])
	}
	const maxCount = 1 << 31
	if nn == 0 || nn > maxCount || ne > maxCount || nb > ne || nt > ne || (ne > 0 && nt == 0) {
		return nil, nil, fmt.Errorf("%w: implausible frozen counts (nodes %d, buckets %d, entries %d, trajectories %d)",
			ErrBadSnapshot, nn, nb, ne, nt)
	}
	if c.Ordering == tqtree.Basic && nb != 0 {
		return nil, nil, fmt.Errorf("%w: basic ordering with %d buckets", ErrBadSnapshot, nb)
	}

	var err error
	if c.NodeRect, err = cur.rects(nn); err == nil {
		if c.ChildBase, err = cur.i32s(nn); err == nil {
			c.ChildCount, err = cur.i32s(nn)
		}
	}
	if err == nil {
		c.EntryOff, err = cur.i32s(nn + 1)
	}
	if err == nil {
		err = cur.skip(uint64(i32Pad(3*nn + 1)))
	}
	if err == nil {
		c.OwnUB, err = cur.f64s(nn * uint64(service.NumScenarios))
	}
	if err == nil {
		c.TreeUB, err = cur.f64s(nn * uint64(service.NumScenarios))
	}
	if err == nil && c.Ordering == tqtree.ZOrder {
		c.BucketOff, err = cur.i32s(nn + 1)
		if err == nil {
			c.BktEntryOff, err = cur.i32s(nb + 1)
		}
		if err == nil {
			err = cur.skip(uint64(i32Pad(nn + nb + 2)))
		}
		if err == nil {
			c.BktMinStart, err = cur.u64s(nb)
		}
		if err == nil {
			c.BktMaxStart, err = cur.u64s(nb)
		}
		if err == nil {
			c.BktStartMBR, err = cur.rects(nb)
		}
		if err == nil {
			c.BktEndMBR, err = cur.rects(nb)
		}
		if err == nil {
			c.BktFullMBR, err = cur.rects(nb)
		}
	}
	if err == nil {
		c.EntFirst, err = cur.points(ne)
	}
	if err == nil {
		c.EntLast, err = cur.points(ne)
	}
	if err == nil {
		c.EntMBR, err = cur.rects(ne)
	}
	if err == nil {
		c.EntTraj, err = cur.i32s(ne)
	}
	if err == nil {
		c.EntSeg, err = cur.i32s(ne)
	}
	if err != nil {
		return nil, nil, err
	}

	arena, trajs, err := mappedTrajectoryArena(cur, nt)
	if err != nil {
		return nil, nil, err
	}
	for i := range arena {
		if err := readMappedTrajectoryRecordInto(cur, uint64(i), pin, &arena[i]); err != nil {
			return nil, nil, err
		}
		trajs[i] = &arena[i]
	}
	set, err := trajectory.NewSetLazy(trajs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	f, err := tqtree.FrozenFromColumns(c, trajs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	f.SetPin(pin)
	return f, set, nil
}

// minTrajRecordBytes is the smallest possible encoded trajectory
// record: id + point count + length bits + MBR + the two-point
// minimum. It bounds how many records the remaining bytes can hold.
const minTrajRecordBytes = 4 + 4 + 8 + 32 + 2*16

// mappedTrajectoryArena allocates backing storage for n trajectory
// records in one block — the pointer slice NewSet and the tree want,
// over one arena allocation instead of n — after checking the cursor
// can possibly hold n records, so a corrupt count cannot force a huge
// allocation. The arena is sized up front and never grows: record
// pointers taken from it stay valid.
func mappedTrajectoryArena(cur *mapCursor, n uint64) ([]trajectory.Trajectory, []*trajectory.Trajectory, error) {
	if rem := uint64(len(cur.b) - cur.off); n > rem/minTrajRecordBytes {
		return nil, nil, fmt.Errorf("%w: trajectory count %d exceeds remaining bytes", ErrBadSnapshot, n)
	}
	return make([]trajectory.Trajectory, n), make([]*trajectory.Trajectory, n), nil
}

// readMappedTrajectoryRecordInto decodes one frozen trajectory record
// off the cursor into dst, aliasing the points and adopting the
// recorded length and MBR (integrity is the frame CRC, verified
// before parsing).
func readMappedTrajectoryRecordInto(cur *mapCursor, i uint64, pin *mappedToken, dst *trajectory.Trajectory) error {
	id, err := cur.u32()
	if err != nil {
		return fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	npts, err := cur.u32()
	if err != nil {
		return fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	if npts < 2 || npts > 1<<24 {
		return fmt.Errorf("%w: trajectory %d has %d points", ErrBadSnapshot, i, npts)
	}
	lenBits, err := cur.u64()
	if err != nil {
		return fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	mbrCol, err := cur.rects(1)
	if err != nil {
		return fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	pts, err := cur.points(uint64(npts))
	if err != nil {
		return err
	}
	if err := trajectory.FromPartsInto(dst, trajectory.ID(id), pts, math.Float64frombits(lenBits), mbrCol[0], pin); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return nil
}

// OpenMappedFrozenSnapshot restores a FrozenIndex from a TQSNAP03 file
// by mapping it: the CRC is verified once, the columns alias the mapping
// (zero-copy on little-endian hosts), and the mapping is released when
// the last object restored from it is collected. Answers are
// byte-identical to ReadFrozenSnapshot of the same file.
func OpenMappedFrozenSnapshot(path string) (*FrozenIndex, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	tok := newMappedToken(m)
	x, err := openMappedFrozen(m.Data(), tok)
	if err != nil {
		tok.drop()
		return nil, err
	}
	return x, nil
}

func openMappedFrozen(data []byte, tok *mappedToken) (*FrozenIndex, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrBadSnapshot)
	}
	var magic [8]byte
	copy(magic[:], data)
	switch magic {
	case frozenMagic:
	case snapshotMagic, snapshotMagicV1:
		return nil, fmt.Errorf("%w: rebuild-format snapshot; use ReadSnapshot", ErrBadSnapshot)
	case shardedMagic, shardedFrozenMagic:
		return nil, fmt.Errorf("%w: sharded snapshot; use OpenMappedFrozenShardedSnapshot", ErrBadSnapshot)
	case liveMagic:
		return nil, fmt.Errorf("%w: live snapshot; use OpenMappedLiveSnapshot", ErrBadSnapshot)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	cur := &mapCursor{b: body[8:]}
	f, set, err := readFrozenPayloadMapped(cur, tok)
	if err != nil {
		return nil, err
	}
	if cur.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, cur.remaining())
	}
	return &FrozenIndex{engine: query.NewFrozenEngine(f, set), set: set}, nil
}

// mappedContainerHeader parses and CRC-checks the shared TQSHRD02 /
// TQLIVE01 container header, returning the shard count, partitioner
// kind, and a cursor positioned at the first frame.
func mappedContainerHeader(data []byte) (nShards uint64, kind string, cur *mapCursor, err error) {
	cur = &mapCursor{b: data, off: 8}
	nShards, err = cur.u64()
	if err != nil {
		return 0, "", nil, err
	}
	kindLen, err := cur.u32()
	if err != nil {
		return 0, "", nil, err
	}
	if kindLen > 256 {
		return 0, "", nil, fmt.Errorf("%w: implausible partitioner kind length %d", ErrBadSnapshot, kindLen)
	}
	kindBuf, err := cur.take(uint64(kindLen))
	if err != nil {
		return 0, "", nil, err
	}
	wantHdr := crc32.ChecksumIEEE(data[:cur.off])
	gotHdr, err := cur.u32()
	if err != nil {
		return 0, "", nil, fmt.Errorf("%w: missing header checksum", ErrBadSnapshot)
	}
	if gotHdr != wantHdr {
		return 0, "", nil, fmt.Errorf("%w: header checksum mismatch", ErrBadSnapshot)
	}
	pad, err := cur.take(pad8(uint64(kindLen)))
	if err != nil {
		return 0, "", nil, err
	}
	for _, b := range pad {
		if b != 0 {
			return 0, "", nil, fmt.Errorf("%w: nonzero padding", ErrBadSnapshot)
		}
	}
	const maxShards = 1 << 16
	if nShards == 0 || nShards > maxShards {
		return 0, "", nil, fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, nShards)
	}
	return nShards, string(kindBuf), cur, nil
}

// mappedFrame CRC-checks frame s and returns a cursor over its payload,
// advancing the container cursor past the frame.
func mappedFrame(cur *mapCursor, s uint64) (*mapCursor, error) {
	payloadLen, err := cur.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated frame %d", ErrBadSnapshot, s)
	}
	payload, err := cur.take(payloadLen)
	if err != nil {
		return nil, fmt.Errorf("frame %d: %w", s, err)
	}
	gotFrame, err := cur.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: frame %d missing checksum", ErrBadSnapshot, s)
	}
	if crc32.ChecksumIEEE(payload) != gotFrame {
		return nil, fmt.Errorf("%w: frame %d checksum mismatch", ErrBadSnapshot, s)
	}
	pad, err := cur.take(4)
	if err != nil {
		return nil, fmt.Errorf("frame %d: %w", s, err)
	}
	for _, b := range pad {
		if b != 0 {
			return nil, fmt.Errorf("%w: frame %d nonzero padding", ErrBadSnapshot, s)
		}
	}
	return &mapCursor{b: payload}, nil
}

// OpenMappedFrozenShardedSnapshot restores a FrozenShardedIndex from a
// TQSHRD02 file by mapping it; every shard's columns alias one shared
// mapping. Answers are byte-identical to ReadFrozenShardedSnapshot.
func OpenMappedFrozenShardedSnapshot(path string) (*FrozenShardedIndex, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	tok := newMappedToken(m)
	x, err := openMappedFrozenSharded(m.Data(), tok)
	if err != nil {
		tok.drop()
		return nil, err
	}
	return x, nil
}

func openMappedFrozenSharded(data []byte, tok *mappedToken) (*FrozenShardedIndex, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrBadSnapshot)
	}
	var magic [8]byte
	copy(magic[:], data)
	switch magic {
	case shardedFrozenMagic:
	case shardedMagic:
		return nil, fmt.Errorf("%w: rebuild-format sharded snapshot; use ReadShardedSnapshot", ErrBadSnapshot)
	case snapshotMagic, snapshotMagicV1, frozenMagic:
		return nil, fmt.Errorf("%w: single-index snapshot; use ReadSnapshot or OpenMappedFrozenSnapshot", ErrBadSnapshot)
	case liveMagic:
		return nil, fmt.Errorf("%w: live snapshot; use OpenMappedLiveSnapshot", ErrBadSnapshot)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	nShards, kind, cur, err := mappedContainerHeader(data)
	if err != nil {
		return nil, err
	}
	engines := make([]*query.FrozenEngine, 0, nShards)
	bounds := geo.Rect{}
	for s := uint64(0); s < nShards; s++ {
		fcur, err := mappedFrame(cur, s)
		if err != nil {
			return nil, err
		}
		f, set, err := readFrozenPayloadMapped(fcur, tok)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", s, err)
		}
		if fcur.remaining() != 0 {
			return nil, fmt.Errorf("%w: frame %d has %d trailing bytes", ErrBadSnapshot, s, fcur.remaining())
		}
		if s == 0 {
			bounds = f.Bounds()
		}
		engines = append(engines, query.NewFrozenEngine(f, set))
	}
	if cur.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last frame", ErrBadSnapshot, cur.remaining())
	}
	sf, err := shard.FrozenFromEngines(engines, bounds, kind)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &FrozenShardedIndex{s: sf}, nil
}

// OpenMappedLiveSnapshot restores a live index from a TQLIVE01 file by
// mapping it: every shard's frozen base columns (and the delta
// trajectories' points) alias the mapping, while the restored index
// stays fully mutable — writes land in heap epochs, and background
// rebuilds fold mapped trajectories into heap bases, retiring the
// mapping once nothing references it. Answers are byte-identical to
// ReadLiveSnapshot of the same file.
func OpenMappedLiveSnapshot(path string, pol LivePolicy) (*LiveShardedIndex, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	tok := newMappedToken(m)
	x, err := openMappedLive(m.Data(), tok, pol)
	if err != nil {
		tok.drop()
		return nil, err
	}
	return x, nil
}

func openMappedLive(data []byte, tok *mappedToken, pol LivePolicy) (*LiveShardedIndex, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrBadSnapshot)
	}
	var magic [8]byte
	copy(magic[:], data)
	switch magic {
	case liveMagic:
	case snapshotMagic, snapshotMagicV1, frozenMagic:
		return nil, fmt.Errorf("%w: single-index snapshot; use ReadSnapshot or OpenMappedFrozenSnapshot", ErrBadSnapshot)
	case shardedMagic, shardedFrozenMagic:
		return nil, fmt.Errorf("%w: sharded snapshot; use ReadShardedSnapshot or OpenMappedFrozenShardedSnapshot", ErrBadSnapshot)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	nShards, kind, cur, err := mappedContainerHeader(data)
	if err != nil {
		return nil, err
	}
	eps := make([]*query.Epoch, 0, nShards)
	for s := uint64(0); s < nShards; s++ {
		fcur, err := mappedFrame(cur, s)
		if err != nil {
			return nil, err
		}
		ep, err := readLivePayloadMapped(fcur, tok)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", s, err)
		}
		if fcur.remaining() != 0 {
			return nil, fmt.Errorf("%w: frame %d has %d trailing bytes", ErrBadSnapshot, s, fcur.remaining())
		}
		eps = append(eps, ep)
	}
	if cur.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last frame", ErrBadSnapshot, cur.remaining())
	}
	part, _ := shard.PartitionerOf(kind)
	l, err := shard.LiveFromEpochs(eps, part, pol.policy())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &LiveShardedIndex{s: l}, nil
}

// readLivePayloadMapped is readLivePayload over a mapped cursor.
func readLivePayloadMapped(cur *mapCursor, tok *mappedToken) (*query.Epoch, error) {
	f, set, err := readFrozenPayloadMapped(cur, tok)
	if err != nil {
		return nil, err
	}
	nDead, err := cur.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated tombstones", ErrBadSnapshot)
	}
	if nDead > uint64(set.Len()) {
		return nil, fmt.Errorf("%w: %d tombstones over %d base trajectories", ErrBadSnapshot, nDead, set.Len())
	}
	deadIDs, err := cur.u32s(nDead)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated tombstones", ErrBadSnapshot)
	}
	dead := make(map[trajectory.ID]struct{}, nDead)
	for _, id := range deadIDs {
		dead[trajectory.ID(id)] = struct{}{}
	}
	if uint64(len(dead)) != nDead {
		return nil, fmt.Errorf("%w: duplicate tombstone ids", ErrBadSnapshot)
	}
	if err := cur.skip(uint64(i32Pad(nDead))); err != nil {
		return nil, err
	}
	nDelta, err := cur.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated delta", ErrBadSnapshot)
	}
	if nDelta > maxTrajectories {
		return nil, fmt.Errorf("%w: implausible delta count %d", ErrBadSnapshot, nDelta)
	}
	arena, delta, err := mappedTrajectoryArena(cur, nDelta)
	if err != nil {
		return nil, err
	}
	for i := range arena {
		if err := readMappedTrajectoryRecordInto(cur, uint64(i), tok, &arena[i]); err != nil {
			return nil, err
		}
		delta[i] = &arena[i]
	}
	ep, err := query.NewEpoch(query.NewFrozenEngine(f, set), delta, dead, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return ep, nil
}
