package trajcover

// Durability for the live serving path. OpenLiveShardedIndex pairs a
// LiveShardedIndex with a write-ahead log (internal/wal): every
// acknowledged Insert/Delete is appended to a rotating segment file
// before its epoch is published, and a write returns to the caller only
// once the record is durable per the configured sync policy. On boot,
// Open restores the newest checkpoint (a TQLIVE01 snapshot named after
// its WAL cut) and replays the post-checkpoint segments on top, so a
// reopened index serves exactly the logical corpus the crashed process
// had acknowledged — plus possibly a suffix of appended-but-unacked
// writes, which is allowed: recovery yields a prefix of the write
// history that contains every acknowledged write.
//
// Checkpoint protocol: capture the per-shard epoch cut and rotate the
// WAL in one critical section (so the new segment index is an exact
// cut), stream the capture to checkpoint-<cut>.tqlive via tmp + rename
// + directory fsync, then drop the pre-cut segments and older
// checkpoint files. Writes keep flowing the whole time — only the
// capture itself (microseconds) excludes them.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trajcover/trajcover/internal/wal"
)

// WALSyncPolicy selects when an acknowledged write is durable.
type WALSyncPolicy int

const (
	// WALSyncAlways fsyncs before acknowledging a write; concurrent
	// writers share one group-commit fsync. No acknowledged write is
	// ever lost to a crash.
	WALSyncAlways WALSyncPolicy = iota
	// WALSyncInterval fsyncs on a background ticker; a crash may lose
	// up to the last interval of acknowledged writes.
	WALSyncInterval
	// WALSyncNone leaves flushing to the OS page cache; a crash may
	// lose anything since the last OS writeback (a clean Close still
	// syncs).
	WALSyncNone
)

// String returns the flag spelling ("always", "interval", "none").
func (p WALSyncPolicy) String() string { return p.policy().String() }

// ParseWALSyncPolicy parses the flag spelling of a policy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	pol, err := wal.ParseSyncPolicy(s)
	if err != nil {
		return 0, err
	}
	switch pol {
	case wal.SyncInterval:
		return WALSyncInterval, nil
	case wal.SyncNone:
		return WALSyncNone, nil
	}
	return WALSyncAlways, nil
}

func (p WALSyncPolicy) policy() wal.SyncPolicy {
	switch p {
	case WALSyncInterval:
		return wal.SyncInterval
	case WALSyncNone:
		return wal.SyncNone
	}
	return wal.SyncAlways
}

// WALOptions configures OpenLiveShardedIndex.
type WALOptions struct {
	// Dir is the WAL directory: segment files plus the newest
	// checkpoint live here. Created if missing.
	Dir string
	// Sync selects the durability policy (default WALSyncAlways).
	Sync WALSyncPolicy
	// SyncEvery is the fsync period under WALSyncInterval (0: 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates segment files past this size (0: 64 MiB).
	SegmentBytes int64
}

// WALStats is a point-in-time view of the durability layer.
type WALStats struct {
	// Records counts appends accepted since open (replayed history is
	// not re-counted).
	Records uint64
	// Segments and Bytes size the live segment files.
	Segments int
	Bytes    int64
	// Fsyncs counts explicit fsyncs; MaxFsync is the slowest observed.
	Fsyncs   uint64
	MaxFsync time.Duration
	// SinceCheckpoint is the time since the last completed checkpoint.
	SinceCheckpoint time.Duration
}

// liveWAL is the durability state hung off a LiveShardedIndex opened
// with OpenLiveShardedIndex.
type liveWAL struct {
	dir string
	// mu serializes checkpoints (capture + file write + truncation).
	mu sync.Mutex
	// lastCkpt is the unix-nano completion time of the last checkpoint.
	lastCkpt atomic.Int64
}

// checkpointPrefix names checkpoint files; the embedded index is the
// WAL cut, so the file itself records which segments remain relevant.
const checkpointPrefix = "checkpoint-"

func checkpointName(cut uint64) string {
	return fmt.Sprintf("%s%08d.tqlive", checkpointPrefix, cut)
}

// parseCheckpointName inverts checkpointName; ok is false for foreign
// files (including in-flight .tmp checkpoints).
func parseCheckpointName(name string) (uint64, bool) {
	var cut uint64
	if _, err := fmt.Sscanf(name, checkpointPrefix+"%d.tqlive", &cut); err != nil {
		return 0, false
	}
	if name != checkpointName(cut) {
		return 0, false
	}
	return cut, true
}

// latestCheckpoint finds the newest durable checkpoint in dir,
// returning its cut and path, or ok=false when none exists.
func latestCheckpoint(dir string) (cut uint64, path string, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, "", false, err
	}
	for _, e := range ents {
		if c, isCkpt := parseCheckpointName(e.Name()); isCkpt && (!ok || c > cut) {
			cut, path, ok = c, filepath.Join(dir, e.Name()), true
		}
	}
	return cut, path, ok, nil
}

// OpenLiveShardedIndex opens (or creates) a durable live index rooted
// at opts.Dir. On first open the index comes from bootstrap — a closure
// building the initial corpus (from a dataset, a snapshot, or empty) —
// and an initial checkpoint is written immediately, so recovery never
// depends on reproducing the bootstrap. On later opens bootstrap is NOT
// called: the newest checkpoint is restored and the post-checkpoint
// segments are replayed on top. Either way the caller gets an index
// whose writes are durable per opts.Sync; Close it to release the log.
func OpenLiveShardedIndex(opts WALOptions, pol LivePolicy, bootstrap func() (*LiveShardedIndex, error)) (*LiveShardedIndex, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("trajcover: WAL dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	cut, ckptPath, haveCkpt, err := latestCheckpoint(opts.Dir)
	if err != nil {
		return nil, err
	}
	var x *LiveShardedIndex
	if haveCkpt {
		f, err := os.Open(ckptPath)
		if err != nil {
			return nil, err
		}
		x, err = ReadLiveSnapshot(f, pol)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trajcover: restore %s: %w", filepath.Base(ckptPath), err)
		}
	} else {
		if x, err = bootstrap(); err != nil {
			return nil, err
		}
		if x == nil {
			return nil, fmt.Errorf("trajcover: bootstrap returned no index")
		}
	}
	// Replay the acknowledged history since the checkpoint. Apply
	// failures are corruption: the log recorded only writes the index
	// had accepted, in apply order.
	_, _, err = wal.ReplayFrom(opts.Dir, cut, func(rec wal.Record) error {
		switch rec.Op {
		case wal.OpInsert:
			if err := x.s.Insert(rec.Trajectory); err != nil {
				return fmt.Errorf("%w: replay insert %d: %v", wal.ErrCorrupt, rec.Trajectory.ID, err)
			}
		case wal.OpDelete:
			found, err := x.s.Delete(rec.ID)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("%w: replay delete %d: not present", wal.ErrCorrupt, rec.ID)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(opts.Dir, wal.Options{
		Sync:         opts.Sync.policy(),
		SyncEvery:    opts.SyncEvery,
		SegmentBytes: opts.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	x.s.AttachWAL(log)
	x.wal = &liveWAL{dir: opts.Dir}
	// Checkpoint now: the restored-or-bootstrapped state becomes the
	// recovery base, bounding the next boot's replay to this session's
	// segments (and freeing the replayed ones).
	if err := x.Checkpoint(); err != nil {
		log.Close()
		return nil, err
	}
	return x, nil
}

// Checkpoint writes a durable checkpoint (TQLIVE01 snapshot of a
// write-consistent epoch cut) into the WAL directory and truncates the
// segments it covers. Writes and queries keep running; only the epoch
// capture + WAL rotation (microseconds) excludes writers. Requires an
// index opened with OpenLiveShardedIndex.
func (x *LiveShardedIndex) Checkpoint() error {
	if x.wal == nil {
		return fmt.Errorf("trajcover: no WAL attached (open with OpenLiveShardedIndex)")
	}
	x.wal.mu.Lock()
	defer x.wal.mu.Unlock()
	_, err := x.checkpointLocked()
	return err
}

// CheckpointTo is Checkpoint that additionally streams the checkpoint
// bytes to w (e.g. an HTTP response): the local checkpoint is made
// durable FIRST, then copied out, so a slow or failing client can never
// leave segments truncated without a durable snapshot covering them.
func (x *LiveShardedIndex) CheckpointTo(w io.Writer) error {
	if x.wal == nil {
		return fmt.Errorf("trajcover: no WAL attached (open with OpenLiveShardedIndex)")
	}
	x.wal.mu.Lock()
	defer x.wal.mu.Unlock()
	path, err := x.checkpointLocked()
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_, err = io.Copy(w, f)
	f.Close()
	return err
}

// checkpointLocked runs one checkpoint and returns the durable
// checkpoint file's path. Caller holds x.wal.mu.
func (x *LiveShardedIndex) checkpointLocked() (string, error) {
	eps, cut, err := x.s.CheckpointCapture()
	if err != nil {
		return "", err
	}
	final := filepath.Join(x.wal.dir, checkpointName(cut))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	err = writeLiveSnapshot(bw, eps, x.s.PartitionerKind())
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDirPath(x.wal.dir); err != nil {
		return "", err
	}
	// The new checkpoint is durable: pre-cut segments and older
	// checkpoints are now dead weight. Failures past this point do not
	// undo the checkpoint.
	if err := x.s.WAL().RemoveBefore(cut); err != nil {
		return final, err
	}
	if err := removeOldCheckpoints(x.wal.dir, cut); err != nil {
		return final, err
	}
	x.wal.lastCkpt.Store(time.Now().UnixNano())
	return final, nil
}

// removeOldCheckpoints drops checkpoint files with cuts below keep,
// plus any abandoned .tmp files.
func removeOldCheckpoints(dir string, keep uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var stale []string
	for _, e := range ents {
		name := e.Name()
		if c, ok := parseCheckpointName(name); ok && c < keep {
			stale = append(stale, name)
			continue
		}
		// Abandoned in-flight checkpoints from a crashed writer.
		if strings.HasSuffix(name, ".tmp") {
			if _, ok := parseCheckpointName(strings.TrimSuffix(name, ".tmp")); ok {
				stale = append(stale, name)
			}
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if len(stale) > 0 {
		return syncDirPath(dir)
	}
	return nil
}

// syncDirPath fsyncs a directory so renames/removes in it are durable.
func syncDirPath(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// WALStats returns durability counters; ok is false for an index with
// no WAL.
func (x *LiveShardedIndex) WALStats() (WALStats, bool) {
	if x.wal == nil {
		return WALStats{}, false
	}
	st := x.s.WAL().Stats()
	out := WALStats{
		Records:  st.Records,
		Segments: st.Segments,
		Bytes:    st.Bytes,
		Fsyncs:   st.Fsyncs,
		MaxFsync: time.Duration(st.MaxFsyncNanos),
	}
	if at := x.wal.lastCkpt.Load(); at > 0 {
		out.SinceCheckpoint = time.Since(time.Unix(0, at))
	}
	return out, true
}

// Close releases the WAL (flushing and fsyncing its tail). Acknowledged
// writes are durable before Close per the sync policy; Close makes the
// unacknowledged tail durable too. Queries remain usable; further
// writes fail. No-op for an index without a WAL. Idempotent.
func (x *LiveShardedIndex) Close() error {
	if x.wal == nil {
		return nil
	}
	return x.s.WAL().Close()
}
