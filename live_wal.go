package trajcover

// Durability for the live serving path. OpenLiveShardedIndex pairs a
// LiveShardedIndex with a write-ahead log (internal/wal): every
// acknowledged Insert/Delete is appended to a rotating segment file
// before its epoch is published, and a write returns to the caller only
// once the record is durable per the configured sync policy. On boot,
// Open restores the newest checkpoint (a TQLIVE01 snapshot named after
// its WAL cut) and replays the post-checkpoint segments on top, so a
// reopened index serves exactly the logical corpus the crashed process
// had acknowledged — plus possibly a suffix of appended-but-unacked
// writes, which is allowed: recovery yields a prefix of the write
// history that contains every acknowledged write.
//
// Checkpoint protocol: capture the per-shard epoch cut and rotate the
// WAL in one critical section (so the new segment index is an exact
// cut), stream the capture to checkpoint-<cut>.tqlive via tmp + rename
// + directory fsync, then drop the pre-cut segments and older
// checkpoint files. Writes keep flowing the whole time — only the
// capture itself (microseconds) excludes them.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trajcover/trajcover/internal/faultfs"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/wal"
)

// FS is the filesystem abstraction all WAL and checkpoint IO goes
// through — an alias of the internal faultfs interface, so external
// test harnesses can inject scripted disk faults via WALOptions.FS
// without importing internal packages. Production code leaves the
// field nil (the real OS).
type FS = faultfs.FS

// ErrDegraded rejects writes while the index is in degraded read-only
// mode: the WAL wedged or checkpoint IO failed, durability cannot be
// promised, and a background probe is retrying the disk with capped
// exponential backoff. Queries keep serving from the last published
// epochs; writes fail fast until the probe re-establishes a durable
// log (observable via Health). Test with errors.Is / IsDegraded.
var ErrDegraded = shard.ErrDegraded

// IsDegraded reports whether err means the index is temporarily
// rejecting writes in degraded read-only mode.
func IsDegraded(err error) bool { return errors.Is(err, ErrDegraded) }

// Health is an observable snapshot of an index's degraded-mode state
// machine plus its recovery probe's counters.
type Health struct {
	// Degraded reports whether writes are currently rejected.
	Degraded bool `json:"degraded"`
	// Cause is the error that triggered the current degradation (""
	// when healthy).
	Cause string `json:"cause,omitempty"`
	// Since is when the current degradation began (zero when healthy).
	Since time.Time `json:"since,omitempty"`
	// Entries and Exits count degraded transitions since open; both are
	// monotone and Entries-Exits is the current state (1 degraded, 0
	// healthy).
	Entries uint64 `json:"entries"`
	Exits   uint64 `json:"exits"`
	// Probes counts recovery attempts; Recoveries counts the ones that
	// restored writable service.
	Probes     uint64 `json:"probes,omitempty"`
	Recoveries uint64 `json:"recoveries,omitempty"`
}

// WALSyncPolicy selects when an acknowledged write is durable.
type WALSyncPolicy int

const (
	// WALSyncAlways fsyncs before acknowledging a write; concurrent
	// writers share one group-commit fsync. No acknowledged write is
	// ever lost to a crash.
	WALSyncAlways WALSyncPolicy = iota
	// WALSyncInterval fsyncs on a background ticker; a crash may lose
	// up to the last interval of acknowledged writes.
	WALSyncInterval
	// WALSyncNone leaves flushing to the OS page cache; a crash may
	// lose anything since the last OS writeback (a clean Close still
	// syncs).
	WALSyncNone
)

// String returns the flag spelling ("always", "interval", "none").
func (p WALSyncPolicy) String() string { return p.policy().String() }

// ParseWALSyncPolicy parses the flag spelling of a policy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	pol, err := wal.ParseSyncPolicy(s)
	if err != nil {
		return 0, err
	}
	switch pol {
	case wal.SyncInterval:
		return WALSyncInterval, nil
	case wal.SyncNone:
		return WALSyncNone, nil
	}
	return WALSyncAlways, nil
}

func (p WALSyncPolicy) policy() wal.SyncPolicy {
	switch p {
	case WALSyncInterval:
		return wal.SyncInterval
	case WALSyncNone:
		return wal.SyncNone
	}
	return wal.SyncAlways
}

// WALOptions configures OpenLiveShardedIndex.
type WALOptions struct {
	// Dir is the WAL directory: segment files plus the newest
	// checkpoint live here. Created if missing.
	Dir string
	// Sync selects the durability policy (default WALSyncAlways).
	Sync WALSyncPolicy
	// SyncEvery is the fsync period under WALSyncInterval (0: 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates segment files past this size (0: 64 MiB).
	SegmentBytes int64
	// FS is the filesystem all WAL and checkpoint IO goes through
	// (nil: the real OS). Tests inject a fault injector here.
	FS FS
	// ProbeMin and ProbeMax bound the degraded-mode recovery probe's
	// capped exponential backoff with jitter (0: 100ms and 5s). Tests
	// shrink them so wedge→recover cycles run in milliseconds.
	ProbeMin, ProbeMax time.Duration
}

func (o WALOptions) withProbeDefaults() WALOptions {
	if o.ProbeMin <= 0 {
		o.ProbeMin = 100 * time.Millisecond
	}
	if o.ProbeMax < o.ProbeMin {
		o.ProbeMax = 5 * time.Second
		if o.ProbeMax < o.ProbeMin {
			o.ProbeMax = o.ProbeMin
		}
	}
	return o
}

// walOptions translates to the internal log options — one place, so
// boot and every probe reopen agree.
func (o WALOptions) walOptions() wal.Options {
	return wal.Options{
		Sync:         o.Sync.policy(),
		SyncEvery:    o.SyncEvery,
		SegmentBytes: o.SegmentBytes,
		FS:           o.FS,
	}
}

// WALStats is a point-in-time view of the durability layer.
type WALStats struct {
	// Records counts appends accepted since open (replayed history is
	// not re-counted).
	Records uint64
	// Segments and Bytes size the live segment files.
	Segments int
	Bytes    int64
	// Fsyncs counts explicit fsyncs; MaxFsync is the slowest observed.
	Fsyncs   uint64
	MaxFsync time.Duration
	// SinceCheckpoint is the time since the last completed checkpoint.
	SinceCheckpoint time.Duration
}

// liveWAL is the durability state hung off a LiveShardedIndex opened
// with OpenLiveShardedIndex.
type liveWAL struct {
	dir  string
	opts WALOptions // normalized: probe defaults applied
	fs   faultfs.FS
	// mu serializes checkpoints (capture + file write + truncation).
	mu sync.Mutex
	// lastCkpt is the unix-nano completion time of the last checkpoint.
	lastCkpt atomic.Int64

	// Recovery probe lifecycle: probing dedups spawns (one probe
	// goroutine at a time), stop ends it on Close, wg waits for it so
	// Close never leaks the goroutine.
	probing    atomic.Bool
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
	probes     atomic.Uint64
	recoveries atomic.Uint64
}

// checkpointPrefix names checkpoint files; the embedded index is the
// WAL cut, so the file itself records which segments remain relevant.
const checkpointPrefix = "checkpoint-"

func checkpointName(cut uint64) string {
	return fmt.Sprintf("%s%08d.tqlive", checkpointPrefix, cut)
}

// parseCheckpointName inverts checkpointName; ok is false for foreign
// files (including in-flight .tmp checkpoints).
func parseCheckpointName(name string) (uint64, bool) {
	var cut uint64
	if _, err := fmt.Sscanf(name, checkpointPrefix+"%d.tqlive", &cut); err != nil {
		return 0, false
	}
	if name != checkpointName(cut) {
		return 0, false
	}
	return cut, true
}

// latestCheckpoint finds the newest durable checkpoint in dir,
// returning its cut and path, or ok=false when none exists.
func latestCheckpoint(fsys faultfs.FS, dir string) (cut uint64, path string, ok bool, err error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, "", false, err
	}
	for _, e := range ents {
		if c, isCkpt := parseCheckpointName(e.Name()); isCkpt && (!ok || c > cut) {
			cut, path, ok = c, filepath.Join(dir, e.Name()), true
		}
	}
	return cut, path, ok, nil
}

// OpenLiveShardedIndex opens (or creates) a durable live index rooted
// at opts.Dir. On first open the index comes from bootstrap — a closure
// building the initial corpus (from a dataset, a snapshot, or empty) —
// and an initial checkpoint is written immediately, so recovery never
// depends on reproducing the bootstrap. On later opens bootstrap is NOT
// called: the newest checkpoint is restored and the post-checkpoint
// segments are replayed on top. Either way the caller gets an index
// whose writes are durable per opts.Sync; Close it to release the log.
func OpenLiveShardedIndex(opts WALOptions, pol LivePolicy, bootstrap func() (*LiveShardedIndex, error)) (*LiveShardedIndex, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("trajcover: WAL dir required")
	}
	opts = opts.withProbeDefaults()
	fsys := faultfs.OrOS(opts.FS)
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	cut, ckptPath, haveCkpt, err := latestCheckpoint(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	var x *LiveShardedIndex
	if haveCkpt {
		f, err := faultfs.Open(fsys, ckptPath)
		if err != nil {
			return nil, err
		}
		x, err = ReadLiveSnapshot(f, pol)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trajcover: restore %s: %w", filepath.Base(ckptPath), err)
		}
	} else {
		if x, err = bootstrap(); err != nil {
			return nil, err
		}
		if x == nil {
			return nil, fmt.Errorf("trajcover: bootstrap returned no index")
		}
	}
	// Replay the acknowledged history since the checkpoint. Apply
	// failures are corruption: the log recorded only writes the index
	// had accepted, in apply order.
	_, _, err = wal.ReplayFrom(opts.Dir, cut, func(rec wal.Record) error {
		switch rec.Op {
		case wal.OpInsert:
			if err := x.s.Insert(rec.Trajectory); err != nil {
				return fmt.Errorf("%w: replay insert %d: %v", wal.ErrCorrupt, rec.Trajectory.ID, err)
			}
		case wal.OpDelete:
			found, err := x.s.Delete(rec.ID)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("%w: replay delete %d: not present", wal.ErrCorrupt, rec.ID)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(opts.Dir, opts.walOptions())
	if err != nil {
		return nil, err
	}
	x.s.AttachWAL(log)
	x.wal = &liveWAL{dir: opts.Dir, opts: opts, fs: fsys, stop: make(chan struct{})}
	// Checkpoint now: the restored-or-bootstrapped state becomes the
	// recovery base, bounding the next boot's replay to this session's
	// segments (and freeing the replayed ones). A failure here is a hard
	// boot error, not a degradation — nothing has been served yet.
	x.wal.mu.Lock()
	_, err = x.checkpointLocked()
	x.wal.mu.Unlock()
	if err != nil {
		log.Close()
		return nil, err
	}
	// From here on, WAL wedges and checkpoint failures degrade instead
	// of wedging forever: the hook spawns the backoff probe.
	x.s.SetDegradeHook(func(error) { x.startProbe() })
	return x, nil
}

// Checkpoint writes a durable checkpoint (TQLIVE01 snapshot of a
// write-consistent epoch cut) into the WAL directory and truncates the
// segments it covers. Writes and queries keep running; only the epoch
// capture + WAL rotation (microseconds) excludes writers. Requires an
// index opened with OpenLiveShardedIndex.
func (x *LiveShardedIndex) Checkpoint() error {
	if x.wal == nil {
		return fmt.Errorf("trajcover: no WAL attached (open with OpenLiveShardedIndex)")
	}
	x.wal.mu.Lock()
	_, err := x.checkpointLocked()
	x.wal.mu.Unlock()
	if err != nil {
		x.degradeOnCheckpoint(err)
	}
	return err
}

// degradeOnCheckpoint flips the index to degraded read-only mode after
// a runtime checkpoint failure: segments cannot be truncated and the
// recovery base cannot advance, so durability is no longer maintained.
// The degrade hook spawns the probe, which retries the checkpoint.
func (x *LiveShardedIndex) degradeOnCheckpoint(err error) {
	x.s.EnterDegraded(fmt.Errorf("checkpoint: %w", err))
}

// CheckpointTo is Checkpoint that additionally streams the checkpoint
// bytes to w (e.g. an HTTP response): the local checkpoint is made
// durable FIRST, then copied out, so a slow or failing client can never
// leave segments truncated without a durable snapshot covering them.
func (x *LiveShardedIndex) CheckpointTo(w io.Writer) error {
	if x.wal == nil {
		return fmt.Errorf("trajcover: no WAL attached (open with OpenLiveShardedIndex)")
	}
	x.wal.mu.Lock()
	path, err := x.checkpointLocked()
	if err != nil {
		x.wal.mu.Unlock()
		// The local checkpoint failed — a disk problem, not a client
		// problem: degrade like Checkpoint does.
		x.degradeOnCheckpoint(err)
		return err
	}
	defer x.wal.mu.Unlock()
	f, err := faultfs.Open(x.wal.fs, path)
	if err != nil {
		return err
	}
	// A copy failure past this point is the CLIENT's stream breaking
	// (the checkpoint itself is durable) — reported, never degrading.
	_, err = io.Copy(w, f)
	f.Close()
	return err
}

// checkpointLocked runs one checkpoint and returns the durable
// checkpoint file's path. Caller holds x.wal.mu.
func (x *LiveShardedIndex) checkpointLocked() (string, error) {
	eps, cut, err := x.s.CheckpointCapture()
	if err != nil {
		return "", err
	}
	final := filepath.Join(x.wal.dir, checkpointName(cut))
	tmp := final + ".tmp"
	fsys := x.wal.fs
	f, err := faultfs.Create(fsys, tmp)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	err = writeLiveSnapshot(bw, eps, x.s.PartitionerKind())
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return "", err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return "", err
	}
	if err := fsys.SyncDir(x.wal.dir); err != nil {
		return "", err
	}
	// The new checkpoint is durable: pre-cut segments and older
	// checkpoints are now dead weight. Failures past this point do not
	// undo the checkpoint.
	if err := x.s.WAL().RemoveBefore(cut); err != nil {
		return final, err
	}
	if err := removeOldCheckpoints(fsys, x.wal.dir, cut); err != nil {
		return final, err
	}
	x.wal.lastCkpt.Store(time.Now().UnixNano())
	return final, nil
}

// removeOldCheckpoints drops checkpoint files with cuts below keep,
// plus any abandoned .tmp files.
func removeOldCheckpoints(fsys faultfs.FS, dir string, keep uint64) error {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	var stale []string
	for _, e := range ents {
		name := e.Name()
		if c, ok := parseCheckpointName(name); ok && c < keep {
			stale = append(stale, name)
			continue
		}
		// Abandoned in-flight checkpoints from a crashed writer.
		if strings.HasSuffix(name, ".tmp") {
			if _, ok := parseCheckpointName(strings.TrimSuffix(name, ".tmp")); ok {
				stale = append(stale, name)
			}
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if len(stale) > 0 {
		return fsys.SyncDir(dir)
	}
	return nil
}

// startProbe spawns the degraded-mode recovery goroutine if one is not
// already running. Called from the degrade hook (on the failing
// writer's goroutine) and from the probe's own tail when a fresh
// degradation raced its exit.
func (x *LiveShardedIndex) startProbe() {
	w := x.wal
	if w == nil {
		return
	}
	if !w.probing.CompareAndSwap(false, true) {
		return // a probe is already running
	}
	select {
	case <-w.stop:
		w.probing.Store(false)
		return
	default:
	}
	w.wg.Add(1)
	go x.probeLoop()
}

// probeLoop retries recovery with capped exponential backoff + jitter
// until the index is healthy or the WAL is closed. Exactly one runs at
// a time (w.probing); Close waits for it via w.wg, so wedge→recover
// cycles never leak goroutines.
func (x *LiveShardedIndex) probeLoop() {
	w := x.wal
	defer w.wg.Done()
	backoff := w.opts.ProbeMin
	for {
		// Full jitter over [backoff, 1.5*backoff): concurrent tenants
		// degraded by one bad disk don't thunder back in lockstep.
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-w.stop:
			w.probing.Store(false)
			return
		case <-time.After(d):
		}
		if !x.s.Degraded() {
			break // recovered by other means (e.g. an explicit retry)
		}
		w.probes.Add(1)
		if err := x.tryRecover(); err == nil {
			w.recoveries.Add(1)
			break
		}
		backoff *= 2
		if backoff > w.opts.ProbeMax {
			backoff = w.opts.ProbeMax
		}
	}
	w.probing.Store(false)
	// A degradation that landed between the recovery and the flag reset
	// found probing=true and did not spawn — respawn for it.
	if x.s.Degraded() {
		x.startProbe()
	}
}

// tryRecover attempts one wedge→healthy transition. Sequence — each
// step justified by the ack invariant (nothing acked that disk
// refused; recovery replays nothing):
//
//  1. Close the wedged log (best effort; it already refuses writes)
//     and open a successor over the same directory. wal.Open verifies
//     and truncates the torn tail, and appends resume in a FRESH
//     segment — replayed bytes are immutable history.
//  2. Swap the successor in while writes are still rejected, so no
//     write can race the half-installed log.
//  3. Checkpoint. The in-memory state may contain applied-but-unacked
//     writes whose records the dying disk never persisted; the
//     checkpoint makes memory and disk agree again (and cuts away the
//     wedged segments) BEFORE any new write is accepted, so a later
//     crash's replay can never see a delete of a record it skipped.
//  4. Exit degraded mode: writes flow again.
func (x *LiveShardedIndex) tryRecover() error {
	w := x.wal
	if old := x.s.WAL(); old != nil {
		old.Close()
	}
	log, err := wal.Open(w.dir, w.opts.walOptions())
	if err != nil {
		return err
	}
	x.s.SwapWAL(log)
	w.mu.Lock()
	_, err = x.checkpointLocked()
	w.mu.Unlock()
	if err != nil {
		// The next attempt will close this log and open its successor.
		return err
	}
	x.s.ExitDegraded()
	return nil
}

// Health snapshots the degraded-mode state machine and the recovery
// probe counters. Usable on any live index; the probe counters are
// zero without a WAL.
func (x *LiveShardedIndex) Health() Health {
	h := x.s.Health()
	out := Health{
		Degraded: h.Degraded,
		Cause:    h.Cause,
		Since:    h.Since,
		Entries:  h.Entries,
		Exits:    h.Exits,
	}
	if x.wal != nil {
		out.Probes = x.wal.probes.Load()
		out.Recoveries = x.wal.recoveries.Load()
	}
	return out
}

// Degraded reports whether the index is currently rejecting writes in
// degraded read-only mode.
func (x *LiveShardedIndex) Degraded() bool { return x.s.Degraded() }

// WALStats returns durability counters; ok is false for an index with
// no WAL.
func (x *LiveShardedIndex) WALStats() (WALStats, bool) {
	if x.wal == nil {
		return WALStats{}, false
	}
	st := x.s.WAL().Stats()
	out := WALStats{
		Records:  st.Records,
		Segments: st.Segments,
		Bytes:    st.Bytes,
		Fsyncs:   st.Fsyncs,
		MaxFsync: time.Duration(st.MaxFsyncNanos),
	}
	if at := x.wal.lastCkpt.Load(); at > 0 {
		out.SinceCheckpoint = time.Since(time.Unix(0, at))
	}
	return out, true
}

// Close releases the WAL (flushing and fsyncing its tail) after
// stopping the degraded-mode recovery probe, if one is running.
// Acknowledged writes are durable before Close per the sync policy;
// Close makes the unacknowledged tail durable too. Queries remain
// usable; further writes fail. No-op for an index without a WAL.
// Idempotent.
func (x *LiveShardedIndex) Close() error {
	if x.wal == nil {
		return nil
	}
	x.wal.stopOnce.Do(func() { close(x.wal.stop) })
	x.wal.wg.Wait()
	if log := x.s.WAL(); log != nil {
		return log.Close()
	}
	return nil
}
