module github.com/trajcover/trajcover

go 1.22
