package trajcover

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

// streamer is any index flavor's streaming entry point, paired with
// its batch oracle.
type streamer struct {
	name   string
	batch  func(ctx context.Context, facs []*Facility, q Query, workers int) ([]float64, error)
	stream func(ctx context.Context, facs []*Facility, q Query, workers, chunk int, yield StreamVisitor) error
}

// streamFixtures builds one index per flavor over the same churned
// corpus (where the flavor allows churn; frozen flavors freeze the
// heap build of the same users).
func streamFixtures(t *testing.T) ([]streamer, []*Facility) {
	t.Helper()
	ny := NewYorkCity()
	users := TaxiTrips(ny, 60, 43)
	facs := BusRoutes(ny, 33, 6, 44)

	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sidx, err := NewShardedIndex(users, ShardOptions{Shards: 3, Index: IndexOptions{Ordering: ZOrdering}})
	if err != nil {
		t.Fatal(err)
	}
	sfz, err := sidx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	lv := churnedLiveIndex(t, users)
	single, err := NewLiveIndex(users[:40], LiveIndexOptions{Index: IndexOptions{Ordering: ZOrdering}, Policy: LivePolicy{Manual: true}})
	if err != nil {
		t.Fatal(err)
	}

	ss := []streamer{
		{"Index", idx.ServiceValuesCtx, idx.ServiceValuesStreamCtx},
		{"FrozenIndex", fz.ServiceValuesCtx, fz.ServiceValuesStreamCtx},
		{"ShardedIndex", sidx.ServiceValuesCtx, sidx.ServiceValuesStreamCtx},
		{"FrozenShardedIndex", sfz.ServiceValuesCtx, sfz.ServiceValuesStreamCtx},
		{"LiveIndex", single.ServiceValuesCtx, single.ServiceValuesStreamCtx},
		{"LiveShardedIndex", lv.ServiceValuesCtx, lv.ServiceValuesStreamCtx},
	}
	return ss, facs
}

// TestServiceValuesStreamMatchesBatch pins the streaming contract:
// over every index flavor and several chunk sizes, reassembled
// streamed values are bit-identical to the batch answer, chunks
// arrive in facility order with the declared starts, and metrics of
// correctness (no gaps, no overlaps) hold.
func TestServiceValuesStreamMatchesBatch(t *testing.T) {
	ss, facs := streamFixtures(t)
	ctx := context.Background()
	for _, sc := range []Scenario{Binary, PointCount, Length} {
		q := Query{Scenario: sc, Psi: DefaultPsi}
		for _, s := range ss {
			want, err := s.batch(ctx, facs, q, 2)
			if err != nil {
				t.Fatalf("%s/%v: batch: %v", s.name, sc, err)
			}
			for _, chunk := range []int{1, 7, 0, len(facs), len(facs) + 10} {
				got := make([]float64, len(facs))
				seen := make([]bool, len(facs))
				next := 0
				err := s.stream(ctx, facs, q, 2, chunk, func(start int, vals []float64) error {
					if start != next {
						return fmt.Errorf("chunk start %d, want %d", start, next)
					}
					for i, v := range vals {
						if seen[start+i] {
							return fmt.Errorf("facility %d yielded twice", start+i)
						}
						seen[start+i] = true
						got[start+i] = v
					}
					next = start + len(vals)
					return nil
				})
				if err != nil {
					t.Fatalf("%s/%v chunk %d: %v", s.name, sc, chunk, err)
				}
				if next != len(facs) {
					t.Fatalf("%s/%v chunk %d: stream ended at %d of %d", s.name, sc, chunk, next, len(facs))
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s/%v chunk %d: facility %d: streamed %v, batch %v", s.name, sc, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestServiceValuesStreamAborts pins the failure contract: a yield
// error surfaces verbatim and stops the stream at that chunk, and a
// cancelled context fails the stream.
func TestServiceValuesStreamAborts(t *testing.T) {
	ss, facs := streamFixtures(t)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	sentinel := errors.New("stop here")
	for _, s := range ss {
		calls := 0
		err := s.stream(context.Background(), facs, q, 1, 8, func(start int, vals []float64) error {
			calls++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: yield error = %v, want sentinel", s.name, err)
		}
		if calls != 1 {
			t.Fatalf("%s: %d chunks after aborting yield, want 1", s.name, calls)
		}

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := s.stream(ctx, facs, q, 1, 8, func(int, []float64) error { return nil }); err == nil {
			t.Fatalf("%s: cancelled stream returned nil error", s.name)
		}
	}
}

// TestServiceValuesStreamValidates pins that parameter validation
// fires even before the first chunk: a bad psi fails the stream
// without yielding, matching the batch path's error.
func TestServiceValuesStreamValidates(t *testing.T) {
	ss, facs := streamFixtures(t)
	bad := Query{Scenario: Binary, Psi: -1}
	for _, s := range ss {
		_, berr := s.batch(context.Background(), facs, bad, 1)
		if berr == nil {
			t.Fatalf("%s: batch accepted psi -1", s.name)
		}
		serr := s.stream(context.Background(), facs, bad, 1, 8, func(int, []float64) error {
			t.Fatalf("%s: yield called for invalid query", s.name)
			return nil
		})
		if serr == nil {
			t.Fatalf("%s: stream accepted psi -1", s.name)
		}
	}
}
