package trajcover

// Live snapshot persistence (TQLIVE01). A live index checkpoints
// without stopping writes: the writer captures each shard's current
// epoch — one atomic pointer load per shard — and serializes from those
// immutable values while inserts, deletes, and even background rebuilds
// keep running. Each shard's frame records the full epoch state:
//
//	TQLIVE01 — live container: CRC'd shared header (shard count,
//	           partitioner kind), then one length-prefixed,
//	           individually CRC'd frame per shard holding the frozen
//	           base payload (the TQSNAP03 column encoding), the
//	           tombstone IDs (sorted, so output is deterministic), and
//	           the delta trajectories.
//
// Restoring reassembles the epochs verbatim — frozen columns bulk-read
// and bounds-checked, tombstones and delta revalidated against the base
// — so a restored index resumes exactly the logical corpus the capture
// saw, still mutable, with its pending churn intact for the next
// rebuild to fold.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/trajectory"
)

var liveMagic = [8]byte{'T', 'Q', 'L', 'I', 'V', 'E', '0', '1'}

// livePayloadSize returns the exact encoded size of one epoch's frame
// payload — used to length-prefix frames without buffering them.
func livePayloadSize(ep *query.Epoch) uint64 {
	size := frozenPayloadSize(ep.Base().Frozen())
	size += 8 + 4*uint64(ep.TombstoneCount())
	size += pad8(4 * uint64(ep.TombstoneCount())) // realign after the u32 tombstones
	size += 8
	for _, u := range ep.Delta() {
		size += frozenTrajectorySize(u)
	}
	return size
}

// writeLivePayload encodes one epoch: frozen base columns, sorted
// tombstone IDs (padded back to 8-alignment), then the delta
// trajectories in overlay order using the frozen record format
// (cached length/MBR), so a mapped open can alias delta points too.
func writeLivePayload(w io.Writer, ep *query.Epoch) error {
	if err := writeFrozenPayload(w, ep.Base().Frozen()); err != nil {
		return err
	}
	dead := make([]uint32, 0, ep.TombstoneCount())
	for id := range ep.Tombstones() {
		dead = append(dead, uint32(id))
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	cw := newColWriter(w)
	cw.u64(uint64(len(dead)))
	for _, id := range dead {
		cw.u32(id)
	}
	cw.pad(i32Pad(uint64(len(dead))))
	delta := ep.Delta()
	cw.u64(uint64(len(delta)))
	for _, u := range delta {
		cw.u32(uint32(u.ID))
		cw.u32(uint32(u.Len()))
		cw.u64(math.Float64bits(u.Length()))
		cw.rects([]geo.Rect{u.MBR()})
		cw.points(u.Points)
	}
	cw.flush()
	return cw.err
}

// readLivePayload decodes one epoch frame and reassembles the epoch,
// revalidating tombstones and delta against the restored base.
func readLivePayload(r io.Reader) (*query.Epoch, error) {
	f, set, err := readFrozenPayload(r)
	if err != nil {
		return nil, err
	}
	cr := newColReader(r)
	var nDead uint64
	if err := cr.u64(&nDead); err != nil {
		return nil, fmt.Errorf("%w: truncated tombstones", ErrBadSnapshot)
	}
	if nDead > uint64(set.Len()) {
		return nil, fmt.Errorf("%w: %d tombstones over %d base trajectories", ErrBadSnapshot, nDead, set.Len())
	}
	deadIDs, err := cr.i32s(int(nDead))
	if err != nil {
		return nil, fmt.Errorf("%w: truncated tombstones", ErrBadSnapshot)
	}
	dead := make(map[trajectory.ID]struct{}, nDead)
	for _, id := range deadIDs {
		dead[trajectory.ID(uint32(id))] = struct{}{}
	}
	if uint64(len(dead)) != nDead {
		return nil, fmt.Errorf("%w: duplicate tombstone ids", ErrBadSnapshot)
	}
	if err := cr.skip(i32Pad(nDead)); err != nil {
		return nil, err
	}
	var nDelta uint64
	if err := cr.u64(&nDelta); err != nil {
		return nil, fmt.Errorf("%w: truncated delta", ErrBadSnapshot)
	}
	if nDelta > maxTrajectories {
		return nil, fmt.Errorf("%w: implausible delta count %d", ErrBadSnapshot, nDelta)
	}
	delta := make([]*trajectory.Trajectory, 0, minInt(int(nDelta), 1<<16))
	for i := uint64(0); i < nDelta; i++ {
		u, err := readFrozenTrajectoryRecord(cr, i)
		if err != nil {
			return nil, err
		}
		delta = append(delta, u)
	}
	ep, err := query.NewEpoch(query.NewFrozenEngine(f, set), delta, dead, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return ep, nil
}

// writeLiveSnapshot serializes a captured epoch set as a TQLIVE01
// container.
func writeLiveSnapshot(w io.Writer, eps []*query.Epoch, kind string) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(liveMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint64(len(eps))); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(kind))); err != nil {
		return err
	}
	if _, err := io.WriteString(mw, kind); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	// Realign so every frame's payload starts 8-aligned in the file —
	// the mapped reader aliases columns at file offsets. See
	// snapshot_frozen.go.
	if _, err := w.Write(make([]byte, pad8(uint64(len(kind))))); err != nil {
		return err
	}
	for _, ep := range eps {
		if err := binary.Write(w, binary.LittleEndian, livePayloadSize(ep)); err != nil {
			return err
		}
		fcrc := crc32.NewIEEE()
		if err := writeLivePayload(io.MultiWriter(w, fcrc), ep); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, fcrc.Sum32()); err != nil {
			return err
		}
		if _, err := w.Write([]byte{0, 0, 0, 0}); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot checkpoints the live index as a TQLIVE01 stream. The
// epoch set is captured atomically per shard up front, so the snapshot
// is a consistent cut of each shard while writes continue to land in
// successor epochs.
func (x *LiveShardedIndex) WriteSnapshot(w io.Writer) error {
	return writeLiveSnapshot(w, x.epochs(), x.s.PartitionerKind())
}

// WriteSnapshot checkpoints the live index as a single-shard TQLIVE01
// stream; restore with ReadLiveSnapshot.
func (x *LiveIndex) WriteSnapshot(w io.Writer) error {
	return writeLiveSnapshot(w, x.epochs(), x.s.PartitionerKind())
}

// ReadLiveSnapshot restores a live index written by WriteSnapshot —
// including any pending delta and tombstones, which the next rebuild
// folds as usual. pol tunes the restored index's compaction policy
// (policy is operational state, not data, so it is not recorded).
// A single-shard stream (a LiveIndex checkpoint) restores as a
// one-shard LiveShardedIndex, which serves identically.
func ReadLiveSnapshot(r io.Reader, pol LivePolicy) (*LiveShardedIndex, error) {
	base := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	br := &hashReader{r: base, crc: crc}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	switch magic {
	case liveMagic:
	case snapshotMagic, snapshotMagicV1, frozenMagic:
		return nil, fmt.Errorf("%w: single-index snapshot; use ReadSnapshot or ReadFrozenSnapshot", ErrBadSnapshot)
	case shardedMagic, shardedFrozenMagic:
		return nil, fmt.Errorf("%w: sharded snapshot; use ReadShardedSnapshot or ReadFrozenShardedSnapshot", ErrBadSnapshot)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var nShards uint64
	if err := binary.Read(br, binary.LittleEndian, &nShards); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	var kindLen uint32
	if err := binary.Read(br, binary.LittleEndian, &kindLen); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if kindLen > 256 {
		return nil, fmt.Errorf("%w: implausible partitioner kind length %d", ErrBadSnapshot, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kindBuf); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	wantHdr := crc.Sum32()
	var gotHdr uint32
	if err := binary.Read(base, binary.LittleEndian, &gotHdr); err != nil {
		return nil, fmt.Errorf("%w: missing header checksum", ErrBadSnapshot)
	}
	if gotHdr != wantHdr {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrBadSnapshot)
	}
	if err := readZeroPad(base, pad8(uint64(kindLen))); err != nil {
		return nil, err
	}

	const maxShards = 1 << 16
	if nShards == 0 || nShards > maxShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, nShards)
	}
	eps := make([]*query.Epoch, 0, nShards)
	for s := uint64(0); s < nShards; s++ {
		var payloadLen uint64
		if err := binary.Read(base, binary.LittleEndian, &payloadLen); err != nil {
			return nil, fmt.Errorf("%w: truncated frame %d", ErrBadSnapshot, s)
		}
		fcrc := crc32.NewIEEE()
		fr := &hashReader{r: io.LimitReader(base, int64(payloadLen)), crc: fcrc}
		ep, err := readLivePayload(fr)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", s, err)
		}
		if n, _ := io.Copy(io.Discard, fr); n != 0 {
			return nil, fmt.Errorf("%w: frame %d has %d trailing bytes", ErrBadSnapshot, s, n)
		}
		wantFrame := fcrc.Sum32()
		var gotFrame uint32
		if err := binary.Read(base, binary.LittleEndian, &gotFrame); err != nil {
			return nil, fmt.Errorf("%w: frame %d missing checksum", ErrBadSnapshot, s)
		}
		if gotFrame != wantFrame {
			return nil, fmt.Errorf("%w: frame %d checksum mismatch", ErrBadSnapshot, s)
		}
		if err := readZeroPad(base, 4); err != nil {
			return nil, fmt.Errorf("frame %d: %w", s, err)
		}
		eps = append(eps, ep)
	}

	part, _ := shard.PartitionerOf(string(kindBuf))
	l, err := shard.LiveFromEpochs(eps, part, pol.policy())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &LiveShardedIndex{s: l}, nil
}
