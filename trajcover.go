// Package trajcover is a Go library for trajectory coverage queries in
// spatial databases, implementing the TQ-tree index and query algorithms
// of "The Maximum Trajectory Coverage Query in Spatial Databases"
// (Ali et al., 2018, arXiv:1804.00599):
//
//   - kMaxRRST — the k facilities (e.g. bus routes) with the highest
//     service value to a set of user trajectories (Index.TopK).
//   - MaxkCovRST — the size-k facility subset with the highest combined
//     service, a non-submodular NP-hard problem answered with a two-step
//     greedy approximation (Index.MaxCoverage).
//
// Quick start:
//
//	users := trajcover.TaxiTrips(trajcover.NewYorkCity(), 50000, 1)
//	routes := trajcover.BusRoutes(trajcover.NewYorkCity(), 200, 32, 2)
//	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{})
//	if err != nil { ... }
//	top, err := idx.TopK(routes, 8, trajcover.Query{Scenario: trajcover.Binary, Psi: 300})
//
// Service semantics follow the paper's three scenarios: Binary (both trip
// endpoints within ψ of a stop), PointCount (fraction of points served),
// and Length (fraction of trajectory length served).
package trajcover

import (
	"context"
	"fmt"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/maxcov"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/simplify"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Core geometric and data-model types, re-exported for API users.
type (
	// Point is a planar location (meters).
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// ID identifies a trajectory or facility.
	ID = trajectory.ID
	// Trajectory is a user trajectory (≥ 2 ordered points).
	Trajectory = trajectory.Trajectory
	// Facility is a candidate facility route with stop points.
	Facility = trajectory.Facility
	// Scenario selects the service-value semantics.
	Scenario = service.Scenario
	// Variant selects how the index decomposes trajectories.
	Variant = tqtree.Variant
	// Ordering selects the per-node list organization.
	Ordering = tqtree.Ordering
	// Ranked is one facility of a top-k answer.
	Ranked = query.Result
	// QueryMetrics reports the work a query performed.
	QueryMetrics = query.Metrics
	// CoverageResult is a MaxkCovRST answer.
	CoverageResult = maxcov.Result
	// GeneticOptions tunes the genetic MaxkCovRST solver.
	GeneticOptions = maxcov.GeneticOptions
)

// Service scenarios (Section II of the paper).
const (
	// Binary serves a user iff both source and destination are within ψ
	// of the facility's stops (Scenario 1).
	Binary = service.Binary
	// PointCount serves the fraction of a user's points within ψ
	// (Scenario 2).
	PointCount = service.PointCount
	// Length serves the fraction of a user's length on segments whose
	// endpoints are both within ψ (Scenario 3).
	Length = service.Length
)

// Index variants (Section III).
const (
	// TwoPoint indexes source/destination only — the paper's base
	// structure, exact for Binary service.
	TwoPoint = tqtree.TwoPoint
	// Segmented indexes every trajectory segment separately (S-TQ).
	Segmented = tqtree.Segmented
	// FullTrajectory stores whole trajectories at their lowest
	// containing node (F-TQ) — exact for every scenario.
	FullTrajectory = tqtree.FullTrajectory
)

// List orderings.
const (
	// BasicOrdering keeps flat per-node lists — the paper's TQ(B).
	BasicOrdering = tqtree.Basic
	// ZOrdering keeps z-ordered β-buckets — the paper's TQ(Z).
	ZOrdering = tqtree.ZOrder
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// NewTrajectory builds a user trajectory from at least two points.
func NewTrajectory(id ID, points []Point) (*Trajectory, error) {
	return trajectory.New(id, points)
}

// NewFacility builds a facility route from its stop points.
func NewFacility(id ID, stops []Point) (*Facility, error) {
	return trajectory.NewFacility(id, stops)
}

// Query bundles the query-time parameters.
type Query struct {
	// Scenario selects the service semantics.
	Scenario Scenario
	// Psi is the serving distance threshold ψ (same unit as the data).
	Psi float64
}

func (q Query) params() query.Params {
	return query.Params{Scenario: q.Scenario, Psi: q.Psi}
}

// IndexOptions configures NewIndex. The zero value builds a TwoPoint,
// Z-ordered index with β = 64 and data-derived bounds — the paper's
// default TQ(Z) configuration.
type IndexOptions struct {
	Variant  Variant
	Ordering Ordering
	// Beta is the paper's block size β (0 means 64).
	Beta int
	// MaxDepth bounds quadtree depth (0 means 20).
	MaxDepth int
	// Bounds fixes the root space; the zero Rect derives it from the
	// data. Fix it generously when inserting after construction.
	Bounds Rect
	// Parallelism bounds the goroutines index construction may use
	// (0 means GOMAXPROCS, 1 forces serial). The built index is
	// identical regardless of the setting.
	Parallelism int
}

// Index is a TQ-tree over a set of user trajectories, answering both
// kMaxRRST and MaxkCovRST queries.
type Index struct {
	engine *query.Engine
	set    *trajectory.Set
}

// NewIndex builds a TQ-tree index over the given user trajectories.
func NewIndex(users []*Trajectory, opts IndexOptions) (*Index, error) {
	set, err := trajectory.NewSet(users)
	if err != nil {
		return nil, err
	}
	tree, err := tqtree.Build(users, tqtree.Options{
		Variant:     opts.Variant,
		Ordering:    opts.Ordering,
		Beta:        opts.Beta,
		MaxDepth:    opts.MaxDepth,
		Bounds:      opts.Bounds,
		Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &Index{engine: query.NewEngine(tree, set), set: set}, nil
}

// Insert adds a user trajectory to the index.
func (x *Index) Insert(u *Trajectory) error {
	if err := x.set.Add(u); err != nil {
		return err
	}
	x.engine.Tree().Insert(u)
	return nil
}

// Delete removes a user trajectory from the index, reporting whether it
// was present.
func (x *Index) Delete(u *Trajectory) bool {
	if x.set.ByID(u.ID) == nil {
		return false
	}
	if !x.engine.Tree().Delete(u) {
		return false
	}
	x.set.Remove(u.ID)
	return true
}

// ServedUser is one user of a ServedUsers answer.
type ServedUser = query.UserService

// ServedUsers returns every user with positive service from the facility
// — the reverse range search underlying kMaxRRST — ordered by service
// value descending.
func (x *Index) ServedUsers(f *Facility, q Query) ([]ServedUser, error) {
	us, _, err := x.engine.ServedUsers(f, q.params())
	return us, err
}

// Len returns the number of indexed user trajectories.
func (x *Index) Len() int { return x.set.Len() }

// ServiceValue computes SO(U, f): the exact service value of one facility
// (Algorithm 1 of the paper).
func (x *Index) ServiceValue(f *Facility, q Query) (float64, error) {
	v, _, err := x.engine.ServiceValue(f, q.params())
	return v, err
}

// TopK answers the kMaxRRST query: the k facilities with the highest
// service value, best first (Algorithm 3).
func (x *Index) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.engine.TopK(facilities, k, q.params())
	return res, err
}

// TopKWithMetrics is TopK returning work metrics for diagnostics.
func (x *Index) TopKWithMetrics(facilities []*Facility, k int, q Query) ([]Ranked, QueryMetrics, error) {
	return x.engine.TopK(facilities, k, q.params())
}

// ServiceValues computes the exact service value of every facility in
// one batch, sharding the work across a pool of `workers` goroutines
// (workers <= 0 uses GOMAXPROCS). The result is indexed like facilities
// and identical to calling ServiceValue in a loop. A built index is
// safe for any number of concurrent readers; do not Insert/Delete
// concurrently with queries.
func (x *Index) ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.engine.ServiceValues(facilities, q.params(), workers)
	return vs, err
}

// TopKParallel is TopK with up to `workers` best-first exploration steps
// run concurrently per round. The answer is identical to TopK; spare
// cores buy wall-clock speed at the cost of some speculative work.
func (x *Index) TopKParallel(facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.engine.TopKParallel(facilities, k, q.params(), workers)
	return res, err
}

// Deadline-aware variants. Every index type exposes *Ctx forms of its
// batch and top-k entry points: the search polls ctx between facility
// relaxations (TopK) or between per-facility evaluations (ServiceValues)
// and aborts with ctx.Err() — context.DeadlineExceeded or
// context.Canceled — returning no partial answer. A context that cannot
// be cancelled (context.Background) adds no measurable overhead. This is
// what lets a serving front end (cmd/tqserve) bound every request:
// an expired deadline stops the query instead of letting it run on and
// steal workers from queued requests.

// ServiceValuesCtx is ServiceValues with cooperative cancellation; see
// the deadline-aware variants note above.
func (x *Index) ServiceValuesCtx(ctx context.Context, facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.engine.ServiceValuesCtx(ctx, facilities, q.params(), workers)
	return vs, err
}

// TopKCtx is TopK with cooperative cancellation; see the deadline-aware
// variants note above.
func (x *Index) TopKCtx(ctx context.Context, facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.engine.TopKCtx(ctx, facilities, k, q.params())
	return res, err
}

// TopKParallelCtx is TopKParallel with cooperative cancellation; see the
// deadline-aware variants note above.
func (x *Index) TopKParallelCtx(ctx context.Context, facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.engine.TopKParallelCtx(ctx, facilities, k, q.params(), workers)
	return res, err
}

// Partitioner assigns trajectories to shards; see HashPartitioner and
// GridPartitioner for the built-in strategies.
type Partitioner = shard.Partitioner

// HashPartitioner partitions by user-ID hash: balanced shards, uniform
// per-shard query fan-out.
func HashPartitioner() Partitioner { return shard.Hash{} }

// GridPartitioner partitions by geographic cell of each trajectory's
// source point: localized queries touch few shards and the scatter-gather
// search prunes the rest, at the cost of load skew on concentrated data.
func GridPartitioner() Partitioner { return shard.Grid{} }

// ShardOptions configures NewShardedIndex. The zero value builds a
// single hash shard with default index options — equivalent to NewIndex.
type ShardOptions struct {
	// Shards is the number of TQ-trees to partition across (0 means 1).
	Shards int
	// Partitioner assigns trajectories to shards (nil means
	// HashPartitioner()).
	Partitioner Partitioner
	// Index configures every shard's tree. Index.Parallelism is the
	// total build budget shared across shard builds.
	Index IndexOptions
}

func (o ShardOptions) shardOptions() shard.Options {
	return shard.Options{
		Shards:      o.Shards,
		Partitioner: o.Partitioner,
		Tree: tqtree.Options{
			Variant:     o.Index.Variant,
			Ordering:    o.Index.Ordering,
			Beta:        o.Index.Beta,
			MaxDepth:    o.Index.MaxDepth,
			Bounds:      o.Index.Bounds,
			Parallelism: o.Index.Parallelism,
		},
	}
}

// ShardedIndex partitions user trajectories across several TQ-trees and
// answers kMaxRRST queries by scatter-gather: a query fans out to every
// shard and per-shard best-first searches merge through a global k-heap
// whose shard-level upper bounds prune exploration that cannot change
// the answer. Use it when one tree is too large to build, rebuild, or
// hold comfortably — shards build in parallel and rebuild independently.
//
// Answers match the single-tree Index exactly for integral scenarios
// (Binary; every scenario over integral service values) and up to
// floating-point summation order otherwise.
type ShardedIndex struct {
	s *shard.Sharded
}

// NewShardedIndex partitions users with opts.Partitioner and builds one
// TQ-tree per shard, in parallel within opts.Index.Parallelism.
func NewShardedIndex(users []*Trajectory, opts ShardOptions) (*ShardedIndex, error) {
	s, err := shard.Build(users, opts.shardOptions())
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{s: s}, nil
}

// NumShards returns the number of shards.
func (x *ShardedIndex) NumShards() int { return x.s.NumShards() }

// ShardSizes returns the number of trajectories in each shard.
func (x *ShardedIndex) ShardSizes() []int { return x.s.Sizes() }

// Len returns the total number of indexed user trajectories.
func (x *ShardedIndex) Len() int { return x.s.Len() }

// Insert routes a user trajectory to its shard and inserts it there.
// Like Index.Insert it is not safe concurrently with queries, but only
// the target shard is affected.
func (x *ShardedIndex) Insert(u *Trajectory) error { return x.s.Insert(u) }

// ServiceValue computes SO(U, f) as the sum of per-shard service values.
func (x *ShardedIndex) ServiceValue(f *Facility, q Query) (float64, error) {
	v, _, err := x.s.ServiceValue(f, q.params())
	return v, err
}

// ServiceValues computes the exact service value of every facility,
// scattering each shard's batch across `workers` goroutines (<= 0 uses
// GOMAXPROCS). The result is indexed like facilities.
func (x *ShardedIndex) ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValues(facilities, q.params(), workers)
	return vs, err
}

// TopK answers kMaxRRST over all shards by scatter-gather, best first.
func (x *ShardedIndex) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopK(facilities, k, q.params())
	return res, err
}

// TopKWithMetrics is TopK returning the merged per-shard work metrics.
func (x *ShardedIndex) TopKWithMetrics(facilities []*Facility, k int, q Query) ([]Ranked, QueryMetrics, error) {
	return x.s.TopK(facilities, k, q.params())
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK.
func (x *ShardedIndex) TopKParallel(facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallel(facilities, k, q.params(), workers)
	return res, err
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation; see
// the deadline-aware variants note on Index.
func (x *ShardedIndex) ServiceValuesCtx(ctx context.Context, facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValuesCtx(ctx, facilities, q.params(), workers)
	return vs, err
}

// TopKCtx is TopK with cooperative cancellation; see the deadline-aware
// variants note on Index.
func (x *ShardedIndex) TopKCtx(ctx context.Context, facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopKCtx(ctx, facilities, k, q.params())
	return res, err
}

// TopKParallelCtx is TopKParallel with cooperative cancellation; see the
// deadline-aware variants note on Index.
func (x *ShardedIndex) TopKParallelCtx(ctx context.Context, facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallelCtx(ctx, facilities, k, q.params(), workers)
	return res, err
}

// CoverageAlgorithm selects the MaxkCovRST solver.
type CoverageAlgorithm int

const (
	// TwoStepGreedy is the paper's solution: prune to the k' highest
	// individually-serving facilities with kMaxRRST, then run greedy.
	TwoStepGreedy CoverageAlgorithm = iota
	// FullGreedy runs the straightforward greedy over all facilities.
	FullGreedy
	// Genetic runs a genetic algorithm (the paper's Gn-TQ comparison).
	Genetic
	// Exact enumerates all size-k subsets (small inputs only).
	Exact
	// Annealing runs simulated annealing over k-subsets (the paper
	// names it among the offline alternatives to its greedy solution).
	Annealing
)

// String implements fmt.Stringer.
func (a CoverageAlgorithm) String() string {
	switch a {
	case TwoStepGreedy:
		return "two-step-greedy"
	case FullGreedy:
		return "full-greedy"
	case Genetic:
		return "genetic"
	case Exact:
		return "exact"
	case Annealing:
		return "annealing"
	}
	return fmt.Sprintf("CoverageAlgorithm(%d)", int(a))
}

// CoverageOptions tunes MaxCoverage. The zero value runs the paper's
// two-step greedy with the default candidate width.
type CoverageOptions struct {
	Algorithm CoverageAlgorithm
	// KPrime is the two-step candidate width k' (0 means
	// max(2k, k+8) capped at the number of facilities).
	KPrime int
	// GeneticOptions applies when Algorithm == Genetic.
	Genetic GeneticOptions
	// Anneal applies when Algorithm == Annealing.
	Anneal AnnealOptions
}

// AnnealOptions tunes the simulated-annealing solver.
type AnnealOptions = maxcov.AnnealOptions

// MaxCoverage answers the MaxkCovRST query: the size-k facility subset
// with the (approximately) maximum combined service, where users may be
// served jointly by multiple facilities.
func (x *Index) MaxCoverage(facilities []*Facility, k int, q Query, opts CoverageOptions) (CoverageResult, error) {
	src := maxcov.EngineSource{Engine: x.engine}
	switch opts.Algorithm {
	case TwoStepGreedy:
		return maxcov.TwoStepGreedy(x.engine, facilities, k, opts.KPrime, q.params())
	case FullGreedy:
		return maxcov.Greedy(src, facilities, k, q.params())
	case Genetic:
		return maxcov.Genetic(src, facilities, k, q.params(), opts.Genetic)
	case Exact:
		return maxcov.Exact(src, facilities, k, q.params())
	case Annealing:
		return maxcov.Anneal(src, facilities, k, q.params(), opts.Anneal)
	}
	return CoverageResult{}, fmt.Errorf("trajcover: unknown coverage algorithm %d", int(opts.Algorithm))
}

// Baseline is the paper's BL comparison method: a traditional point
// quadtree over user-trajectory points queried once per facility stop.
// It answers the same queries as Index, slower — it exists so downstream
// users can reproduce the paper's comparisons.
type Baseline struct {
	bl  *query.Baseline
	set *trajectory.Set
}

// NewBaseline builds the baseline point index. variant selects the
// objective translation so results are comparable with the matching
// Index variant.
func NewBaseline(users []*Trajectory, variant Variant) (*Baseline, error) {
	set, err := trajectory.NewSet(users)
	if err != nil {
		return nil, err
	}
	return &Baseline{bl: query.NewBaseline(set, variant), set: set}, nil
}

// ServiceValue computes SO(U, f) by per-stop range queries.
func (b *Baseline) ServiceValue(f *Facility, q Query) (float64, error) {
	return b.bl.ServiceValue(f, q.params())
}

// TopK evaluates every facility and returns the k best.
func (b *Baseline) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	return b.bl.TopK(facilities, k, q.params())
}

// MaxCoverage runs a MaxkCovRST solver over baseline coverage — the
// paper's G-BL method when opts.Algorithm is FullGreedy.
func (b *Baseline) MaxCoverage(facilities []*Facility, k int, q Query, opts CoverageOptions) (CoverageResult, error) {
	src := maxcov.BaselineSource{Baseline: b.bl}
	switch opts.Algorithm {
	case TwoStepGreedy, FullGreedy:
		return maxcov.Greedy(src, facilities, k, q.params())
	case Genetic:
		return maxcov.Genetic(src, facilities, k, q.params(), opts.Genetic)
	case Exact:
		return maxcov.Exact(src, facilities, k, q.params())
	case Annealing:
		return maxcov.Anneal(src, facilities, k, q.params(), opts.Anneal)
	}
	return CoverageResult{}, fmt.Errorf("trajcover: unknown coverage algorithm %d", int(opts.Algorithm))
}

// City is a synthetic city model for workload generation.
type City = datagen.City

// DefaultPsi is a walkable serving distance (300 m) matching the
// generated cities' meter scale.
const DefaultPsi = datagen.DefaultPsi

// NewYorkCity returns the synthetic New York stand-in (~30 × 40 km).
func NewYorkCity() *City { return datagen.NewYork() }

// BeijingCity returns the synthetic Beijing stand-in (~40 × 40 km).
func BeijingCity() *City { return datagen.Beijing() }

// TaxiTrips generates n point-to-point trips (NYT-like workload).
func TaxiTrips(c *City, n int, seed int64) []*Trajectory {
	return datagen.TaxiTrips(c, n, seed)
}

// Checkins generates n multipoint check-in sequences (NYF-like workload)
// with 2..maxPts points each.
func Checkins(c *City, n, maxPts int, seed int64) []*Trajectory {
	return datagen.Checkins(c, n, maxPts, seed)
}

// GPSTraces generates n long GPS traces (BJG-like workload) with
// minPts..maxPts points each.
func GPSTraces(c *City, n, minPts, maxPts int, seed int64) []*Trajectory {
	return datagen.GPSTraces(c, n, minPts, maxPts, seed)
}

// BusRoutes generates candidate facility routes with the given number of
// stops each.
func BusRoutes(c *City, nRoutes, stopsPerRoute int, seed int64) []*Facility {
	return datagen.BusRoutes(c, nRoutes, stopsPerRoute, seed)
}

// Simplify reduces raw GPS trajectories with Douglas-Peucker polyline
// simplification at the given tolerance (same unit as the coordinates).
// Use it to preprocess dense traces (e.g. Geolife) before indexing.
func Simplify(ts []*Trajectory, epsilon float64) ([]*Trajectory, error) {
	return simplify.Set(ts, epsilon)
}
