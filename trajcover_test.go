package trajcover

import (
	"math"
	"testing"
)

func smallWorkload(t *testing.T) ([]*Trajectory, []*Facility) {
	t.Helper()
	city := NewYorkCity()
	users := TaxiTrips(city, 2000, 1)
	routes := BusRoutes(city, 40, 16, 2)
	return users, routes
}

func TestPublicAPIEndToEnd(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 2000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	top, err := idx.TopK(routes, 8, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 8 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Service > top[i-1].Service {
			t.Fatal("TopK not sorted")
		}
	}
	// The winner's service must match a direct evaluation.
	direct, err := idx.ServiceValue(top[0].Facility, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-top[0].Service) > 1e-9 {
		t.Fatalf("TopK service %v != direct %v", top[0].Service, direct)
	}
}

func TestPublicAPIBatchExecutor(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	vals, err := idx.ServiceValues(routes, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(routes) {
		t.Fatalf("ServiceValues returned %d values for %d routes", len(vals), len(routes))
	}
	for i, f := range routes {
		direct, err := idx.ServiceValue(f, q)
		if err != nil {
			t.Fatal(err)
		}
		if vals[i] != direct {
			t.Fatalf("route %d: batch %v != direct %v", i, vals[i], direct)
		}
	}
	want, err := idx.TopK(routes, 8, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.TopKParallel(routes, 8, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("TopKParallel returned %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
			t.Fatalf("rank %d: parallel (%d, %v) != serial (%d, %v)",
				i, got[i].Facility.ID, got[i].Service, want[i].Facility.ID, want[i].Service)
		}
	}
}

func TestPublicAPIBaselineAgrees(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := NewBaseline(users, TwoPoint)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	a, err := idx.TopK(routes, 5, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bl.TopK(routes, 5, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i].Service-b[i].Service) > 1e-9 {
			t.Fatalf("rank %d: index %v != baseline %v", i, a[i].Service, b[i].Service)
		}
	}
}

func TestPublicAPIMaxCoverageAlgorithms(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	for _, alg := range []CoverageAlgorithm{TwoStepGreedy, FullGreedy, Genetic} {
		res, err := idx.MaxCoverage(routes, 4, q, CoverageOptions{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Facilities) != 4 {
			t.Fatalf("%v returned %d facilities", alg, len(res.Facilities))
		}
		if res.Value <= 0 || res.UsersServed <= 0 {
			t.Fatalf("%v returned empty coverage: %+v", alg, res)
		}
	}
	// Exact on a small slice of routes.
	res, err := idx.MaxCoverage(routes[:8], 2, q, CoverageOptions{Algorithm: Exact})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := idx.MaxCoverage(routes[:8], 2, q, CoverageOptions{Algorithm: FullGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Value > res.Value+1e-9 {
		t.Fatalf("greedy %v beat exact %v", greedy.Value, res.Value)
	}
	if _, err := idx.MaxCoverage(routes, 2, q, CoverageOptions{Algorithm: CoverageAlgorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPublicAPIInsert(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users[:1000], IndexOptions{Bounds: Rect{MaxX: 30000, MaxY: 40000}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[1000:] {
		if err := idx.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 2000 {
		t.Fatalf("Len after insert = %d", idx.Len())
	}
	// Duplicate insert must fail.
	if err := idx.Insert(users[0]); err == nil {
		t.Error("duplicate insert accepted")
	}
	// Post-insert queries must agree with a fresh index.
	fresh, err := NewIndex(users, IndexOptions{Bounds: Rect{MaxX: 30000, MaxY: 40000}})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	for _, f := range routes[:5] {
		a, err := idx.ServiceValue(f, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.ServiceValue(f, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("facility %d: inserted %v != fresh %v", f.ID, a, b)
		}
	}
}

func TestPublicAPIMultipointScenarios(t *testing.T) {
	city := NewYorkCity()
	users := Checkins(city, 1000, 6, 3)
	routes := BusRoutes(city, 20, 24, 4)
	for _, variant := range []Variant{Segmented, FullTrajectory} {
		idx, err := NewIndex(users, IndexOptions{Variant: variant, Ordering: ZOrdering})
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []Scenario{PointCount, Length} {
			top, err := idx.TopK(routes, 3, Query{Scenario: sc, Psi: DefaultPsi})
			if err != nil {
				t.Fatalf("%v/%v: %v", variant, sc, err)
			}
			if len(top) != 3 {
				t.Fatalf("%v/%v: %d results", variant, sc, len(top))
			}
		}
	}
	// TwoPoint over multipoint data must reject PointCount.
	idx, err := NewIndex(users, IndexOptions{Variant: TwoPoint})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.TopK(routes, 3, Query{Scenario: PointCount, Psi: DefaultPsi}); err == nil {
		t.Error("TwoPoint index accepted PointCount over multipoint data")
	}
}

func TestPublicAPIDeleteAndServedUsers(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	served, err := idx.ServedUsers(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := idx.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range served {
		sum += s.Value
	}
	if math.Abs(sum-direct) > 1e-9 {
		t.Fatalf("ServedUsers sum %v != ServiceValue %v", sum, direct)
	}

	// Deleting every served user drives the route's service to zero.
	for _, s := range served {
		u := users[0]
		for _, cand := range users {
			if cand.ID == s.User {
				u = cand
				break
			}
		}
		if !idx.Delete(u) {
			t.Fatalf("Delete(%d) failed", s.User)
		}
	}
	after, err := idx.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Fatalf("service after deleting all served users = %v, want 0", after)
	}
	if idx.Delete(ghostTrajectory()) {
		t.Error("Delete of unknown trajectory succeeded")
	}
}

// ghostTrajectory builds a throwaway trajectory with an unused ID.
func ghostTrajectory() *Trajectory {
	t, _ := NewTrajectory(4_000_000, []Point{Pt(1, 1), Pt(2, 2)})
	return t
}

func TestPublicAPIConstructors(t *testing.T) {
	tr, err := NewTrajectory(1, []Point{Pt(0, 0), Pt(1, 1)})
	if err != nil || tr.Len() != 2 {
		t.Fatalf("NewTrajectory: %v %v", tr, err)
	}
	if _, err := NewTrajectory(1, []Point{Pt(0, 0)}); err == nil {
		t.Error("single-point trajectory accepted")
	}
	f, err := NewFacility(2, []Point{Pt(3, 4)})
	if err != nil || f.Len() != 1 {
		t.Fatalf("NewFacility: %v %v", f, err)
	}
	if CoverageAlgorithm(99).String() == "" || TwoStepGreedy.String() != "two-step-greedy" {
		t.Error("CoverageAlgorithm.String broken")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	ny, bj := NewYorkCity(), BeijingCity()
	if len(TaxiTrips(ny, 10, 1)) != 10 {
		t.Error("TaxiTrips count")
	}
	if len(Checkins(ny, 10, 5, 1)) != 10 {
		t.Error("Checkins count")
	}
	if len(GPSTraces(bj, 10, 5, 20, 1)) != 10 {
		t.Error("GPSTraces count")
	}
	if len(BusRoutes(ny, 10, 8, 1)) != 10 {
		t.Error("BusRoutes count")
	}
}
