package query

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

var testBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

// makeUsers generates locality-clustered user trajectories.
func makeUsers(n, maxPts int, seed int64) *trajectory.Set {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	for i := range out {
		npts := 2
		if maxPts > 2 {
			npts += rng.Intn(maxPts - 1)
		}
		ax := rng.Float64() * 1000
		ay := rng.Float64() * 1000
		pts := make([]geo.Point, npts)
		for j := range pts {
			pts[j] = geo.Pt(
				clampF(ax+rng.NormFloat64()*80, 0, 1000),
				clampF(ay+rng.NormFloat64()*80, 0, 1000),
			)
		}
		out[i] = trajectory.MustNew(trajectory.ID(i), pts)
	}
	return trajectory.MustNewSet(out)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// makeFacilities generates facilities as short routes of nearby stops.
func makeFacilities(n, stops int, seed int64) []*trajectory.Facility {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Facility, n)
	for i := range out {
		ax := rng.Float64() * 1000
		ay := rng.Float64() * 1000
		dirx := rng.NormFloat64()
		diry := rng.NormFloat64()
		pts := make([]geo.Point, stops)
		for j := range pts {
			t := float64(j) * 30
			pts[j] = geo.Pt(
				clampF(ax+dirx*t+rng.NormFloat64()*10, 0, 1000),
				clampF(ay+diry*t+rng.NormFloat64()*10, 0, 1000),
			)
		}
		out[i] = trajectory.MustNewFacility(trajectory.ID(i), pts)
	}
	return out
}

type config struct {
	variant  tqtree.Variant
	ordering tqtree.Ordering
	scenario service.Scenario
}

// validConfigs enumerates every (variant, ordering, scenario) combination
// that is exact for the given data shape.
func validConfigs(multipoint bool) []config {
	var out []config
	for _, v := range []tqtree.Variant{tqtree.TwoPoint, tqtree.Segmented, tqtree.FullTrajectory} {
		for _, o := range []tqtree.Ordering{tqtree.Basic, tqtree.ZOrder} {
			for _, sc := range []service.Scenario{service.Binary, service.PointCount, service.Length} {
				if multipoint && v == tqtree.TwoPoint && sc != service.Binary {
					continue
				}
				out = append(out, config{v, o, sc})
			}
		}
	}
	return out
}

func TestServiceValueMatchesOracleTwoPointData(t *testing.T) {
	users := makeUsers(400, 2, 101)
	facilities := makeFacilities(20, 8, 102)
	psi := 35.0
	for _, cfg := range validConfigs(false) {
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(tree, users)
		p := Params{Scenario: cfg.scenario, Psi: psi}
		for _, f := range facilities {
			got, _, err := eng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			want := ExactServiceValue(cfg.variant, cfg.scenario, users, f.Stops, psi)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("%v/%v/%v facility %d: got %v, want %v",
					cfg.variant, cfg.ordering, cfg.scenario, f.ID, got, want)
			}
		}
	}
}

func TestServiceValueMatchesOracleMultipointData(t *testing.T) {
	users := makeUsers(300, 6, 103)
	facilities := makeFacilities(15, 10, 104)
	psi := 40.0
	for _, cfg := range validConfigs(true) {
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(tree, users)
		p := Params{Scenario: cfg.scenario, Psi: psi}
		for _, f := range facilities {
			got, _, err := eng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			want := ExactServiceValue(cfg.variant, cfg.scenario, users, f.Stops, psi)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("%v/%v/%v facility %d: got %v, want %v",
					cfg.variant, cfg.ordering, cfg.scenario, f.ID, got, want)
			}
		}
	}
}

func TestServiceValueRandomizedPsiSweep(t *testing.T) {
	users := makeUsers(200, 4, 105)
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 20; trial++ {
		psi := 1 + rng.Float64()*150
		f := makeFacilities(1, 1+rng.Intn(30), int64(trial)+200)[0]
		for _, cfg := range validConfigs(true) {
			tree, err := tqtree.Build(users.All, tqtree.Options{
				Variant: cfg.variant, Ordering: cfg.ordering, Beta: 4, Bounds: testBounds,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(tree, users)
			got, _, err := eng.ServiceValue(f, Params{Scenario: cfg.scenario, Psi: psi})
			if err != nil {
				t.Fatal(err)
			}
			want := ExactServiceValue(cfg.variant, cfg.scenario, users, f.Stops, psi)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("psi=%v %v/%v/%v: got %v, want %v",
					psi, cfg.variant, cfg.ordering, cfg.scenario, got, want)
			}
		}
	}
}

func TestTopKMatchesExhaustiveAndBaseline(t *testing.T) {
	users := makeUsers(500, 2, 107)
	facilities := makeFacilities(40, 8, 108)
	psi := 30.0
	for _, cfg := range validConfigs(false) {
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(tree, users)
		bl := NewBaseline(users, cfg.variant)
		p := Params{Scenario: cfg.scenario, Psi: psi}
		for _, k := range []int{1, 4, 10, 40, 100} {
			best, _, err := eng.TopK(facilities, k, p)
			if err != nil {
				t.Fatal(err)
			}
			exh, _, err := eng.TopKExhaustive(facilities, k, p)
			if err != nil {
				t.Fatal(err)
			}
			blres, err := bl.TopK(facilities, k, p)
			if err != nil {
				t.Fatal(err)
			}
			wantLen := k
			if wantLen > len(facilities) {
				wantLen = len(facilities)
			}
			if len(best) != wantLen || len(exh) != wantLen || len(blres) != wantLen {
				t.Fatalf("%+v k=%d: lengths %d/%d/%d want %d",
					cfg, k, len(best), len(exh), len(blres), wantLen)
			}
			for i := range best {
				if math.Abs(best[i].Service-exh[i].Service) > 1e-6*(1+exh[i].Service) {
					t.Fatalf("%+v k=%d rank %d: best-first %v != exhaustive %v",
						cfg, k, i, best[i].Service, exh[i].Service)
				}
				if math.Abs(best[i].Service-blres[i].Service) > 1e-6*(1+blres[i].Service) {
					t.Fatalf("%+v k=%d rank %d: best-first %v != baseline %v",
						cfg, k, i, best[i].Service, blres[i].Service)
				}
			}
			// Service values must be non-increasing.
			for i := 1; i < len(best); i++ {
				if best[i].Service > best[i-1].Service+1e-9 {
					t.Fatalf("top-k not sorted at %d", i)
				}
			}
		}
	}
}

func TestTopKMultipointAgainstBaseline(t *testing.T) {
	users := makeUsers(300, 6, 109)
	facilities := makeFacilities(25, 12, 110)
	psi := 45.0
	for _, cfg := range validConfigs(true) {
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(tree, users)
		bl := NewBaseline(users, cfg.variant)
		p := Params{Scenario: cfg.scenario, Psi: psi}
		best, _, err := eng.TopK(facilities, 5, p)
		if err != nil {
			t.Fatal(err)
		}
		blres, err := bl.TopK(facilities, 5, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range best {
			if math.Abs(best[i].Service-blres[i].Service) > 1e-6*(1+blres[i].Service) {
				t.Fatalf("%+v rank %d: %v != baseline %v",
					cfg, i, best[i].Service, blres[i].Service)
			}
		}
	}
}

func TestCoverageMatchesDirectMask(t *testing.T) {
	users := makeUsers(200, 5, 111)
	facilities := makeFacilities(10, 10, 112)
	psi := 50.0
	for _, variant := range []tqtree.Variant{tqtree.Segmented, tqtree.FullTrajectory} {
		for _, ordering := range []tqtree.Ordering{tqtree.Basic, tqtree.ZOrder} {
			tree, err := tqtree.Build(users.All, tqtree.Options{
				Variant: variant, Ordering: ordering, Beta: 8, Bounds: testBounds,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(tree, users)
			p := Params{Scenario: service.PointCount, Psi: psi}
			for _, f := range facilities {
				cov, _, err := eng.Coverage(f, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, u := range users.All {
					want := service.MaskOf(u, f.Stops, psi)
					got := cov[u.ID]
					if got == nil {
						got = service.NewMask(u.Len())
					}
					for i := 0; i < u.Len(); i++ {
						if got.Get(i) != want.Get(i) {
							t.Fatalf("%v/%v facility %d user %d point %d: got %v want %v",
								variant, ordering, f.ID, u.ID, i, got.Get(i), want.Get(i))
						}
					}
				}
			}
		}
	}
}

func TestCoverageTwoPointEndpointsExact(t *testing.T) {
	// TwoPoint coverage guarantees exact source/destination bits only.
	users := makeUsers(200, 5, 113)
	facilities := makeFacilities(10, 10, 114)
	psi := 50.0
	tree, err := tqtree.Build(users.All, tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	p := Params{Scenario: service.Binary, Psi: psi}
	for _, f := range facilities {
		cov, _, err := eng.Coverage(f, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range users.All {
			want := service.MaskOf(u, f.Stops, psi)
			got := cov[u.ID]
			if got == nil {
				got = service.NewMask(u.Len())
			}
			for _, i := range []int{0, u.Len() - 1} {
				if got.Get(i) != want.Get(i) {
					t.Fatalf("facility %d user %d endpoint %d: got %v want %v",
						f.ID, u.ID, i, got.Get(i), want.Get(i))
				}
			}
		}
	}
}

func TestBaselineCoverageMatchesDirect(t *testing.T) {
	users := makeUsers(200, 5, 115)
	f := makeFacilities(1, 15, 116)[0]
	psi := 60.0
	bl := NewBaseline(users, tqtree.FullTrajectory)
	cov, err := bl.Coverage(f, Params{Scenario: service.PointCount, Psi: psi})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users.All {
		want := service.MaskOf(u, f.Stops, psi)
		got := cov[u.ID]
		if got == nil {
			got = service.NewMask(u.Len())
		}
		for i := 0; i < u.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("user %d point %d coverage mismatch", u.ID, i)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	users := makeUsers(50, 2, 117)
	facilities := makeFacilities(5, 4, 118)
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	p := Params{Scenario: service.Binary, Psi: 20}

	if res, _, err := eng.TopK(facilities, 0, p); err != nil || len(res) != 0 {
		t.Errorf("k=0: %v, %v", res, err)
	}
	if res, _, err := eng.TopK(nil, 3, p); err != nil || len(res) != 0 {
		t.Errorf("no facilities: %v, %v", res, err)
	}
	if res, _, err := eng.TopK(facilities, 100, p); err != nil || len(res) != 5 {
		t.Errorf("k>n returned %d results (err %v), want 5", len(res), err)
	}
	if _, _, err := eng.TopK(facilities, 3, Params{Scenario: service.Scenario(9), Psi: 1}); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, _, err := eng.TopK(facilities, 3, Params{Scenario: service.Binary, Psi: -1}); err == nil {
		t.Error("negative psi accepted")
	}
}

func TestScenarioValidationOnMultipointTwoPoint(t *testing.T) {
	users := makeUsers(50, 5, 119)
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	f := makeFacilities(1, 4, 120)[0]
	if _, _, err := eng.ServiceValue(f, Params{Scenario: service.PointCount, Psi: 10}); err == nil {
		t.Error("TwoPoint tree over multipoint data accepted PointCount query")
	}
}

func TestFarAwayFacilityZeroService(t *testing.T) {
	users := makeUsers(100, 3, 121)
	far := trajectory.MustNewFacility(1, []geo.Point{geo.Pt(1e6, 1e6), geo.Pt(1e6+10, 1e6)})
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.FullTrajectory, Ordering: tqtree.ZOrder, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	for sc := service.Binary; sc <= service.Length; sc++ {
		got, _, err := eng.ServiceValue(far, Params{Scenario: sc, Psi: 50})
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("scenario %v: far facility service %v, want 0", sc, got)
		}
	}
}

func TestMetricsPopulated(t *testing.T) {
	users := makeUsers(500, 2, 122)
	facilities := makeFacilities(20, 8, 123)
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	_, m, err := eng.TopK(facilities, 5, Params{Scenario: service.Binary, Psi: 30})
	if err != nil {
		t.Fatal(err)
	}
	if m.Relaxations == 0 {
		t.Error("TopK reported zero relaxations")
	}
	if m.NodesVisited == 0 {
		t.Error("TopK reported zero node visits")
	}
}

func TestBaselineModesAgree(t *testing.T) {
	users := makeUsers(300, 5, 140)
	facilities := makeFacilities(10, 8, 141)
	for _, variant := range []tqtree.Variant{tqtree.TwoPoint, tqtree.Segmented, tqtree.FullTrajectory} {
		bl := NewBaseline(users, variant)
		if bl.Mode() != Literal {
			t.Fatal("default baseline mode should be Literal (the paper's BL)")
		}
		for sc := service.Binary; sc <= service.Length; sc++ {
			p := Params{Scenario: sc, Psi: 45}
			for _, f := range facilities {
				bl.SetMode(Literal)
				lit, err := bl.ServiceValue(f, p)
				if err != nil {
					t.Fatal(err)
				}
				bl.SetMode(Masked)
				msk, err := bl.ServiceValue(f, p)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(lit-msk) > 1e-9 {
					t.Fatalf("%v/%v facility %d: literal %v != masked %v",
						variant, sc, f.ID, lit, msk)
				}
			}
		}
	}
	if Literal.String() != "literal" || Masked.String() != "masked" {
		t.Error("BaselineMode.String broken")
	}
}

func TestServedUsersMatchesOracle(t *testing.T) {
	users := makeUsers(300, 2, 130)
	f := makeFacilities(1, 12, 131)[0]
	psi := 60.0
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	p := Params{Scenario: service.Binary, Psi: psi}
	got, _, err := eng.ServedUsers(f, p)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: every user with positive service, no others.
	want := map[trajectory.ID]float64{}
	for _, u := range users.All {
		if v := service.Value(service.Binary, u, f.Stops, psi); v > 0 {
			want[u.ID] = v
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ServedUsers returned %d users, oracle found %d", len(got), len(want))
	}
	for i, us := range got {
		wv, ok := want[us.User]
		if !ok {
			t.Fatalf("user %d not served per oracle", us.User)
		}
		if math.Abs(us.Value-wv) > 1e-9 {
			t.Fatalf("user %d value %v, oracle %v", us.User, us.Value, wv)
		}
		if i > 0 && got[i].Value > got[i-1].Value {
			t.Fatal("ServedUsers not sorted by value")
		}
	}
}

func TestPackUnpackRef(t *testing.T) {
	cases := []struct {
		id  trajectory.ID
		idx int
	}{{0, 0}, {1, 2}, {1 << 31, 77}, {4294967295, 65535}}
	for _, c := range cases {
		id, idx := unpackRef(packRef(c.id, c.idx))
		if id != c.id || idx != c.idx {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", c.id, c.idx, id, idx)
		}
	}
}
