package query

import (
	"testing"

	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
)

// TestExplorerMatchesServiceValue checks the Explorer invariants — exact
// value on completion, monotone bounds — against the direct Algorithm 1
// evaluation, across variants and scenarios.
func TestExplorerMatchesServiceValue(t *testing.T) {
	users := makeUsers(1500, 4, 42)
	facilities := makeFacilities(25, 10, 43)
	for _, cfg := range validConfigs(true) {
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(tree, users)
		p := Params{Scenario: cfg.scenario, Psi: 35}
		for _, f := range facilities {
			want, _, err := eng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			x, err := eng.NewExplorer(f, p)
			if err != nil {
				t.Fatal(err)
			}
			var m Metrics
			prevUpper := x.UpperBound()
			prevOpt := x.Optimistic()
			prevExact := x.Exact()
			for !x.Done() {
				x.Relax(&m)
				if x.Optimistic() > prevOpt+1e-9 {
					t.Fatalf("%v: optimistic remainder grew: %v -> %v", cfg, prevOpt, x.Optimistic())
				}
				if x.Exact() < prevExact-1e-9 {
					t.Fatalf("%v: exact value shrank: %v -> %v", cfg, prevExact, x.Exact())
				}
				if x.UpperBound() > prevUpper+1e-9 {
					t.Fatalf("%v: upper bound grew: %v -> %v", cfg, prevUpper, x.UpperBound())
				}
				prevUpper, prevOpt, prevExact = x.UpperBound(), x.Optimistic(), x.Exact()
			}
			// Binary service values are integral, so the two evaluation
			// orders must agree exactly; fractional scenarios may differ
			// by float summation order.
			got := x.Exact()
			tol := 0.0
			if cfg.scenario != service.Binary {
				tol = 1e-9 * (1 + want)
			}
			if diff := got - want; diff > tol || diff < -tol {
				t.Fatalf("%v facility %d: explorer exact %v, ServiceValue %v",
					cfg, f.ID, got, want)
			}
			if m.Relaxations == 0 && want > 0 {
				t.Fatalf("%v facility %d: positive service with no relaxations", cfg, f.ID)
			}
		}
	}
}

// TestExplorerRun checks the run-to-completion convenience path and that
// Relax on a Done explorer is a no-op.
func TestExplorerRun(t *testing.T) {
	users := makeUsers(500, 2, 7)
	facilities := makeFacilities(5, 8, 8)
	tree, err := tqtree.Build(users.All, tqtree.Options{Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	p := Params{Scenario: service.Binary, Psi: 50}
	for _, f := range facilities {
		want, _, err := eng.ServiceValue(f, p)
		if err != nil {
			t.Fatal(err)
		}
		x, err := eng.NewExplorer(f, p)
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		if got := x.Run(&m); got != want {
			t.Fatalf("facility %d: Run %v, want %v", f.ID, got, want)
		}
		before := m
		x.Relax(&m)
		if m != before {
			t.Fatalf("facility %d: Relax after Done did work: %+v -> %+v", f.ID, before, m)
		}
	}
}

// TestExplorerValidates checks that bad parameters are rejected at
// construction, matching the engine entry points.
func TestExplorerValidates(t *testing.T) {
	users := makeUsers(100, 2, 9)
	f := makeFacilities(1, 4, 10)[0]
	tree, err := tqtree.Build(users.All, tqtree.Options{Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	if _, err := eng.NewExplorer(f, Params{Scenario: service.Scenario(99), Psi: 1}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := eng.NewExplorer(f, Params{Scenario: service.Binary, Psi: -1}); err == nil {
		t.Fatal("negative psi accepted")
	}
}
