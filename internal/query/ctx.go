package query

// Cancellation-aware query execution. A long-running server cannot let a
// query outlive its request: once the client's deadline expires, every
// relaxation after it is wasted work stolen from queued requests. The
// entry points below accept a context.Context and abort between facility
// relaxations (TopK) or between per-facility evaluations (batch
// ServiceValues) — the units of work the paper's algorithms already
// schedule — returning ctx.Err() (context.DeadlineExceeded or
// context.Canceled) with no partial answer.
//
// The plumbing is a *canceller threaded through the shared generic loops
// in layout.go. A nil canceller (every pre-existing entry point) is a
// single predictable branch, so the non-ctx paths measure identically;
// a live canceller costs one channel poll per relaxation, far below the
// node-list evaluations a relaxation performs.

import (
	"context"
	"runtime"

	"github.com/trajcover/trajcover/internal/trajectory"
)

// CtxErr is the one cancellation poll every search loop in this module
// uses (directly, or via the canceller below): nil and never-cancellable
// contexts cost a branch, anything else a non-blocking channel select.
// Done() is re-queried per poll rather than cached so custom contexts
// (including test clocks) see every check. internal/shard's merges call
// it between facility relaxations.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return ctx.Err()
	default:
		return nil
	}
}

// canceller carries an optional context into the generic search loops.
// The nil *canceller means "never cancelled" and is what every non-ctx
// entry point passes.
type canceller struct {
	ctx context.Context
}

// newCanceller wraps ctx for the search loops. Contexts that can never
// be cancelled (context.Background, context.TODO, nil) yield a nil
// canceller so the loops skip even the channel poll.
func newCanceller(ctx context.Context) *canceller {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &canceller{ctx: ctx}
}

// stopped returns the context's error once it is done, nil before.
func (c *canceller) stopped() error {
	if c == nil {
		return nil
	}
	return CtxErr(c.ctx)
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation: the
// batch checks ctx between per-facility evaluations (in every worker)
// and returns ctx.Err() instead of an answer once the context is done.
func (e *Engine) ServiceValuesCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	return serviceValuesG[*tqtreeNode](ptrLayout{e.tree}, facilities, p, workers, newCanceller(ctx))
}

// TopKCtx is TopK with cooperative cancellation: the best-first search
// checks ctx between facility relaxations and returns ctx.Err() instead
// of an answer once the context is done.
func (e *Engine) TopKCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	return topKG[*tqtreeNode](ptrLayout{e.tree}, facilities, k, p, newCanceller(ctx))
}

// TopKParallelCtx is TopKParallel with cooperative cancellation, checked
// between relaxation rounds. workers is normalized by ResolveWorkers; a
// single-worker pool runs the serial ctx-aware search.
func (e *Engine) TopKParallelCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	workers = ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return e.TopKCtx(ctx, facilities, k, p)
	}
	return topKParallelG[*tqtreeNode](ptrLayout{e.tree}, facilities, k, p, workers, newCanceller(ctx))
}

// ServiceValuesCtx is FrozenEngine.ServiceValues with cooperative
// cancellation; see Engine.ServiceValuesCtx.
func (e *FrozenEngine) ServiceValuesCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	return serviceValuesG[int32](frozenLayout{e.f}, facilities, p, workers, newCanceller(ctx))
}

// TopKCtx is FrozenEngine.TopK with cooperative cancellation; see
// Engine.TopKCtx.
func (e *FrozenEngine) TopKCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	return topKG[int32](frozenLayout{e.f}, facilities, k, p, newCanceller(ctx))
}

// TopKParallelCtx is FrozenEngine.TopKParallel with cooperative
// cancellation; see Engine.TopKParallelCtx.
func (e *FrozenEngine) TopKParallelCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	workers = ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return e.TopKCtx(ctx, facilities, k, p)
	}
	return topKParallelG[int32](frozenLayout{e.f}, facilities, k, p, workers, newCanceller(ctx))
}

// ServiceValuesCtx is Epoch.ServiceValues with cooperative cancellation:
// both the masked base batch and the per-facility delta folds check ctx
// between facilities.
func (ep *Epoch) ServiceValuesCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	defer runtime.KeepAlive(ep)
	return ep.serviceValues(facilities, p, workers, newCanceller(ctx))
}
