package query

import (
	"math"
	"sync"
	"testing"

	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
)

// TestConcurrentQueriesAreConsistent exercises the documented guarantee
// that an Engine is safe for concurrent readers: queries never mutate the
// tree, so parallel TopK/ServiceValue/Coverage calls must all succeed and
// agree with the serial answers. Run with -race to verify.
func TestConcurrentQueriesAreConsistent(t *testing.T) {
	users := makeUsers(2000, 2, 150)
	facilities := makeFacilities(30, 12, 151)
	tree, err := tqtree.Build(users.All, tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(tree, users)
	p := Params{Scenario: service.Binary, Psi: 40}

	wantTop, _, err := eng.TopK(facilities, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	wantSV := make([]float64, len(facilities))
	for i, f := range facilities {
		wantSV[i], _, err = eng.ServiceValue(f, p)
		if err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				top, _, err := eng.TopK(facilities, 5, p)
				if err != nil {
					errs <- err
					return
				}
				for i := range top {
					if math.Abs(top[i].Service-wantTop[i].Service) > 1e-9 {
						t.Errorf("worker %d: rank %d service %v, want %v",
							w, i, top[i].Service, wantTop[i].Service)
						return
					}
				}
				f := facilities[(w+rep)%len(facilities)]
				sv, _, err := eng.ServiceValue(f, p)
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(sv-wantSV[(w+rep)%len(facilities)]) > 1e-9 {
					t.Errorf("worker %d: service value drift", w)
					return
				}
				if _, _, err := eng.Coverage(f, p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
