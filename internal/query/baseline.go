package query

import (
	"fmt"

	"github.com/trajcover/trajcover/internal/quadtree"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// BaselineMode selects how the baseline turns range-query results into
// service values.
type BaselineMode int

const (
	// Literal is the paper's BL as described in Section VI: circular
	// range queries around every stop retrieve the candidate user
	// trajectories, then each candidate's service value is recomputed
	// from scratch (every point against every stop). The rescan is what
	// makes BL two to three orders of magnitude slower than the TQ-tree
	// on multipoint workloads.
	Literal BaselineMode = iota
	// Masked is an improved baseline this library adds: the range-query
	// hits themselves populate per-user coverage masks, so no rescan is
	// needed. It is a much stronger comparison point than the paper's
	// BL (see EXPERIMENTS.md).
	Masked
)

// String implements fmt.Stringer.
func (m BaselineMode) String() string {
	if m == Literal {
		return "literal"
	}
	return "masked"
}

// Baseline is the paper's BL method: user-trajectory points indexed in a
// traditional point quadtree; for each facility, a circular range query
// around every stop retrieves the served points or candidate users.
type Baseline struct {
	users *trajectory.Set
	tree  *quadtree.Tree
	// variant selects the objective translation (ObjectiveFromMask), so
	// BL answers are comparable with the matching TQ-tree variant.
	variant tqtree.Variant
	mode    BaselineMode
}

// Mode returns the baseline's evaluation mode.
func (b *Baseline) Mode() BaselineMode { return b.mode }

// SetMode switches between the paper-literal and the masked evaluation.
func (b *Baseline) SetMode(m BaselineMode) { b.mode = m }

// Users returns the indexed user set.
func (b *Baseline) Users() *trajectory.Set { return b.users }

// Variant returns the objective-translation variant the baseline answers
// under.
func (b *Baseline) Variant() tqtree.Variant { return b.variant }

// NewBaseline indexes every point of every user trajectory in a point
// quadtree. The returned baseline evaluates in Literal mode (the paper's
// BL); call SetMode(Masked) for the strengthened variant.
func NewBaseline(users *trajectory.Set, variant tqtree.Variant) *Baseline {
	items := make([]quadtree.Item, 0, users.TotalPoints())
	for _, u := range users.All {
		for i, p := range u.Points {
			items = append(items, quadtree.Item{P: p, Data: packRef(u.ID, i)})
		}
	}
	bounds, _ := users.Bounds()
	return &Baseline{
		users:   users,
		tree:    quadtree.Build(bounds, items, quadtree.Options{}),
		variant: variant,
	}
}

func packRef(id trajectory.ID, pointIdx int) uint64 {
	return uint64(id)<<32 | uint64(uint32(pointIdx))
}

func unpackRef(data uint64) (trajectory.ID, int) {
	return trajectory.ID(data >> 32), int(uint32(data))
}

// Coverage computes the facility's per-user coverage masks by range
// querying every stop.
func (b *Baseline) Coverage(f *trajectory.Facility, p Params) (service.Coverage, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cov := service.Coverage{}
	for _, stop := range f.Stops {
		b.tree.SearchCircle(stop, p.Psi, func(it quadtree.Item) bool {
			id, idx := unpackRef(it.Data)
			m := cov[id]
			if m == nil {
				u := b.users.ByID(id)
				if u == nil {
					return true
				}
				m = service.NewMask(u.Len())
				cov[id] = m
			}
			m.Set(idx)
			return true
		})
	}
	return cov, nil
}

// ServiceValue computes SO(U, f). In Literal mode (the paper's BL) the
// range queries only identify candidate users, whose service is then
// recomputed point-by-point against every stop; in Masked mode the
// range-query hits populate coverage masks directly.
func (b *Baseline) ServiceValue(f *trajectory.Facility, p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if b.mode == Literal {
		return b.literalServiceValue(f, p), nil
	}
	cov, err := b.Coverage(f, p)
	if err != nil {
		return 0, err
	}
	var total float64
	for id, m := range cov {
		u := b.users.ByID(id)
		if u == nil {
			continue
		}
		total += ObjectiveFromMask(b.variant, p.Scenario, u, m)
	}
	return total, nil
}

// literalServiceValue is the paper's BL evaluation: collect the ids of
// users with any point within ψ of any stop, then rescan each candidate
// in full.
func (b *Baseline) literalServiceValue(f *trajectory.Facility, p Params) float64 {
	candidates := map[trajectory.ID]struct{}{}
	for _, stop := range f.Stops {
		b.tree.SearchCircle(stop, p.Psi, func(it quadtree.Item) bool {
			id, _ := unpackRef(it.Data)
			candidates[id] = struct{}{}
			return true
		})
	}
	var total float64
	for id := range candidates {
		u := b.users.ByID(id)
		if u == nil {
			continue
		}
		total += ObjectiveFromMask(b.variant, p.Scenario, u, service.MaskOf(u, f.Stops, p.Psi))
	}
	return total
}

// TopK evaluates every facility and returns the k best — the baseline has
// no pruning, which is exactly why the paper's Figure 7b shows its time
// independent of k.
func (b *Baseline) TopK(facilities []*trajectory.Facility, k int, p Params) ([]Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if k <= 0 || len(facilities) == 0 {
		return nil, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	results := make([]Result, 0, len(facilities))
	for _, f := range facilities {
		so, err := b.ServiceValue(f, p)
		if err != nil {
			return nil, fmt.Errorf("facility %d: %w", f.ID, err)
		}
		results = append(results, Result{Facility: f, Service: so})
	}
	sortResults(results)
	return results[:k], nil
}
