package query

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// TestResolveWorkers pins the one normalization every batch/parallel
// entry point shares: non-positive means GOMAXPROCS, clamped to the
// item count, never below 1.
func TestResolveWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		name           string
		workers, items int
		want           int
	}{
		{"zero means GOMAXPROCS", 0, 1 << 20, gmp},
		{"negative means GOMAXPROCS", -7, 1 << 20, gmp},
		{"explicit passes through", 3, 100, 3},
		{"clamped to items", 16, 5, 5},
		{"zero items still yields one", 4, 0, 1},
		{"zero workers zero items", 0, 0, 1},
		{"negative workers zero items", -1, 0, 1},
		{"one and one", 1, 1, 1},
		{"default clamped to items", 0, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ResolveWorkers(tc.workers, tc.items); got != tc.want {
				t.Fatalf("ResolveWorkers(%d, %d) = %d, want %d", tc.workers, tc.items, got, tc.want)
			}
		})
	}
}

// countdownCtx is a context whose Done channel closes after n polls —
// a deterministic way to cancel mid-query, since the search loops poll
// Done between relaxations. Safe for concurrent polling.
type countdownCtx struct {
	n    atomic.Int64
	ch   chan struct{}
	once sync.Once
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{ch: make(chan struct{})}
	c.n.Store(n)
	return c
}

func (c *countdownCtx) Done() <-chan struct{} {
	if c.n.Add(-1) < 0 {
		c.once.Do(func() { close(c.ch) })
	}
	return c.ch
}

func (c *countdownCtx) Err() error {
	select {
	case <-c.ch:
		return context.DeadlineExceeded
	default:
		return nil
	}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Value(any) any               { return nil }

// TestCtxVariantsMatchPlain: with a context that never cancels, every
// ctx variant answers byte-identically — values, order, and metrics —
// to its plain counterpart.
func TestCtxVariantsMatchPlain(t *testing.T) {
	eng := executorEnv(t, tqtree.TwoPoint, tqtree.ZOrder)
	fs := makeFacilities(32, 12, 301)
	p := Params{Scenario: service.Binary, Psi: 45}
	ctx := context.Background()

	wantV, wantVM, err := eng.ServiceValues(fs, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotV, gotVM, err := eng.ServiceValuesCtx(ctx, fs, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gotVM != wantVM {
		t.Fatalf("ServiceValuesCtx metrics %+v, plain %+v", gotVM, wantVM)
	}
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("ServiceValuesCtx[%d] = %v, plain %v", i, gotV[i], wantV[i])
		}
	}

	wantT, wantTM, err := eng.TopK(fs, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	gotT, gotTM, err := eng.TopKCtx(ctx, fs, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	if gotTM != wantTM {
		t.Fatalf("TopKCtx metrics %+v, plain %+v", gotTM, wantTM)
	}
	for i := range wantT {
		if gotT[i] != wantT[i] {
			t.Fatalf("TopKCtx[%d] = %+v, plain %+v", i, gotT[i], wantT[i])
		}
	}

	gotP, _, err := eng.TopKParallelCtx(ctx, fs, 8, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantT {
		if gotP[i] != wantT[i] {
			t.Fatalf("TopKParallelCtx[%d] = %+v, plain %+v", i, gotP[i], wantT[i])
		}
	}
}

// TestCtxExpiredAborts: an already-expired deadline aborts every ctx
// entry point with context.DeadlineExceeded and no answer.
func TestCtxExpiredAborts(t *testing.T) {
	eng := executorEnv(t, tqtree.TwoPoint, tqtree.ZOrder)
	fs := makeFacilities(32, 12, 302)
	p := Params{Scenario: service.Binary, Psi: 45}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	if vs, _, err := eng.ServiceValuesCtx(ctx, fs, p, 2); !errors.Is(err, context.DeadlineExceeded) || vs != nil {
		t.Fatalf("ServiceValuesCtx = (%v, %v), want (nil, DeadlineExceeded)", vs, err)
	}
	if res, _, err := eng.TopKCtx(ctx, fs, 8, p); !errors.Is(err, context.DeadlineExceeded) || res != nil {
		t.Fatalf("TopKCtx = (%v, %v), want (nil, DeadlineExceeded)", res, err)
	}
	if res, _, err := eng.TopKParallelCtx(ctx, fs, 8, p, 4); !errors.Is(err, context.DeadlineExceeded) || res != nil {
		t.Fatalf("TopKParallelCtx = (%v, %v), want (nil, DeadlineExceeded)", res, err)
	}
}

// TestCtxAbortsMidQuery: a context that expires after a fixed number of
// polls aborts the search partway — proof the loops actually check
// between relaxations rather than only on entry.
func TestCtxAbortsMidQuery(t *testing.T) {
	eng := executorEnv(t, tqtree.TwoPoint, tqtree.ZOrder)
	fs := makeFacilities(32, 12, 303)
	p := Params{Scenario: service.Binary, Psi: 45}

	// Sanity: the query needs enough relaxations for "mid-query" to mean
	// something.
	_, full, err := eng.TopK(fs, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Relaxations < 8 {
		t.Fatalf("test query too small: %d relaxations", full.Relaxations)
	}

	ctx := newCountdownCtx(5)
	res, m, err := eng.TopKCtx(ctx, fs, 8, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKCtx err = %v, want DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("TopKCtx returned partial results: %v", res)
	}
	if m.Relaxations == 0 || m.Relaxations >= full.Relaxations {
		t.Fatalf("abort not mid-query: %d relaxations (full run %d)", m.Relaxations, full.Relaxations)
	}

	vctx := newCountdownCtx(5)
	if vs, _, err := eng.ServiceValuesCtx(vctx, fs, p, 1); !errors.Is(err, context.DeadlineExceeded) || vs != nil {
		t.Fatalf("ServiceValuesCtx = (%v, %v), want (nil, DeadlineExceeded)", vs, err)
	}
}

// TestEpochServiceValuesCtx: the epoch batch (masked base + delta fold)
// honors cancellation in both its serial and worker paths.
func TestEpochServiceValuesCtx(t *testing.T) {
	users := makeUsers(800, 2, 304)
	tree, err := tqtree.Build(users.All[:600], tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := tqtree.Freeze(tree)
	if err != nil {
		t.Fatal(err)
	}
	base, err := trajectory.NewSet(users.All[:600])
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewEpoch(NewFrozenEngine(fz, base), users.All[600:], nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs := makeFacilities(24, 8, 305)
	p := Params{Scenario: service.Binary, Psi: 45}

	want, _, err := ep.ServiceValues(fs, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ep.ServiceValuesCtx(context.Background(), fs, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ServiceValuesCtx[%d] = %v, plain %v", i, got[i], want[i])
		}
	}
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		if vs, _, err := ep.ServiceValuesCtx(ctx, fs, p, workers); !errors.Is(err, context.DeadlineExceeded) || vs != nil {
			t.Fatalf("workers=%d: ServiceValuesCtx = (%v, %v), want (nil, DeadlineExceeded)", workers, vs, err)
		}
		cancel()
	}
}
