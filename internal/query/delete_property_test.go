package query

// Property tests for the mutable delete path: build → insert → delete →
// query must answer exactly like a fresh build over the surviving
// corpus, across every variant × ordering. The tqtree package tests
// deletion structurally (entry counts, bound rollback); these tests
// close the loop at the query level, where a missed entry or a stale
// upper bound would surface as a wrong service value or a wrong top-k
// order.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// churnedEngine builds over users[:build], inserts users[build:], then
// deletes every trajectory with id % deleteEvery == 0, returning the
// engine and the surviving corpus.
func churnedEngine(t *testing.T, users []*trajectory.Trajectory, v tqtree.Variant, o tqtree.Ordering, build, deleteEvery int) (*Engine, *trajectory.Set) {
	t.Helper()
	set := trajectory.MustNewSet(append([]*trajectory.Trajectory(nil), users[:build]...))
	tree, err := tqtree.Build(users[:build], tqtree.Options{
		Variant: v, Ordering: o, Beta: 8, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[build:] {
		if err := set.Add(u); err != nil {
			t.Fatal(err)
		}
		tree.Insert(u)
	}
	var survivors []*trajectory.Trajectory
	for _, u := range users {
		if int(u.ID)%deleteEvery == 0 {
			if !tree.Delete(u) {
				t.Fatalf("Delete(%d) did not find all entries", u.ID)
			}
			if !set.Remove(u.ID) {
				t.Fatalf("set.Remove(%d) failed", u.ID)
			}
		} else {
			survivors = append(survivors, u)
		}
	}
	return NewEngine(tree, set), trajectory.MustNewSet(survivors)
}

// TestBuildInsertDeleteMatchesFreshBuild is the satellite property test:
// the churned tree answers ServiceValue and TopK exactly like a fresh
// build of the surviving corpus — byte-identical for Binary, within
// float summation tolerance for the fractional scenarios (the two trees
// have different shapes, so summation order differs) — across
// TwoPoint/Segmented/FullTrajectory × Basic/ZOrder.
func TestBuildInsertDeleteMatchesFreshBuild(t *testing.T) {
	users := makeUsers(600, 4, 601)
	facilities := makeFacilities(24, 8, 602)
	const k = 8
	for _, cfg := range validConfigs(true) {
		name := cfg.variant.String() + "/" + cfg.ordering.String() + "/" + cfg.scenario.String()
		eng, survivors := churnedEngine(t, users.All, cfg.variant, cfg.ordering, 450, 3)
		tree, err := tqtree.Build(survivors.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewEngine(tree, survivors)
		p := Params{Scenario: cfg.scenario, Psi: 40}

		same := func(got, want float64) bool {
			if cfg.scenario == service.Binary {
				return got == want
			}
			return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
		}

		for _, f := range facilities {
			want, _, err := fresh.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if !same(got, want) {
				t.Fatalf("%s: churned ServiceValue(%d) = %v, fresh = %v", name, f.ID, got, want)
			}
			// And against the brute-force oracle, so both trees being
			// wrong the same way cannot pass.
			oracle := ExactServiceValue(cfg.variant, cfg.scenario, survivors, f.Stops, p.Psi)
			if math.Abs(got-oracle) > 1e-6*(1+math.Abs(oracle)) {
				t.Fatalf("%s: churned ServiceValue(%d) = %v, oracle = %v", name, f.ID, got, oracle)
			}
		}

		gotTop, _, err := eng.TopK(facilities, k, p)
		if err != nil {
			t.Fatal(err)
		}
		wantTop, _, err := fresh.TopK(facilities, k, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTop) != len(wantTop) {
			t.Fatalf("%s: TopK lengths %d vs %d", name, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i].Facility.ID != wantTop[i].Facility.ID || !same(gotTop[i].Service, wantTop[i].Service) {
				t.Fatalf("%s: TopK[%d] = (%d, %v), fresh = (%d, %v)", name, i,
					gotTop[i].Facility.ID, gotTop[i].Service, wantTop[i].Facility.ID, wantTop[i].Service)
			}
		}
	}
}

// TestDeleteAllThenReinsert drives the tree to empty and back, checking
// queries at both extremes — the underflow edge the delete path never
// rebalances away.
func TestDeleteAllThenReinsert(t *testing.T) {
	users := makeUsers(300, 3, 603)
	facilities := makeFacilities(8, 6, 604)
	rng := rand.New(rand.NewSource(605))
	for _, cfg := range validConfigs(true) {
		if cfg.scenario != service.Binary {
			continue // one scenario suffices; this is a structural test
		}
		set := trajectory.MustNewSet(append([]*trajectory.Trajectory(nil), users.All...))
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(tree, set)
		p := Params{Scenario: cfg.scenario, Psi: 40}

		// Delete everything, in random order.
		perm := rng.Perm(len(users.All))
		for _, i := range perm {
			if !tree.Delete(users.All[i]) {
				t.Fatalf("Delete(%d) failed", users.All[i].ID)
			}
		}
		for _, f := range facilities {
			got, _, err := eng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != 0 {
				t.Fatalf("%v/%v: empty tree ServiceValue(%d) = %v", cfg.variant, cfg.ordering, f.ID, got)
			}
		}

		// Re-insert everything and compare to a fresh build.
		for _, u := range users.All {
			tree.Insert(u)
		}
		freshTree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewEngine(freshTree, users)
		for _, f := range facilities {
			got, _, err := eng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := fresh.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v/%v: reinserted ServiceValue(%d) = %v, fresh = %v",
					cfg.variant, cfg.ordering, f.ID, got, want)
			}
		}
	}
}
