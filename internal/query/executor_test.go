package query

import (
	"math"
	"sync"
	"testing"

	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
)

// executorEnv builds a moderately sized engine shared by the batch
// executor tests: multipoint users so every scenario is exercised on the
// FullTrajectory variant, plus a TwoPoint/ZOrder engine for Binary.
func executorEnv(t *testing.T, variant tqtree.Variant, ordering tqtree.Ordering) *Engine {
	t.Helper()
	maxPts := 6
	if variant == tqtree.TwoPoint {
		maxPts = 2
	}
	users := makeUsers(3000, maxPts, 201)
	tree, err := tqtree.Build(users.All, tqtree.Options{
		Variant: variant, Ordering: ordering, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(tree, users)
}

func TestServiceValuesMatchesSerial(t *testing.T) {
	cases := []struct {
		variant  tqtree.Variant
		ordering tqtree.Ordering
		sc       service.Scenario
	}{
		{tqtree.TwoPoint, tqtree.ZOrder, service.Binary},
		{tqtree.TwoPoint, tqtree.Basic, service.Binary},
		{tqtree.Segmented, tqtree.ZOrder, service.PointCount},
		{tqtree.FullTrajectory, tqtree.ZOrder, service.Length},
	}
	for _, tc := range cases {
		t.Run(tc.variant.String()+"/"+tc.sc.String(), func(t *testing.T) {
			eng := executorEnv(t, tc.variant, tc.ordering)
			fs := makeFacilities(40, 16, 202)
			p := Params{Scenario: tc.sc, Psi: 45}

			var wantM Metrics
			want := make([]float64, len(fs))
			for i, f := range fs {
				v, m, err := eng.ServiceValue(f, p)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = v
				wantM.Add(m)
			}
			for _, workers := range []int{0, 1, 3, 8} {
				got, gotM, err := eng.ServiceValues(fs, p, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d values, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("workers=%d facility %d: %v, want %v", workers, i, got[i], want[i])
					}
				}
				if gotM != wantM {
					t.Errorf("workers=%d metrics %+v, want %+v", workers, gotM, wantM)
				}
			}
		})
	}
}

func TestTopKExhaustiveParallelMatchesSerial(t *testing.T) {
	eng := executorEnv(t, tqtree.TwoPoint, tqtree.ZOrder)
	fs := makeFacilities(60, 12, 203)
	p := Params{Scenario: service.Binary, Psi: 50}
	want, wantM, err := eng.TopKExhaustive(fs, 10, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		got, gotM, err := eng.TopKExhaustiveParallel(fs, 10, p, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
				t.Errorf("workers=%d rank %d: (%d, %v), want (%d, %v)", workers, i,
					got[i].Facility.ID, got[i].Service, want[i].Facility.ID, want[i].Service)
			}
		}
		if gotM != wantM {
			t.Errorf("workers=%d metrics %+v, want %+v", workers, gotM, wantM)
		}
	}
}

func TestTopKParallelMatchesSerial(t *testing.T) {
	for _, variant := range []tqtree.Variant{tqtree.TwoPoint, tqtree.FullTrajectory} {
		t.Run(variant.String(), func(t *testing.T) {
			eng := executorEnv(t, variant, tqtree.ZOrder)
			fs := makeFacilities(50, 12, 204)
			sc := service.Binary
			if variant == tqtree.FullTrajectory {
				sc = service.PointCount
			}
			p := Params{Scenario: sc, Psi: 55}
			for _, k := range []int{1, 5, 50} {
				want, _, err := eng.TopK(fs, k, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 16} {
					got, _, err := eng.TopKParallel(fs, k, p, workers)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("k=%d workers=%d: %d results, want %d", k, workers, len(got), len(want))
					}
					for i := range got {
						if got[i].Facility.ID != want[i].Facility.ID ||
							math.Abs(got[i].Service-want[i].Service) > 1e-12 {
							t.Errorf("k=%d workers=%d rank %d: (%d, %v), want (%d, %v)",
								k, workers, i, got[i].Facility.ID, got[i].Service,
								want[i].Facility.ID, want[i].Service)
						}
					}
				}
			}
		})
	}
}

func TestServiceValuesConcurrentBatches(t *testing.T) {
	// Several goroutines each running a worker-pooled batch over the same
	// shared tree: guards the read-only-tree claim and the scratch pools
	// under -race.
	eng := executorEnv(t, tqtree.TwoPoint, tqtree.ZOrder)
	fs := makeFacilities(30, 10, 205)
	p := Params{Scenario: service.Binary, Psi: 40}
	want, _, err := eng.ServiceValues(fs, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := eng.ServiceValues(fs, p, 3)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("facility %d: %v, want %v", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServiceValuesValidation(t *testing.T) {
	eng := executorEnv(t, tqtree.TwoPoint, tqtree.ZOrder)
	fs := makeFacilities(4, 4, 206)
	if _, _, err := eng.ServiceValues(fs, Params{Scenario: service.Scenario(9), Psi: 10}, 2); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, _, err := eng.ServiceValues(fs, Params{Scenario: service.Binary, Psi: -1}, 2); err == nil {
		t.Error("negative psi accepted")
	}
	out, m, err := eng.ServiceValues(nil, Params{Scenario: service.Binary, Psi: 10}, 2)
	if err != nil || out != nil || m != (Metrics{}) {
		t.Errorf("empty batch: out=%v m=%+v err=%v", out, m, err)
	}
}

func TestResultsHelper(t *testing.T) {
	fs := makeFacilities(3, 4, 207)
	rs := Results(fs, []float64{1, 3, 2}, 2)
	if len(rs) != 2 || rs[0].Service != 3 || rs[1].Service != 2 {
		t.Errorf("unexpected results %+v", rs)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Results(fs, []float64{1}, 1)
}
