package query

// The epoch: the immutable unit of the live serving path. Queries over a
// mutating corpus always run against an Epoch — a frozen columnar base
// index, a small append-only delta overlay (trajectories inserted since
// the base was frozen, answered by linear scan), and a tombstone set
// masking deleted base trajectories out of every scan. An Epoch is a
// value: once published (internal/shard stores one behind an
// atomic.Pointer per shard) it never changes, so any number of readers
// share it without locks while a writer publishes successors and a
// background rebuild folds delta and tombstones into a fresh base.
//
// Logical-corpus equivalence: every query over an Epoch answers for the
// corpus (base trajectories − tombstones) ∪ delta. The masked base scan
// accumulates exactly as a frozen index over the surviving base corpus
// would (same order, entries skipped, not re-grouped), and the delta
// scan adds each delta trajectory's objective via the same per-scenario
// semantics the tree entries encode — so Binary answers (and every
// integral scenario) are identical to a from-scratch build of the
// logical corpus, and fractional scenarios agree up to float summation
// order. With an empty delta and no tombstones, every path below
// delegates to the plain frozen engine, byte-identical in both answers
// and Metrics.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// maskedFrozenLayout adapts the frozen columnar layout with a tombstone
// mask: identical to frozenLayout except that ScoreList skips entries of
// tombstoned trajectories. With an empty mask it is byte-identical to
// frozenLayout (ScoreNodeMasked delegates to ScoreNode).
type maskedFrozenLayout struct {
	f    *tqtree.Frozen
	dead map[trajectory.ID]struct{}
}

func (l maskedFrozenLayout) Root() int32                                 { return 0 }
func (l maskedFrozenLayout) Nil() int32                                  { return -1 }
func (l maskedFrozenLayout) IsLeaf(n int32) bool                         { return l.f.IsLeaf(n) }
func (l maskedFrozenLayout) Child(n int32, i int) int32                  { return l.f.Child(n, i) }
func (l maskedFrozenLayout) Rect(n int32) geo.Rect                       { return l.f.Rect(n) }
func (l maskedFrozenLayout) ListLen(n int32) int                         { return l.f.ListLen(n) }
func (l maskedFrozenLayout) OwnUB(n int32, sc service.Scenario) float64  { return l.f.OwnUB(n, sc) }
func (l maskedFrozenLayout) TreeUB(n int32, sc service.Scenario) float64 { return l.f.TreeUB(n, sc) }
func (l maskedFrozenLayout) ContainingPath(r geo.Rect) []int32           { return l.f.ContainingPath(r) }
func (l maskedFrozenLayout) FilterModeFor(sc service.Scenario) tqtree.FilterMode {
	return l.f.FilterModeFor(sc)
}
func (l maskedFrozenLayout) AncestorsCanServe(sc service.Scenario) bool {
	return l.f.AncestorsCanServe(sc)
}
func (l maskedFrozenLayout) ValidateScenario(sc service.Scenario) error {
	return l.f.ValidateScenario(sc)
}
func (l maskedFrozenLayout) ScoreList(n int32, embr geo.Rect, mode tqtree.FilterMode, ss *service.StopSet, sc service.Scenario, _ *entryScorer) (float64, int) {
	return l.f.ScoreNodeMasked(n, embr, mode, ss, sc, l.dead)
}

// Epoch is one immutable serving state of a live index: a frozen base, a
// delta overlay, and a tombstone set. Construct with NewEpoch; all
// methods are safe for any number of concurrent readers.
type Epoch struct {
	base  *FrozenEngine
	delta []*trajectory.Trajectory
	dead  map[trajectory.ID]struct{}

	// deltaUB is the delta overlay's per-scenario service upper bound —
	// the delta's counterpart of the root `sub`, seeding the delta
	// exploration's optimistic remainder.
	deltaUB         [service.NumScenarios]float64
	deltaMultipoint bool
	gen             uint64
}

// NewEpoch assembles an epoch and validates its invariants: tombstones
// must name base trajectories, and delta IDs must be unique and distinct
// from every surviving base ID (a tombstoned base ID may be re-used by a
// delta re-insert). gen is an opaque generation counter for diagnostics.
func NewEpoch(base *FrozenEngine, delta []*trajectory.Trajectory, dead map[trajectory.ID]struct{}, gen uint64) (*Epoch, error) {
	ep := &Epoch{base: base, delta: delta, dead: dead, gen: gen}
	users := base.Users()
	for id := range dead {
		if users.ByID(id) == nil {
			return nil, fmt.Errorf("query: tombstone %d names no base trajectory", id)
		}
	}
	seen := make(map[trajectory.ID]struct{}, len(delta))
	variant := base.Frozen().Variant()
	for _, u := range delta {
		if _, dup := seen[u.ID]; dup {
			return nil, fmt.Errorf("query: duplicate id %d in delta", u.ID)
		}
		if users.ByID(u.ID) != nil {
			if _, gone := dead[u.ID]; !gone {
				return nil, fmt.Errorf("query: delta id %d collides with a live base trajectory", u.ID)
			}
		}
		seen[u.ID] = struct{}{}
		if u.Len() > 2 {
			ep.deltaMultipoint = true
		}
		ep.deltaUB[service.Binary] += deltaBinaryUB(variant, u)
		ep.deltaUB[service.PointCount]++
		ep.deltaUB[service.Length]++
	}
	return ep, nil
}

// deltaBinaryUB is a delta trajectory's maximum Binary objective: served
// segments for the Segmented variant, one served user otherwise.
func deltaBinaryUB(v tqtree.Variant, u *trajectory.Trajectory) float64 {
	if v == tqtree.Segmented {
		return float64(u.NumSegments())
	}
	return 1
}

// WithInsert returns the successor epoch with u appended to the delta
// overlay — the O(1) write path. It skips NewEpoch's revalidation: the
// caller (the single writer in internal/shard) has already checked
// that u's ID is absent from the logical corpus. The incremental
// deltaUB accumulates in overlay order, exactly as a fresh NewEpoch
// over the same slice would, so successor and from-scratch epochs are
// bit-identical.
func (ep *Epoch) WithInsert(u *trajectory.Trajectory, gen uint64) *Epoch {
	next := &Epoch{
		base:            ep.base,
		delta:           append(ep.delta, u),
		dead:            ep.dead,
		deltaUB:         ep.deltaUB,
		deltaMultipoint: ep.deltaMultipoint || u.Len() > 2,
		gen:             gen,
	}
	next.deltaUB[service.Binary] += deltaBinaryUB(ep.base.Frozen().Variant(), u)
	next.deltaUB[service.PointCount]++
	next.deltaUB[service.Length]++
	return next
}

// WithDelta returns the successor epoch with the delta overlay replaced
// (a delta-item removal) — deltaUB and the multipoint flag are
// recomputed over the new overlay, O(len(delta)), matching the slice
// rewrite the removal already paid for.
func (ep *Epoch) WithDelta(delta []*trajectory.Trajectory, gen uint64) *Epoch {
	next := &Epoch{base: ep.base, delta: delta, dead: ep.dead, gen: gen}
	variant := ep.base.Frozen().Variant()
	for _, u := range delta {
		if u.Len() > 2 {
			next.deltaMultipoint = true
		}
		next.deltaUB[service.Binary] += deltaBinaryUB(variant, u)
		next.deltaUB[service.PointCount]++
		next.deltaUB[service.Length]++
	}
	return next
}

// WithTombstones returns the successor epoch with the tombstone set
// replaced (a base-item deletion). dead must be a fresh map the caller
// never mutates again (copy-on-write); it must only name base
// trajectories.
func (ep *Epoch) WithTombstones(dead map[trajectory.ID]struct{}, gen uint64) *Epoch {
	return &Epoch{
		base:            ep.base,
		delta:           ep.delta,
		dead:            dead,
		deltaUB:         ep.deltaUB,
		deltaMultipoint: ep.deltaMultipoint,
		gen:             gen,
	}
}

// Base returns the frozen base engine.
func (ep *Epoch) Base() *FrozenEngine { return ep.base }

// Delta returns the delta overlay (read-only).
func (ep *Epoch) Delta() []*trajectory.Trajectory { return ep.delta }

// Tombstones returns the tombstone set (read-only).
func (ep *Epoch) Tombstones() map[trajectory.ID]struct{} { return ep.dead }

// Generation returns the epoch's generation counter.
func (ep *Epoch) Generation() uint64 { return ep.gen }

// DeltaLen returns the number of delta trajectories.
func (ep *Epoch) DeltaLen() int { return len(ep.delta) }

// TombstoneCount returns the number of tombstoned base trajectories.
func (ep *Epoch) TombstoneCount() int { return len(ep.dead) }

// Len returns the logical corpus size: surviving base plus delta.
func (ep *Epoch) Len() int {
	return ep.base.Users().Len() - len(ep.dead) + len(ep.delta)
}

// Has reports whether the logical corpus contains id. The delta check
// is a linear scan — the overlay is bounded by the compaction policy,
// and this path serves lookups, not queries.
func (ep *Epoch) Has(id trajectory.ID) bool { return ep.ByID(id) != nil }

// ByID returns the logical corpus trajectory with the given id, or nil.
func (ep *Epoch) ByID(id trajectory.ID) *trajectory.Trajectory {
	for _, u := range ep.delta {
		if u.ID == id {
			return u
		}
	}
	if _, gone := ep.dead[id]; gone {
		return nil
	}
	return ep.base.Users().ByID(id)
}

// LogicalCorpus returns the epoch's logical corpus — surviving base
// trajectories in base-set order followed by the delta — the input a
// background rebuild hands to a from-scratch build.
func (ep *Epoch) LogicalCorpus() []*trajectory.Trajectory {
	out := make([]*trajectory.Trajectory, 0, ep.Len())
	for _, u := range ep.base.Users().All {
		if _, gone := ep.dead[u.ID]; !gone {
			out = append(out, u)
		}
	}
	return append(out, ep.delta...)
}

// ValidateScenario checks that queries under sc are exact over the
// logical corpus: the base's own rule plus the same rule applied to the
// delta overlay. The base check is conservative — it considers every
// built trajectory, tombstoned or not.
func (ep *Epoch) ValidateScenario(sc service.Scenario) error {
	if err := ep.base.Frozen().ValidateScenario(sc); err != nil {
		return err
	}
	return tqtree.ValidateScenarioFor(ep.base.Frozen().Variant(), ep.deltaMultipoint, sc)
}

func (ep *Epoch) layout() maskedFrozenLayout {
	return maskedFrozenLayout{f: ep.base.Frozen(), dead: ep.dead}
}

func (ep *Epoch) validate(p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	return ep.ValidateScenario(p.Scenario)
}

// deltaService scans the delta overlay for one facility, accumulating
// each intersecting trajectory's exact objective. The whole overlay is
// accounted as one q-node list in the metrics.
func (ep *Epoch) deltaService(f *trajectory.Facility, p Params, m *Metrics) float64 {
	if len(ep.delta) == 0 {
		return 0
	}
	m.NodesVisited++
	embr := f.EMBR(p.Psi)
	variant := ep.base.Frozen().Variant()
	ss := service.AcquireStopSet(f.Stops, p.Psi, len(ep.delta)/4)
	var so float64
	for _, u := range ep.delta {
		if !embr.Intersects(u.MBR()) {
			continue
		}
		m.EntriesScored++
		so += deltaObjective(variant, p.Scenario, u, ss)
	}
	ss.Release()
	return so
}

// deltaObjective is one delta trajectory's objective under the variant's
// semantics — exactly what the sum of its tree entries would contribute
// after a rebuild (integral scenarios identically; fractional ones up to
// summation order).
func deltaObjective(v tqtree.Variant, sc service.Scenario, u *trajectory.Trajectory, ss *service.StopSet) float64 {
	if v == tqtree.Segmented && sc == service.Binary {
		served := 0
		for i := 0; i < u.NumSegments(); i++ {
			if ss.Served(u.Points[i]) && ss.Served(u.Points[i+1]) {
				served++
			}
		}
		return float64(served)
	}
	return service.ValueSet(sc, u, ss)
}

// ServiceValue computes SO(U, f) over the logical corpus: the masked
// base traversal (Algorithm 1 over the frozen layout) plus the delta
// scan. With an empty delta and no tombstones it is byte-identical —
// answer and Metrics — to FrozenEngine.ServiceValue.
func (ep *Epoch) ServiceValue(f *trajectory.Facility, p Params) (float64, Metrics, error) {
	defer runtime.KeepAlive(ep)
	if err := ep.validate(p); err != nil {
		return 0, Metrics{}, err
	}
	l := ep.layout()
	var m Metrics
	mode := l.FilterModeFor(p.Scenario)
	arena := acquireCompArena(len(f.Stops))
	so := evaluateServiceG(l, int32(0), f.Stops, p, mode, &m, arena)
	putCompArena(arena)
	so += ep.deltaService(f, p, &m)
	return so, m, nil
}

// ServiceValues computes SO(U, f) for every facility in one batch across
// a pool of workers; see Engine.ServiceValues. The delta contributions
// are folded in per facility after the batch, preserving determinism.
func (ep *Epoch) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	return ep.serviceValues(facilities, p, workers, nil)
}

func (ep *Epoch) serviceValues(facilities []*trajectory.Facility, p Params, workers int, cc *canceller) ([]float64, Metrics, error) {
	// Pins a mapped base (and mapped delta points) for the whole batch;
	// see FrozenEngine.ServiceValue.
	defer runtime.KeepAlive(ep)
	if err := ep.validate(p); err != nil {
		return nil, Metrics{}, err
	}
	out, m, err := serviceValuesG[int32](ep.layout(), facilities, p, workers, cc)
	if err != nil {
		return nil, m, err
	}
	if len(ep.delta) > 0 {
		workers = ResolveWorkers(workers, len(facilities))
		if workers <= 1 {
			for i, f := range facilities {
				if err := cc.stopped(); err != nil {
					return nil, m, err
				}
				out[i] += ep.deltaService(f, p, &m)
			}
		} else {
			var next atomic.Int64
			perWorker := make([]Metrics, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for cc.stopped() == nil {
						i := int(next.Add(1)) - 1
						if i >= len(facilities) {
							return
						}
						out[i] += ep.deltaService(facilities[i], p, &perWorker[w])
					}
				}(w)
			}
			wg.Wait()
			for _, wm := range perWorker {
				m.Add(wm)
			}
			if err := cc.stopped(); err != nil {
				return nil, m, err
			}
		}
	}
	return out, m, nil
}

// epochBaseExplorer is the masked-base half of an epoch exploration —
// the shared best-first core instantiated over the masked layout.
type epochBaseExplorer struct {
	explorerCore[int32, maskedFrozenLayout]
}

var _ Exploration = (*epochBaseExplorer)(nil)

// deltaExplorer is the delta overlay's Exploration: it starts with the
// overlay's precomputed upper bound as its optimistic remainder and
// resolves to the exact delta contribution in a single relaxation (the
// overlay is small by construction — the rebuild thresholds bound it).
type deltaExplorer struct {
	ep    *Epoch
	fac   *trajectory.Facility
	p     Params
	exact float64
	opt   float64
}

var _ Exploration = (*deltaExplorer)(nil)

func (d *deltaExplorer) Facility() *trajectory.Facility { return d.fac }
func (d *deltaExplorer) Exact() float64                 { return d.exact }
func (d *deltaExplorer) Optimistic() float64            { return d.opt }
func (d *deltaExplorer) UpperBound() float64            { return d.exact + d.opt }
func (d *deltaExplorer) Done() bool                     { return d.opt == 0 }

func (d *deltaExplorer) Relax(m *Metrics) {
	if d.Done() {
		return
	}
	m.Relaxations++
	d.exact = d.ep.deltaService(d.fac, d.p, m)
	d.opt = 0
}

func (d *deltaExplorer) Run(m *Metrics) float64 {
	if !d.Done() {
		d.Relax(m)
	}
	return d.exact
}

// epochExplorer merges the masked-base and delta explorations of one
// facility into a single Exploration: sums for the bounds, and each
// relaxation advances the part with the larger optimistic remainder —
// the same policy the shard scatter-gather merge applies across shards.
type epochExplorer struct {
	parts [2]Exploration
}

var _ Exploration = (*epochExplorer)(nil)

func (x *epochExplorer) Facility() *trajectory.Facility { return x.parts[0].Facility() }
func (x *epochExplorer) Exact() float64                 { return x.parts[0].Exact() + x.parts[1].Exact() }
func (x *epochExplorer) Optimistic() float64 {
	return x.parts[0].Optimistic() + x.parts[1].Optimistic()
}
func (x *epochExplorer) UpperBound() float64 { return x.Exact() + x.Optimistic() }
func (x *epochExplorer) Done() bool          { return x.Optimistic() == 0 }

func (x *epochExplorer) Relax(m *Metrics) {
	if x.parts[1].Optimistic() > x.parts[0].Optimistic() {
		x.parts[1].Relax(m)
		return
	}
	if !x.parts[0].Done() {
		x.parts[0].Relax(m)
		return
	}
	x.parts[1].Relax(m)
}

func (x *epochExplorer) Run(m *Metrics) float64 {
	for !x.Done() {
		x.Relax(m)
	}
	return x.Exact()
}

// NewExplorer seeds one facility's best-first exploration over the
// epoch's logical corpus. With an empty delta the returned Exploration
// is the masked base exploration alone — byte-identical to the frozen
// explorer when there are no tombstones either — so the shard merge's
// work over an all-frozen epoch matches the PR 3 path exactly.
func (ep *Epoch) NewExplorer(f *trajectory.Facility, p Params) (Exploration, error) {
	if err := ep.validate(p); err != nil {
		return nil, err
	}
	core, err := newExplorerCore[int32](ep.layout(), f, p)
	if err != nil {
		return nil, err
	}
	base := &epochBaseExplorer{core}
	if len(ep.delta) == 0 {
		return base, nil
	}
	d := &deltaExplorer{ep: ep, fac: f, p: p, opt: ep.deltaUB[p.Scenario]}
	return &epochExplorer{parts: [2]Exploration{base, d}}, nil
}

// UpperBound seeds (without relaxing) one facility's exploration and
// returns its initial upper bound — a sound overestimate of the
// facility's service value over the epoch's logical corpus, computed in
// one tree descent. This is the scatter unit of the distributed tier:
// a query frontend asks every backend for per-facility upper bounds
// first and spends the expensive exact evaluations only on facilities
// whose summed bounds can still reach the global top k (the paper's
// `sub`-bound shard-prune, preserved across the wire).
func (ep *Epoch) UpperBound(f *trajectory.Facility, p Params) (float64, error) {
	x, err := ep.NewExplorer(f, p)
	if err != nil {
		return 0, err
	}
	return x.UpperBound(), nil
}
