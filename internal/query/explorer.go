package query

import (
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Explorer drives one facility's best-first exploration incrementally —
// the unit of work TopK's heap schedules, exposed so higher layers (the
// shard scatter-gather merge in internal/shard) can interleave
// explorations of the same facility over several trees and stop any of
// them early once its optimistic remainder cannot change the answer.
//
// Invariants, maintained by every Relax:
//
//   - Exact() is the service value accumulated from fully evaluated
//     q-node lists; it only grows.
//   - Optimistic() is an upper bound on the service still obtainable from
//     the unexplored frontier; it is non-increasing across relaxations
//     (upper-bound monotonicity of the paper's `sub` bounds).
//   - UpperBound() = Exact() + Optimistic() bounds the facility's true
//     service value from above; when Done(), Exact() is the exact value.
//
// An Explorer is not safe for concurrent use; distinct Explorers over the
// same (immutable) tree are.
type Explorer struct {
	e    *Engine
	p    Params
	mode tqtree.FilterMode
	st   *state
}

// NewExplorer seeds a facility's exploration at the smallest q-node
// containing its EMBR, exactly as TopK's initialization does.
func (e *Engine) NewExplorer(f *trajectory.Facility, p Params) (*Explorer, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := e.tree.ValidateScenario(p.Scenario); err != nil {
		return nil, err
	}
	st := e.initialState(f, p, e.tree.AncestorsCanServe(p.Scenario))
	return &Explorer{e: e, p: p, mode: e.tree.FilterModeFor(p.Scenario), st: st}, nil
}

// Facility returns the facility being explored.
func (x *Explorer) Facility() *trajectory.Facility { return x.st.fac }

// Exact returns the service value accumulated so far (the paper's
// aserve). When Done, this is the facility's exact service value.
func (x *Explorer) Exact() float64 { return x.st.aserve }

// Optimistic returns the upper bound on service still obtainable from
// the unexplored frontier (the paper's hserve).
func (x *Explorer) Optimistic() float64 { return x.st.hserve }

// UpperBound returns Exact + Optimistic: the best-first priority.
func (x *Explorer) UpperBound() float64 { return x.st.fserve() }

// Done reports whether the exploration is complete: no unexplored pair
// can add service, so Exact is the facility's true service value. This is
// the same safe early-termination condition the serial TopK uses.
func (x *Explorer) Done() bool { return len(x.st.pairs) == 0 || x.st.hserve == 0 }

// Relax performs one relaxation round (Algorithm 4): every frontier
// pair's own list is evaluated exactly and replaced by its intersecting
// children. No-op when Done. Work is accumulated into m.
func (x *Explorer) Relax(m *Metrics) {
	if x.Done() {
		return
	}
	x.e.relaxState(x.st, x.p, x.mode, m)
}

// Run relaxes until Done and returns the exact service value — the
// degenerate single-facility exploration, equal to Engine.ServiceValue.
func (x *Explorer) Run(m *Metrics) float64 {
	for !x.Done() {
		x.Relax(m)
	}
	return x.st.aserve
}
