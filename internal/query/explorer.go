package query

import (
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Exploration is the incremental best-first exploration of one facility
// over one index — the unit of work the shard scatter-gather merge
// schedules. Both layouts implement it: *Explorer over the pointer tree
// and *FrozenExplorer over the frozen columnar index.
//
// Invariants, maintained by every Relax:
//
//   - Exact() is the service value accumulated from fully evaluated
//     q-node lists; it only grows.
//   - Optimistic() is an upper bound on the service still obtainable from
//     the unexplored frontier; it is non-increasing across relaxations
//     (upper-bound monotonicity of the paper's `sub` bounds).
//   - UpperBound() = Exact() + Optimistic() bounds the facility's true
//     service value from above; when Done(), Exact() is the exact value.
//
// An Exploration is not safe for concurrent use; distinct Explorations
// over the same (immutable) index are.
type Exploration interface {
	Facility() *trajectory.Facility
	Exact() float64
	Optimistic() float64
	UpperBound() float64
	Done() bool
	Relax(*Metrics)
	Run(*Metrics) float64
}

// Explorer drives one facility's best-first exploration over the pointer
// tree incrementally — the unit of work TopK's heap schedules, exposed so
// higher layers (the shard scatter-gather merge in internal/shard) can
// interleave explorations of the same facility over several trees and
// stop any of them early once its optimistic remainder cannot change the
// answer.
type Explorer struct {
	explorerCore[*tqtreeNode, ptrLayout]
}

var _ Exploration = (*Explorer)(nil)

// NewExplorer seeds a facility's exploration at the smallest q-node
// containing its EMBR, exactly as TopK's initialization does.
func (e *Engine) NewExplorer(f *trajectory.Facility, p Params) (*Explorer, error) {
	core, err := newExplorerCore[*tqtreeNode](ptrLayout{e.tree}, f, p)
	if err != nil {
		return nil, err
	}
	return &Explorer{core}, nil
}
