package query

import (
	"math"
	"testing"

	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// frozenEngineOver builds, freezes, and wraps a corpus.
func frozenEngineOver(t *testing.T, users *trajectory.Set, v tqtree.Variant, o tqtree.Ordering) *FrozenEngine {
	t.Helper()
	tree, err := tqtree.Build(users.All, tqtree.Options{
		Variant: v, Ordering: o, Beta: 8, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := tqtree.Freeze(tree)
	if err != nil {
		t.Fatal(err)
	}
	return NewFrozenEngine(fz, users)
}

// TestEpochEmptyDeltaByteIdentical is the delta-overlay regression
// anchor: an epoch with an empty delta and no tombstones must be
// byte-identical — answers AND metrics — to the plain frozen engine,
// across every variant × ordering.
func TestEpochEmptyDeltaByteIdentical(t *testing.T) {
	users := makeUsers(500, 4, 501)
	facilities := makeFacilities(24, 8, 502)
	for _, cfg := range validConfigs(true) {
		feng := frozenEngineOver(t, users, cfg.variant, cfg.ordering)
		ep, err := NewEpoch(feng, nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Scenario: cfg.scenario, Psi: 40}
		name := cfg.variant.String() + "/" + cfg.ordering.String() + "/" + cfg.scenario.String()

		for _, f := range facilities {
			wantV, wantM, err := feng.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			gotV, gotM, err := ep.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if gotV != wantV || gotM != wantM {
				t.Fatalf("%s: epoch ServiceValue(%d) = (%v, %+v), frozen = (%v, %+v)",
					name, f.ID, gotV, gotM, wantV, wantM)
			}
		}

		wantVs, wantM, err := feng.ServiceValues(facilities, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		gotVs, gotM, err := ep.ServiceValues(facilities, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if gotM != wantM {
			t.Fatalf("%s: batch metrics = %+v, frozen = %+v", name, gotM, wantM)
		}
		for i := range wantVs {
			if gotVs[i] != wantVs[i] {
				t.Fatalf("%s: batch value[%d] = %v, frozen = %v", name, i, gotVs[i], wantVs[i])
			}
		}

		// The exploration path: run each facility's exploration to
		// completion on both engines and compare value and work.
		for _, f := range facilities {
			wx, err := feng.NewExplorer(f, p)
			if err != nil {
				t.Fatal(err)
			}
			gx, err := ep.NewExplorer(f, p)
			if err != nil {
				t.Fatal(err)
			}
			var wm, gm Metrics
			wv := wx.Run(&wm)
			gv := gx.Run(&gm)
			if gv != wv || gm != wm {
				t.Fatalf("%s: epoch explorer(%d) = (%v, %+v), frozen = (%v, %+v)",
					name, f.ID, gv, gm, wv, wm)
			}
		}
	}
}

// epochOver splits a corpus into base/delta, tombstones a subset of the
// base, and returns the epoch together with the logical corpus set.
func epochOver(t *testing.T, users *trajectory.Set, v tqtree.Variant, o tqtree.Ordering, baseN, deadEvery int) (*Epoch, *trajectory.Set) {
	t.Helper()
	base := trajectory.MustNewSet(users.All[:baseN])
	feng := frozenEngineOver(t, base, v, o)
	delta := users.All[baseN:]
	dead := map[trajectory.ID]struct{}{}
	logical := make([]*trajectory.Trajectory, 0, users.Len())
	for i, u := range base.All {
		if deadEvery > 0 && i%deadEvery == 0 {
			dead[u.ID] = struct{}{}
			continue
		}
		logical = append(logical, u)
	}
	logical = append(logical, delta...)
	ep, err := NewEpoch(feng, delta, dead, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ep, trajectory.MustNewSet(logical)
}

// TestEpochMatchesFreshBuild: delta-overlay + tombstone-masked answers
// must equal a from-scratch build of the logical corpus — exactly for
// Binary (integral), within float summation tolerance otherwise.
func TestEpochMatchesFreshBuild(t *testing.T) {
	users := makeUsers(600, 4, 503)
	facilities := makeFacilities(24, 8, 504)
	for _, cfg := range validConfigs(true) {
		ep, logical := epochOver(t, users, cfg.variant, cfg.ordering, 450, 5)
		tree, err := tqtree.Build(logical.All, tqtree.Options{
			Variant: cfg.variant, Ordering: cfg.ordering, Beta: 8, Bounds: testBounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewEngine(tree, logical)
		p := Params{Scenario: cfg.scenario, Psi: 40}
		name := cfg.variant.String() + "/" + cfg.ordering.String() + "/" + cfg.scenario.String()

		if got, want := ep.Len(), logical.Len(); got != want {
			t.Fatalf("%s: epoch Len = %d, want %d", name, got, want)
		}
		for _, f := range facilities {
			want, _, err := fresh.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ep.ServiceValue(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.scenario == service.Binary {
				if got != want {
					t.Fatalf("%s: epoch ServiceValue(%d) = %v, fresh build = %v", name, f.ID, got, want)
				}
			} else if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("%s: epoch ServiceValue(%d) = %v, fresh build = %v", name, f.ID, got, want)
			}

			// The exploration must converge to the same value (exactly
			// for integral scenarios; best-first relaxations group float
			// additions differently otherwise, as in the TopK-vs-
			// exhaustive comparisons).
			x, err := ep.NewExplorer(f, p)
			if err != nil {
				t.Fatal(err)
			}
			var m Metrics
			xv := x.Run(&m)
			if cfg.scenario == service.Binary {
				if xv != got {
					t.Fatalf("%s: explorer(%d) = %v, ServiceValue = %v", name, f.ID, xv, got)
				}
			} else if math.Abs(xv-got) > 1e-6*(1+got) {
				t.Fatalf("%s: explorer(%d) = %v, ServiceValue = %v", name, f.ID, xv, got)
			}
		}
	}
}

// TestEpochExplorerInvariants checks the Exploration contract over a
// churned epoch: Exact is non-decreasing, Optimistic non-increasing,
// and UpperBound always bounds the final exact value.
func TestEpochExplorerInvariants(t *testing.T) {
	users := makeUsers(500, 2, 505)
	facilities := makeFacilities(12, 8, 506)
	ep, _ := epochOver(t, users, tqtree.TwoPoint, tqtree.ZOrder, 400, 7)
	p := Params{Scenario: service.Binary, Psi: 40}
	for _, f := range facilities {
		x, err := ep.NewExplorer(f, p)
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		prevExact, prevOpt := x.Exact(), x.Optimistic()
		for !x.Done() {
			x.Relax(&m)
			if x.Exact() < prevExact {
				t.Fatalf("facility %d: Exact decreased %v -> %v", f.ID, prevExact, x.Exact())
			}
			if x.Optimistic() > prevOpt {
				t.Fatalf("facility %d: Optimistic increased %v -> %v", f.ID, prevOpt, x.Optimistic())
			}
			prevExact, prevOpt = x.Exact(), x.Optimistic()
		}
		want, _, err := ep.ServiceValue(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if x.Exact() != want {
			t.Fatalf("facility %d: explorer exact %v, ServiceValue %v", f.ID, x.Exact(), want)
		}
	}
}

func TestNewEpochValidation(t *testing.T) {
	users := makeUsers(100, 2, 507)
	base := trajectory.MustNewSet(users.All[:80])
	feng := frozenEngineOver(t, base, tqtree.TwoPoint, tqtree.ZOrder)

	// Tombstone naming no base trajectory.
	if _, err := NewEpoch(feng, nil, map[trajectory.ID]struct{}{999: {}}, 0); err == nil {
		t.Error("tombstone for unknown id accepted")
	}
	// Duplicate id inside the delta.
	dup := []*trajectory.Trajectory{users.All[80], users.All[80]}
	if _, err := NewEpoch(feng, dup, nil, 0); err == nil {
		t.Error("duplicate delta id accepted")
	}
	// Delta id colliding with a live base trajectory.
	if _, err := NewEpoch(feng, users.All[:1], nil, 0); err == nil {
		t.Error("delta collision with live base id accepted")
	}
	// ... but re-using a tombstoned base id is the re-insert path.
	dead := map[trajectory.ID]struct{}{users.All[0].ID: {}}
	if _, err := NewEpoch(feng, users.All[:1], dead, 0); err != nil {
		t.Errorf("re-insert over tombstone rejected: %v", err)
	}
}

// TestEpochScenarioValidation: a TwoPoint epoch whose delta introduces
// the first multipoint trajectory must reject non-Binary scenarios,
// exactly as a from-scratch TwoPoint build over that corpus would.
func TestEpochScenarioValidation(t *testing.T) {
	users := makeUsers(100, 2, 508) // two-point only
	base := trajectory.MustNewSet(users.All[:90])
	feng := frozenEngineOver(t, base, tqtree.TwoPoint, tqtree.ZOrder)
	multi := makeUsers(120, 5, 509).All[100:] // ids 100.. with up to 5 points
	var mp *trajectory.Trajectory
	for _, u := range multi {
		if u.Len() > 2 {
			mp = u
			break
		}
	}
	if mp == nil {
		t.Fatal("no multipoint trajectory generated")
	}
	ep, err := NewEpoch(feng, []*trajectory.Trajectory{mp}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := makeFacilities(1, 6, 510)[0]
	if _, _, err := ep.ServiceValue(f, Params{Scenario: service.PointCount, Psi: 40}); err == nil {
		t.Error("TwoPoint epoch with multipoint delta accepted PointCount")
	}
	if _, _, err := ep.ServiceValue(f, Params{Scenario: service.Binary, Psi: 40}); err != nil {
		t.Errorf("Binary rejected: %v", err)
	}
}
