// Package query implements kMaxRRST processing over the TQ-tree:
//
//   - Algorithm 1/2 of the paper: divide-and-conquer service-value
//     computation (evaluateServiceG + evalNodeList in layout.go, with
//     the zReduce pruning supplied by the tqtree package).
//   - Algorithm 3/4: best-first top-k facility search driven by the
//     q-node `sub` upper bounds (topKG + relaxStateG in layout.go).
//   - The paper's baseline (BL): per-facility circular range queries over
//     a traditional point quadtree.
//
// The search core in layout.go is generic over the two tree layouts —
// the mutable pointer tree (Engine/Explorer) and the frozen columnar
// index (FrozenEngine/FrozenExplorer) — so both produce bit-identical
// answers from one implementation.
package query

import (
	"fmt"
	"sort"
	"sync"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Params are the query-time knobs shared by every entry point.
type Params struct {
	// Scenario selects the service semantics (Binary/PointCount/Length).
	Scenario service.Scenario
	// Psi is the distance threshold ψ: a user point can be served by a
	// stop within ψ.
	Psi float64
}

// Validate checks the parameters independently of any tree — exposed for
// layers (e.g. internal/shard) that validate once before fanning a query
// out to several engines.
func (p Params) Validate() error { return p.validate() }

func (p Params) validate() error {
	if !p.Scenario.Valid() {
		return fmt.Errorf("query: invalid scenario %d", int(p.Scenario))
	}
	if p.Psi < 0 {
		return fmt.Errorf("query: negative psi %v", p.Psi)
	}
	return nil
}

// Metrics reports work done by a query, for diagnostics and experiments.
type Metrics struct {
	// NodesVisited counts q-node list evaluations.
	NodesVisited int
	// EntriesScored counts exact per-entry service computations (entries
	// surviving zReduce).
	EntriesScored int
	// Relaxations counts best-first state relaxations (TopK only).
	Relaxations int
}

// Engine answers kMaxRRST queries over a TQ-tree.
type Engine struct {
	tree  *tqtree.Tree
	users *trajectory.Set
}

// NewEngine wraps an existing TQ-tree. users must be the set the tree
// indexes (needed to translate coverage masks back into service values).
func NewEngine(tree *tqtree.Tree, users *trajectory.Set) *Engine {
	return &Engine{tree: tree, users: users}
}

// Tree returns the underlying TQ-tree.
func (e *Engine) Tree() *tqtree.Tree { return e.tree }

// Users returns the indexed user set.
func (e *Engine) Users() *trajectory.Set { return e.users }

// ServiceValue computes SO(U, f) exactly via the divide-and-conquer
// traversal of Algorithm 1. The returned Metrics describe the work done.
func (e *Engine) ServiceValue(f *trajectory.Facility, p Params) (float64, Metrics, error) {
	l := ptrLayout{e.tree}
	if err := validateQuery[*tqtreeNode](l, p); err != nil {
		return 0, Metrics{}, err
	}
	var m Metrics
	mode := e.tree.FilterModeFor(p.Scenario)
	arena := acquireCompArena(len(f.Stops))
	so := evaluateServiceG(l, e.tree.Root(), f.Stops, p, mode, &m, arena)
	putCompArena(arena)
	return so, m, nil
}

// compArena is a stack-discipline buffer for facility components during a
// depth-first traversal: children components are carved from the buffer
// and released (truncated) when their recursion returns, so a whole query
// does O(1) component allocations instead of one per visited node. It
// also carries the reusable candidate visitors, so a traversal passes no
// closures (which would each cost a heap allocation) to the tree.
type compArena struct {
	buf     []geo.Point
	scorer  entryScorer
	coverer entryCoverer
}

// entryScorer is the EntryVisitor for exact service accumulation
// (Algorithm 2's inner loop). Reused across node visits via the arena or
// the exploration state; the survivor count is accumulated locally and
// folded into Metrics by evalNodeList.
type entryScorer struct {
	ss *service.StopSet
	sc service.Scenario
	so float64
	n  int
}

func (v *entryScorer) VisitEntry(en *tqtree.Entry) {
	v.n++
	v.so += en.ServeSet(v.sc, v.ss)
}

// entryCoverer is the EntryVisitor recording coverage masks.
type entryCoverer struct {
	ss            *service.StopSet
	cov           service.Coverage
	m             *Metrics
	endpointsOnly bool
}

func (v *entryCoverer) VisitEntry(en *tqtree.Entry) {
	v.m.EntriesScored++
	en.CoverInto(v.cov, v.ss, v.endpointsOnly)
}

// compArenaPool recycles arenas across queries: the traversal releases
// every carve before returning, so a released arena holds no live
// component slices and its backing buffer can be handed to the next
// query verbatim.
var compArenaPool = sync.Pool{New: func() any { return new(compArena) }}

func acquireCompArena(stops int) *compArena {
	a := compArenaPool.Get().(*compArena)
	if want := 4*stops + 16; cap(a.buf) < want {
		a.buf = make([]geo.Point, 0, want)
	}
	a.buf = a.buf[:0]
	return a
}

func putCompArena(a *compArena) {
	// Drop visitor references so the pool doesn't pin the caller's
	// coverage maps or metrics between queries.
	a.scorer = entryScorer{}
	a.coverer = entryCoverer{}
	compArenaPool.Put(a)
}

// carve appends the stops within rect expanded by psi and returns them as
// a capacity-clamped slice. Release by truncating to the returned mark.
func (a *compArena) carve(stops []geo.Point, rect geo.Rect, psi float64) (comp []geo.Point, mark int) {
	mark = len(a.buf)
	ext := rect.Expand(psi)
	for _, s := range stops {
		if ext.Contains(s) {
			a.buf = append(a.buf, s)
		}
	}
	return a.buf[mark:len(a.buf):len(a.buf)], mark
}

func (a *compArena) release(mark int) { a.buf = a.buf[:mark] }

// coverageMode returns the zReduce filter that is sound for coverage
// collection: any entry with any covered point must survive, because
// combined (AGG) semantics can join partial coverage across facilities.
func coverageMode(t *tqtree.Tree) tqtree.FilterMode {
	if t.Variant() == tqtree.FullTrajectory {
		return tqtree.NeedOverlap
	}
	return tqtree.NeedAny
}

// Coverage computes the per-user coverage masks of a facility: which
// points of which users its stops cover. This is the building block of
// the MaxkCovRST solvers in internal/maxcov.
func (e *Engine) Coverage(f *trajectory.Facility, p Params) (service.Coverage, Metrics, error) {
	if err := p.validate(); err != nil {
		return nil, Metrics{}, err
	}
	if err := e.tree.ValidateScenario(p.Scenario); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	cov := service.Coverage{}
	mode := coverageMode(e.tree)
	endpointsOnly := e.tree.Variant() == tqtree.TwoPoint
	arena := acquireCompArena(len(f.Stops))
	e.coverService(e.tree.Root(), f.Stops, p, mode, endpointsOnly, cov, &m, arena)
	putCompArena(arena)
	return cov, m, nil
}

func (e *Engine) coverService(n *tqtree.Node, stops []geo.Point, p Params, mode tqtree.FilterMode, endpointsOnly bool, cov service.Coverage, m *Metrics, arena *compArena) {
	if n == nil || len(stops) == 0 {
		return
	}
	if n.ListLen() > 0 {
		m.NodesVisited++
		embr := geo.RectOf(stops).Expand(p.Psi)
		ss := service.AcquireStopSet(stops, p.Psi, n.ListLen()/4)
		cv := &arena.coverer
		cv.ss, cv.cov, cv.m, cv.endpointsOnly = ss, cov, m, endpointsOnly
		e.tree.NodeCandidatesV(n, embr, mode, cv)
		ss.Release()
	}
	if n.IsLeaf() {
		return
	}
	for q := 0; q < 4; q++ {
		c := n.Child(q)
		if c == nil {
			continue
		}
		cstops, mark := arena.carve(stops, c.Rect(), p.Psi)
		if len(cstops) == 0 {
			arena.release(mark)
			continue
		}
		e.coverService(c, cstops, p, mode, endpointsOnly, cov, m, arena)
		arena.release(mark)
	}
}

// UserService is one served user in a reverse range search answer.
type UserService struct {
	User trajectory.ID
	// Value is S(u, f) under the query's scenario.
	Value float64
}

// ServedUsers answers the reverse range search underlying kMaxRRST for a
// single facility: every user with positive service, with their service
// values, ordered by value descending (ties by ID). This is the per-
// facility view the paper's Scenario examples motivate ("which commuters
// would this route convert?").
func (e *Engine) ServedUsers(f *trajectory.Facility, p Params) ([]UserService, Metrics, error) {
	cov, m, err := e.Coverage(f, p)
	if err != nil {
		return nil, m, err
	}
	out := make([]UserService, 0, len(cov))
	for id, mask := range cov {
		u := e.users.ByID(id)
		if u == nil {
			continue
		}
		if v := ObjectiveFromMask(e.tree.Variant(), p.Scenario, u, mask); v > 0 {
			out = append(out, UserService{User: id, Value: v})
		}
	}
	sortUserServices(out)
	return out, m, nil
}

func sortUserServices(us []UserService) {
	sort.Slice(us, func(i, j int) bool {
		if us[i].Value != us[j].Value {
			return us[i].Value > us[j].Value
		}
		return us[i].User < us[j].User
	})
}

// ObjectiveFromMask translates a coverage mask into the objective value
// used for a given index variant. It equals service.ValueFromMask except
// for Segmented+Binary, where the paper's segmented experiments count
// served segments (each consecutive pair with both endpoints covered).
func ObjectiveFromMask(variant tqtree.Variant, sc service.Scenario, u *trajectory.Trajectory, mask service.Mask) float64 {
	if variant == tqtree.Segmented && sc == service.Binary {
		served := 0
		for i := 0; i < u.NumSegments(); i++ {
			if mask.Get(i) && mask.Get(i+1) {
				served++
			}
		}
		return float64(served)
	}
	return service.ValueFromMask(sc, u, mask)
}

// ExactServiceValue is the brute-force oracle: SO(U, f) by direct scan,
// used to validate every accelerated path.
func ExactServiceValue(variant tqtree.Variant, sc service.Scenario, users *trajectory.Set, stops []geo.Point, psi float64) float64 {
	var total float64
	for _, u := range users.All {
		total += ObjectiveFromMask(variant, sc, u, service.MaskOf(u, stops, psi))
	}
	return total
}
