package query

import (
	"fmt"
	"testing"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// benchSetup builds a 200k-trip workload shared by the package benchmarks.
type benchEnv struct {
	users *trajectory.Set
	fs    []*trajectory.Facility
	engZ  *Engine
	engB  *Engine
	bl    *Baseline
}

var sharedEnv *benchEnv

func getEnv(b *testing.B) *benchEnv {
	b.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	city := datagen.NewYork()
	users := trajectory.MustNewSet(datagen.TaxiTrips(city, 200000, 2))
	fs := datagen.BusRoutes(city, 128, 32, 5)
	treeZ, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder})
	if err != nil {
		b.Fatal(err)
	}
	treeB, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.Basic})
	if err != nil {
		b.Fatal(err)
	}
	sharedEnv = &benchEnv{
		users: users,
		fs:    fs,
		engZ:  NewEngine(treeZ, users),
		engB:  NewEngine(treeB, users),
		bl:    NewBaseline(users, tqtree.TwoPoint),
	}
	return sharedEnv
}

var benchParams = Params{Scenario: service.Binary, Psi: 300}

func BenchmarkTopKZOrder(b *testing.B) {
	env := getEnv(b)
	b.ReportAllocs() // guards the relaxState span/buf scratch reuse
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.engZ.TopK(env.fs, 8, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKParallel(b *testing.B) {
	env := getEnv(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := env.engZ.TopKParallel(env.fs, 8, benchParams, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkServiceValuesWorkers(b *testing.B) {
	env := getEnv(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := env.engZ.ServiceValues(env.fs, benchParams, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTopKBasic(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.engB.TopK(env.fs, 8, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKBaseline(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.bl.TopK(env.fs, 8, benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceValueZOrder(b *testing.B) {
	env := getEnv(b)
	b.ReportAllocs() // guards the pooled compArena + StopSet hot path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.engZ.ServiceValue(env.fs[i%len(env.fs)], benchParams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageZOrder(b *testing.B) {
	env := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.engZ.Coverage(env.fs[i%len(env.fs)], benchParams); err != nil {
			b.Fatal(err)
		}
	}
}
