package query

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/trajcover/trajcover/internal/trajectory"
)

// This file implements the concurrent batch executor. A built TQ-tree is
// immutable under queries — every traversal in this package only reads
// nodes, lists, and cached bounds — so one tree is safely shared by any
// number of worker goroutines without locking. (Tree.Insert is NOT safe
// to run concurrently with queries; batch serving of a mutating tree
// needs external coordination or snapshotting.)
//
// Each worker owns its hot-path scratch (compArena, pooled StopSets) and
// a private Metrics that is summed into the caller's after the join, so
// the hot loops share no mutable state and the merged totals match the
// serial run wherever the work split is deterministic.

// resolveWorkers maps a workers argument to an effective pool size:
// non-positive means GOMAXPROCS, and a batch never needs more workers
// than items.
func resolveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Add accumulates other into m — used wherever per-worker or per-shard
// metrics are merged into a caller's total.
func (m *Metrics) Add(other Metrics) {
	m.NodesVisited += other.NodesVisited
	m.EntriesScored += other.EntriesScored
	m.Relaxations += other.Relaxations
}

// ServiceValues computes SO(U, f) for every facility in one batch,
// sharding the facilities across a pool of workers. The returned slice
// is indexed like facilities, so the ordering is deterministic and
// identical to calling ServiceValue in a loop; the merged Metrics totals
// are as well, because each facility's traversal is independent.
// workers <= 0 uses GOMAXPROCS.
func (e *Engine) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	if err := p.validate(); err != nil {
		return nil, Metrics{}, err
	}
	if err := e.tree.ValidateScenario(p.Scenario); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if len(facilities) == 0 {
		return nil, m, nil
	}
	mode := e.tree.FilterModeFor(p.Scenario)
	out := make([]float64, len(facilities))
	workers = resolveWorkers(workers, len(facilities))
	stops := maxStops(facilities)
	if workers == 1 {
		arena := acquireCompArena(stops)
		for i, f := range facilities {
			out[i] = e.evaluateService(e.tree.Root(), f.Stops, p, mode, &m, arena)
		}
		putCompArena(arena)
		return out, m, nil
	}
	var next atomic.Int64
	perWorker := make([]Metrics, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := acquireCompArena(stops)
			wm := &perWorker[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(facilities) {
					break
				}
				out[i] = e.evaluateService(e.tree.Root(), facilities[i].Stops, p, mode, wm, arena)
			}
			putCompArena(arena)
		}(w)
	}
	wg.Wait()
	for _, wm := range perWorker {
		m.Add(wm)
	}
	return out, m, nil
}

// TopKExhaustiveParallel is TopKExhaustive with the per-facility scoring
// sharded across workers. The answer (and the merged Metrics) is
// identical to the serial TopKExhaustive: scores are written by facility
// index and sorted with the same deterministic tie-break.
func (e *Engine) TopKExhaustiveParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	if k <= 0 || len(facilities) == 0 {
		if err := p.validate(); err != nil {
			return nil, Metrics{}, err
		}
		if err := e.tree.ValidateScenario(p.Scenario); err != nil {
			return nil, Metrics{}, err
		}
		return nil, Metrics{}, nil
	}
	values, m, err := e.ServiceValues(facilities, p, workers)
	if err != nil {
		return nil, m, err
	}
	return Results(facilities, values, k), m, nil
}

// TopKParallel answers kMaxRRST with the best-first strategy of TopK,
// relaxing up to `workers` frontier states concurrently per round. A
// facility is emitted only when it reaches the top of the heap with no
// optimistic remainder — the same exactness condition as the serial
// search — so the results are identical to TopK. Metrics.Relaxations may
// exceed the serial count: batching can relax states the serial search
// would have pruned by an earlier termination, buying wall-clock time
// with speculative work. workers <= 1 falls back to the serial TopK.
func (e *Engine) TopKParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	workers = resolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return e.TopK(facilities, k, p)
	}
	if err := p.validate(); err != nil {
		return nil, Metrics{}, err
	}
	if err := e.tree.ValidateScenario(p.Scenario); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if k <= 0 || len(facilities) == 0 {
		return nil, m, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	mode := e.tree.FilterModeFor(p.Scenario)
	ancestors := e.tree.AncestorsCanServe(p.Scenario)

	h := make(stateHeap, 0, len(facilities))
	for _, f := range facilities {
		h = append(h, e.initialState(f, p, ancestors))
	}
	heap.Init(&h)

	results := make([]Result, 0, k)
	batch := make([]*state, 0, workers)
	perWorker := make([]Metrics, workers)
	for h.Len() > 0 && len(results) < k {
		s := heap.Pop(&h).(*state)
		if len(s.pairs) == 0 || s.hserve == 0 {
			results = append(results, Result{Facility: s.fac, Service: s.aserve})
			continue
		}
		// Grab more non-final states to relax alongside the top one. A
		// final state stops the grab: it must be re-examined at the top
		// of the heap after the batch reorders, not emitted early.
		batch = append(batch[:0], s)
		for len(batch) < workers && h.Len() > 0 {
			nxt := h[0]
			if len(nxt.pairs) == 0 || nxt.hserve == 0 {
				break
			}
			batch = append(batch, heap.Pop(&h).(*state))
		}
		if len(batch) == 1 {
			e.relaxState(s, p, mode, &m)
		} else {
			var wg sync.WaitGroup
			for i, bs := range batch {
				wg.Add(1)
				go func(i int, bs *state) {
					defer wg.Done()
					e.relaxState(bs, p, mode, &perWorker[i])
				}(i, bs)
			}
			wg.Wait()
		}
		for _, bs := range batch {
			heap.Push(&h, bs)
		}
	}
	for _, wm := range perWorker {
		m.Add(wm)
	}
	return results, m, nil
}

// Results converts a batch of service values into sorted top-k results —
// a convenience for callers that already hold ServiceValues output.
func Results(facilities []*trajectory.Facility, values []float64, k int) []Result {
	if len(values) != len(facilities) {
		panic("query: values/facilities length mismatch")
	}
	results := make([]Result, len(facilities))
	for i, f := range facilities {
		results[i] = Result{Facility: f, Service: values[i]}
	}
	sortResults(results)
	if k > 0 && k < len(results) {
		results = results[:k]
	}
	return results
}
