package query

import (
	"runtime"

	"github.com/trajcover/trajcover/internal/trajectory"
)

// This file exposes the concurrent batch executor over the pointer tree.
// A built TQ-tree is immutable under queries — every traversal in this
// package only reads nodes, lists, and cached bounds — so one tree is
// safely shared by any number of worker goroutines without locking.
// (Tree.Insert is NOT safe to run concurrently with queries; batch
// serving of a mutating tree needs external coordination or
// snapshotting.)
//
// Each worker owns its hot-path scratch (compArena, pooled StopSets) and
// a private Metrics that is summed into the caller's after the join, so
// the hot loops share no mutable state and the merged totals match the
// serial run wherever the work split is deterministic. The actual batch
// loops live in layout.go, shared with the frozen columnar engine.

// ResolveWorkers maps a caller's `workers` argument to an effective pool
// size. It is THE normalization for every batch and parallel entry point
// in this module — Engine, FrozenEngine, Epoch, and the sharded/live
// scatter-gather in internal/shard all apply the same rule:
//
//   - workers <= 0 means runtime.GOMAXPROCS(0);
//   - the pool never exceeds `items` (a batch can't use more workers
//     than units of work, a relaxation round can't usefully batch more
//     states than facilities);
//   - the result is never below 1, even for an empty batch.
//
// Parallel TopK entry points additionally fall back to their serial
// search when the resolved pool is 1 — same answers, no goroutines.
func ResolveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Add accumulates other into m — used wherever per-worker or per-shard
// metrics are merged into a caller's total.
func (m *Metrics) Add(other Metrics) {
	m.NodesVisited += other.NodesVisited
	m.EntriesScored += other.EntriesScored
	m.Relaxations += other.Relaxations
}

// ServiceValues computes SO(U, f) for every facility in one batch,
// sharding the facilities across a pool of workers. The returned slice
// is indexed like facilities, so the ordering is deterministic and
// identical to calling ServiceValue in a loop; the merged Metrics totals
// are as well, because each facility's traversal is independent.
// workers is normalized by ResolveWorkers.
func (e *Engine) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	return serviceValuesG[*tqtreeNode](ptrLayout{e.tree}, facilities, p, workers, nil)
}

// TopKExhaustiveParallel is TopKExhaustive with the per-facility scoring
// sharded across workers. The answer (and the merged Metrics) is
// identical to the serial TopKExhaustive: scores are written by facility
// index and sorted with the same deterministic tie-break.
func (e *Engine) TopKExhaustiveParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	if k <= 0 || len(facilities) == 0 {
		if err := validateQuery[*tqtreeNode](ptrLayout{e.tree}, p); err != nil {
			return nil, Metrics{}, err
		}
		return nil, Metrics{}, nil
	}
	values, m, err := e.ServiceValues(facilities, p, workers)
	if err != nil {
		return nil, m, err
	}
	return Results(facilities, values, k), m, nil
}

// TopKParallel answers kMaxRRST with the best-first strategy of TopK,
// relaxing up to `workers` frontier states concurrently per round. A
// facility is emitted only when it reaches the top of the heap with no
// optimistic remainder — the same exactness condition as the serial
// search — so the results are identical to TopK. Metrics.Relaxations may
// exceed the serial count: batching can relax states the serial search
// would have pruned by an earlier termination, buying wall-clock time
// with speculative work. workers is normalized by ResolveWorkers; a
// single-worker pool falls back to the serial TopK.
func (e *Engine) TopKParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	workers = ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return e.TopK(facilities, k, p)
	}
	return topKParallelG[*tqtreeNode](ptrLayout{e.tree}, facilities, k, p, workers, nil)
}

// Results converts a batch of service values into sorted top-k results —
// a convenience for callers that already hold ServiceValues output.
func Results(facilities []*trajectory.Facility, values []float64, k int) []Result {
	if len(values) != len(facilities) {
		panic("query: values/facilities length mismatch")
	}
	results := make([]Result, len(facilities))
	for i, f := range facilities {
		results[i] = Result{Facility: f, Service: values[i]}
	}
	sortResults(results)
	if k > 0 && k < len(results) {
		results = results[:k]
	}
	return results
}
