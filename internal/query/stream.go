package query

// Streaming execution: the batch service-value executor, re-cut to
// yield results incrementally. A stream chunks the facility list and
// runs the tested batch core (serviceValuesG) chunk by chunk, handing
// each chunk's values to a visitor as soon as they exist — first
// results after one chunk's work instead of after the whole batch, and
// peak memory bounded by the chunk, not the request. Per-facility
// values are independent of batch composition (each facility's
// traversal touches only that facility), so a streamed value is
// bit-identical to the same index's batch answer — the property the
// oracle tests pin.

import (
	"context"
	"runtime"

	"github.com/trajcover/trajcover/internal/trajectory"
)

// DefaultStreamChunk is the facility-batch granularity when the caller
// passes chunk <= 0: large enough to amortize per-chunk setup and keep
// a worker pool busy, small enough that first results arrive quickly.
const DefaultStreamChunk = 256

// serviceValuesStreamG chunks facilities and yields each chunk's batch
// result in order: yield(start, vals) with vals indexed like
// facilities[start : start+len(vals)]. A yield error aborts the stream
// and is returned verbatim; cancellation aborts between (and inside)
// chunks. Metrics accumulate across yielded chunks.
func serviceValuesStreamG[N comparable, L tlayout[N]](l L, facilities []*trajectory.Facility, p Params, workers, chunk int, cc *canceller, yield func(start int, vals []float64) error) (Metrics, error) {
	var m Metrics
	if err := validateQuery[N](l, p); err != nil {
		return m, err
	}
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	for start := 0; start < len(facilities); start += chunk {
		end := start + chunk
		if end > len(facilities) {
			end = len(facilities)
		}
		vals, cm, err := serviceValuesG[N](l, facilities[start:end], p, workers, cc)
		m.Add(cm)
		if err != nil {
			return m, err
		}
		if err := yield(start, vals); err != nil {
			return m, err
		}
	}
	return m, nil
}

// ServiceValuesStreamCtx streams SO(U, f) for every facility in chunks
// of the given size (<= 0: DefaultStreamChunk), calling yield(start,
// vals) once per chunk, in facility order. Values are bit-identical to
// ServiceValuesCtx over the same facilities. A yield error or a done
// context aborts the stream.
func (e *Engine) ServiceValuesStreamCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers, chunk int, yield func(start int, vals []float64) error) (Metrics, error) {
	return serviceValuesStreamG[*tqtreeNode](ptrLayout{e.tree}, facilities, p, workers, chunk, newCanceller(ctx), yield)
}

// ServiceValuesStreamCtx is Engine.ServiceValuesStreamCtx over frozen
// columns.
func (e *FrozenEngine) ServiceValuesStreamCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers, chunk int, yield func(start int, vals []float64) error) (Metrics, error) {
	defer runtime.KeepAlive(e.f)
	return serviceValuesStreamG[int32](frozenLayout{e.f}, facilities, p, workers, chunk, newCanceller(ctx), yield)
}

// ServiceValuesStreamCtx streams the epoch's service values (base plus
// delta, minus tombstones) chunk by chunk; see Engine equivalent. Each
// chunk runs the same masked batch + delta fold as ServiceValuesCtx,
// so streamed values are bit-identical to the batch answer.
func (ep *Epoch) ServiceValuesStreamCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers, chunk int, yield func(start int, vals []float64) error) (Metrics, error) {
	defer runtime.KeepAlive(ep)
	var m Metrics
	if err := ep.validate(p); err != nil {
		return m, err
	}
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	cc := newCanceller(ctx)
	for start := 0; start < len(facilities); start += chunk {
		end := start + chunk
		if end > len(facilities) {
			end = len(facilities)
		}
		vals, cm, err := ep.serviceValues(facilities[start:end], p, workers, cc)
		m.Add(cm)
		if err != nil {
			return m, err
		}
		if err := yield(start, vals); err != nil {
			return m, err
		}
	}
	return m, nil
}
