package query

import (
	"sort"

	"github.com/trajcover/trajcover/internal/trajectory"
)

// Result is one facility of a top-k answer.
type Result struct {
	Facility *trajectory.Facility
	// Service is the exact SO(U, f).
	Service float64
}

// TopK answers the kMaxRRST query: the k facilities with the highest
// service value, in non-increasing order, computed with the best-first
// strategy of Algorithm 3 driven by the q-node `sub` upper bounds.
func (e *Engine) TopK(facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	return topKG[*tqtreeNode](ptrLayout{e.tree}, facilities, k, p, nil)
}

// TopKExhaustive computes the same answer as TopK by evaluating every
// facility's service value with Algorithm 1 and sorting — no best-first
// pruning. It is the reference the best-first path is tested against, and
// the shape the TQ(B)/TQ(Z) comparison in the paper's Figure 7 uses when
// upper-bound pruning is disabled.
func (e *Engine) TopKExhaustive(facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	return topKExhaustiveG[*tqtreeNode](ptrLayout{e.tree}, facilities, k, p)
}

func maxStops(facilities []*trajectory.Facility) int {
	most := 0
	for _, f := range facilities {
		if len(f.Stops) > most {
			most = len(f.Stops)
		}
	}
	return most
}

// sortResults orders by service descending, facility ID ascending for
// determinism.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Service != rs[j].Service {
			return rs[i].Service > rs[j].Service
		}
		return rs[i].Facility.ID < rs[j].Facility.ID
	})
}
