package query

import (
	"container/heap"
	"sort"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Result is one facility of a top-k answer.
type Result struct {
	Facility *trajectory.Facility
	// Service is the exact SO(U, f).
	Service float64
}

// qfPair is one ⟨q-node, facility-component⟩ pair of a search state: the
// node's own list is still unevaluated, and (unless listOnly) so is its
// subtree.
type qfPair struct {
	node *tqtree.Node
	// stops is the facility component local to this node (stops within
	// ψ of the node's rectangle).
	stops []geo.Point
	// listOnly marks ancestor pairs: only the node's own list is
	// pending; its children are covered by deeper pairs.
	listOnly bool
}

// state is the paper's exploration state S for one facility: the frontier
// pairs, the exact service accumulated so far (aserve), and the optimistic
// remainder (hserve).
type state struct {
	fac    *trajectory.Facility
	pairs  []qfPair
	aserve float64
	hserve float64
	index  int // heap bookkeeping

	// Relaxation scratch, reused across this state's relaxations. pairs
	// and the component slices it references are backed by curPairs/
	// curStops; a relaxation writes the next frontier into nextPairs/
	// nextStops and swaps, so the buffers ping-pong and the state does
	// O(1) allocations over its whole exploration once they have grown.
	spans               []relaxSpan
	curStops, nextStops []geo.Point
	curPairs, nextPairs []qfPair
	scorer              entryScorer
}

// relaxSpan records one child component as an index range into the
// relaxation's stop buffer (the buffer may reallocate while growing, so
// slices are taken only after it is complete).
type relaxSpan struct {
	node   *tqtree.Node
	lo, hi int
}

func (s *state) fserve() float64 { return s.aserve + s.hserve }

// stateHeap is a max-heap on fserve with facility ID as a deterministic
// tie-break.
type stateHeap []*state

func (h stateHeap) Len() int { return len(h) }
func (h stateHeap) Less(i, j int) bool {
	if h[i].fserve() != h[j].fserve() {
		return h[i].fserve() > h[j].fserve()
	}
	return h[i].fac.ID < h[j].fac.ID
}
func (h stateHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *stateHeap) Push(x any) {
	s := x.(*state)
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// TopK answers the kMaxRRST query: the k facilities with the highest
// service value, in non-increasing order, computed with the best-first
// strategy of Algorithm 3 driven by the q-node `sub` upper bounds.
func (e *Engine) TopK(facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	if err := p.validate(); err != nil {
		return nil, Metrics{}, err
	}
	if err := e.tree.ValidateScenario(p.Scenario); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if k <= 0 || len(facilities) == 0 {
		return nil, m, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	mode := e.tree.FilterModeFor(p.Scenario)
	ancestors := e.tree.AncestorsCanServe(p.Scenario)

	h := make(stateHeap, 0, len(facilities))
	for _, f := range facilities {
		h = append(h, e.initialState(f, p, ancestors))
	}
	heap.Init(&h)

	results := make([]Result, 0, k)
	for h.Len() > 0 && len(results) < k {
		s := heap.Pop(&h).(*state)
		// hserve == 0 means no unexplored pair can add service: aserve
		// is exact. This covers both the fully-explored case (empty
		// pairs) and the paper's safe early termination.
		if len(s.pairs) == 0 || s.hserve == 0 {
			results = append(results, Result{Facility: s.fac, Service: s.aserve})
			continue
		}
		e.relaxState(s, p, mode, &m)
		heap.Push(&h, s)
	}
	return results, m, nil
}

// initialState seeds a facility's exploration at the smallest q-node
// containing its EMBR (the paper's containingQNode). When entries stored
// at proper ancestors can still be served — multipoint variants — the
// ancestors' own lists are enqueued as list-only pairs so the search stays
// exact while hserve stays tight.
func (e *Engine) initialState(f *trajectory.Facility, p Params, ancestors bool) *state {
	embr := f.EMBR(p.Psi)
	path := e.tree.ContainingPath(embr)
	q := path[len(path)-1]
	s := &state{fac: f}
	if ancestors {
		for _, a := range path[:len(path)-1] {
			if a.ListLen() == 0 {
				continue
			}
			s.pairs = append(s.pairs, qfPair{node: a, stops: f.Stops, listOnly: true})
			s.hserve += a.OwnUB(p.Scenario)
		}
	}
	s.pairs = append(s.pairs, qfPair{node: q, stops: f.Stops})
	s.hserve += q.TreeUB(p.Scenario)
	return s
}

// relaxState is Algorithm 4: evaluate every frontier pair's own list
// exactly (moving its value into aserve) and replace the pair with its
// intersecting children, rebuilding hserve from the children's `sub`.
//
// All children components of one relaxation are carved from a single
// backing buffer, recorded as index spans so the buffer may grow freely.
// The buffers live on the state and double-buffer between relaxations
// (the outgoing frontier still references the previous buffer while the
// next one is written), so steady-state relaxations allocate nothing.
func (e *Engine) relaxState(s *state, p Params, mode tqtree.FilterMode, m *Metrics) {
	m.Relaxations++
	spans := s.spans[:0]
	buf := s.nextStops[:0]
	var hserve float64
	for _, pr := range s.pairs {
		s.aserve += e.evaluateNodeTrajectories(pr.node, pr.stops, p, mode, m, &s.scorer)
		if pr.listOnly || pr.node.IsLeaf() {
			continue
		}
		for q := 0; q < 4; q++ {
			c := pr.node.Child(q)
			if c == nil {
				continue
			}
			ext := c.Rect().Expand(p.Psi)
			lo := len(buf)
			for _, st := range pr.stops {
				if ext.Contains(st) {
					buf = append(buf, st)
				}
			}
			if len(buf) == lo {
				continue
			}
			spans = append(spans, relaxSpan{node: c, lo: lo, hi: len(buf)})
			hserve += c.TreeUB(p.Scenario)
		}
	}
	next := s.nextPairs[:0]
	for _, sp := range spans {
		next = append(next, qfPair{node: sp.node, stops: buf[sp.lo:sp.hi:sp.hi]})
	}
	s.spans = spans
	s.nextStops, s.curStops = s.curStops, buf
	s.nextPairs, s.curPairs = s.curPairs, next
	s.pairs = next
	s.hserve = hserve
}

// TopKExhaustive computes the same answer as TopK by evaluating every
// facility's service value with Algorithm 1 and sorting — no best-first
// pruning. It is the reference the best-first path is tested against, and
// the shape the TQ(B)/TQ(Z) comparison in the paper's Figure 7 uses when
// upper-bound pruning is disabled.
func (e *Engine) TopKExhaustive(facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	if err := p.validate(); err != nil {
		return nil, Metrics{}, err
	}
	if err := e.tree.ValidateScenario(p.Scenario); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if k <= 0 || len(facilities) == 0 {
		return nil, m, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	mode := e.tree.FilterModeFor(p.Scenario)
	results := make([]Result, 0, len(facilities))
	arena := acquireCompArena(maxStops(facilities))
	for _, f := range facilities {
		so := e.evaluateService(e.tree.Root(), f.Stops, p, mode, &m, arena)
		results = append(results, Result{Facility: f, Service: so})
	}
	putCompArena(arena)
	sortResults(results)
	return results[:k], m, nil
}

func maxStops(facilities []*trajectory.Facility) int {
	most := 0
	for _, f := range facilities {
		if len(f.Stops) > most {
			most = len(f.Stops)
		}
	}
	return most
}

// sortResults orders by service descending, facility ID ascending for
// determinism.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Service != rs[j].Service {
			return rs[i].Service > rs[j].Service
		}
		return rs[i].Facility.ID < rs[j].Facility.ID
	})
}
