package query

import (
	"runtime"

	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// FrozenEngine answers kMaxRRST queries over a frozen columnar TQ-tree.
// It runs exactly the same search implementation as Engine (see
// layout.go) instantiated over int32 node handles into the flat index, so
// its answers — values, result order, and work metrics — are
// bit-identical to the pointer engine's over the tree the index was
// frozen from. A FrozenEngine is immutable and safe for any number of
// concurrent readers.
type FrozenEngine struct {
	f     *tqtree.Frozen
	users *trajectory.Set
}

// NewFrozenEngine wraps a frozen index. users must be the set the index
// was built over.
func NewFrozenEngine(f *tqtree.Frozen, users *trajectory.Set) *FrozenEngine {
	return &FrozenEngine{f: f, users: users}
}

// Frozen returns the underlying flat index.
func (e *FrozenEngine) Frozen() *tqtree.Frozen { return e.f }

// Users returns the indexed user set.
func (e *FrozenEngine) Users() *trajectory.Set { return e.users }

// ServiceValue computes SO(U, f) exactly via the divide-and-conquer
// traversal of Algorithm 1 over the flat layout.
func (e *FrozenEngine) ServiceValue(f *trajectory.Facility, p Params) (float64, Metrics, error) {
	// Mapped indexes serve column slices that alias a file mapping whose
	// lifetime is a finalizer on e.f's pin; the KeepAlive pins e.f (and
	// so the mapping) across the whole evaluation even if the compiler
	// proves e.f itself dead mid-call. Same pattern on every query entry
	// point below and on Epoch.
	defer runtime.KeepAlive(e.f)
	l := frozenLayout{e.f}
	if err := validateQuery[int32](l, p); err != nil {
		return 0, Metrics{}, err
	}
	var m Metrics
	mode := e.f.FilterModeFor(p.Scenario)
	arena := acquireCompArena(len(f.Stops))
	so := evaluateServiceG(l, int32(0), f.Stops, p, mode, &m, arena)
	putCompArena(arena)
	return so, m, nil
}

// ServiceValues computes SO(U, f) for every facility in one batch,
// sharding the facilities across a pool of workers; see
// Engine.ServiceValues.
func (e *FrozenEngine) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	return serviceValuesG[int32](frozenLayout{e.f}, facilities, p, workers, nil)
}

// TopK answers the kMaxRRST query best first; see Engine.TopK.
func (e *FrozenEngine) TopK(facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	return topKG[int32](frozenLayout{e.f}, facilities, k, p, nil)
}

// TopKExhaustive evaluates every facility and sorts; see
// Engine.TopKExhaustive.
func (e *FrozenEngine) TopKExhaustive(facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	return topKExhaustiveG[int32](frozenLayout{e.f}, facilities, k, p)
}

// TopKParallel is TopK with up to `workers` frontier states relaxed
// concurrently per round; see Engine.TopKParallel.
func (e *FrozenEngine) TopKParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]Result, Metrics, error) {
	defer runtime.KeepAlive(e.f)
	workers = ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return e.TopK(facilities, k, p)
	}
	return topKParallelG[int32](frozenLayout{e.f}, facilities, k, p, workers, nil)
}

// FrozenExplorer drives one facility's best-first exploration over a
// frozen index incrementally — the frozen counterpart of Explorer.
type FrozenExplorer struct {
	explorerCore[int32, frozenLayout]
}

var _ Exploration = (*FrozenExplorer)(nil)

// NewExplorer seeds a facility's exploration at the smallest q-node
// containing its EMBR, exactly as TopK's initialization does.
func (e *FrozenEngine) NewExplorer(f *trajectory.Facility, p Params) (*FrozenExplorer, error) {
	core, err := newExplorerCore[int32](frozenLayout{e.f}, f, p)
	if err != nil {
		return nil, err
	}
	return &FrozenExplorer{core}, nil
}
