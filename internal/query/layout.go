package query

// The layout-generic search core. The TQ-tree exists in two in-memory
// representations — the mutable pointer tree (tqtree.Tree, node handle
// *tqtree.Node) and the immutable frozen columnar layout (tqtree.Frozen,
// node handle int32) — and every query algorithm in this package
// (Algorithm 1's divide-and-conquer service evaluation, Algorithm 3/4's
// best-first top-k search, the incremental Explorer) is written once here
// over the tlayout abstraction and instantiated per layout. Both
// instantiations traverse nodes, carve components, and accumulate floats
// in exactly the same order, so their answers are bit-identical; the
// layouts differ only in how a node's own list is scanned (ScoreList).
//
// The layout adapters are tiny value structs around the tree pointer, so
// instantiation with a concrete adapter compiles to static calls — no
// interface dispatch on the hot path.

import (
	"container/heap"
	"sync"
	"sync/atomic"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// tlayout is the node-cursor interface both tree layouts implement. N is
// the node handle type; Nil() is the "no node" sentinel (nil pointer /
// -1 index).
type tlayout[N comparable] interface {
	Root() N
	Nil() N
	IsLeaf(N) bool
	// Child returns the node's i-th child slot (i in 0..3), Nil when the
	// slot is empty or past the node's children. Both layouts yield the
	// node's children in quadrant order under this iteration.
	Child(N, int) N
	Rect(N) geo.Rect
	ListLen(N) int
	OwnUB(N, service.Scenario) float64
	TreeUB(N, service.Scenario) float64
	ContainingPath(geo.Rect) []N
	FilterModeFor(service.Scenario) tqtree.FilterMode
	AncestorsCanServe(service.Scenario) bool
	ValidateScenario(service.Scenario) error
	// ScoreList runs zReduce over the node's own list against the EMBR
	// and exactly scores the survivors with ss, returning the summed
	// service and the survivor count. sco is caller-owned scratch the
	// pointer layout threads through to its reusable entry visitor; the
	// frozen layout ignores it.
	ScoreList(n N, embr geo.Rect, mode tqtree.FilterMode, ss *service.StopSet, sc service.Scenario, sco *entryScorer) (float64, int)
}

// tqtreeNode aliases tqtree.Node so layout instantiation sites outside
// this file stay short.
type tqtreeNode = tqtree.Node

// ptrLayout adapts the mutable pointer tree.
type ptrLayout struct{ t *tqtree.Tree }

func (l ptrLayout) Root() *tqtree.Node                       { return l.t.Root() }
func (l ptrLayout) Nil() *tqtree.Node                        { return nil }
func (l ptrLayout) IsLeaf(n *tqtree.Node) bool               { return n.IsLeaf() }
func (l ptrLayout) Child(n *tqtree.Node, i int) *tqtree.Node { return n.Child(i) }
func (l ptrLayout) Rect(n *tqtree.Node) geo.Rect             { return n.Rect() }
func (l ptrLayout) ListLen(n *tqtree.Node) int               { return n.ListLen() }
func (l ptrLayout) OwnUB(n *tqtree.Node, sc service.Scenario) float64 {
	return n.OwnUB(sc)
}
func (l ptrLayout) TreeUB(n *tqtree.Node, sc service.Scenario) float64 {
	return n.TreeUB(sc)
}
func (l ptrLayout) ContainingPath(r geo.Rect) []*tqtree.Node { return l.t.ContainingPath(r) }
func (l ptrLayout) FilterModeFor(sc service.Scenario) tqtree.FilterMode {
	return l.t.FilterModeFor(sc)
}
func (l ptrLayout) AncestorsCanServe(sc service.Scenario) bool { return l.t.AncestorsCanServe(sc) }
func (l ptrLayout) ValidateScenario(sc service.Scenario) error { return l.t.ValidateScenario(sc) }
func (l ptrLayout) ScoreList(n *tqtree.Node, embr geo.Rect, mode tqtree.FilterMode, ss *service.StopSet, sc service.Scenario, sco *entryScorer) (float64, int) {
	sco.ss, sco.sc, sco.so, sco.n = ss, sc, 0, 0
	l.t.NodeCandidatesV(n, embr, mode, sco)
	return sco.so, sco.n
}

// frozenLayout adapts the immutable columnar layout.
type frozenLayout struct{ f *tqtree.Frozen }

func (l frozenLayout) Root() int32                                 { return 0 }
func (l frozenLayout) Nil() int32                                  { return -1 }
func (l frozenLayout) IsLeaf(n int32) bool                         { return l.f.IsLeaf(n) }
func (l frozenLayout) Child(n int32, i int) int32                  { return l.f.Child(n, i) }
func (l frozenLayout) Rect(n int32) geo.Rect                       { return l.f.Rect(n) }
func (l frozenLayout) ListLen(n int32) int                         { return l.f.ListLen(n) }
func (l frozenLayout) OwnUB(n int32, sc service.Scenario) float64  { return l.f.OwnUB(n, sc) }
func (l frozenLayout) TreeUB(n int32, sc service.Scenario) float64 { return l.f.TreeUB(n, sc) }
func (l frozenLayout) ContainingPath(r geo.Rect) []int32           { return l.f.ContainingPath(r) }
func (l frozenLayout) FilterModeFor(sc service.Scenario) tqtree.FilterMode {
	return l.f.FilterModeFor(sc)
}
func (l frozenLayout) AncestorsCanServe(sc service.Scenario) bool { return l.f.AncestorsCanServe(sc) }
func (l frozenLayout) ValidateScenario(sc service.Scenario) error { return l.f.ValidateScenario(sc) }
func (l frozenLayout) ScoreList(n int32, embr geo.Rect, mode tqtree.FilterMode, ss *service.StopSet, sc service.Scenario, _ *entryScorer) (float64, int) {
	return l.f.ScoreNode(n, embr, mode, ss, sc)
}

// validateQuery checks the parameters and their compatibility with the
// layout's index.
func validateQuery[N comparable, L tlayout[N]](l L, p Params) error {
	if err := p.validate(); err != nil {
		return err
	}
	return l.ValidateScenario(p.Scenario)
}

// evalNodeList is Algorithm 2: run zReduce over the node's own list
// against the component's EMBR and score the survivors exactly.
func evalNodeList[N comparable, L tlayout[N]](l L, n N, stops []geo.Point, p Params, mode tqtree.FilterMode, m *Metrics, sco *entryScorer) float64 {
	ll := l.ListLen(n)
	if len(stops) == 0 || ll == 0 {
		return 0
	}
	m.NodesVisited++
	embr := geo.RectOf(stops).Expand(p.Psi)
	ss := service.AcquireStopSet(stops, p.Psi, ll/4)
	so, scored := l.ScoreList(n, embr, mode, ss, p.Scenario, sco)
	ss.Release()
	m.EntriesScored += scored
	return so
}

// evaluateServiceG is Algorithm 1: recursively divide the facility's stop
// set along the quadtree and evaluate each visited node's own list on the
// local component.
func evaluateServiceG[N comparable, L tlayout[N]](l L, n N, stops []geo.Point, p Params, mode tqtree.FilterMode, m *Metrics, arena *compArena) float64 {
	if n == l.Nil() || len(stops) == 0 {
		return 0
	}
	so := evalNodeList(l, n, stops, p, mode, m, &arena.scorer)
	if l.IsLeaf(n) {
		return so
	}
	for q := 0; q < 4; q++ {
		c := l.Child(n, q)
		if c == l.Nil() {
			continue
		}
		cstops, mark := arena.carve(stops, l.Rect(c), p.Psi)
		if len(cstops) == 0 {
			arena.release(mark)
			continue
		}
		so += evaluateServiceG(l, c, cstops, p, mode, m, arena)
		arena.release(mark)
	}
	return so
}

// qfPairG is one ⟨q-node, facility-component⟩ pair of a search state: the
// node's own list is still unevaluated, and (unless listOnly) so is its
// subtree.
type qfPairG[N comparable] struct {
	node N
	// stops is the facility component local to this node (stops within
	// ψ of the node's rectangle).
	stops []geo.Point
	// listOnly marks ancestor pairs: only the node's own list is
	// pending; its children are covered by deeper pairs.
	listOnly bool
}

// relaxSpanG records one child component as an index range into the
// relaxation's stop buffer (the buffer may reallocate while growing, so
// slices are taken only after it is complete).
type relaxSpanG[N comparable] struct {
	node   N
	lo, hi int
}

// stateG is the paper's exploration state S for one facility: the
// frontier pairs, the exact service accumulated so far (aserve), and the
// optimistic remainder (hserve).
type stateG[N comparable] struct {
	fac    *trajectory.Facility
	pairs  []qfPairG[N]
	aserve float64
	hserve float64
	index  int // heap bookkeeping

	// Relaxation scratch, reused across this state's relaxations. pairs
	// and the component slices it references are backed by curPairs/
	// curStops; a relaxation writes the next frontier into nextPairs/
	// nextStops and swaps, so the buffers ping-pong and the state does
	// O(1) allocations over its whole exploration once they have grown.
	spans               []relaxSpanG[N]
	curStops, nextStops []geo.Point
	curPairs, nextPairs []qfPairG[N]
	scorer              entryScorer
}

func (s *stateG[N]) fserve() float64 { return s.aserve + s.hserve }

func (s *stateG[N]) done() bool { return len(s.pairs) == 0 || s.hserve == 0 }

// stateHeapG is a max-heap on fserve with facility ID as a deterministic
// tie-break.
type stateHeapG[N comparable] []*stateG[N]

func (h stateHeapG[N]) Len() int { return len(h) }
func (h stateHeapG[N]) Less(i, j int) bool {
	if h[i].fserve() != h[j].fserve() {
		return h[i].fserve() > h[j].fserve()
	}
	return h[i].fac.ID < h[j].fac.ID
}
func (h stateHeapG[N]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *stateHeapG[N]) Push(x any) {
	s := x.(*stateG[N])
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *stateHeapG[N]) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// initialStateG seeds a facility's exploration at the smallest q-node
// containing its EMBR (the paper's containingQNode). When entries stored
// at proper ancestors can still be served — multipoint variants — the
// ancestors' own lists are enqueued as list-only pairs so the search
// stays exact while hserve stays tight.
func initialStateG[N comparable, L tlayout[N]](l L, f *trajectory.Facility, p Params, ancestors bool) *stateG[N] {
	embr := f.EMBR(p.Psi)
	path := l.ContainingPath(embr)
	q := path[len(path)-1]
	s := &stateG[N]{fac: f}
	if ancestors {
		for _, a := range path[:len(path)-1] {
			if l.ListLen(a) == 0 {
				continue
			}
			s.pairs = append(s.pairs, qfPairG[N]{node: a, stops: f.Stops, listOnly: true})
			s.hserve += l.OwnUB(a, p.Scenario)
		}
	}
	s.pairs = append(s.pairs, qfPairG[N]{node: q, stops: f.Stops})
	s.hserve += l.TreeUB(q, p.Scenario)
	return s
}

// relaxStateG is Algorithm 4: evaluate every frontier pair's own list
// exactly (moving its value into aserve) and replace the pair with its
// intersecting children, rebuilding hserve from the children's `sub`.
//
// All children components of one relaxation are carved from a single
// backing buffer, recorded as index spans so the buffer may grow freely.
// The buffers live on the state and double-buffer between relaxations
// (the outgoing frontier still references the previous buffer while the
// next one is written), so steady-state relaxations allocate nothing.
func relaxStateG[N comparable, L tlayout[N]](l L, s *stateG[N], p Params, mode tqtree.FilterMode, m *Metrics) {
	m.Relaxations++
	spans := s.spans[:0]
	buf := s.nextStops[:0]
	var hserve float64
	for _, pr := range s.pairs {
		s.aserve += evalNodeList(l, pr.node, pr.stops, p, mode, m, &s.scorer)
		if pr.listOnly || l.IsLeaf(pr.node) {
			continue
		}
		for q := 0; q < 4; q++ {
			c := l.Child(pr.node, q)
			if c == l.Nil() {
				continue
			}
			ext := l.Rect(c).Expand(p.Psi)
			lo := len(buf)
			for _, st := range pr.stops {
				if ext.Contains(st) {
					buf = append(buf, st)
				}
			}
			if len(buf) == lo {
				continue
			}
			spans = append(spans, relaxSpanG[N]{node: c, lo: lo, hi: len(buf)})
			hserve += l.TreeUB(c, p.Scenario)
		}
	}
	next := s.nextPairs[:0]
	for _, sp := range spans {
		next = append(next, qfPairG[N]{node: sp.node, stops: buf[sp.lo:sp.hi:sp.hi]})
	}
	s.spans = spans
	s.nextStops, s.curStops = s.curStops, buf
	s.nextPairs, s.curPairs = s.curPairs, next
	s.pairs = next
	s.hserve = hserve
}

// topKG answers the kMaxRRST query with the best-first strategy of
// Algorithm 3 driven by the q-node `sub` upper bounds. cc (nil means
// "never") is polled between relaxations; a done context aborts the
// search with its error and no partial answer.
func topKG[N comparable, L tlayout[N]](l L, facilities []*trajectory.Facility, k int, p Params, cc *canceller) ([]Result, Metrics, error) {
	if err := validateQuery[N](l, p); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if k <= 0 || len(facilities) == 0 {
		return nil, m, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	mode := l.FilterModeFor(p.Scenario)
	ancestors := l.AncestorsCanServe(p.Scenario)

	h := make(stateHeapG[N], 0, len(facilities))
	for _, f := range facilities {
		h = append(h, initialStateG(l, f, p, ancestors))
	}
	heap.Init(&h)

	results := make([]Result, 0, k)
	for h.Len() > 0 && len(results) < k {
		if err := cc.stopped(); err != nil {
			return nil, m, err
		}
		s := heap.Pop(&h).(*stateG[N])
		// hserve == 0 means no unexplored pair can add service: aserve
		// is exact. This covers both the fully-explored case (empty
		// pairs) and the paper's safe early termination.
		if s.done() {
			results = append(results, Result{Facility: s.fac, Service: s.aserve})
			continue
		}
		relaxStateG(l, s, p, mode, &m)
		heap.Push(&h, s)
	}
	return results, m, nil
}

// topKParallelG is topKG with up to `workers` frontier states relaxed
// concurrently per round. A facility is emitted only when it reaches the
// top of the heap with no optimistic remainder — the same exactness
// condition as the serial search — so the results are identical;
// Metrics.Relaxations may exceed the serial count because batching can
// relax states the serial search would have pruned.
func topKParallelG[N comparable, L tlayout[N]](l L, facilities []*trajectory.Facility, k int, p Params, workers int, cc *canceller) ([]Result, Metrics, error) {
	if err := validateQuery[N](l, p); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if k <= 0 || len(facilities) == 0 {
		return nil, m, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	mode := l.FilterModeFor(p.Scenario)
	ancestors := l.AncestorsCanServe(p.Scenario)

	h := make(stateHeapG[N], 0, len(facilities))
	for _, f := range facilities {
		h = append(h, initialStateG(l, f, p, ancestors))
	}
	heap.Init(&h)

	results := make([]Result, 0, k)
	batch := make([]*stateG[N], 0, workers)
	perWorker := make([]Metrics, workers)
	for h.Len() > 0 && len(results) < k {
		if err := cc.stopped(); err != nil {
			for _, wm := range perWorker {
				m.Add(wm)
			}
			return nil, m, err
		}
		s := heap.Pop(&h).(*stateG[N])
		if s.done() {
			results = append(results, Result{Facility: s.fac, Service: s.aserve})
			continue
		}
		// Grab more non-final states to relax alongside the top one. A
		// final state stops the grab: it must be re-examined at the top
		// of the heap after the batch reorders, not emitted early.
		batch = append(batch[:0], s)
		for len(batch) < workers && h.Len() > 0 {
			if h[0].done() {
				break
			}
			batch = append(batch, heap.Pop(&h).(*stateG[N]))
		}
		if len(batch) == 1 {
			relaxStateG(l, s, p, mode, &m)
		} else {
			var wg sync.WaitGroup
			for i, bs := range batch {
				wg.Add(1)
				go func(i int, bs *stateG[N]) {
					defer wg.Done()
					relaxStateG(l, bs, p, mode, &perWorker[i])
				}(i, bs)
			}
			wg.Wait()
		}
		for _, bs := range batch {
			heap.Push(&h, bs)
		}
	}
	for _, wm := range perWorker {
		m.Add(wm)
	}
	return results, m, nil
}

// serviceValuesG computes SO(U, f) for every facility in one batch,
// sharding the facilities across a pool of workers. The returned slice is
// indexed like facilities; ordering and merged Metrics are deterministic
// because each facility's traversal is independent. cc (nil means
// "never") is polled between facilities in every worker; a done context
// aborts the batch with its error and no partial answer.
func serviceValuesG[N comparable, L tlayout[N]](l L, facilities []*trajectory.Facility, p Params, workers int, cc *canceller) ([]float64, Metrics, error) {
	if err := validateQuery[N](l, p); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if len(facilities) == 0 {
		return nil, m, nil
	}
	mode := l.FilterModeFor(p.Scenario)
	out := make([]float64, len(facilities))
	workers = ResolveWorkers(workers, len(facilities))
	stops := maxStops(facilities)
	if workers == 1 {
		arena := acquireCompArena(stops)
		for i, f := range facilities {
			if err := cc.stopped(); err != nil {
				putCompArena(arena)
				return nil, m, err
			}
			out[i] = evaluateServiceG(l, l.Root(), f.Stops, p, mode, &m, arena)
		}
		putCompArena(arena)
		return out, m, nil
	}
	var next atomic.Int64
	perWorker := make([]Metrics, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := acquireCompArena(stops)
			wm := &perWorker[w]
			for cc.stopped() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(facilities) {
					break
				}
				out[i] = evaluateServiceG(l, l.Root(), facilities[i].Stops, p, mode, wm, arena)
			}
			putCompArena(arena)
		}(w)
	}
	wg.Wait()
	for _, wm := range perWorker {
		m.Add(wm)
	}
	if err := cc.stopped(); err != nil {
		return nil, m, err
	}
	return out, m, nil
}

// topKExhaustiveG computes the same answer as topKG by evaluating every
// facility's service value with Algorithm 1 and sorting — no best-first
// pruning.
func topKExhaustiveG[N comparable, L tlayout[N]](l L, facilities []*trajectory.Facility, k int, p Params) ([]Result, Metrics, error) {
	if err := validateQuery[N](l, p); err != nil {
		return nil, Metrics{}, err
	}
	var m Metrics
	if k <= 0 || len(facilities) == 0 {
		return nil, m, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	mode := l.FilterModeFor(p.Scenario)
	results := make([]Result, 0, len(facilities))
	arena := acquireCompArena(maxStops(facilities))
	for _, f := range facilities {
		so := evaluateServiceG(l, l.Root(), f.Stops, p, mode, &m, arena)
		results = append(results, Result{Facility: f, Service: so})
	}
	putCompArena(arena)
	sortResults(results)
	return results[:k], m, nil
}

// explorerCore drives one facility's best-first exploration incrementally
// over either layout; Explorer and FrozenExplorer are its exported
// instantiations.
type explorerCore[N comparable, L tlayout[N]] struct {
	l    L
	p    Params
	mode tqtree.FilterMode
	st   *stateG[N]
}

func newExplorerCore[N comparable, L tlayout[N]](l L, f *trajectory.Facility, p Params) (explorerCore[N, L], error) {
	if err := validateQuery[N](l, p); err != nil {
		return explorerCore[N, L]{}, err
	}
	st := initialStateG(l, f, p, l.AncestorsCanServe(p.Scenario))
	return explorerCore[N, L]{l: l, p: p, mode: l.FilterModeFor(p.Scenario), st: st}, nil
}

// Facility returns the facility being explored.
func (x *explorerCore[N, L]) Facility() *trajectory.Facility { return x.st.fac }

// Exact returns the service value accumulated so far (the paper's
// aserve). When Done, this is the facility's exact service value.
func (x *explorerCore[N, L]) Exact() float64 { return x.st.aserve }

// Optimistic returns the upper bound on service still obtainable from
// the unexplored frontier (the paper's hserve).
func (x *explorerCore[N, L]) Optimistic() float64 { return x.st.hserve }

// UpperBound returns Exact + Optimistic: the best-first priority.
func (x *explorerCore[N, L]) UpperBound() float64 { return x.st.fserve() }

// Done reports whether the exploration is complete: no unexplored pair
// can add service, so Exact is the facility's true service value.
func (x *explorerCore[N, L]) Done() bool { return x.st.done() }

// Relax performs one relaxation round (Algorithm 4). No-op when Done.
func (x *explorerCore[N, L]) Relax(m *Metrics) {
	if x.Done() {
		return
	}
	relaxStateG(x.l, x.st, x.p, x.mode, m)
}

// Run relaxes until Done and returns the exact service value.
func (x *explorerCore[N, L]) Run(m *Metrics) float64 {
	for !x.Done() {
		x.Relax(m)
	}
	return x.st.aserve
}
