// Package rescache is a byte-bounded, sharded LRU for serialized query
// responses, keyed on (request hash, tenant, index version). The
// version component is the whole invalidation story: the serving layer
// bumps the index's monotone version counter on every acknowledged
// write and rebuild swap, so a key minted under version v can never be
// read once the corpus has moved past v — stale entries are not purged,
// they simply become unreachable and age out of the LRU. A writer that
// computes under version v re-reads the version before storing and
// skips the store if it moved, so an entry present in the cache always
// equals what the index would answer at that version.
package rescache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cacheable answer: the canonical request hash (the
// endpoint and every answer-affecting field — never workers or
// timeouts), the tenant whose corpus answered, and the index version
// the answer reflects.
type Key struct {
	Hash    [32]byte
	Tenant  string
	Version uint64
}

// entryOverhead approximates the per-entry bookkeeping bytes (key,
// list element, map slot) charged against the budget in addition to
// the value bytes, so a flood of tiny entries cannot blow the bound.
const entryOverhead = 128

const numShards = 16

type entry struct {
	key Key
	val []byte
}

type shard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent
	byKey map[Key]*list.Element
	bytes int64
}

// Cache is the sharded LRU. The zero value is unusable; construct with
// New. A nil *Cache is a valid always-miss cache, so callers can thread
// one unconditionally.
type Cache struct {
	shards   [numShards]shard
	maxShard int64 // per-shard byte budget

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// New builds a cache bounded to roughly maxBytes across all shards.
// maxBytes <= 0 returns nil — the always-miss cache.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{maxShard: maxBytes / numShards}
	if c.maxShard < entryOverhead+1 {
		c.maxShard = entryOverhead + 1
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].byKey = make(map[Key]*list.Element)
	}
	return c
}

func (c *Cache) shardOf(k Key) *shard {
	return &c.shards[k.Hash[0]&(numShards-1)]
}

// Get returns the cached response for k, if present, and marks it most
// recently used. The returned slice is shared — callers must not
// mutate it.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardOf(k)
	s.mu.Lock()
	el, ok := s.byKey[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	val := el.Value.(*entry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores v under k, evicting least-recently-used entries as needed
// to stay under the byte budget. Values larger than a shard's whole
// budget are not cached. Storing an existing key refreshes its value.
func (c *Cache) Put(k Key, v []byte) {
	if c == nil {
		return
	}
	cost := int64(len(v)) + entryOverhead
	if cost > c.maxShard {
		return
	}
	s := c.shardOf(k)
	s.mu.Lock()
	if el, ok := s.byKey[k]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(len(v)) - int64(len(e.val))
		e.val = v
		s.lru.MoveToFront(el)
	} else {
		s.byKey[k] = s.lru.PushFront(&entry{key: k, val: v})
		s.bytes += cost
	}
	var evicted uint64
	for s.bytes > c.maxShard {
		el := s.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.byKey, e.key)
		s.bytes -= int64(len(e.val)) + entryOverhead
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Snapshot is the cache's observable state, served on /statsz.
type Snapshot struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Stats snapshots the counters and current occupancy. Safe on nil (all
// zeros).
func (c *Cache) Stats() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	st := Snapshot{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		MaxBytes:  c.maxShard * numShards,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
