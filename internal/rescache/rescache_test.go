package rescache

import (
	"fmt"
	"sync"
	"testing"
)

func keyOf(i int, tenant string, version uint64) Key {
	var k Key
	copy(k.Hash[:], fmt.Sprintf("key-%05d", i))
	k.Tenant, k.Version = tenant, version
	return k
}

func TestGetPutBasics(t *testing.T) {
	c := New(1 << 20)
	k := keyOf(1, "default", 7)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("answer"))
	got, ok := c.Get(k)
	if !ok || string(got) != "answer" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Same hash at another version is a distinct key.
	if _, ok := c.Get(keyOf(1, "default", 8)); ok {
		t.Fatal("version is not part of the key")
	}
	// Same hash for another tenant is a distinct key.
	if _, ok := c.Get(keyOf(1, "other", 7)); ok {
		t.Fatal("tenant is not part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefreshesValue(t *testing.T) {
	c := New(1 << 20)
	k := keyOf(1, "default", 1)
	c.Put(k, []byte("old"))
	c.Put(k, []byte("new"))
	got, _ := c.Get(k)
	if string(got) != "new" {
		t.Fatalf("Get = %q after refresh", got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("refresh duplicated the entry: %+v", st)
	}
}

func TestEvictionBounded(t *testing.T) {
	const max = 64 << 10
	c := New(max)
	val := make([]byte, 1024)
	for i := 0; i < 1000; i++ {
		c.Put(keyOf(i, "default", 1), val)
	}
	st := c.Stats()
	if st.Bytes > max {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, max)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if st.Entries == 0 {
		t.Fatal("eviction emptied the cache")
	}
}

func TestLRUOrder(t *testing.T) {
	// Budget for ~4 entries per shard; pin every key to one shard by
	// fixing Hash[0] and varying the tail.
	c := New(16 * 4 * (1024 + entryOverhead))
	mk := func(i int) Key {
		var k Key
		k.Hash[0] = 0
		copy(k.Hash[1:], fmt.Sprintf("k%05d", i))
		return k
	}
	val := make([]byte, 1024)
	for i := 0; i < 4; i++ {
		c.Put(mk(i), val)
	}
	// Touch entry 0 so it is most recent; inserting two more must evict
	// 1 and 2, never 0.
	if _, ok := c.Get(mk(0)); !ok {
		t.Fatal("entry 0 missing before overflow")
	}
	c.Put(mk(4), val)
	c.Put(mk(5), val)
	if _, ok := c.Get(mk(0)); !ok {
		t.Fatal("LRU evicted the most recently used entry")
	}
	if _, ok := c.Get(mk(1)); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(1024)
	k := keyOf(1, "default", 1)
	c.Put(k, make([]byte, 1<<20))
	if _, ok := c.Get(k); ok {
		t.Fatal("value larger than the budget was cached")
	}
}

func TestNilCacheAlwaysMisses(t *testing.T) {
	var c *Cache
	k := keyOf(1, "default", 1)
	c.Put(k, []byte("x"))
	if _, ok := c.Get(k); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Snapshot{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if New(0) != nil {
		t.Fatal("New(0) should be the nil always-miss cache")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keyOf(i%64, "default", uint64(g%4))
				if v, ok := c.Get(k); ok && len(v) != 32 {
					t.Errorf("corrupt value length %d", len(v))
					return
				}
				c.Put(k, make([]byte, 32))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
}
