// Package tenant holds the tenant dimension of the serving stack: ID
// validation, per-tenant admission limits with a runtime-reloadable
// overrides file, and the admission Gate the HTTP front end enforces
// those limits through. The registry mapping tenant IDs to live index
// instances lives in the public package (trajcover.OpenTenantRegistry)
// because it hangs per-tenant WAL directories off LiveShardedIndex;
// everything here is index-agnostic and imported by both the registry
// and internal/server.
//
// The design follows tempo's modules/overrides decomposition: limits
// are data (a tenant → limits map with defaults), loaded from a file
// that can be re-read at runtime, where an invalid new file keeps the
// old configuration in force rather than dropping limits.
package tenant

import (
	"errors"
	"fmt"
)

// DefaultID is the tenant every request without an explicit tenant
// belongs to — the backward-compatible single-tenant world.
const DefaultID = "default"

// MaxIDLen bounds tenant IDs; they become directory names, statsz keys,
// and log fields, so they stay short.
const MaxIDLen = 64

// BadIDError rejects a malformed tenant ID. It maps to a 4xx at the
// HTTP boundary: a bad tenant name is a client error, and it must be
// rejected BEFORE any directory or index springs into existence.
type BadIDError struct{ msg string }

func (e *BadIDError) Error() string { return e.msg }

func badIDf(format string, args ...any) error {
	return &BadIDError{msg: fmt.Sprintf(format, args...)}
}

// ValidateID accepts exactly the tenant IDs that are safe to use as a
// single path component under the tenant WAL root: 1–64 bytes of
// [a-zA-Z0-9._-], starting with a letter or digit, with ".." forbidden
// anywhere. Everything else — empty, oversized, path separators,
// traversal sequences, control bytes, UTF-8 beyond ASCII — is a
// *BadIDError. The server rejects such requests 4xx without touching
// the registry, so an invalid ID can never create state.
func ValidateID(id string) error {
	if id == "" {
		return badIDf("tenant: empty tenant id")
	}
	if len(id) > MaxIDLen {
		return badIDf("tenant: id longer than %d bytes", MaxIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return badIDf("tenant: id %q must start with a letter or digit", id)
			}
		default:
			return badIDf("tenant: id %q contains %q (allowed: a-z A-Z 0-9 . _ -)", id, c)
		}
		// ".." anywhere is rejected outright: combined with the
		// path-separator ban this makes traversal unrepresentable, and
		// being strict here costs nothing.
		if c == '.' && i > 0 && id[i-1] == '.' {
			return badIDf("tenant: id %q contains \"..\"", id)
		}
	}
	return nil
}

// IsBadID reports whether err is a tenant-ID validation failure (a
// client error), as opposed to an operational one.
func IsBadID(err error) bool {
	var b *BadIDError
	return errors.As(err, &b)
}
