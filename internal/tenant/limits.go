package tenant

// Per-tenant admission limits and the overrides document that carries
// them. The file format is a two-level map — defaults plus per-tenant
// entries — accepted as JSON or as a small YAML subset (flat nested
// maps of scalar values, comments, blank lines; no anchors, flow
// collections, or multi-line scalars), so an operator can keep the
// overrides file in either idiom without pulling a YAML dependency into
// the serving binary:
//
//	defaults:
//	  max_inflight: 64
//	  max_queue: 32
//	tenants:
//	  noisy:
//	    max_inflight: 2
//	    writes_per_sec: 10
//	  batch:
//	    max_timeout_ms: 120000
//
// Field semantics (each independently): 0 means "inherit the default"
// in a tenant entry and "unlimited" in defaults; -1 means "explicitly
// unlimited" (a tenant entry can widen past a restrictive default);
// positive values limit. ParseOverrides validates everything — tenant
// IDs, field ranges, unknown keys — and returns an error rather than a
// partially applied document, which is what lets the reload path keep
// the old configuration when a new file is bad.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Unlimited is the explicit "no limit" value a tenant entry uses to
// widen past a restrictive default (0 would mean "inherit").
const Unlimited = -1

// Limits is one tenant's admission configuration. The zero value is
// fully unlimited.
type Limits struct {
	// MaxInflight caps the tenant's admitted-and-unfinished pooled
	// requests (queued + running). Excess is rejected 429.
	MaxInflight int `json:"max_inflight,omitempty"`
	// MaxQueue caps how many of those admitted requests may be waiting
	// for a worker. Excess is rejected 429.
	MaxQueue int `json:"max_queue,omitempty"`
	// WritesPerSec token-buckets /v1/insert and /v1/delete (burst =
	// max(1, rate)). Excess is rejected 429.
	WritesPerSec float64 `json:"writes_per_sec,omitempty"`
	// MaxTimeoutMS caps the tenant's per-request deadline below the
	// server-wide Config.MaxTimeout.
	MaxTimeoutMS int64 `json:"max_timeout_ms,omitempty"`
}

// validate rejects out-of-range fields; where names the entry in errors.
func (l Limits) validate(where string) error {
	checkInt := func(field string, v int64) error {
		if v < Unlimited {
			return fmt.Errorf("tenant: %s: %s must be >= -1, got %d", where, field, v)
		}
		return nil
	}
	if err := checkInt("max_inflight", int64(l.MaxInflight)); err != nil {
		return err
	}
	if err := checkInt("max_queue", int64(l.MaxQueue)); err != nil {
		return err
	}
	if err := checkInt("max_timeout_ms", l.MaxTimeoutMS); err != nil {
		return err
	}
	if math.IsNaN(l.WritesPerSec) || math.IsInf(l.WritesPerSec, 0) || (l.WritesPerSec < 0 && l.WritesPerSec != Unlimited) {
		return fmt.Errorf("tenant: %s: writes_per_sec must be finite and >= 0 (or -1 for unlimited), got %v", where, l.WritesPerSec)
	}
	return nil
}

// Overrides is the limits document: defaults plus per-tenant entries.
type Overrides struct {
	Defaults Limits            `json:"defaults,omitempty"`
	Tenants  map[string]Limits `json:"tenants,omitempty"`
}

// resolve merges one field: a tenant's 0 inherits the default, -1 is
// explicitly unlimited (normalized to 0 so consumers test `> 0`).
func resolveInt(tenant, def int) int {
	v := def
	if tenant != 0 {
		v = tenant
	}
	if v < 0 {
		return 0
	}
	return v
}

func resolveFloat(tenant, def float64) float64 {
	v := def
	if tenant != 0 {
		v = tenant
	}
	if v < 0 {
		return 0
	}
	return v
}

// For returns the effective limits of one tenant: per field, the
// tenant's entry when set, else the default; explicit -1 normalized to
// 0 (= unlimited). A nil Overrides is fully unlimited.
func (o *Overrides) For(id string) Limits {
	if o == nil {
		return Limits{}
	}
	t := o.Tenants[id]
	return Limits{
		MaxInflight:  resolveInt(t.MaxInflight, o.Defaults.MaxInflight),
		MaxQueue:     resolveInt(t.MaxQueue, o.Defaults.MaxQueue),
		WritesPerSec: resolveFloat(t.WritesPerSec, o.Defaults.WritesPerSec),
		MaxTimeoutMS: int64(resolveInt(int(t.MaxTimeoutMS), int(o.Defaults.MaxTimeoutMS))),
	}
}

// validate checks every entry; parse paths call it so no invalid
// document ever leaves this package.
func (o *Overrides) validate() error {
	if err := o.Defaults.validate("defaults"); err != nil {
		return err
	}
	// Deterministic error selection keeps test output stable.
	ids := make([]string, 0, len(o.Tenants))
	for id := range o.Tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := ValidateID(id); err != nil {
			return fmt.Errorf("tenant: overrides: bad tenant key: %w", err)
		}
		if err := o.Tenants[id].validate("tenant " + id); err != nil {
			return err
		}
	}
	return nil
}

// ParseOverrides parses and validates an overrides document. The first
// non-space byte selects the syntax: '{' is strict JSON, anything else
// the YAML subset. An empty (or comment-only) document is valid and
// fully unlimited. Any syntax error, unknown key, bad tenant ID, or
// out-of-range value fails the whole document — the caller keeps
// whatever configuration it already had.
func ParseOverrides(data []byte) (*Overrides, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var o Overrides
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&o); err != nil {
			return nil, fmt.Errorf("tenant: overrides json: %w", err)
		}
		if dec.More() {
			return nil, fmt.Errorf("tenant: overrides json: trailing data after document")
		}
		if err := o.validate(); err != nil {
			return nil, err
		}
		return &o, nil
	}
	o, err := parseOverridesYAML(data)
	if err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// LoadOverridesFile reads and parses path.
func LoadOverridesFile(path string) (*Overrides, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseOverrides(data)
}

// yamlLine is one significant line of the subset: its indent depth, key,
// and value ("" for a map-opening "key:" line).
type yamlLine struct {
	n      int // 1-based source line, for errors
	indent int
	key    string
	value  string
	hasVal bool
}

// parseOverridesYAML parses the indentation subset. It is deliberately
// small and total: every input either parses or returns an error —
// FuzzLoadOverrides holds it to "never panic".
func parseOverridesYAML(data []byte) (*Overrides, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	o := &Overrides{}
	i := 0
	for i < len(lines) {
		ln := lines[i]
		if ln.indent != 0 {
			return nil, fmt.Errorf("tenant: overrides yaml line %d: unexpected indentation", ln.n)
		}
		if ln.hasVal {
			return nil, fmt.Errorf("tenant: overrides yaml line %d: top-level %q must open a map, not hold a value", ln.n, ln.key)
		}
		switch ln.key {
		case "defaults":
			lim, next, err := parseLimitsBlock(lines, i+1, ln.indent)
			if err != nil {
				return nil, err
			}
			o.Defaults = lim
			i = next
		case "tenants":
			next, err := parseTenantsBlock(lines, i+1, ln.indent, o)
			if err != nil {
				return nil, err
			}
			i = next
		default:
			return nil, fmt.Errorf("tenant: overrides yaml line %d: unknown top-level key %q (want defaults or tenants)", ln.n, ln.key)
		}
	}
	return o, nil
}

// parseTenantsBlock consumes the tenant entries nested under "tenants:".
func parseTenantsBlock(lines []yamlLine, i, parentIndent int, o *Overrides) (int, error) {
	if o.Tenants == nil {
		o.Tenants = map[string]Limits{}
	}
	var blockIndent = -1
	for i < len(lines) {
		ln := lines[i]
		if ln.indent <= parentIndent {
			return i, nil
		}
		if blockIndent == -1 {
			blockIndent = ln.indent
		}
		if ln.indent != blockIndent {
			return 0, fmt.Errorf("tenant: overrides yaml line %d: inconsistent indentation", ln.n)
		}
		if ln.hasVal {
			return 0, fmt.Errorf("tenant: overrides yaml line %d: tenant %q must open a map of limits", ln.n, ln.key)
		}
		if _, dup := o.Tenants[ln.key]; dup {
			return 0, fmt.Errorf("tenant: overrides yaml line %d: duplicate tenant %q", ln.n, ln.key)
		}
		lim, next, err := parseLimitsBlock(lines, i+1, ln.indent)
		if err != nil {
			return 0, err
		}
		o.Tenants[ln.key] = lim
		i = next
	}
	return i, nil
}

// parseLimitsBlock consumes "key: value" lines nested deeper than
// parentIndent into one Limits.
func parseLimitsBlock(lines []yamlLine, i, parentIndent int) (Limits, int, error) {
	var lim Limits
	blockIndent := -1
	seen := map[string]bool{}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent <= parentIndent {
			return lim, i, nil
		}
		if blockIndent == -1 {
			blockIndent = ln.indent
		}
		if ln.indent != blockIndent {
			return lim, 0, fmt.Errorf("tenant: overrides yaml line %d: inconsistent indentation", ln.n)
		}
		if !ln.hasVal {
			return lim, 0, fmt.Errorf("tenant: overrides yaml line %d: %q needs a scalar value", ln.n, ln.key)
		}
		if seen[ln.key] {
			return lim, 0, fmt.Errorf("tenant: overrides yaml line %d: duplicate key %q", ln.n, ln.key)
		}
		seen[ln.key] = true
		switch ln.key {
		case "max_inflight", "max_queue", "max_timeout_ms":
			v, err := strconv.ParseInt(ln.value, 10, 64)
			if err != nil {
				return lim, 0, fmt.Errorf("tenant: overrides yaml line %d: %s: %v", ln.n, ln.key, err)
			}
			switch ln.key {
			case "max_inflight":
				lim.MaxInflight = int(v)
			case "max_queue":
				lim.MaxQueue = int(v)
			case "max_timeout_ms":
				lim.MaxTimeoutMS = v
			}
		case "writes_per_sec":
			v, err := strconv.ParseFloat(ln.value, 64)
			if err != nil {
				return lim, 0, fmt.Errorf("tenant: overrides yaml line %d: writes_per_sec: %v", ln.n, err)
			}
			lim.WritesPerSec = v
		default:
			return lim, 0, fmt.Errorf("tenant: overrides yaml line %d: unknown limit %q", ln.n, ln.key)
		}
		i++
	}
	return lim, i, nil
}

// yamlLines splits the document into significant lines: comments and
// blanks dropped, indentation counted in leading spaces (tabs are an
// error: silently treating a tab as N spaces is how YAML files lie).
func yamlLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for n, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		rest := line[indent:]
		if rest == "" || rest[0] == '#' {
			continue
		}
		if strings.ContainsRune(rest, '\t') || (indent < len(line) && line[indent] == '\t') {
			return nil, fmt.Errorf("tenant: overrides yaml line %d: tabs are not allowed", n+1)
		}
		key, value, found := strings.Cut(rest, ":")
		if !found {
			return nil, fmt.Errorf("tenant: overrides yaml line %d: expected \"key: value\" or \"key:\"", n+1)
		}
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, fmt.Errorf("tenant: overrides yaml line %d: empty key", n+1)
		}
		// Strip a trailing comment from the scalar; values here are
		// numbers, so a '#' can only start a comment.
		if j := strings.IndexByte(value, '#'); j >= 0 {
			value = value[:j]
		}
		value = strings.TrimSpace(value)
		out = append(out, yamlLine{n: n + 1, indent: indent, key: key, value: value, hasVal: value != ""})
	}
	return out, nil
}
