package tenant

// Watcher hot-reloads an overrides file: a poll loop (and SIGHUP, wired
// by the caller to Reload) re-reads the file when its mtime or size
// changes, validates the whole document, and only then swaps it in. An
// invalid new file is the load-bearing case: the previous configuration
// stays in force and the failure is reported loudly via OnError —
// limits must never silently drop to unlimited because an operator
// fat-fingered an edit.

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Watcher reloads one overrides file. Construct with NewWatcher.
type Watcher struct {
	path string

	// OnSwap receives every successfully loaded document (including the
	// initial Load) — the registry hook. OnError receives reload
	// failures; the old document stays in force.
	OnSwap  func(*Overrides)
	OnError func(error)

	mu      sync.Mutex
	cur     *Overrides
	modTime time.Time
	size    int64
	reloads uint64
	fails   uint64

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatcher builds a watcher over path. Call Load before serving —
// a bad file at boot is a startup error, not a silent unlimited config.
func NewWatcher(path string, onSwap func(*Overrides), onError func(error)) *Watcher {
	return &Watcher{
		path:    path,
		OnSwap:  onSwap,
		OnError: onError,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Current returns the last successfully loaded document (nil before
// Load).
func (w *Watcher) Current() *Overrides {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// Stats reports successful reloads and rejected ones.
func (w *Watcher) Stats() (reloads, fails uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reloads, w.fails
}

// Load reads, validates, and swaps in the file. Unlike Reload it
// returns the error: boot fails loudly on a bad initial file.
func (w *Watcher) Load() error {
	st, err := os.Stat(w.path)
	if err != nil {
		return err
	}
	o, err := LoadOverridesFile(w.path)
	if err != nil {
		return err
	}
	w.swap(o, st.ModTime(), st.Size())
	return nil
}

func (w *Watcher) swap(o *Overrides, mod time.Time, size int64) {
	w.mu.Lock()
	w.cur = o
	w.modTime = mod
	w.size = size
	w.reloads++
	onSwap := w.OnSwap
	w.mu.Unlock()
	if onSwap != nil {
		onSwap(o)
	}
}

// Reload force-re-reads the file (the SIGHUP path): a valid document is
// swapped in, an invalid one is reported via OnError — and returned, for
// callers that log inline — while the previous configuration stays in
// force.
func (w *Watcher) Reload() error {
	st, err := os.Stat(w.path)
	if err != nil {
		err = fmt.Errorf("tenant: overrides reload: %w (keeping previous limits)", err)
		w.fail(err)
		return err
	}
	o, err := LoadOverridesFile(w.path)
	if err != nil {
		err = fmt.Errorf("tenant: overrides reload: %w (keeping previous limits)", err)
		w.fail(err)
		return err
	}
	w.swap(o, st.ModTime(), st.Size())
	return nil
}

func (w *Watcher) fail(err error) {
	w.mu.Lock()
	w.fails++
	onError := w.OnError
	w.mu.Unlock()
	if onError != nil {
		onError(err)
	}
}

// Start polls the file every interval (<= 0: 10s) and Reloads when its
// mtime or size changes. Stop ends the loop.
func (w *Watcher) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	w.mu.Lock()
	w.started = true
	w.mu.Unlock()
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				st, err := os.Stat(w.path)
				if err != nil {
					w.fail(fmt.Errorf("tenant: overrides poll: %w (keeping previous limits)", err))
					continue
				}
				w.mu.Lock()
				changed := !st.ModTime().Equal(w.modTime) || st.Size() != w.size
				w.mu.Unlock()
				if changed {
					w.Reload()
				}
			}
		}
	}()
}

// Stop ends the poll loop started by Start and waits for it to exit.
// Safe to call without Start (and more than once).
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}
