package tenant

// Shutdown goroutine-hygiene coverage for the overrides Watcher: Stop
// must join the poll loop — not just signal it — under every ordering
// (idle, mid-poll against a churning file, many watchers at once,
// repeated Stop), leaving no goroutines behind.

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestWatcherStopJoinsPollLoopNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	path := filepath.Join(dir, "overrides.yaml")
	if err := os.WriteFile(path, []byte("defaults:\n  max_queue: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A churning writer keeps the poll loops busy reloading, so Stop
	// races real work rather than an idle ticker.
	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			doc := []byte("defaults:\n  max_queue: " + string(rune('1'+i%8)) + "\n")
			os.WriteFile(path, doc, 0o644)
			time.Sleep(time.Millisecond)
		}
	}()

	const watchers = 8
	ws := make([]*Watcher, watchers)
	for i := range ws {
		ws[i] = NewWatcher(path, nil, nil)
		if err := ws[i].Load(); err != nil {
			t.Fatal(err)
		}
		ws[i].Start(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	var wg sync.WaitGroup
	for _, w := range ws {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Stop()
			w.Stop() // idempotent from any goroutine
		}()
	}
	wg.Wait()
	close(stopChurn)
	churn.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("watcher poll loops leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A stopped watcher still serves its last document.
	if ws[0].Current() == nil {
		t.Fatal("stopped watcher dropped its overrides document")
	}
}
