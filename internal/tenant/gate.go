package tenant

// Gate is one tenant's admission state, enforced by the serving front
// end on top of (not instead of) the global worker pool: the pool
// bounds total CPU and queue depth, the Gate bounds one tenant's share
// of them, so a noisy tenant exhausts its own quota and gets 429 while
// its neighbours keep being served. Slots are reserved with CAS loops —
// never optimistic increments — so a limit of N admits exactly N
// concurrent requests, which is what lets the quota tests be
// deterministic instead of statistical.

import (
	"sync"
	"sync/atomic"
	"time"
)

// RejectReason says which limit turned a request away.
type RejectReason string

const (
	RejectInflight RejectReason = "max_inflight"
	RejectQueue    RejectReason = "max_queue"
	RejectRate     RejectReason = "writes_per_sec"
)

// Gate is safe for concurrent use; the zero value is ready.
type Gate struct {
	// Now is the clock (nil: time.Now). Tests inject a fake to make the
	// write-rate bucket deterministic.
	Now func() time.Time

	// inflight counts admitted-and-unfinished pooled requests; queued
	// counts the subset still waiting for a worker.
	inflight atomic.Int64
	queued   atomic.Int64

	// Served-traffic counters for /statsz.
	requests atomic.Uint64
	writes   atomic.Uint64

	rejInflight atomic.Uint64
	rejQueue    atomic.Uint64
	rejRate     atomic.Uint64

	// Token bucket for the write rate. last is the previous refill
	// instant; rate remembers the limit the bucket was filled under so a
	// reloaded limit re-clamps the burst.
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
}

func (g *Gate) now() time.Time {
	if g.Now != nil {
		return g.Now()
	}
	return time.Now()
}

// reserve CAS-increments ctr if it is below max (max <= 0: unlimited).
func reserve(ctr *atomic.Int64, max int) bool {
	if max <= 0 {
		ctr.Add(1)
		return true
	}
	for {
		cur := ctr.Load()
		if cur >= int64(max) {
			return false
		}
		if ctr.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Admit reserves an inflight slot and a queue slot under lim, or
// reports which limit rejected (and counts the rejection). A true
// return obligates the caller to eventually call Started (when a worker
// picks the request up, or it is abandoned at the queue) and Finished
// (when the request completes) — or Cancel if it never reached the
// queue at all.
func (g *Gate) Admit(lim Limits) (ok bool, reason RejectReason) {
	if !reserve(&g.inflight, lim.MaxInflight) {
		g.rejInflight.Add(1)
		return false, RejectInflight
	}
	if !reserve(&g.queued, lim.MaxQueue) {
		g.inflight.Add(-1)
		g.rejQueue.Add(1)
		return false, RejectQueue
	}
	g.requests.Add(1)
	return true, ""
}

// AdmitWrite is the write-rate token bucket: under lim.WritesPerSec
// (<= 0: unlimited) it admits up to burst = max(1, rate) immediately
// and refills continuously. Rejections are counted.
func (g *Gate) AdmitWrite(lim Limits) bool {
	rate := lim.WritesPerSec
	if rate <= 0 {
		g.writes.Add(1)
		return true
	}
	burst := rate
	if burst < 1 {
		burst = 1
	}
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.last.IsZero() || g.rate != rate {
		// First use, or the limit changed under reload: start from a
		// full burst. A shrinking limit must clamp immediately.
		g.tokens = burst
		g.rate = rate
	} else {
		g.tokens += now.Sub(g.last).Seconds() * rate
		if g.tokens > burst {
			g.tokens = burst
		}
	}
	g.last = now
	if g.tokens < 1 {
		g.rejRate.Add(1)
		return false
	}
	g.tokens--
	g.writes.Add(1)
	return true
}

// Started releases the queue slot an Admit reserved — the request is on
// a worker now (or was skipped at its deadline, which also dequeues it).
func (g *Gate) Started() { g.queued.Add(-1) }

// Finished releases the inflight slot.
func (g *Gate) Finished() { g.inflight.Add(-1) }

// Cancel releases both slots — the admitted request never made it into
// the pool (global queue full or server closing).
func (g *Gate) Cancel() {
	g.queued.Add(-1)
	g.inflight.Add(-1)
}

// GateSnapshot is the gate's counters as served by /statsz.
type GateSnapshot struct {
	Inflight         int64  `json:"inflight"`
	Queued           int64  `json:"queued"`
	Requests         uint64 `json:"requests"`
	Writes           uint64 `json:"writes"`
	RejectedInflight uint64 `json:"rejected_inflight"`
	RejectedQueue    uint64 `json:"rejected_queue"`
	RejectedRate     uint64 `json:"rejected_rate"`
}

// Rejected is the total across all reject reasons.
func (s GateSnapshot) Rejected() uint64 {
	return s.RejectedInflight + s.RejectedQueue + s.RejectedRate
}

// Snapshot reads the counters.
func (g *Gate) Snapshot() GateSnapshot {
	return GateSnapshot{
		Inflight:         g.inflight.Load(),
		Queued:           g.queued.Load(),
		Requests:         g.requests.Load(),
		Writes:           g.writes.Load(),
		RejectedInflight: g.rejInflight.Load(),
		RejectedQueue:    g.rejQueue.Load(),
		RejectedRate:     g.rejRate.Load(),
	}
}
