package tenant

import (
	"sync"
	"testing"
	"time"
)

func TestGateInflightExact(t *testing.T) {
	var g Gate
	lim := Limits{MaxInflight: 3}
	for i := 0; i < 3; i++ {
		if ok, _ := g.Admit(lim); !ok {
			t.Fatalf("admit %d rejected", i)
		}
	}
	ok, reason := g.Admit(lim)
	if ok || reason != RejectInflight {
		t.Fatalf("4th admit: ok=%v reason=%q", ok, reason)
	}
	// Releasing one slot re-opens exactly one.
	g.Started()
	g.Finished()
	if ok, _ := g.Admit(lim); !ok {
		t.Fatal("admit after release rejected")
	}
	s := g.Snapshot()
	if s.Requests != 4 || s.RejectedInflight != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestGateQueueLimitAndRollback(t *testing.T) {
	var g Gate
	lim := Limits{MaxInflight: 10, MaxQueue: 1}
	if ok, _ := g.Admit(lim); !ok {
		t.Fatal("first admit rejected")
	}
	// Queue is full; the reject must roll back the inflight reservation.
	ok, reason := g.Admit(lim)
	if ok || reason != RejectQueue {
		t.Fatalf("queue-full admit: ok=%v reason=%q", ok, reason)
	}
	if s := g.Snapshot(); s.Inflight != 1 || s.Queued != 1 {
		t.Fatalf("rollback failed: %+v", s)
	}
	// Worker picks the first request up: the queue slot frees while the
	// inflight slot stays held.
	g.Started()
	if ok, _ := g.Admit(lim); !ok {
		t.Fatal("admit after Started rejected")
	}
	// Cancel (global queue full) releases both.
	g.Cancel()
	if s := g.Snapshot(); s.Inflight != 1 || s.Queued != 0 {
		t.Fatalf("cancel: %+v", s)
	}
}

func TestGateUnlimited(t *testing.T) {
	var g Gate
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := g.Admit(Limits{}); !ok {
				t.Error("unlimited admit rejected")
			}
		}()
	}
	wg.Wait()
	if s := g.Snapshot(); s.Inflight != 64 || s.Requests != 64 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestGateAdmitConcurrentExact(t *testing.T) {
	// Under contention the CAS loop must admit exactly MaxInflight.
	var g Gate
	lim := Limits{MaxInflight: 7}
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := g.Admit(lim); ok {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	if n := len(admitted); n != 7 {
		t.Fatalf("admitted %d, want exactly 7", n)
	}
	if s := g.Snapshot(); s.RejectedInflight != 64-7 {
		t.Fatalf("rejected %d, want %d", s.RejectedInflight, 64-7)
	}
}

func TestGateWriteRateFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	g := Gate{Now: func() time.Time { return now }}
	lim := Limits{WritesPerSec: 2} // burst = 2

	// Burst admits exactly 2, then rejects.
	if !g.AdmitWrite(lim) || !g.AdmitWrite(lim) {
		t.Fatal("burst writes rejected")
	}
	if g.AdmitWrite(lim) {
		t.Fatal("third write admitted with empty bucket")
	}

	// 250ms refills 0.5 tokens — still under one.
	now = now.Add(250 * time.Millisecond)
	if g.AdmitWrite(lim) {
		t.Fatal("admitted with 0.5 tokens")
	}
	// Another 250ms tops it up to 1.
	now = now.Add(250 * time.Millisecond)
	if !g.AdmitWrite(lim) {
		t.Fatal("rejected with a full token")
	}

	// A long idle period caps at burst: 2 writes, not 20.
	now = now.Add(10 * time.Second)
	if !g.AdmitWrite(lim) || !g.AdmitWrite(lim) {
		t.Fatal("post-idle burst rejected")
	}
	if g.AdmitWrite(lim) {
		t.Fatal("burst cap ignored after idle")
	}

	s := g.Snapshot()
	if s.Writes != 5 || s.RejectedRate != 3 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestGateWriteRateReloadReclamps(t *testing.T) {
	now := time.Unix(2000, 0)
	g := Gate{Now: func() time.Time { return now }}

	// Accumulate a big bucket under a loose limit.
	loose := Limits{WritesPerSec: 100}
	if !g.AdmitWrite(loose) {
		t.Fatal("loose write rejected")
	}
	now = now.Add(time.Second)

	// The limit tightens (overrides reload): the bucket must re-clamp to
	// the new burst instead of spending the 100-token backlog.
	tight := Limits{WritesPerSec: 1}
	if !g.AdmitWrite(tight) {
		t.Fatal("first tight write rejected")
	}
	if g.AdmitWrite(tight) {
		t.Fatal("tightened limit ignored accumulated tokens")
	}
}

func TestGateWriteRateFractional(t *testing.T) {
	now := time.Unix(3000, 0)
	g := Gate{Now: func() time.Time { return now }}
	lim := Limits{WritesPerSec: 0.5} // burst floor = 1

	if !g.AdmitWrite(lim) {
		t.Fatal("initial write rejected")
	}
	if g.AdmitWrite(lim) {
		t.Fatal("second immediate write admitted")
	}
	now = now.Add(2 * time.Second)
	if !g.AdmitWrite(lim) {
		t.Fatal("write after full refill rejected")
	}
}

func TestGateWriteUnlimited(t *testing.T) {
	var g Gate
	for i := 0; i < 100; i++ {
		if !g.AdmitWrite(Limits{}) {
			t.Fatal("unlimited write rejected")
		}
	}
	if s := g.Snapshot(); s.Writes != 100 || s.RejectedRate != 0 {
		t.Fatalf("snapshot %+v", s)
	}
}
