package tenant

import (
	"strings"
	"testing"
)

// FuzzLoadOverrides holds ParseOverrides to its contract under arbitrary
// bytes: it never panics, and any accepted document re-validates and
// resolves cleanly — so a watcher swap can never install limits a direct
// parse would have rejected (the "invalid file keeps the old config"
// invariant depends on accept/reject being total and consistent).
func FuzzLoadOverrides(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("defaults:\n  max_inflight: 64\n  max_queue: 32\n"))
	f.Add([]byte("tenants:\n  noisy:\n    max_inflight: 2\n    writes_per_sec: 10\n"))
	f.Add([]byte("tenants:\n  a:\n    max_timeout_ms: -1\n"))
	f.Add([]byte(`{"defaults": {"max_inflight": 8}}`))
	f.Add([]byte(`{"tenants": {"a": {"writes_per_sec": 1.5}}}`))
	f.Add([]byte("defaults:\n\tmax_inflight: 1\n"))
	f.Add([]byte("tenants:\n  ../evil:\n    max_queue: 1\n"))
	f.Add([]byte("defaults: 3\n"))
	f.Add([]byte("defaults:\n  max_inflight: -2\n"))
	f.Add([]byte(`{"defaults": {"max_inflight": 1}} trailing`))
	f.Add([]byte("{ not json"))
	f.Add([]byte(strings.Repeat(" ", 100) + "x: 1"))
	f.Add([]byte("tenants:\n  a:\n    max_queue: 1\n  a:\n    max_queue: 2\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := ParseOverrides(data)
		if err != nil {
			if o != nil {
				t.Fatalf("error %v returned a non-nil document", err)
			}
			return
		}
		// Accepted documents are internally valid: every tenant key passes
		// ValidateID and resolution yields non-negative effective limits.
		if err := o.validate(); err != nil {
			t.Fatalf("accepted document fails validate: %v", err)
		}
		for id := range o.Tenants {
			if err := ValidateID(id); err != nil {
				t.Fatalf("accepted document holds bad tenant id %q: %v", id, err)
			}
			lim := o.For(id)
			if lim.MaxInflight < 0 || lim.MaxQueue < 0 || lim.WritesPerSec < 0 || lim.MaxTimeoutMS < 0 {
				t.Fatalf("resolved limits negative: %+v", lim)
			}
		}
		if lim := o.For("nonexistent"); lim.MaxInflight < 0 || lim.MaxQueue < 0 || lim.WritesPerSec < 0 || lim.MaxTimeoutMS < 0 {
			t.Fatalf("resolved default limits negative: %+v", lim)
		}
	})
}
