package tenant

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

const sampleYAML = `# fleet-wide floor
defaults:
  max_inflight: 64
  max_queue: 32

tenants:
  noisy:
    max_inflight: 2
    writes_per_sec: 10
  batch:
    max_timeout_ms: 120000  # long scans
  vip:
    max_inflight: -1
`

func sampleWant() *Overrides {
	return &Overrides{
		Defaults: Limits{MaxInflight: 64, MaxQueue: 32},
		Tenants: map[string]Limits{
			"noisy": {MaxInflight: 2, WritesPerSec: 10},
			"batch": {MaxTimeoutMS: 120000},
			"vip":   {MaxInflight: Unlimited},
		},
	}
}

func TestParseOverridesYAML(t *testing.T) {
	o, err := ParseOverrides([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("ParseOverrides: %v", err)
	}
	if !reflect.DeepEqual(o, sampleWant()) {
		t.Fatalf("parsed %+v, want %+v", o, sampleWant())
	}
}

func TestParseOverridesJSON(t *testing.T) {
	src := `{
  "defaults": {"max_inflight": 64, "max_queue": 32},
  "tenants": {
    "noisy": {"max_inflight": 2, "writes_per_sec": 10},
    "batch": {"max_timeout_ms": 120000},
    "vip": {"max_inflight": -1}
  }
}`
	o, err := ParseOverrides([]byte(src))
	if err != nil {
		t.Fatalf("ParseOverrides: %v", err)
	}
	if !reflect.DeepEqual(o, sampleWant()) {
		t.Fatalf("parsed %+v, want %+v", o, sampleWant())
	}
}

func TestParseOverridesEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# only comments\n  # indented comment\n"} {
		o, err := ParseOverrides([]byte(src))
		if err != nil {
			t.Fatalf("ParseOverrides(%q): %v", src, err)
		}
		if lim := o.For("anyone"); lim != (Limits{}) {
			t.Fatalf("empty document gave limits %+v", lim)
		}
	}
}

func TestParseOverridesErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown top-level", "pools:\n  a: 1\n"},
		{"top-level scalar", "defaults: 3\n"},
		{"unknown limit", "defaults:\n  max_foo: 1\n"},
		{"bad int", "defaults:\n  max_inflight: many\n"},
		{"below -1", "defaults:\n  max_inflight: -2\n"},
		{"nan rate", `{"defaults": {"writes_per_sec": -3}}`},
		{"bad tenant id", "tenants:\n  ../evil:\n    max_inflight: 1\n"},
		{"tenant scalar", "tenants:\n  a: 1\n"},
		{"duplicate tenant", "tenants:\n  a:\n    max_queue: 1\n  a:\n    max_queue: 2\n"},
		{"duplicate key", "defaults:\n  max_queue: 1\n  max_queue: 2\n"},
		{"tab indent", "defaults:\n\tmax_queue: 1\n"},
		{"inconsistent indent", "tenants:\n  a:\n    max_queue: 1\n   b:\n    max_queue: 2\n"},
		{"no colon", "defaults\n"},
		{"empty key", ": 3\n"},
		{"json unknown field", `{"defaults": {"max_requests": 1}}`},
		{"json trailing", `{"defaults": {}} {"tenants": {}}`},
		{"json bad tenant", `{"tenants": {"a/b": {"max_queue": 1}}}`},
	}
	for _, c := range cases {
		if _, err := ParseOverrides([]byte(c.src)); err == nil {
			t.Errorf("%s: ParseOverrides accepted %q", c.name, c.src)
		}
	}
}

func TestOverridesFor(t *testing.T) {
	o, err := ParseOverrides([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	// Unknown tenant inherits the defaults wholesale.
	if lim := o.For("quiet"); lim != (Limits{MaxInflight: 64, MaxQueue: 32}) {
		t.Fatalf("quiet: %+v", lim)
	}
	// Set fields override, unset fields inherit.
	if lim := o.For("noisy"); lim != (Limits{MaxInflight: 2, MaxQueue: 32, WritesPerSec: 10}) {
		t.Fatalf("noisy: %+v", lim)
	}
	// Explicit -1 widens past the default and normalizes to 0.
	if lim := o.For("vip"); lim != (Limits{MaxInflight: 0, MaxQueue: 32}) {
		t.Fatalf("vip: %+v", lim)
	}
	// nil receiver is fully unlimited.
	var nilo *Overrides
	if lim := nilo.For("x"); lim != (Limits{}) {
		t.Fatalf("nil: %+v", lim)
	}
}

func TestLoadOverridesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "overrides.yaml")
	if err := os.WriteFile(path, []byte(sampleYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := LoadOverridesFile(path)
	if err != nil {
		t.Fatalf("LoadOverridesFile: %v", err)
	}
	if !reflect.DeepEqual(o, sampleWant()) {
		t.Fatalf("loaded %+v", o)
	}
	if _, err := LoadOverridesFile(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWatcherKeepsOldOnInvalid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "overrides.yaml")
	if err := os.WriteFile(path, []byte("defaults:\n  max_inflight: 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var swaps int
	var lastErr error
	w := NewWatcher(path,
		func(*Overrides) { swaps++ },
		func(err error) { lastErr = err })
	if err := w.Load(); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := w.Current().For("x").MaxInflight; got != 4 {
		t.Fatalf("initial max_inflight = %d", got)
	}

	// Invalid rewrite: old document must stay in force, error surfaced.
	if err := os.WriteFile(path, []byte("defaults:\n  max_inflight: banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w.Reload()
	if lastErr == nil {
		t.Fatal("invalid reload produced no error")
	}
	if got := w.Current().For("x").MaxInflight; got != 4 {
		t.Fatalf("invalid reload changed limits: max_inflight = %d", got)
	}
	if reloads, fails := w.Stats(); reloads != 1 || fails != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", reloads, fails)
	}

	// Valid rewrite swaps in.
	if err := os.WriteFile(path, []byte("defaults:\n  max_inflight: 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w.Reload()
	if got := w.Current().For("x").MaxInflight; got != 9 {
		t.Fatalf("valid reload ignored: max_inflight = %d", got)
	}
	if swaps != 2 {
		t.Fatalf("swaps = %d, want 2", swaps)
	}
}

func TestWatcherPolling(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "overrides.yaml")
	if err := os.WriteFile(path, []byte("defaults:\n  max_queue: 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	swapped := make(chan *Overrides, 8)
	w := NewWatcher(path, func(o *Overrides) { swapped <- o }, nil)
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	<-swapped // initial Load
	w.Start(5 * time.Millisecond)
	defer w.Stop()

	// Size change guarantees the poll loop notices even on coarse mtimes.
	if err := os.WriteFile(path, []byte("defaults:\n  max_queue: 123\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-swapped:
		if got := o.For("x").MaxQueue; got != 123 {
			t.Fatalf("polled reload max_queue = %d", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll loop never picked up the rewrite")
	}
}

func TestWatcherStopWithoutStart(t *testing.T) {
	w := NewWatcher("nowhere", nil, nil)
	w.Stop() // must not deadlock
	w.Stop() // and must be idempotent
}
