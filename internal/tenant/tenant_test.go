package tenant

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateID(t *testing.T) {
	good := []string{
		"default",
		"a",
		"0",
		"tenant-1",
		"Tenant_2",
		"a.b.c",
		"x" + strings.Repeat("y", MaxIDLen-1),
		"9lives",
		"a-",
		"a_",
		"a.",
	}
	for _, id := range good {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	bad := []string{
		"",
		strings.Repeat("a", MaxIDLen+1),
		"..",
		"a..b",
		"../etc",
		"a/b",
		"a\\b",
		"a b",
		"a\x00b",
		"a\nb",
		".hidden",
		"-flag",
		"_x",
		"héllo",
		"tenant:1",
		"a\tb",
	}
	for _, id := range bad {
		err := ValidateID(id)
		if err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", id)
			continue
		}
		if !IsBadID(err) {
			t.Errorf("ValidateID(%q): IsBadID = false for %v", id, err)
		}
	}
}

func TestIsBadIDOnOtherErrors(t *testing.T) {
	if IsBadID(nil) {
		t.Error("IsBadID(nil) = true")
	}
	if IsBadID(errors.New("boom")) {
		t.Error("IsBadID(generic) = true")
	}
}
