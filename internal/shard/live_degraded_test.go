package shard

import (
	"errors"
	"testing"

	"github.com/trajcover/trajcover/internal/faultfs"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/wal"
)

// TestLiveDegradedStateMachine drives the full wedge → degraded →
// recover cycle at the shard layer: an injected fsync failure must NOT
// ack the write, must flip the index to degraded (hook fired, Health
// observable, writes fast-fail with ErrDegraded, queries unaffected),
// and SwapWAL + ExitDegraded must restore writable service.
func TestLiveDegradedStateMachine(t *testing.T) {
	users := makeUsers(300, 4, 91)
	facilities := makeFacilities(8, 8, 92)
	opts := Options{Shards: 2, Tree: tqtree.Options{
		Variant: tqtree.FullTrajectory, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}
	lv, err := BuildLive(users[:200], opts, manualPolicy())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 1)
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	lv.AttachWAL(log)
	var hookCause error
	lv.SetDegradeHook(func(cause error) { hookCause = cause })

	if err := lv.Insert(users[200]); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}
	if h := lv.Health(); h.Degraded || h.Entries != 0 {
		t.Fatalf("healthy index reports %+v", h)
	}

	// Answers before the wedge, to compare against during degradation.
	p := Params{Scenario: service.Binary, Psi: 40}
	wantV, _, err := lv.ServiceValues(facilities, p, 2)
	if err != nil {
		t.Fatal(err)
	}

	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1})
	if err := lv.Insert(users[201]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert over failing fsync: got %v, want ErrDegraded", err)
	}
	if hookCause == nil {
		t.Fatal("degrade hook did not fire")
	}
	if !lv.Degraded() {
		t.Fatal("index not degraded after wedge")
	}
	h := lv.Health()
	if !h.Degraded || h.Entries != 1 || h.Exits != 0 || h.Cause == "" || h.Since.IsZero() {
		t.Fatalf("degraded health %+v", h)
	}
	// Writes fast-fail without touching the wedged log.
	if err := lv.Insert(users[202]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert: got %v", err)
	}
	if _, err := lv.Delete(users[0].ID); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded delete: got %v", err)
	}
	// Queries keep serving the last published epochs.
	gotV, _, err := lv.ServiceValues(facilities, p, 2)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	for i := range wantV {
		if gotV[i] != wantV[i] {
			t.Fatalf("degraded answers diverge at %d: %g vs %g", i, gotV[i], wantV[i])
		}
	}

	// Recover: successor log, swap while still degraded, then exit.
	inj.Heal()
	old := lv.WAL()
	old.Close()
	log2, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if prev := lv.SwapWAL(log2); prev != old {
		t.Fatal("SwapWAL returned a different log than attached")
	}
	lv.ExitDegraded()
	h = lv.Health()
	if h.Degraded || h.Entries != 1 || h.Exits != 1 || h.Cause != "" {
		t.Fatalf("post-recovery health %+v", h)
	}
	// users[201] hit the failed-ack path: it is applied in memory but was
	// never acknowledged, so a retry must see it as a duplicate.
	if err := lv.Insert(users[201]); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("retried unacked insert: got %v, want ErrDuplicateID (applied in memory)", err)
	}
	if err := lv.Insert(users[202]); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if _, err := lv.Delete(users[0].ID); err != nil {
		t.Fatalf("post-recovery delete: %v", err)
	}
}

// TestLiveDegradedTransitionsIdempotent: Enter/Exit are idempotent and
// the counters stay monotone with Entries-Exits ∈ {0,1}.
func TestLiveDegradedTransitionsIdempotent(t *testing.T) {
	users := makeUsers(50, 4, 93)
	lv, err := BuildLive(users, Options{Shards: 1, Tree: tqtree.Options{
		Variant: tqtree.FullTrajectory, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}, manualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	lv.ExitDegraded() // healthy exit is a no-op
	if h := lv.Health(); h.Entries != 0 || h.Exits != 0 {
		t.Fatalf("no-op exit bumped counters: %+v", h)
	}
	cause := errors.New("boom")
	lv.EnterDegraded(cause)
	lv.EnterDegraded(errors.New("second cause must not overwrite"))
	if h := lv.Health(); h.Entries != 1 || h.Cause != "boom" {
		t.Fatalf("re-entry not idempotent: %+v", h)
	}
	if err := lv.Insert(users[0]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert without WAL: %v", err)
	}
	lv.ExitDegraded()
	lv.ExitDegraded()
	if h := lv.Health(); h.Entries != 1 || h.Exits != 1 || h.Degraded {
		t.Fatalf("exit not idempotent: %+v", h)
	}
}
