package shard

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

var testBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

func makeUsers(n, maxPts int, seed int64) []*trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	for i := range out {
		npts := 2
		if maxPts > 2 {
			npts += rng.Intn(maxPts - 1)
		}
		ax := rng.Float64() * 1000
		ay := rng.Float64() * 1000
		pts := make([]geo.Point, npts)
		for j := range pts {
			pts[j] = geo.Pt(
				clampF(ax+rng.NormFloat64()*80, 0, 1000),
				clampF(ay+rng.NormFloat64()*80, 0, 1000),
			)
		}
		out[i] = trajectory.MustNew(trajectory.ID(i), pts)
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func makeFacilities(n, stops int, seed int64) []*trajectory.Facility {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Facility, n)
	for i := range out {
		ax := rng.Float64() * 1000
		ay := rng.Float64() * 1000
		dirx := rng.NormFloat64()
		diry := rng.NormFloat64()
		pts := make([]geo.Point, stops)
		for j := range pts {
			t := float64(j) * 30
			pts[j] = geo.Pt(
				clampF(ax+dirx*t+rng.NormFloat64()*10, 0, 1000),
				clampF(ay+diry*t+rng.NormFloat64()*10, 0, 1000),
			)
		}
		out[i] = trajectory.MustNewFacility(trajectory.ID(i), pts)
	}
	return out
}

func singleEngine(t *testing.T, users []*trajectory.Trajectory, opts tqtree.Options) *query.Engine {
	t.Helper()
	set := trajectory.MustNewSet(users)
	tree, err := tqtree.Build(users, opts)
	if err != nil {
		t.Fatal(err)
	}
	return query.NewEngine(tree, set)
}

var shardCounts = []int{1, 2, 4, 8}

// TestPartitionersCoverAndAreDeterministic checks both built-in
// partitioners assign every trajectory to a valid shard, the same shard
// every time.
func TestPartitionersCoverAndAreDeterministic(t *testing.T) {
	users := makeUsers(500, 4, 11)
	for _, part := range []Partitioner{Hash{}, Grid{}} {
		for _, n := range shardCounts {
			counts := make([]int, n)
			for _, u := range users {
				i := part.Assign(u, testBounds, n)
				if i < 0 || i >= n {
					t.Fatalf("%s: assign out of range: %d of %d", part.Kind(), i, n)
				}
				if j := part.Assign(u, testBounds, n); j != i {
					t.Fatalf("%s: nondeterministic assignment %d vs %d", part.Kind(), i, j)
				}
				counts[i]++
			}
			if n > 1 && part.Kind() == "hash" {
				// Hash sharding over 500 uniform IDs should not leave a
				// shard empty.
				for i, c := range counts {
					if c == 0 {
						t.Fatalf("hash: shard %d/%d empty", i, n)
					}
				}
			}
		}
	}
}

// TestGridPartitionerClampsOutOfBounds checks out-of-range points land in
// edge cells rather than out-of-range shards.
func TestGridPartitionerClampsOutOfBounds(t *testing.T) {
	far := trajectory.MustNew(1, []geo.Point{geo.Pt(-500, 5000), geo.Pt(-400, 4800)})
	if i := (Grid{}).Assign(far, testBounds, 4); i < 0 || i >= 4 {
		t.Fatalf("out-of-bounds trajectory assigned to shard %d", i)
	}
	if i := (Grid{}).Assign(far, geo.Rect{}, 4); i < 0 || i >= 4 {
		t.Fatalf("degenerate bounds assigned to shard %d", i)
	}
}

// TestShardedMatchesSingleTree is the core equivalence property: for
// random datasets, every shard count, both partitioners, and every valid
// (variant, scenario) pair, the sharded ServiceValues and TopK agree with
// the single-tree engine — exactly for Binary, within float summation
// tolerance otherwise.
func TestShardedMatchesSingleTree(t *testing.T) {
	type cfg struct {
		variant  tqtree.Variant
		scenario service.Scenario
	}
	cfgs := []cfg{
		{tqtree.TwoPoint, service.Binary},
		{tqtree.Segmented, service.PointCount},
		{tqtree.FullTrajectory, service.Length},
	}
	users := makeUsers(3000, 4, 21)
	facilities := makeFacilities(40, 10, 22)
	const k = 10
	for _, c := range cfgs {
		treeOpts := tqtree.Options{Variant: c.variant, Ordering: tqtree.ZOrder, Bounds: testBounds}
		eng := singleEngine(t, users, treeOpts)
		p := query.Params{Scenario: c.scenario, Psi: 40}
		wantSV, _, err := eng.ServiceValues(facilities, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantTop, _, err := eng.TopK(facilities, k, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range []Partitioner{Hash{}, Grid{}} {
			for _, n := range shardCounts {
				s, err := Build(users, Options{Shards: n, Partitioner: part, Tree: treeOpts})
				if err != nil {
					t.Fatal(err)
				}
				if s.Len() != len(users) {
					t.Fatalf("%s/%d shards: %d trajectories indexed, want %d",
						part.Kind(), n, s.Len(), len(users))
				}
				tol := 0.0
				if c.scenario != service.Binary {
					tol = 1e-9
				}
				gotSV, _, err := s.ServiceValues(facilities, p, 2)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantSV {
					if math.Abs(gotSV[i]-wantSV[i]) > tol*(1+wantSV[i]) {
						t.Fatalf("%v %s/%d shards: facility %d service %v, want %v",
							c, part.Kind(), n, facilities[i].ID, gotSV[i], wantSV[i])
					}
				}
				gotTop, m, err := s.TopK(facilities, k, p)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotTop) != len(wantTop) {
					t.Fatalf("%v %s/%d shards: %d results, want %d",
						c, part.Kind(), n, len(gotTop), len(wantTop))
				}
				for i := range wantTop {
					if gotTop[i].Facility.ID != wantTop[i].Facility.ID ||
						math.Abs(gotTop[i].Service-wantTop[i].Service) > tol*(1+wantTop[i].Service) {
						t.Fatalf("%v %s/%d shards: rank %d = (%d, %v), want (%d, %v)",
							c, part.Kind(), n, i,
							gotTop[i].Facility.ID, gotTop[i].Service,
							wantTop[i].Facility.ID, wantTop[i].Service)
					}
				}
				if m.Relaxations == 0 && wantTop[0].Service > 0 {
					t.Fatalf("%v %s/%d shards: no relaxations recorded", c, part.Kind(), n)
				}
			}
		}
	}
}

// TestShardedTopKParallelMatchesSerial checks the concurrent merge emits
// the same answer as the serial scatter-gather.
func TestShardedTopKParallelMatchesSerial(t *testing.T) {
	users := makeUsers(2000, 2, 31)
	facilities := makeFacilities(32, 8, 32)
	s, err := Build(users, Options{Shards: 4, Tree: tqtree.Options{
		Ordering: tqtree.ZOrder, Bounds: testBounds,
	}})
	if err != nil {
		t.Fatal(err)
	}
	p := query.Params{Scenario: service.Binary, Psi: 40}
	want, _, err := s.TopK(facilities, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		got, _, err := s.TopKParallel(facilities, 8, p, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
				t.Fatalf("workers=%d rank %d: (%d, %v), want (%d, %v)", workers, i,
					got[i].Facility.ID, got[i].Service, want[i].Facility.ID, want[i].Service)
			}
		}
	}
}

// TestBuildParallelismIsEquivalent checks the shard build produces the
// same index whatever the goroutine budget.
func TestBuildParallelismIsEquivalent(t *testing.T) {
	users := makeUsers(2000, 2, 41)
	facilities := makeFacilities(16, 8, 42)
	p := query.Params{Scenario: service.Binary, Psi: 40}
	var want []float64
	for _, par := range []int{1, 2, 8} {
		s, err := Build(users, Options{Shards: 4, Tree: tqtree.Options{
			Bounds: testBounds, Parallelism: par,
		}})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := s.ServiceValues(facilities, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: facility %d value %v, want %v",
					par, facilities[i].ID, got[i], want[i])
			}
		}
	}
}

// TestShardedInsertRoutesToOneShard checks Insert places the trajectory
// where the partitioner says, updates totals, and rejects duplicates
// across shards.
func TestShardedInsertRoutesToOneShard(t *testing.T) {
	users := makeUsers(400, 2, 51)
	s, err := Build(users, Options{Shards: 4, Tree: tqtree.Options{Bounds: testBounds}})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Sizes()
	u := trajectory.MustNew(10000, []geo.Point{geo.Pt(10, 10), geo.Pt(20, 20)})
	if err := s.Insert(u); err != nil {
		t.Fatal(err)
	}
	want := clampShard(Hash{}.Assign(u, s.Bounds(), 4), 4)
	after := s.Sizes()
	for i := range after {
		delta := after[i] - before[i]
		if i == want && delta != 1 {
			t.Fatalf("shard %d grew by %d, want 1", i, delta)
		}
		if i != want && delta != 0 {
			t.Fatalf("shard %d grew by %d, want 0", i, delta)
		}
	}
	if got := s.ByID(10000); got != u {
		t.Fatal("inserted trajectory not findable by ID")
	}
	if err := s.Insert(u); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	// The inserted trajectory must be served like any other.
	f := trajectory.MustNewFacility(1, []geo.Point{geo.Pt(12, 12), geo.Pt(18, 18)})
	v, _, err := s.ServiceValue(f, query.Params{Scenario: service.Binary, Psi: 20})
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 {
		t.Fatalf("inserted trajectory not served: value %v", v)
	}
}

// TestBuildRejectsCrossShardDuplicates checks corpus-wide duplicate IDs
// fail the build even when the duplicates land in different shards.
func TestBuildRejectsCrossShardDuplicates(t *testing.T) {
	a := trajectory.MustNew(7, []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2)})
	b := trajectory.MustNew(7, []geo.Point{geo.Pt(900, 900), geo.Pt(950, 950)})
	if _, err := Build([]*trajectory.Trajectory{a, b}, Options{Shards: 4, Partitioner: Grid{}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

// TestEmptyAndTinyCorpora checks degenerate inputs: no users, fewer users
// than shards (some shards empty), empty facility lists.
func TestEmptyAndTinyCorpora(t *testing.T) {
	p := query.Params{Scenario: service.Binary, Psi: 40}
	s, err := Build(nil, Options{Shards: 4, Tree: tqtree.Options{Bounds: testBounds}})
	if err != nil {
		t.Fatal(err)
	}
	fs := makeFacilities(3, 4, 61)
	top, _, err := s.TopK(fs, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range top {
		if r.Service != 0 {
			t.Fatalf("empty index served %v", r.Service)
		}
	}
	if _, _, err := s.TopK(nil, 5, p); err != nil {
		t.Fatal(err)
	}
	few := makeUsers(3, 2, 62)
	s, err = Build(few, Options{Shards: 8, Tree: tqtree.Options{Bounds: testBounds}})
	if err != nil {
		t.Fatal(err)
	}
	eng := singleEngine(t, few, tqtree.Options{Bounds: testBounds})
	for _, f := range fs {
		got, _, err := s.ServiceValue(f, p)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.ServiceValue(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("facility %d: %v, want %v", f.ID, got, want)
		}
	}
}

// TestFromPartitionPreservesAssignment checks the snapshot-restore
// constructor reproduces the recorded partition verbatim.
func TestFromPartitionPreservesAssignment(t *testing.T) {
	users := makeUsers(800, 2, 71)
	s, err := Build(users, Options{Shards: 4, Partitioner: Grid{}, Tree: tqtree.Options{Bounds: testBounds}})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := FromPartition(s.Partition(), Options{
		Shards: 4, Partitioner: Grid{}, Tree: tqtree.Options{Bounds: testBounds},
	})
	if err != nil {
		t.Fatal(err)
	}
	ws, rs := s.Sizes(), restored.Sizes()
	for i := range ws {
		if ws[i] != rs[i] {
			t.Fatalf("shard %d: restored size %d, want %d", i, rs[i], ws[i])
		}
	}
	fs := makeFacilities(8, 8, 72)
	p := query.Params{Scenario: service.Binary, Psi: 40}
	want, _, err := s.TopK(fs, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := restored.TopK(fs, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
			t.Fatalf("rank %d: (%d, %v), want (%d, %v)", i,
				got[i].Facility.ID, got[i].Service, want[i].Facility.ID, want[i].Service)
		}
	}
}

// TestShardedValidates checks parameter and scenario validation fan out.
func TestShardedValidates(t *testing.T) {
	users := makeUsers(300, 4, 81) // multipoint
	s, err := Build(users, Options{Shards: 2, Tree: tqtree.Options{Bounds: testBounds}})
	if err != nil {
		t.Fatal(err)
	}
	fs := makeFacilities(4, 4, 82)
	if _, _, err := s.TopK(fs, 2, query.Params{Scenario: service.Scenario(9), Psi: 1}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, _, err := s.ServiceValues(fs, query.Params{Scenario: service.Binary, Psi: -2}, 1); err == nil {
		t.Fatal("negative psi accepted")
	}
	// TwoPoint over multipoint data: PointCount must be rejected, as on
	// the single tree.
	if _, _, err := s.TopK(fs, 2, query.Params{Scenario: service.PointCount, Psi: 1}); err == nil {
		t.Fatal("unsupported scenario accepted")
	}
}

// TestPartitionerOfRoundTrip checks kind-string resolution.
func TestPartitionerOfRoundTrip(t *testing.T) {
	for _, part := range []Partitioner{Hash{}, Grid{}} {
		got, ok := PartitionerOf(part.Kind())
		if !ok || got.Kind() != part.Kind() {
			t.Fatalf("kind %q did not round-trip", part.Kind())
		}
	}
	if _, ok := PartitionerOf("bogus"); ok {
		t.Fatal("unknown kind resolved")
	}
}

// TestFromPartitionRejectsCrossShardDuplicates checks the restore path
// refuses a partition that repeats an ID in two shards — such an index
// would silently double-count that user in every answer.
func TestFromPartitionRejectsCrossShardDuplicates(t *testing.T) {
	a := trajectory.MustNew(7, []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2)})
	b := trajectory.MustNew(7, []geo.Point{geo.Pt(900, 900), geo.Pt(950, 950)})
	parts := [][]*trajectory.Trajectory{{a}, {b}}
	if _, err := FromPartition(parts, Options{}); err == nil {
		t.Fatal("cross-shard duplicate IDs accepted")
	}
}
