package shard

// Live serving: each shard holds an atomic pointer to an immutable
// query.Epoch — {frozen base, delta overlay, tombstones}. A query takes
// a read-lock only to capture the epoch set (a write-consistent cut,
// microseconds) and answers over the immutable values without any lock,
// while writes land in the delta under the writer lock and publish a
// successor epoch.
// When a shard's pending churn (delta + tombstones) crosses the policy
// thresholds, a background rebuild folds it into a fresh pointer tree,
// freezes it, and swaps the shard's epoch — readers never wait on a
// rebuild, and the writer is blocked only for the capture and the swap,
// never for the build itself.
//
// Epoch lifecycle per shard (generation g):
//
//	serve(g)   — readers answer over epoch g; writer publishes
//	             g+1, g+2, ... as inserts/deletes land in the delta.
//	capture    — a rebuild starts: it pins the current epoch e0 and
//	             marks e0's delta as "baking"; writes keep flowing.
//	build      — off-lock: build + freeze a tree over e0's logical
//	             corpus (base − tombstones + delta).
//	swap       — under the writer lock: the epoch becomes {new base,
//	             delta written since capture, tombstones added since
//	             capture}, and the generation advances. In-flight
//	             queries keep their captured epoch; the next query
//	             sees the compacted one.
//
// Deletes that arrive while their target is baking are recorded as
// pending tombstones so they mask the new base after the swap — the one
// subtlety that makes writes-during-rebuild linearizable.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
	"github.com/trajcover/trajcover/internal/wal"
)

// ErrImmutable marks an index that cannot accept writes: it was restored
// from a snapshot recorded with a partitioner this build does not know,
// so new trajectories cannot be routed consistently with the recorded
// partition. Queries (and Delete, which routes by ID lookup) still work.
var ErrImmutable = errors.New("shard: immutable index (unknown partitioner)")

// ErrDuplicateID rejects an Insert whose ID is already in the logical
// corpus. Typed so callers (the HTTP server) can tell a client mistake
// (409) from a durability failure (500).
var ErrDuplicateID = errors.New("shard: duplicate id")

// ErrDegraded rejects writes while the index is in degraded read-only
// mode: the WAL wedged or checkpoint IO failed, so durability cannot be
// promised. Queries keep serving from the last published epochs; the
// owner (the public WAL layer) probes the disk in the background and
// calls ExitDegraded once a fresh log is in place. Typed so the HTTP
// layer can answer 503 + Retry-After instead of 500.
var ErrDegraded = errors.New("shard: degraded (writes temporarily disabled)")

// Policy tunes when a live shard folds its delta into a fresh base.
type Policy struct {
	// MaxDelta triggers a background rebuild when a shard's pending
	// churn (delta + tombstones) reaches this count. 0 means 4096.
	MaxDelta int
	// MaxDeltaFraction triggers when pending churn reaches this fraction
	// of the shard's base corpus (subject to a small floor so tiny bases
	// don't thrash). 0 means 0.25; negative disables the fraction
	// trigger.
	MaxDeltaFraction float64
	// RebuildParallelism bounds the goroutines a background rebuild's
	// tree build may use. 0 means 1 — serial, leaving the cores to the
	// serving path.
	RebuildParallelism int
	// Manual disables automatic rebuilds; only Compact folds the delta.
	Manual bool
}

// fractionFloor keeps the fraction trigger from firing on every write
// over a small base.
const fractionFloor = 64

func (p Policy) withDefaults() Policy {
	if p.MaxDelta <= 0 {
		p.MaxDelta = 4096
	}
	if p.MaxDeltaFraction == 0 {
		p.MaxDeltaFraction = 0.25
	}
	if p.RebuildParallelism <= 0 {
		p.RebuildParallelism = 1
	}
	return p
}

// liveShard is one shard of a Live index. The epoch pointer is the only
// reader-visible state; everything else belongs to the writer (guarded
// by Live.wmu) or to the rebuild machinery.
type liveShard struct {
	epoch atomic.Pointer[query.Epoch]

	// Writer state (Live.wmu). delta/dead always mirror the published
	// epoch's overlay; maps handed to an epoch are never mutated again
	// (copy-on-write), and delta is append-only between rewrites.
	delta     []*trajectory.Trajectory
	deltaByID map[trajectory.ID]*trajectory.Trajectory
	dead      map[trajectory.ID]struct{}
	gen       uint64

	// Rebuild bookkeeping (Live.wmu): set while a rebuild is between
	// capture and swap. baking is the pointer set of the delta being
	// folded; pendingDead records deletes of baking items; dead0 is the
	// tombstone set captured at rebuild start.
	baking      map[*trajectory.Trajectory]struct{}
	pendingDead map[trajectory.ID]struct{}
	dead0       map[trajectory.ID]struct{}

	// rebuildMu serializes rebuilds of this shard (background vs
	// Compact); rebuildQueued dedups background triggers.
	rebuildMu     sync.Mutex
	rebuildQueued atomic.Bool
	compactions   atomic.Uint64
}

// Live is a set of epoch-serving shards jointly indexing one mutating
// trajectory corpus. All query methods are safe concurrently with
// Insert/Delete/Compact and with each other; Insert/Delete serialize on
// an internal writer lock.
type Live struct {
	bounds   geo.Rect
	part     Partitioner
	treeOpts tqtree.Options
	policy   Policy

	// wmu guards the writer state (delta/tombstone maps, epoch
	// publishes). Queries take the read side only to CAPTURE the epoch
	// set — never while executing — so a capture is a write-consistent
	// cut: every shard's epoch reflects the same prefix of the global
	// write history. Per-shard pointer loads alone would not give that,
	// and a torn capture can hold an ID alive in two shards at once
	// (delete in shard A, re-insert routed to shard B by a geometric
	// partitioner), double-counting queries and producing snapshots
	// that fail the cross-shard uniqueness check on restore.
	wmu    sync.RWMutex
	shards []*liveShard

	// version counts epoch publishes across all shards: it is bumped
	// (inside wmu) after every successful Insert, Delete, and rebuild
	// swap. Result caches key on it — any two reads of an unchanged
	// version bracket a window with no epoch publish, so an answer
	// computed inside that window is current for the version. The
	// counter is monotone and never reused, which is what makes the
	// capture/compute/recheck caching protocol sound.
	version atomic.Uint64

	// lastErr records the most recent background-rebuild failure (wmu);
	// surfaced via Err. Rebuild inputs are validated epochs, so this
	// stays nil outside of resource exhaustion.
	lastErr error

	// log, when attached, makes writes durable: every Insert/Delete
	// appends its record inside wmu BEFORE publishing the successor
	// epoch, so WAL order is exactly apply order, and the write is
	// acknowledged only after WaitDurable returns (after wmu is
	// released, so concurrent writers share one group-commit fsync).
	log *wal.Log

	// Degraded-mode state machine. degraded is the write-path fast
	// check; the rest is guarded by hmu (never held together with wmu).
	// Transitions are monotone and observable: degEntries/degExits only
	// grow, and degEntries is either equal to degExits (healthy) or one
	// ahead (degraded).
	degraded   atomic.Bool
	hmu        sync.Mutex
	degCause   error
	degSince   time.Time
	degEntries uint64
	degExits   uint64
	onDegrade  func(cause error)
}

// Health is an observable snapshot of the degraded-mode state machine.
type Health struct {
	Degraded bool
	// Cause is the error that triggered the current degradation ("" when
	// healthy).
	Cause string
	// Since is when the current degradation began (zero when healthy).
	Since time.Time
	// Entries and Exits count degraded-mode transitions since open; they
	// are monotone, and Entries-Exits is the current state (1 degraded,
	// 0 healthy).
	Entries, Exits uint64
}

// BuildLive partitions users and builds one frozen-epoch shard per
// partition — Build followed by Sharded.Live.
func BuildLive(users []*trajectory.Trajectory, opts Options, pol Policy) (*Live, error) {
	s, err := Build(users, opts)
	if err != nil {
		return nil, err
	}
	return s.Live(pol)
}

// Live freezes every shard and wraps the result in the epoch-serving
// form. The source index is only read and remains usable.
func (s *Sharded) Live(pol Policy) (*Live, error) {
	f, err := s.Freeze()
	if err != nil {
		return nil, err
	}
	return liveFromEngines(f.engines, s.opts.Partitioner, pol)
}

// Live wraps the frozen shards in the epoch-serving form with empty
// deltas — the restore path for frozen snapshots. A Frozen restored from
// an unknown partitioner kind yields a Live that serves queries and
// accepts Deletes but returns ErrImmutable from Insert.
func (f *Frozen) Live(pol Policy) (*Live, error) {
	part, _ := PartitionerOf(f.kind)
	return liveFromEngines(f.engines, part, pol)
}

// treeOptsOf reconstructs the build options a rebuild must reuse from a
// frozen index's recorded configuration — the single place this rule
// lives, shared by every construction and restore path.
func treeOptsOf(fz *tqtree.Frozen) tqtree.Options {
	return tqtree.Options{
		Variant:  fz.Variant(),
		Ordering: fz.Ordering(),
		Beta:     fz.Beta(),
		MaxDepth: fz.MaxDepth(),
		Bounds:   fz.Bounds(),
	}
}

func liveFromEngines(engines []*query.FrozenEngine, part Partitioner, pol Policy) (*Live, error) {
	epochs := make([]*query.Epoch, len(engines))
	for i, e := range engines {
		ep, err := query.NewEpoch(e, nil, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		epochs[i] = ep
	}
	return LiveFromEpochs(epochs, part, pol)
}

// LiveFromEpochs assembles a Live from per-shard epochs — the snapshot
// restore path (the epochs may carry non-empty deltas and tombstones).
// IDs must be unique across every shard's logical corpus; the shared
// root space and rebuild options come from the first shard's base
// (every shard is built with one configuration over one root space).
func LiveFromEpochs(epochs []*query.Epoch, part Partitioner, pol Policy) (*Live, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("shard: no live shards")
	}
	bounds := epochs[0].Base().Frozen().Bounds()
	treeOpts := treeOptsOf(epochs[0].Base().Frozen())
	seen := make(map[trajectory.ID]struct{})
	for i, ep := range epochs {
		for _, u := range ep.LogicalCorpus() {
			if _, dup := seen[u.ID]; dup {
				return nil, fmt.Errorf("shard: duplicate id %d across live shards (shard %d)", u.ID, i)
			}
			seen[u.ID] = struct{}{}
		}
	}
	treeOpts.Parallelism = 0 // rebuild parallelism comes from the policy
	l := &Live{
		bounds:   bounds,
		part:     part,
		treeOpts: treeOpts,
		policy:   pol.withDefaults(),
		shards:   make([]*liveShard, len(epochs)),
	}
	for i, ep := range epochs {
		sh := &liveShard{
			delta:     ep.Delta(),
			deltaByID: make(map[trajectory.ID]*trajectory.Trajectory, ep.DeltaLen()),
			dead:      ep.Tombstones(),
			gen:       ep.Generation(),
		}
		for _, u := range ep.Delta() {
			sh.deltaByID[u.ID] = u
		}
		if sh.dead == nil {
			sh.dead = map[trajectory.ID]struct{}{}
		}
		sh.epoch.Store(ep)
		l.shards[i] = sh
	}
	return l, nil
}

// NumShards returns the shard count.
func (l *Live) NumShards() int { return len(l.shards) }

// Bounds returns the shared root space.
func (l *Live) Bounds() geo.Rect { return l.bounds }

// PartitionerKind returns the configured partitioner's kind, or "" when
// none survives (restored from an unknown custom kind).
func (l *Live) PartitionerKind() string {
	if l.part == nil {
		return ""
	}
	return l.part.Kind()
}

// Epochs returns each shard's current epoch as one write-consistent
// cut: the read lock excludes writers for the duration of the pointer
// loads (microseconds), so the capture reflects a single prefix of the
// write history across every shard. The returned epochs are immutable;
// callers (queries, snapshot writers) work from them without further
// coordination — no lock is held while they execute.
func (l *Live) Epochs() []*query.Epoch {
	l.wmu.RLock()
	out := make([]*query.Epoch, len(l.shards))
	for i, sh := range l.shards {
		out[i] = sh.epoch.Load()
	}
	l.wmu.RUnlock()
	return out
}

// Version returns the epoch-publish counter: it increases after every
// acknowledged write and every rebuild swap, and is never reused. Two
// equal reads bracketing a computation prove no epoch was published
// while it ran — the invalidation primitive for result caches.
func (l *Live) Version() uint64 { return l.version.Load() }

// Len returns the total logical corpus size.
func (l *Live) Len() int {
	n := 0
	for _, ep := range l.Epochs() {
		n += ep.Len()
	}
	return n
}

// Sizes returns each shard's logical corpus size.
func (l *Live) Sizes() []int {
	eps := l.Epochs()
	out := make([]int, len(eps))
	for i, ep := range eps {
		out[i] = ep.Len()
	}
	return out
}

// ByID returns the logical-corpus trajectory with the given id, or nil.
func (l *Live) ByID(id trajectory.ID) *trajectory.Trajectory {
	for _, ep := range l.Epochs() {
		if u := ep.ByID(id); u != nil {
			return u
		}
	}
	return nil
}

// Err returns the most recent background-rebuild error, or nil.
func (l *Live) Err() error {
	l.wmu.RLock()
	defer l.wmu.RUnlock()
	return l.lastErr
}

// ShardStats is one shard's live-serving state.
type ShardStats struct {
	// Len is the shard's logical corpus size.
	Len int
	// DeltaLen and Tombstones are the pending churn a rebuild will fold.
	DeltaLen   int
	Tombstones int
	// Generation counts epoch publishes (writes and swaps).
	Generation uint64
	// Compactions counts completed rebuild-and-swap cycles.
	Compactions uint64
}

// Stats returns per-shard serving statistics over one consistent
// epoch capture.
func (l *Live) Stats() []ShardStats {
	eps := l.Epochs()
	out := make([]ShardStats, len(l.shards))
	for i, sh := range l.shards {
		ep := eps[i]
		out[i] = ShardStats{
			Len:         ep.Len(),
			DeltaLen:    ep.DeltaLen(),
			Tombstones:  ep.TombstoneCount(),
			Generation:  ep.Generation(),
			Compactions: sh.compactions.Load(),
		}
	}
	return out
}

// has reports whether the shard's logical corpus contains id, from the
// writer's state. Caller holds wmu.
func (sh *liveShard) has(id trajectory.ID) bool {
	if _, ok := sh.deltaByID[id]; ok {
		return true
	}
	if _, gone := sh.dead[id]; gone {
		return false
	}
	return sh.epoch.Load().Base().Users().ByID(id) != nil
}

// AttachWAL makes the index durable: every subsequent Insert/Delete is
// appended to log before its epoch is published and acknowledged only
// once the append is durable per the log's sync policy. Attach before
// the index is shared with writers (the restore path replays history
// first, then attaches, so replayed records are not re-logged).
func (l *Live) AttachWAL(log *wal.Log) {
	l.wmu.Lock()
	l.log = log
	l.wmu.Unlock()
}

// WAL returns the attached log, or nil.
func (l *Live) WAL() *wal.Log {
	l.wmu.RLock()
	defer l.wmu.RUnlock()
	return l.log
}

// SwapWAL atomically replaces the attached log and returns the previous
// one — the recovery path: the owner opens a successor log over the
// same directory and swaps it in while writes are still rejected
// (degraded), so no write can race the half-installed log.
func (l *Live) SwapWAL(log *wal.Log) *wal.Log {
	l.wmu.Lock()
	old := l.log
	l.log = log
	l.wmu.Unlock()
	return old
}

// SetDegradeHook registers fn to run (on the failing writer's
// goroutine, without locks held) each time the index enters degraded
// mode — the owner spawns its recovery probe from it. Set before the
// index is shared with writers.
func (l *Live) SetDegradeHook(fn func(cause error)) {
	l.hmu.Lock()
	l.onDegrade = fn
	l.hmu.Unlock()
}

// EnterDegraded flips the index into degraded read-only mode with the
// given cause. Idempotent while degraded: the first cause wins until
// ExitDegraded.
func (l *Live) EnterDegraded(cause error) {
	l.hmu.Lock()
	if l.degraded.Load() {
		l.hmu.Unlock()
		return
	}
	l.degCause = cause
	l.degSince = time.Now()
	l.degEntries++
	l.degraded.Store(true)
	hook := l.onDegrade
	l.hmu.Unlock()
	if hook != nil {
		hook(cause)
	}
}

// ExitDegraded returns the index to normal writable service. The owner
// calls it only after a fresh WAL is attached and the full in-memory
// state is durable (checkpointed), so the ack invariant holds across
// the cycle. Idempotent.
func (l *Live) ExitDegraded() {
	l.hmu.Lock()
	if l.degraded.Load() {
		l.degCause = nil
		l.degSince = time.Time{}
		l.degExits++
		l.degraded.Store(false)
	}
	l.hmu.Unlock()
}

// Degraded reports whether the index is in degraded read-only mode.
func (l *Live) Degraded() bool { return l.degraded.Load() }

// Health snapshots the degraded-mode state machine.
func (l *Live) Health() Health {
	l.hmu.Lock()
	defer l.hmu.Unlock()
	h := Health{
		Degraded: l.degraded.Load(),
		Since:    l.degSince,
		Entries:  l.degEntries,
		Exits:    l.degExits,
	}
	if l.degCause != nil {
		h.Cause = l.degCause.Error()
	}
	return h
}

// degradedErr is the typed rejection every write path returns while
// degraded, carrying the cause.
func (l *Live) degradedErr() error {
	l.hmu.Lock()
	cause := l.degCause
	l.hmu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, cause)
	}
	return ErrDegraded
}

// walFailure classifies a write-path WAL error: a wedged log means the
// disk refused bytes of unknown extent — enter degraded mode and reject
// with ErrDegraded; anything else (an encoding error) passes through.
// log is the log captured under wmu by the failing write.
func (l *Live) walFailure(op string, log *wal.Log, err error) error {
	if log != nil && log.Err() != nil {
		l.EnterDegraded(err)
		return fmt.Errorf("%w: %s: %v", ErrDegraded, op, err)
	}
	return fmt.Errorf("shard: %s: %w", op, err)
}

// CheckpointCapture atomically captures a write-consistent epoch cut
// and rotates the WAL in the same critical section, so the returned
// segment index is exact: every write in the capture is in a segment
// below cut, every later write in a segment at or above it. Replaying
// segments >= cut on top of a snapshot of the capture reconstructs the
// index. Requires an attached WAL.
func (l *Live) CheckpointCapture() (eps []*query.Epoch, cut uint64, err error) {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.log == nil {
		return nil, 0, fmt.Errorf("shard: no WAL attached")
	}
	cut, err = l.log.Rotate()
	if err != nil {
		return nil, 0, fmt.Errorf("shard: wal rotate: %w", err)
	}
	eps = make([]*query.Epoch, len(l.shards))
	for i, sh := range l.shards {
		eps[i] = sh.epoch.Load()
	}
	return eps, cut, nil
}

// Insert adds a trajectory to its shard's delta overlay and publishes
// the successor epoch (O(1) — see Epoch.WithInsert). Safe concurrently
// with queries and other writes; duplicate IDs (anywhere in the logical
// corpus) are rejected with ErrDuplicateID. With a WAL attached, Insert
// returns only after the record is durable per the sync policy; a
// durability error means the write was NOT acknowledged, and the index
// enters degraded read-only mode (later writes fail fast with
// ErrDegraded until recovery re-establishes a durable log; an error
// after the epoch publish leaves the write applied in memory but
// unacked — recovery checkpoints the in-memory state before accepting
// new writes, so replay never sees an inconsistent history).
func (l *Live) Insert(u *trajectory.Trajectory) error {
	if l.part == nil {
		return fmt.Errorf("%w: cannot route insert", ErrImmutable)
	}
	if l.degraded.Load() {
		return l.degradedErr()
	}
	l.wmu.Lock()
	for _, sh := range l.shards {
		if sh.has(u.ID) {
			l.wmu.Unlock()
			return fmt.Errorf("%w: %d", ErrDuplicateID, u.ID)
		}
	}
	var lsn uint64
	if l.log != nil {
		var err error
		lsn, err = l.log.Append(wal.Record{Op: wal.OpInsert, Trajectory: u})
		if err != nil {
			log := l.log
			l.wmu.Unlock()
			return l.walFailure("wal append", log, err)
		}
	}
	i := clampShard(l.part.Assign(u, l.bounds, len(l.shards)), len(l.shards))
	sh := l.shards[i]
	sh.gen++
	ep := sh.epoch.Load().WithInsert(u, sh.gen)
	sh.delta = ep.Delta()
	sh.deltaByID[u.ID] = u
	sh.epoch.Store(ep)
	l.version.Add(1)
	l.maybeCompact(sh)
	log := l.log
	l.wmu.Unlock()
	if log != nil {
		if err := log.WaitDurable(lsn); err != nil {
			return l.walFailure("wal sync", log, err)
		}
	}
	return nil
}

// Delete removes the trajectory with the given id from the logical
// corpus, reporting whether it was present. A delta trajectory is
// dropped from the overlay; a base trajectory is tombstoned until the
// next rebuild folds it away. Safe concurrently with queries. With a
// WAL attached, a present-and-removed delete is acknowledged only after
// its record is durable; (false, nil) means the id was not present and
// nothing was logged.
func (l *Live) Delete(id trajectory.ID) (bool, error) {
	if l.degraded.Load() {
		return false, l.degradedErr()
	}
	l.wmu.Lock()
	for _, sh := range l.shards {
		if u, ok := sh.deltaByID[id]; ok {
			lsn, err := l.appendDeleteLocked(id)
			if err != nil {
				log := l.log
				l.wmu.Unlock()
				return false, l.walFailure("wal append", log, err)
			}
			newDelta := make([]*trajectory.Trajectory, 0, len(sh.delta)-1)
			for _, d := range sh.delta {
				if d != u {
					newDelta = append(newDelta, d)
				}
			}
			sh.gen++
			ep := sh.epoch.Load().WithDelta(newDelta, sh.gen)
			sh.delta = newDelta
			delete(sh.deltaByID, id)
			if sh.baking != nil {
				if _, baked := sh.baking[u]; baked {
					// u is being folded into the next base: mask it there.
					sh.pendingDead[id] = struct{}{}
				}
			}
			sh.epoch.Store(ep)
			l.version.Add(1)
			l.maybeCompact(sh)
			return true, l.ackUnlock(lsn)
		}
		if _, gone := sh.dead[id]; gone {
			continue
		}
		if sh.epoch.Load().Base().Users().ByID(id) == nil {
			continue
		}
		lsn, err := l.appendDeleteLocked(id)
		if err != nil {
			log := l.log
			l.wmu.Unlock()
			return false, l.walFailure("wal append", log, err)
		}
		newDead := make(map[trajectory.ID]struct{}, len(sh.dead)+1)
		for d := range sh.dead {
			newDead[d] = struct{}{}
		}
		newDead[id] = struct{}{}
		sh.gen++
		ep := sh.epoch.Load().WithTombstones(newDead, sh.gen)
		sh.dead = newDead
		sh.epoch.Store(ep)
		l.version.Add(1)
		l.maybeCompact(sh)
		return true, l.ackUnlock(lsn)
	}
	l.wmu.Unlock()
	return false, nil
}

// appendDeleteLocked logs a delete record (no-op without a WAL). Caller
// holds wmu.
func (l *Live) appendDeleteLocked(id trajectory.ID) (uint64, error) {
	if l.log == nil {
		return 0, nil
	}
	return l.log.Append(wal.Record{Op: wal.OpDelete, ID: id})
}

// ackUnlock releases wmu and then waits for lsn to be durable — the
// tail of every successful write path.
func (l *Live) ackUnlock(lsn uint64) error {
	log := l.log
	l.wmu.Unlock()
	if log != nil {
		if err := log.WaitDurable(lsn); err != nil {
			return l.walFailure("wal sync", log, err)
		}
	}
	return nil
}

// maybeCompact spawns a background rebuild of a shard when the policy
// thresholds are crossed. It needs no lock — the policy is immutable,
// the epoch load is atomic, and the CAS dedups concurrent triggers —
// so a finished rebuild re-runs it on itself: a burst of writes that
// lands while a rebuild is in flight still gets folded once the writer
// goes idle (the follow-up trigger fires from the completed rebuild,
// not from a future write that may never come).
func (l *Live) maybeCompact(sh *liveShard) {
	if l.policy.Manual {
		return
	}
	ep := sh.epoch.Load()
	pending := ep.DeltaLen() + ep.TombstoneCount()
	if pending == 0 {
		return
	}
	trigger := pending >= l.policy.MaxDelta
	if !trigger && l.policy.MaxDeltaFraction > 0 && pending >= fractionFloor {
		if base := ep.Base().Users().Len(); float64(pending) >= l.policy.MaxDeltaFraction*float64(base) {
			trigger = true
		}
	}
	if !trigger {
		return
	}
	if !sh.rebuildQueued.CompareAndSwap(false, true) {
		return // a rebuild is already queued or running
	}
	go func() {
		err := l.rebuildShard(sh)
		sh.rebuildQueued.Store(false)
		if err != nil {
			l.wmu.Lock()
			l.lastErr = err
			l.wmu.Unlock()
			return
		}
		// Writes that landed during the rebuild may already exceed the
		// thresholds again; re-evaluate now rather than waiting for the
		// next write.
		l.maybeCompact(sh)
	}()
}

// Compact synchronously folds every shard's pending churn into fresh
// frozen bases. It is safe concurrently with queries and writes; if a
// background rebuild is in flight on a shard, Compact waits for it and
// then folds whatever churn remains.
func (l *Live) Compact() error {
	for _, sh := range l.shards {
		if err := l.rebuildShard(sh); err != nil {
			return err
		}
	}
	return nil
}

// rebuildShard rebuilds one shard: capture the epoch, build + freeze its
// logical corpus off-lock, then swap the shard onto the new base and
// carry forward the writes that landed during the build.
func (l *Live) rebuildShard(sh *liveShard) error {
	sh.rebuildMu.Lock()
	defer sh.rebuildMu.Unlock()

	// Capture: pin the epoch to fold and mark its delta as baking so
	// concurrent deletes of those trajectories turn into tombstones on
	// the new base.
	l.wmu.Lock()
	e0 := sh.epoch.Load()
	if e0.DeltaLen() == 0 && e0.TombstoneCount() == 0 {
		l.wmu.Unlock()
		return nil
	}
	sh.baking = make(map[*trajectory.Trajectory]struct{}, e0.DeltaLen())
	for _, u := range e0.Delta() {
		sh.baking[u] = struct{}{}
	}
	sh.pendingDead = map[trajectory.ID]struct{}{}
	sh.dead0 = e0.Tombstones()
	l.wmu.Unlock()

	clearCapture := func() {
		sh.baking, sh.pendingDead, sh.dead0 = nil, nil, nil
	}

	// Build off-lock: readers and writers proceed against the current
	// epochs while the fold runs.
	corpus := e0.LogicalCorpus()
	opts := l.treeOpts
	opts.Parallelism = l.policy.RebuildParallelism
	set, err := trajectory.NewSet(corpus)
	if err == nil {
		var tree *tqtree.Tree
		if tree, err = tqtree.Build(corpus, opts); err == nil {
			var fz *tqtree.Frozen
			if fz, err = tqtree.Freeze(tree); err == nil {
				// Swap: fold the writes that landed during the build onto
				// the new base and publish.
				base1 := query.NewFrozenEngine(fz, set)
				l.wmu.Lock()
				newDelta := make([]*trajectory.Trajectory, 0, len(sh.delta))
				for _, u := range sh.delta {
					if _, baked := sh.baking[u]; !baked {
						newDelta = append(newDelta, u)
					}
				}
				newDead := make(map[trajectory.ID]struct{}, len(sh.pendingDead))
				for id := range sh.dead {
					if _, old := sh.dead0[id]; !old {
						newDead[id] = struct{}{}
					}
				}
				for id := range sh.pendingDead {
					newDead[id] = struct{}{}
				}
				var ep *query.Epoch
				if ep, err = query.NewEpoch(base1, newDelta, newDead, sh.gen+1); err == nil {
					sh.gen++
					sh.delta = newDelta
					sh.deltaByID = make(map[trajectory.ID]*trajectory.Trajectory, len(newDelta))
					for _, u := range newDelta {
						sh.deltaByID[u.ID] = u
					}
					sh.dead = newDead
					sh.epoch.Store(ep)
					l.version.Add(1)
					sh.compactions.Add(1)
				}
				clearCapture()
				l.wmu.Unlock()
				return err
			}
		}
	}
	l.wmu.Lock()
	clearCapture()
	l.wmu.Unlock()
	return err
}

// validate checks the query parameters against every shard's epoch.
func validateEpochs(eps []*query.Epoch, p query.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, ep := range eps {
		if err := ep.ValidateScenario(p.Scenario); err != nil {
			return err
		}
	}
	return nil
}

// epochSeeder seeds scatter-gather explorations over a captured epoch
// set — the explorerSeeder the shared merge in topk.go consumes.
type epochSeeder []*query.Epoch

func (s epochSeeder) numShards() int { return len(s) }

func (s epochSeeder) newExploration(i int, f *trajectory.Facility, p Params) (query.Exploration, error) {
	return s[i].NewExplorer(f, p)
}

// ServiceValue computes SO(U, f) as the sum of per-shard epoch service
// values, accumulated in shard order so the answer is deterministic.
func (l *Live) ServiceValue(fac *trajectory.Facility, p Params) (float64, query.Metrics, error) {
	eps := l.Epochs()
	var m query.Metrics
	var so float64
	for _, ep := range eps {
		v, sm, err := ep.ServiceValue(fac, p)
		if err != nil {
			return 0, m, err
		}
		so += v
		m.Add(sm)
	}
	return so, m, nil
}

// ServiceValues computes the exact service value of every facility by
// scattering the batch to every shard's epoch and summing per-shard
// answers in shard order; the output is indexed like facilities.
func (l *Live) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, query.Metrics, error) {
	return l.ServiceValuesCtx(nil, facilities, p, workers)
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation: every
// per-epoch batch polls ctx between facilities and the fold checks it
// between epochs, returning ctx.Err() instead of an answer once the
// context is done. The whole batch still answers over one write-
// consistent epoch capture.
func (l *Live) ServiceValuesCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers int) ([]float64, query.Metrics, error) {
	eps := l.Epochs()
	var m query.Metrics
	out := make([]float64, len(facilities))
	for _, ep := range eps {
		vs, sm, err := ep.ServiceValuesCtx(ctx, facilities, p, workers)
		if err != nil {
			return nil, m, err
		}
		for i, v := range vs {
			out[i] += v
		}
		m.Add(sm)
	}
	return out, m, nil
}

// TopK answers kMaxRRST over the live shards by scatter-gather, best
// first — the same merge as Sharded/Frozen over a captured epoch set,
// so a query is unaffected by swaps that land while it runs.
func (l *Live) TopK(facilities []*trajectory.Facility, k int, p Params) ([]query.Result, query.Metrics, error) {
	return l.TopKCtx(nil, facilities, k, p)
}

// TopKCtx is TopK with cooperative cancellation: the scatter-gather
// merge polls ctx between facility relaxations and returns ctx.Err()
// instead of an answer once the context is done.
func (l *Live) TopKCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params) ([]query.Result, query.Metrics, error) {
	eps := l.Epochs()
	var m query.Metrics
	if err := validateEpochs(eps, p); err != nil {
		return nil, m, err
	}
	h, k, err := seedHeap(epochSeeder(eps), facilities, k, p)
	if err != nil || k == 0 {
		return nil, m, err
	}
	res, err := mergeTopK(ctx, h, k, &m)
	return res, m, err
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK. workers is
// normalized by query.ResolveWorkers; a single-worker pool falls back to
// the serial TopK.
func (l *Live) TopKParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]query.Result, query.Metrics, error) {
	return l.TopKParallelCtx(nil, facilities, k, p, workers)
}

// TopKParallelCtx is TopKParallel with cooperative cancellation, checked
// between relaxation rounds.
func (l *Live) TopKParallelCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params, workers int) ([]query.Result, query.Metrics, error) {
	workers = query.ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return l.TopKCtx(ctx, facilities, k, p)
	}
	eps := l.Epochs()
	var m query.Metrics
	if err := validateEpochs(eps, p); err != nil {
		return nil, m, err
	}
	h, k, err := seedHeap(epochSeeder(eps), facilities, k, p)
	if err != nil || k == 0 {
		return nil, m, err
	}
	res, err := mergeTopKParallel(ctx, h, k, workers, &m)
	return res, m, err
}
