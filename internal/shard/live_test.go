package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// stressN scales a workload size up when TRAJCOVER_STRESS is set — the
// dedicated CI race job runs the heavy version; the default suite stays
// fast. The factor is sized for low-core CI runners: the churn tests
// pit spinning readers against a writer on however many cores exist,
// so wall-clock grows superlinearly with the script length.
func stressN(n int) int {
	if os.Getenv("TRAJCOVER_STRESS") != "" {
		return n * 4
	}
	return n
}

// readerPause yields between reader iterations so the hammering
// goroutines cannot starve the writer (and the background rebuilds) on
// small core counts; the overlap under test is preserved — thousands
// of reads still land inside the write history.
func readerPause() { time.Sleep(50 * time.Microsecond) }

func manualPolicy() Policy { return Policy{Manual: true} }

// TestLiveEmptyDeltaMatchesFrozen: a freshly built Live index (all
// epochs frozen, empty overlays) must answer byte-identically — values
// and metrics — to the PR 3 frozen sharded path, across shard counts,
// orderings, and scenarios. This is the empty-delta anchor at the
// scatter-gather level.
func TestLiveEmptyDeltaMatchesFrozen(t *testing.T) {
	users := makeUsers(600, 4, 71)
	facilities := makeFacilities(24, 8, 72)
	p := Params{Scenario: service.Binary, Psi: 40}
	for _, n := range []int{1, 2, 4} {
		for _, o := range []tqtree.Ordering{tqtree.Basic, tqtree.ZOrder} {
			for _, sc := range []service.Scenario{service.Binary, service.PointCount, service.Length} {
				opts := Options{Shards: n, Tree: tqtree.Options{
					Variant: tqtree.FullTrajectory, Ordering: o, Beta: 8, Bounds: testBounds,
				}}
				s, err := Build(users, opts)
				if err != nil {
					t.Fatal(err)
				}
				fz, err := s.Freeze()
				if err != nil {
					t.Fatal(err)
				}
				lv, err := s.Live(manualPolicy())
				if err != nil {
					t.Fatal(err)
				}
				p.Scenario = sc
				name := fmt.Sprintf("%d/%v/%v", n, o, sc)

				wantV, wantM, err := fz.ServiceValues(facilities, p, 2)
				if err != nil {
					t.Fatal(err)
				}
				gotV, gotM, err := lv.ServiceValues(facilities, p, 2)
				if err != nil {
					t.Fatal(err)
				}
				if gotM != wantM {
					t.Fatalf("%s: ServiceValues metrics %+v, frozen %+v", name, gotM, wantM)
				}
				for i := range wantV {
					if gotV[i] != wantV[i] {
						t.Fatalf("%s: ServiceValues[%d] = %v, frozen %v", name, i, gotV[i], wantV[i])
					}
				}

				wantTop, wantTM, err := fz.TopK(facilities, 8, p)
				if err != nil {
					t.Fatal(err)
				}
				gotTop, gotTM, err := lv.TopK(facilities, 8, p)
				if err != nil {
					t.Fatal(err)
				}
				if gotTM != wantTM {
					t.Fatalf("%s: TopK metrics %+v, frozen %+v", name, gotTM, wantTM)
				}
				if len(gotTop) != len(wantTop) {
					t.Fatalf("%s: TopK lengths %d vs %d", name, len(gotTop), len(wantTop))
				}
				for i := range wantTop {
					if gotTop[i].Facility.ID != wantTop[i].Facility.ID || gotTop[i].Service != wantTop[i].Service {
						t.Fatalf("%s: TopK[%d] differs", name, i)
					}
				}
			}
		}
	}
}

// liveOracle tracks the logical corpus alongside a Live index so tests
// can rebuild the expected answers from scratch.
type liveOracle struct {
	byID map[trajectory.ID]*trajectory.Trajectory
}

func newLiveOracle(users []*trajectory.Trajectory) *liveOracle {
	o := &liveOracle{byID: make(map[trajectory.ID]*trajectory.Trajectory, len(users))}
	for _, u := range users {
		o.byID[u.ID] = u
	}
	return o
}

func (o *liveOracle) corpus() []*trajectory.Trajectory {
	ids := make([]int, 0, len(o.byID))
	for id := range o.byID {
		ids = append(ids, int(id))
	}
	// Deterministic order for the fresh build.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]*trajectory.Trajectory, len(ids))
	for i, id := range ids {
		out[i] = o.byID[trajectory.ID(id)]
	}
	return out
}

// TestLiveChurnMatchesFreshBuild: interleaved inserts and deletes over a
// live index (manual compaction, so every query exercises the overlay
// and the tombstone mask) answer like a fresh sharded build of the
// surviving corpus — before and after Compact.
func TestLiveChurnMatchesFreshBuild(t *testing.T) {
	users := makeUsers(800, 2, 73)
	facilities := makeFacilities(16, 8, 74)
	p := Params{Scenario: service.Binary, Psi: 40}
	for _, shards := range []int{1, 3} {
		opts := Options{Shards: shards, Partitioner: Hash{}, Tree: tqtree.Options{
			Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
		}}
		lv, err := BuildLive(users[:500], opts, manualPolicy())
		if err != nil {
			t.Fatal(err)
		}
		oracle := newLiveOracle(users[:500])
		rng := rand.New(rand.NewSource(75))
		feed := users[500:]
		for op := 0; op < 500; op++ {
			if rng.Intn(2) == 0 && len(feed) > 0 {
				u := feed[0]
				feed = feed[1:]
				if err := lv.Insert(u); err != nil {
					t.Fatal(err)
				}
				oracle.byID[u.ID] = u
			} else if len(oracle.byID) > 0 {
				var id trajectory.ID
				for k := range oracle.byID {
					id = k
					break
				}
				if ok, err := lv.Delete(id); err != nil || !ok {
					t.Fatalf("Delete(%d) = %v, %v", id, ok, err)
				}
				delete(oracle.byID, id)
				if ok, err := lv.Delete(id); err != nil || ok {
					t.Fatalf("second Delete(%d) = %v, %v", id, ok, err)
				}
			}
		}

		check := func(stage string) {
			corpus := oracle.corpus()
			fresh, err := Build(corpus, opts)
			if err != nil {
				t.Fatal(err)
			}
			if lv.Len() != len(corpus) {
				t.Fatalf("%s: Len = %d, want %d", stage, lv.Len(), len(corpus))
			}
			wantV, _, err := fresh.ServiceValues(facilities, p, 1)
			if err != nil {
				t.Fatal(err)
			}
			gotV, _, err := lv.ServiceValues(facilities, p, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantV {
				if gotV[i] != wantV[i] {
					t.Fatalf("%s (shards=%d): ServiceValues[%d] = %v, fresh = %v",
						stage, shards, i, gotV[i], wantV[i])
				}
			}
			wantTop, _, err := fresh.TopK(facilities, 8, p)
			if err != nil {
				t.Fatal(err)
			}
			gotTop, _, err := lv.TopK(facilities, 8, p)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantTop {
				if gotTop[i].Facility.ID != wantTop[i].Facility.ID || gotTop[i].Service != wantTop[i].Service {
					t.Fatalf("%s (shards=%d): TopK[%d] = (%d, %v), fresh = (%d, %v)", stage, shards, i,
						gotTop[i].Facility.ID, gotTop[i].Service, wantTop[i].Facility.ID, wantTop[i].Service)
				}
			}
			gotPar, _, err := lv.TopKParallel(facilities, 8, p, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gotTop {
				if gotPar[i] != gotTop[i] {
					t.Fatalf("%s: TopKParallel[%d] differs from TopK", stage, i)
				}
			}
		}
		check("pre-compact")
		if err := lv.Compact(); err != nil {
			t.Fatal(err)
		}
		for i, st := range lv.Stats() {
			if st.DeltaLen != 0 || st.Tombstones != 0 {
				t.Fatalf("shard %d after Compact: delta=%d tombstones=%d", i, st.DeltaLen, st.Tombstones)
			}
		}
		check("post-compact")
	}
}

// TestLiveAutoCompaction: crossing the MaxDelta threshold triggers a
// background rebuild that folds the overlay without being asked.
func TestLiveAutoCompaction(t *testing.T) {
	users := makeUsers(600, 2, 76)
	opts := Options{Shards: 1, Partitioner: Hash{}, Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}
	lv, err := BuildLive(users[:200], opts, Policy{MaxDelta: 32, MaxDeltaFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[200:] {
		if err := lv.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := lv.Stats()[0]
		if st.Compactions >= 1 && st.DeltaLen < 32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background compaction: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := lv.Err(); err != nil {
		t.Fatalf("background rebuild error: %v", err)
	}
	if lv.Len() != 600 {
		t.Fatalf("Len = %d, want 600", lv.Len())
	}
}

// TestLiveImmutableInsert: a Live converted from a frozen index of
// unknown partitioner kind serves queries and Deletes but reports
// ErrImmutable for Insert.
func TestLiveImmutableInsert(t *testing.T) {
	users := makeUsers(300, 2, 77)
	s, err := Build(users, Options{Shards: 2, Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	fz.kind = "custom-partitioner-this-build-does-not-know"
	lv, err := fz.Live(manualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	extra := makeUsers(301, 2, 78)[300]
	if err := lv.Insert(extra); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Insert = %v, want ErrImmutable", err)
	}
	if ok, err := lv.Delete(users[0].ID); err != nil || !ok {
		t.Fatalf("Delete on immutable-insert index = %v, %v", ok, err)
	}
	if lv.Len() != 299 {
		t.Fatalf("Len = %d, want 299", lv.Len())
	}

	// The restored-Sharded path reports the same typed error.
	s2, err := FromPartition([][]*trajectory.Trajectory{users[:150], users[150:]}, Options{Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Insert(extra); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Sharded.Insert = %v, want ErrImmutable", err)
	}
}

// TestLiveDeletesDuringCompact races deletions against a synchronous
// Compact, then verifies the final corpus — the pending-tombstone merge
// at swap time must not resurrect trajectories that were deleted while
// they were being folded into the new base.
func TestLiveDeletesDuringCompact(t *testing.T) {
	rounds := stressN(6)
	users := makeUsers(400, 2, 79)
	facilities := makeFacilities(8, 8, 80)
	p := Params{Scenario: service.Binary, Psi: 40}
	opts := Options{Shards: 1, Partitioner: Hash{}, Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}
	for round := 0; round < rounds; round++ {
		lv, err := BuildLive(users[:200], opts, manualPolicy())
		if err != nil {
			t.Fatal(err)
		}
		// Fill the overlay so the compaction has plenty to bake.
		for _, u := range users[200:] {
			if err := lv.Insert(u); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(81 + round)))
		victims := map[trajectory.ID]struct{}{}
		for len(victims) < 100 {
			victims[trajectory.ID(rng.Intn(400))] = struct{}{}
		}
		done := make(chan error, 1)
		go func() { done <- lv.Compact() }()
		for id := range victims {
			if ok, err := lv.Delete(id); err != nil || !ok {
				t.Errorf("round %d: Delete(%d) = %v, %v", round, id, ok, err)
			}
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		var survivors []*trajectory.Trajectory
		for _, u := range users {
			if _, gone := victims[u.ID]; !gone {
				survivors = append(survivors, u)
			}
		}
		if lv.Len() != len(survivors) {
			t.Fatalf("round %d: Len = %d, want %d", round, lv.Len(), len(survivors))
		}
		// A second compact folds any tombstones the deletes left behind;
		// answers must match a fresh build both before and after.
		fresh, err := Build(survivors, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, stage := range []string{"post-race", "post-fold"} {
			for _, f := range facilities {
				want, _, err := fresh.ServiceValue(f, p)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := lv.ServiceValue(f, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("round %d %s: ServiceValue(%d) = %v, fresh = %v", round, stage, f.ID, got, want)
				}
			}
			if stage == "post-race" {
				if err := lv.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestLiveCrossShardIDReuseConsistentCapture: deleting an ID in one
// shard and re-inserting it at a location a geometric partitioner
// routes to another shard must never let a capture observe the ID
// alive in two shards — Epochs() is a write-consistent cut, so every
// capture stays restorable (cross-shard ID uniqueness) and queries
// never double-count.
func TestLiveCrossShardIDReuseConsistentCapture(t *testing.T) {
	users := makeUsers(200, 2, 90)
	lv, err := BuildLive(users, Options{Shards: 2, Partitioner: Grid{}, Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}, manualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Two versions of one ID at opposite corners, so Grid routes them
	// to different shards.
	const reused = trajectory.ID(150)
	corners := []*trajectory.Trajectory{
		trajectory.MustNew(reused, []geo.Point{geo.Pt(10, 10), geo.Pt(20, 20)}),
		trajectory.MustNew(reused, []geo.Point{geo.Pt(990, 990), geo.Pt(980, 980)}),
	}
	if s0, s1 := (Grid{}).Assign(corners[0], lv.Bounds(), 2), (Grid{}).Assign(corners[1], lv.Bounds(), 2); s0 == s1 {
		t.Fatalf("test premise broken: both corners route to shard %d", s0)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < stressN(200); i++ {
			lv.Delete(reused)
			if err := lv.Insert(corners[i%2]); err != nil {
				t.Errorf("reinsert %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 16 || !done.Load(); i++ {
				eps := lv.Epochs()
				alive := 0
				for _, ep := range eps {
					if ep.Has(reused) {
						alive++
					}
				}
				if alive > 1 {
					t.Errorf("reader %d: id %d alive in %d shards of one capture", r, reused, alive)
					return
				}
				// Every capture must pass the restore-time uniqueness
				// check — a torn cut would fail LiveFromEpochs exactly
				// like an unrestorable TQLIVE01 stream.
				if _, err := LiveFromEpochs(eps, Grid{}, manualPolicy()); err != nil {
					t.Errorf("reader %d: capture not restorable: %v", r, err)
					return
				}
				readerPause()
			}
		}(r)
	}
	wg.Wait()
}

// objective computes one trajectory's Binary objective for a facility —
// the incremental unit of the churn oracle below.
func objective(u *trajectory.Trajectory, f *trajectory.Facility, psi float64) float64 {
	return query.ObjectiveFromMask(tqtree.TwoPoint, service.Binary, u, service.MaskOf(u, f.Stops, psi))
}

// TestLiveConcurrentChurnPrefixConsistent is the concurrent-swap
// acceptance property test: reader goroutines hammer ServiceValue and
// TopK while a writer applies a scripted insert/delete history and
// background rebuilds swap epochs underneath them. Every answer must be
// byte-identical to a from-scratch build of some prefix of the write
// history (Binary scenario, so values are integral): the per-facility
// value after every prefix is precomputed incrementally, and each read
// must land in that set — no torn reads, no half-applied writes, and no
// lock is held for the duration of a rebuild (readers keep completing
// while rebuilds run; the test would deadlock or time out otherwise).
func TestLiveConcurrentChurnPrefixConsistent(t *testing.T) {
	nOps := stressN(400)
	users := makeUsers(1400, 2, 82)
	facilities := makeFacilities(6, 8, 83)
	const psi = 40.0
	p := Params{Scenario: service.Binary, Psi: psi}

	base := users[:600]
	feed := users[600:]
	opts := Options{Shards: 1, Partitioner: Hash{}, Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}
	// Aggressive thresholds so several background swaps land mid-run.
	lv, err := BuildLive(base, opts, Policy{MaxDelta: 48, MaxDeltaFraction: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Script the write history and precompute every prefix's per-facility
	// value and top-k answer.
	type op struct {
		insert *trajectory.Trajectory
		delete trajectory.ID
	}
	rng := rand.New(rand.NewSource(84))
	live := map[trajectory.ID]*trajectory.Trajectory{}
	liveIDs := []trajectory.ID{}
	for _, u := range base {
		live[u.ID] = u
		liveIDs = append(liveIDs, u.ID)
	}
	ops := make([]op, 0, nOps)
	for len(ops) < nOps {
		if rng.Intn(5) != 0 && len(feed) > 0 { // 80% inserts
			u := feed[0]
			feed = feed[1:]
			ops = append(ops, op{insert: u})
			live[u.ID] = u
			liveIDs = append(liveIDs, u.ID)
		} else if len(liveIDs) > 0 {
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			if _, ok := live[id]; !ok {
				continue
			}
			ops = append(ops, op{delete: id, insert: nil})
			delete(live, id)
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
	}

	vals := make([][]float64, len(facilities)) // vals[f][prefix]
	legalVals := make([]map[float64]struct{}, len(facilities))
	for fi, f := range facilities {
		vals[fi] = make([]float64, nOps+1)
		var v float64
		for _, u := range base {
			v += objective(u, f, psi)
		}
		vals[fi][0] = v
		legalVals[fi] = map[float64]struct{}{v: {}}
		for oi, o := range ops {
			if o.insert != nil {
				v += objective(o.insert, f, psi)
			} else {
				// The scripted history only deletes live IDs, so the
				// deleted trajectory is findable at scripting time.
				v -= objective(opTarget(t, users, o.delete), f, psi)
			}
			vals[fi][oi+1] = v
			legalVals[fi][v] = struct{}{}
		}
	}
	legalTop := map[string]struct{}{}
	for v := 0; v <= nOps; v++ {
		legalTop[topKSignature(facilities, vals, v, 4)] = struct{}{}
	}

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i, o := range ops {
			if o.insert != nil {
				if err := lv.Insert(o.insert); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			} else if ok, err := lv.Delete(o.delete); err != nil || !ok {
				t.Errorf("Delete(%d) = %v, %v", o.delete, ok, err)
				return
			}
			if i%8 == 7 {
				// Stretch the write history so background rebuilds and
				// reader traffic genuinely overlap it.
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	readers := 4
	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(85 + r)))
			for i := 0; i < 32 || !writerDone.Load(); i++ {
				fi := rng.Intn(len(facilities))
				switch rng.Intn(3) {
				case 0:
					got, _, err := lv.ServiceValue(facilities[fi], p)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
					if _, ok := legalVals[fi][got]; !ok {
						t.Errorf("reader %d: ServiceValue(%d) = %v matches no prefix", r, facilities[fi].ID, got)
						return
					}
				case 1:
					top, _, err := lv.TopK(facilities, 4, p)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
					if _, ok := legalTop[resultSignature(top)]; !ok {
						t.Errorf("reader %d: TopK answer %q matches no prefix", r, resultSignature(top))
						return
					}
				default:
					top, _, err := lv.TopKParallel(facilities, 4, p, 2)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
					if _, ok := legalTop[resultSignature(top)]; !ok {
						t.Errorf("reader %d: TopKParallel answer %q matches no prefix", r, resultSignature(top))
						return
					}
				}
				reads.Add(1)
				readerPause()
			}
		}(r)
	}
	wg.Wait()
	if err := lv.Err(); err != nil {
		t.Fatalf("background rebuild error: %v", err)
	}
	// The run must have actually exercised swaps and readers. The last
	// queued rebuild may still be completing asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for lv.Stats()[0].Compactions == 0 {
		if time.Now().After(deadline) {
			t.Error("no background swap happened during the churn run")
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if reads.Load() == 0 {
		t.Error("no reads completed during the churn run")
	}
	// Final state must equal the full history's corpus exactly.
	got, _, err := lv.ServiceValue(facilities[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if want := vals[0][nOps]; got != want {
		t.Fatalf("final ServiceValue = %v, want %v", got, want)
	}
}

// opTarget resolves a scripted delete's trajectory by ID.
func opTarget(t *testing.T, all []*trajectory.Trajectory, id trajectory.ID) *trajectory.Trajectory {
	t.Helper()
	for _, u := range all {
		if u.ID == id {
			return u
		}
	}
	t.Fatalf("scripted delete of unknown id %d", id)
	return nil
}

// topKSignature computes the expected top-k answer for prefix v with the
// engine's deterministic tie-break (value descending, ID ascending).
func topKSignature(facilities []*trajectory.Facility, vals [][]float64, v, k int) string {
	type fv struct {
		id  trajectory.ID
		val float64
	}
	row := make([]fv, len(facilities))
	for i, f := range facilities {
		row[i] = fv{f.ID, vals[i][v]}
	}
	for i := 1; i < len(row); i++ {
		for j := i; j > 0; j-- {
			a, b := row[j-1], row[j]
			if b.val > a.val || (b.val == a.val && b.id < a.id) {
				row[j-1], row[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(row) {
		k = len(row)
	}
	sig := ""
	for _, r := range row[:k] {
		sig += fmt.Sprintf("%d:%v,", r.id, r.val)
	}
	return sig
}

func resultSignature(res []query.Result) string {
	sig := ""
	for _, r := range res {
		sig += fmt.Sprintf("%d:%v,", r.Facility.ID, r.Service)
	}
	return sig
}

// TestLiveConcurrentChurnMultiShard extends the prefix-consistency
// check to several shards: each shard's epoch is some prefix of that
// shard's own write history, so a ServiceValue must equal a sum of one
// legal per-shard value per shard.
func TestLiveConcurrentChurnMultiShard(t *testing.T) {
	nOps := stressN(200)
	users := makeUsers(400+nOps, 2, 86)
	facilities := makeFacilities(4, 8, 87)
	const psi = 40.0
	p := Params{Scenario: service.Binary, Psi: psi}
	const shards = 2
	opts := Options{Shards: shards, Partitioner: Hash{}, Tree: tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: 8, Bounds: testBounds,
	}}
	base := users[:400]
	feed := users[400:]
	lv, err := BuildLive(base, opts, Policy{MaxDelta: 32, MaxDeltaFraction: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Script inserts only (deletes route by lookup, which would need the
	// target's shard too — inserts exercise the same swap machinery) and
	// track per-shard prefix value sets.
	bounds := lv.Bounds()
	shardOf := func(u *trajectory.Trajectory) int {
		return clampShard(Hash{}.Assign(u, bounds, shards), shards)
	}
	perShard := make([][]map[float64]struct{}, len(facilities))
	cur := make([][]float64, len(facilities))
	for fi, f := range facilities {
		perShard[fi] = make([]map[float64]struct{}, shards)
		cur[fi] = make([]float64, shards)
		for si := 0; si < shards; si++ {
			perShard[fi][si] = map[float64]struct{}{}
		}
		for _, u := range base {
			cur[fi][shardOf(u)] += objective(u, f, psi)
		}
		for si := 0; si < shards; si++ {
			perShard[fi][si][cur[fi][si]] = struct{}{}
		}
	}
	ops := feed[:nOps]
	for _, u := range ops {
		for fi, f := range facilities {
			si := shardOf(u)
			cur[fi][si] += objective(u, f, psi)
			perShard[fi][si][cur[fi][si]] = struct{}{}
		}
	}
	legal := make([]map[float64]struct{}, len(facilities))
	for fi := range facilities {
		legal[fi] = map[float64]struct{}{}
		for a := range perShard[fi][0] {
			for b := range perShard[fi][1] {
				legal[fi][a+b] = struct{}{}
			}
		}
	}

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for _, u := range ops {
			if err := lv.Insert(u); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(88 + r)))
			for !writerDone.Load() {
				fi := rng.Intn(len(facilities))
				got, _, err := lv.ServiceValue(facilities[fi], p)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if _, ok := legal[fi][got]; !ok {
					t.Errorf("reader %d: ServiceValue(%d) = %v matches no per-shard prefix sum",
						r, facilities[fi].ID, got)
					return
				}
				readerPause()
			}
		}(r)
	}
	wg.Wait()
	if err := lv.Err(); err != nil {
		t.Fatalf("background rebuild error: %v", err)
	}
	// Final value exact.
	for fi, f := range facilities {
		got, _, err := lv.ServiceValue(f, p)
		if err != nil {
			t.Fatal(err)
		}
		want := cur[fi][0] + cur[fi][1]
		if got != want {
			t.Fatalf("final ServiceValue(%d) = %v, want %v", f.ID, got, want)
		}
	}
}
