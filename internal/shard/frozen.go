package shard

import (
	"context"
	"fmt"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Frozen is a set of frozen columnar TQ-trees jointly indexing one
// trajectory corpus — the read-optimized serving form of Sharded. It
// answers the same scatter-gather queries through the shared merge in
// topk.go, is immutable (no Insert), and each shard serializes nearly
// verbatim into the TQSHRD02 snapshot container.
type Frozen struct {
	bounds  geo.Rect
	kind    string
	engines []*query.FrozenEngine
}

// Freeze produces the frozen serving form of the sharded index: every
// shard's pointer tree is frozen into its columnar layout. The source
// index is only read and remains fully usable; dropping it afterwards
// releases all pointer-tree storage.
func (s *Sharded) Freeze() (*Frozen, error) {
	f := &Frozen{
		bounds:  s.bounds,
		kind:    s.PartitionerKind(),
		engines: make([]*query.FrozenEngine, len(s.shards)),
	}
	for i, sh := range s.shards {
		fz, err := tqtree.Freeze(sh.engine.Tree())
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		f.engines[i] = query.NewFrozenEngine(fz, sh.set)
	}
	return f, nil
}

// FrozenFromEngines assembles a Frozen from per-shard frozen engines —
// the snapshot restore path. kind records the partitioner the partition
// was produced with ("" when unknown); bounds is the shared root space.
func FrozenFromEngines(engines []*query.FrozenEngine, bounds geo.Rect, kind string) (*Frozen, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: no frozen shards")
	}
	// IDs must be unique across the whole corpus, exactly as the mutable
	// build checks — a cross-shard duplicate would be double-counted.
	total := 0
	for _, e := range engines {
		total += e.Users().Len()
	}
	seen := make(map[trajectory.ID]struct{}, total)
	for i, e := range engines {
		for _, u := range e.Users().All {
			if _, dup := seen[u.ID]; dup {
				return nil, fmt.Errorf("shard: duplicate id %d across frozen shards (shard %d)", u.ID, i)
			}
			seen[u.ID] = struct{}{}
		}
	}
	return &Frozen{bounds: bounds, kind: kind, engines: engines}, nil
}

// NumShards returns the shard count.
func (f *Frozen) NumShards() int { return len(f.engines) }

// Len returns the total number of indexed trajectories.
func (f *Frozen) Len() int {
	n := 0
	for _, e := range f.engines {
		n += e.Users().Len()
	}
	return n
}

// Sizes returns the number of trajectories in each shard.
func (f *Frozen) Sizes() []int {
	out := make([]int, len(f.engines))
	for i, e := range f.engines {
		out[i] = e.Users().Len()
	}
	return out
}

// Bounds returns the shared root space of every shard's index.
func (f *Frozen) Bounds() geo.Rect { return f.bounds }

// PartitionerKind returns the kind of the partitioner the shards were
// produced with, or "" when unknown.
func (f *Frozen) PartitionerKind() string { return f.kind }

// Engine returns the frozen query engine of shard i.
func (f *Frozen) Engine(i int) *query.FrozenEngine { return f.engines[i] }

// Partition returns each shard's trajectories in the frozen trajectory-
// table order — the payload the TQSHRD02 snapshot records.
func (f *Frozen) Partition() [][]*trajectory.Trajectory {
	out := make([][]*trajectory.Trajectory, len(f.engines))
	for i, e := range f.engines {
		out[i] = e.Frozen().Trajectories()
	}
	return out
}

// validate checks the query parameters against every shard's index.
func (f *Frozen) validate(p query.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, e := range f.engines {
		if err := e.Frozen().ValidateScenario(p.Scenario); err != nil {
			return err
		}
	}
	return nil
}

// ServiceValue computes SO(U, f) as the sum of per-shard service values,
// accumulated in shard order so the answer is deterministic.
func (f *Frozen) ServiceValue(fac *trajectory.Facility, p Params) (float64, query.Metrics, error) {
	var m query.Metrics
	var so float64
	for _, e := range f.engines {
		v, sm, err := e.ServiceValue(fac, p)
		if err != nil {
			return 0, m, err
		}
		so += v
		m.Add(sm)
	}
	return so, m, nil
}

// ServiceValues computes the exact service value of every facility by
// scattering the batch to every shard and summing per-shard answers in
// shard order; the output is indexed like facilities and deterministic.
func (f *Frozen) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, query.Metrics, error) {
	return f.ServiceValuesCtx(nil, facilities, p, workers)
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation: every
// per-shard batch polls ctx between facilities, returning ctx.Err()
// instead of an answer once the context is done.
func (f *Frozen) ServiceValuesCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers int) ([]float64, query.Metrics, error) {
	var m query.Metrics
	out := make([]float64, len(facilities))
	for _, e := range f.engines {
		vs, sm, err := e.ServiceValuesCtx(ctx, facilities, p, workers)
		if err != nil {
			return nil, m, err
		}
		for i, v := range vs {
			out[i] += v
		}
		m.Add(sm)
	}
	return out, m, nil
}

// numShards implements explorerSeeder.
func (f *Frozen) numShards() int { return len(f.engines) }

// newExploration implements explorerSeeder over the frozen indexes.
func (f *Frozen) newExploration(i int, fac *trajectory.Facility, p Params) (query.Exploration, error) {
	return f.engines[i].NewExplorer(fac, p)
}

// TopK answers kMaxRRST over all frozen shards by scatter-gather, best
// first — the same merge as Sharded.TopK over the columnar layout.
func (f *Frozen) TopK(facilities []*trajectory.Facility, k int, p Params) ([]query.Result, query.Metrics, error) {
	return f.TopKCtx(nil, facilities, k, p)
}

// TopKCtx is TopK with cooperative cancellation: the scatter-gather
// merge polls ctx between facility relaxations and returns ctx.Err()
// instead of an answer once the context is done.
func (f *Frozen) TopKCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params) ([]query.Result, query.Metrics, error) {
	var m query.Metrics
	if err := f.validate(p); err != nil {
		return nil, m, err
	}
	h, k, err := seedHeap(f, facilities, k, p)
	if err != nil || k == 0 {
		return nil, m, err
	}
	res, err := mergeTopK(ctx, h, k, &m)
	return res, m, err
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK. workers is
// normalized by query.ResolveWorkers; a single-worker pool falls back to
// the serial TopK.
func (f *Frozen) TopKParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]query.Result, query.Metrics, error) {
	return f.TopKParallelCtx(nil, facilities, k, p, workers)
}

// TopKParallelCtx is TopKParallel with cooperative cancellation, checked
// between relaxation rounds.
func (f *Frozen) TopKParallelCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params, workers int) ([]query.Result, query.Metrics, error) {
	workers = query.ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return f.TopKCtx(ctx, facilities, k, p)
	}
	var m query.Metrics
	if err := f.validate(p); err != nil {
		return nil, m, err
	}
	h, k, err := seedHeap(f, facilities, k, p)
	if err != nil || k == 0 {
		return nil, m, err
	}
	res, err := mergeTopKParallel(ctx, h, k, workers, &m)
	return res, m, err
}
