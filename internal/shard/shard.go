// Package shard partitions a trajectory corpus across several TQ-trees
// and serves kMaxRRST queries by scatter-gather: a query fans out to
// every shard, per-shard best-first explorations stream candidates into a
// global k-heap, and each shard's upper bounds prune exploration the
// global kth answer makes irrelevant — the paper's branch-and-bound
// lifted one level up.
//
// Sharding is what keeps datasets larger than one tree's comfortable
// in-memory size — and rebuilds — from being monolithic: shards build in
// parallel, rebuild independently, and answer concurrently. Because user
// trajectories are disjoint across shards, a facility's service value is
// the sum of its per-shard service values, so the merged answers match
// the single-tree path (exactly for integral scenarios such as Binary;
// up to float summation order otherwise).
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Options configures Build.
type Options struct {
	// Shards is the number of TQ-trees to partition across. 0 means 1.
	Shards int
	// Partitioner assigns trajectories to shards. nil means Hash{}.
	Partitioner Partitioner
	// Tree configures every shard's TQ-tree. Tree.Bounds is extended to
	// the union of the data so all shards share one root space;
	// Tree.Parallelism is the total goroutine budget across all shard
	// builds (0 means GOMAXPROCS).
	Tree tqtree.Options
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Partitioner == nil {
		o.Partitioner = Hash{}
	}
	return o
}

// oneShard is one partition: its trajectory set and the engine over its
// TQ-tree.
type oneShard struct {
	set    *trajectory.Set
	engine *query.Engine
}

// Sharded is a set of TQ-trees jointly indexing one trajectory corpus,
// answering the same queries as a single tree by scatter-gather.
type Sharded struct {
	opts   Options
	bounds geo.Rect
	shards []oneShard
}

// Build partitions users with opts.Partitioner and builds one TQ-tree
// per shard, constructing shards in parallel within the
// opts.Tree.Parallelism goroutine budget. Duplicate IDs are rejected
// across the whole corpus, exactly as a single-tree build would.
func Build(users []*trajectory.Trajectory, opts Options) (*Sharded, error) {
	opts = opts.withDefaults()
	seen := make(map[trajectory.ID]struct{}, len(users))
	for _, u := range users {
		if _, dup := seen[u.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate id %d", u.ID)
		}
		seen[u.ID] = struct{}{}
	}
	bounds := opts.Tree.Bounds
	for _, u := range users {
		bounds = bounds.ExtendRect(u.MBR())
	}
	parts := make([][]*trajectory.Trajectory, opts.Shards)
	for _, u := range users {
		i := clampShard(opts.Partitioner.Assign(u, bounds, opts.Shards), opts.Shards)
		parts[i] = append(parts[i], u)
	}
	return fromParts(parts, bounds, opts)
}

// FromPartition builds a Sharded from an existing per-shard partition —
// the snapshot restore path, which must reproduce the recorded partition
// without re-running the partitioner. Unlike Build, a nil
// opts.Partitioner is kept nil (the partition may have been produced by
// a partitioner this build does not know); such an index serves queries
// but rejects Inserts.
func FromPartition(parts [][]*trajectory.Trajectory, opts Options) (*Sharded, error) {
	opts.Shards = len(parts)
	if opts.Shards == 0 {
		return nil, fmt.Errorf("shard: empty partition")
	}
	// IDs must be unique across the whole corpus, not just within each
	// part — per-shard sets only catch intra-shard duplicates, and a
	// cross-shard duplicate would be double-counted by every query.
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	seen := make(map[trajectory.ID]struct{}, total)
	bounds := opts.Tree.Bounds
	for _, part := range parts {
		for _, u := range part {
			if _, dup := seen[u.ID]; dup {
				return nil, fmt.Errorf("shard: duplicate id %d across shards", u.ID)
			}
			seen[u.ID] = struct{}{}
			bounds = bounds.ExtendRect(u.MBR())
		}
	}
	return fromParts(parts, bounds, opts)
}

// fromParts builds every shard's set and tree. Shards build concurrently
// — each over a disjoint trajectory slice — with the total goroutine
// budget split between cross-shard fan-out and each tree's own parallel
// build, so Tree.Parallelism bounds live goroutines whichever way the
// shards divide the work.
func fromParts(parts [][]*trajectory.Trajectory, bounds geo.Rect, opts Options) (*Sharded, error) {
	budget := opts.Tree.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	across := budget
	if across > len(parts) {
		across = len(parts)
	}
	perTree := budget / across
	if perTree < 1 {
		perTree = 1
	}
	treeOpts := opts.Tree
	treeOpts.Bounds = bounds
	treeOpts.Parallelism = perTree

	s := &Sharded{opts: opts, bounds: bounds, shards: make([]oneShard, len(parts))}
	sem := make(chan struct{}, across)
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, part []*trajectory.Trajectory) {
			defer func() { <-sem; wg.Done() }()
			set, err := trajectory.NewSet(part)
			if err != nil {
				errs[i] = err
				return
			}
			tree, err := tqtree.Build(part, treeOpts)
			if err != nil {
				errs[i] = err
				return
			}
			s.shards[i] = oneShard{set: set, engine: query.NewEngine(tree, set)}
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func clampShard(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Len returns the total number of indexed trajectories.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.set.Len()
	}
	return n
}

// Sizes returns the number of trajectories in each shard.
func (s *Sharded) Sizes() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.set.Len()
	}
	return out
}

// Bounds returns the shared root space of every shard's tree.
func (s *Sharded) Bounds() geo.Rect { return s.bounds }

// Engine returns the query engine of shard i — for diagnostics and for
// per-shard maintenance (the rebuild-and-swap path operates one shard at
// a time).
func (s *Sharded) Engine(i int) *query.Engine { return s.shards[i].engine }

// PartitionerKind returns the configured partitioner's kind, or "" when
// none survives (a snapshot restored from an unknown custom kind).
func (s *Sharded) PartitionerKind() string {
	if s.opts.Partitioner == nil {
		return ""
	}
	return s.opts.Partitioner.Kind()
}

// Partition returns each shard's trajectories, in shard order — the
// payload a snapshot records.
func (s *Sharded) Partition() [][]*trajectory.Trajectory {
	out := make([][]*trajectory.Trajectory, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.set.All
	}
	return out
}

// ByID returns the trajectory with the given id from whichever shard
// holds it, or nil.
func (s *Sharded) ByID(id trajectory.ID) *trajectory.Trajectory {
	for _, sh := range s.shards {
		if t := sh.set.ByID(id); t != nil {
			return t
		}
	}
	return nil
}

// Insert routes a trajectory to its shard and inserts it there. Like the
// single-tree Insert it is not safe concurrently with queries — but only
// the target shard is touched, so serving systems can quiesce one shard
// at a time. Restored snapshots of unknown partitioner kinds return
// ErrImmutable: the recorded partition could not be extended
// consistently — convert such an index with Live to delete (and, with a
// known partitioner, insert) again.
func (s *Sharded) Insert(u *trajectory.Trajectory) error {
	if s.opts.Partitioner == nil {
		return fmt.Errorf("%w: cannot route insert", ErrImmutable)
	}
	if s.ByID(u.ID) != nil {
		return fmt.Errorf("shard: duplicate id %d", u.ID)
	}
	i := clampShard(s.opts.Partitioner.Assign(u, s.bounds, len(s.shards)), len(s.shards))
	if err := s.shards[i].set.Add(u); err != nil {
		return err
	}
	s.shards[i].engine.Tree().Insert(u)
	return nil
}

// validate checks the query parameters and their compatibility with
// every shard's tree — scenario validity depends on per-shard data (a
// TwoPoint tree over multipoint data answers Binary only), so all shards
// are consulted.
func (s *Sharded) validate(p query.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		if err := sh.engine.Tree().ValidateScenario(p.Scenario); err != nil {
			return err
		}
	}
	return nil
}

// ServiceValue computes SO(U, f) as the sum of per-shard service values,
// accumulated in shard order so the answer is deterministic.
func (s *Sharded) ServiceValue(f *trajectory.Facility, p Params) (float64, query.Metrics, error) {
	var m query.Metrics
	var so float64
	for _, sh := range s.shards {
		v, sm, err := sh.engine.ServiceValue(f, p)
		if err != nil {
			return 0, m, err
		}
		so += v
		m.Add(sm)
	}
	return so, m, nil
}

// ServiceValues computes the exact service value of every facility by
// scattering the batch to every shard and summing per-shard answers in
// shard order. Each shard's batch runs on the shared worker budget; the
// output is indexed like facilities and deterministic.
func (s *Sharded) ServiceValues(facilities []*trajectory.Facility, p Params, workers int) ([]float64, query.Metrics, error) {
	return s.ServiceValuesCtx(nil, facilities, p, workers)
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation: every
// per-shard batch polls ctx between facilities, returning ctx.Err()
// instead of an answer once the context is done.
func (s *Sharded) ServiceValuesCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers int) ([]float64, query.Metrics, error) {
	var m query.Metrics
	out := make([]float64, len(facilities))
	for _, sh := range s.shards {
		vs, sm, err := sh.engine.ServiceValuesCtx(ctx, facilities, p, workers)
		if err != nil {
			return nil, m, err
		}
		for i, v := range vs {
			out[i] += v
		}
		m.Add(sm)
	}
	return out, m, nil
}

// Params re-exports the query parameter bundle for shard callers.
type Params = query.Params
