package shard

import (
	"math"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Partitioner assigns each user trajectory to one of n shards. An
// assignment must be deterministic — Build and Insert both consult it,
// and snapshots record only which shard each trajectory landed in, so a
// partitioner never needs to be re-run to restore an index.
type Partitioner interface {
	// Assign returns the shard in [0, n) for t. bounds is the union of
	// every indexed trajectory's MBR (plus any configured root space),
	// for partitioners that cut geographically.
	Assign(t *trajectory.Trajectory, bounds geo.Rect, n int) int
	// Kind is a short stable identifier recorded in snapshot headers
	// ("hash", "grid", ...).
	Kind() string
}

// Hash partitions by a hash of the trajectory ID — the user-hash
// strategy: shards are balanced regardless of geography, and every shard
// sees the whole city, so per-shard query fan-out is uniform.
type Hash struct{}

// Assign implements Partitioner with FNV-1a over the ID's bytes.
func (Hash) Assign(t *trajectory.Trajectory, _ geo.Rect, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	id := uint32(t.ID)
	for i := 0; i < 4; i++ {
		h ^= id >> (8 * i) & 0xff
		h *= prime32
	}
	return int(h % uint32(n))
}

// Kind implements Partitioner.
func (Hash) Kind() string { return "hash" }

// Grid partitions by geographic cell: the data bounds are cut into a
// ceil(sqrt(n)) × ceil(sqrt(n)) grid and a trajectory goes to the shard
// of its source point's cell (row-major, modulo n). Queries with small
// EMBRs then touch few shards with meaningful upper bounds in the rest,
// which the scatter-gather TopK prunes; the price is load skew when the
// data is geographically concentrated.
type Grid struct{}

// Assign implements Partitioner.
func (Grid) Assign(t *trajectory.Trajectory, bounds geo.Rect, n int) int {
	g := int(math.Ceil(math.Sqrt(float64(n))))
	if g < 1 {
		g = 1
	}
	cx := cellOf(t.Source().X, bounds.MinX, bounds.MaxX, g)
	cy := cellOf(t.Source().Y, bounds.MinY, bounds.MaxY, g)
	return (cy*g + cx) % n
}

// Kind implements Partitioner.
func (Grid) Kind() string { return "grid" }

// cellOf maps v in [lo, hi] to a cell in [0, g): degenerate or inverted
// ranges collapse to cell 0, and out-of-range points clamp to the edge
// cells so late Inserts outside the original bounds still land somewhere.
func cellOf(v, lo, hi float64, g int) int {
	if hi <= lo {
		return 0
	}
	c := int(float64(g) * (v - lo) / (hi - lo))
	if c < 0 {
		return 0
	}
	if c >= g {
		c = g - 1
	}
	return c
}

// PartitionerOf maps a snapshot-recorded kind back to a built-in
// partitioner; ok is false for kinds this build does not know (custom
// partitioners), in which case the restored index serves queries but
// rejects Inserts.
func PartitionerOf(kind string) (Partitioner, bool) {
	switch kind {
	case "hash":
		return Hash{}, true
	case "grid":
		return Grid{}, true
	}
	return nil, false
}
