package shard

import (
	"container/heap"
	"context"
	"sync"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// This file implements the scatter-gather kMaxRRST merge: one best-first
// exploration per (facility, shard), scheduled by a single global k-heap
// keyed on the facility's summed upper bound. The search is the paper's
// branch-and-bound lifted one level up:
//
//   - A facility's upper bound is the sum of its per-shard upper bounds
//     (exact-so-far + optimistic remainder). Shards partition the users,
//     so the sum bounds the true global service value.
//   - Popping the heap picks the facility that could still win; within
//     it, only the shard with the largest optimistic remainder is
//     relaxed. Shards whose remainder has reached zero — including
//     shards the facility's EMBR barely touches, whose root `sub` bounds
//     start near zero — are never explored again: the shard-prune.
//   - A facility is emitted only when every shard's remainder is zero,
//     so its reported value is exact, and the emission order (value
//     descending, ID ascending on ties) matches the single-tree TopK.
//
// The merge is written over query.Exploration, so the same code serves
// the mutable pointer shards (Sharded) and the frozen columnar shards
// (Frozen) — only the seeding differs.

// facState is one facility's scatter state: its per-shard explorations
// and the cached bound sums the heap orders by.
type facState struct {
	fac   *trajectory.Facility
	exps  []query.Exploration
	exact float64 // Σ per-shard Exact
	opt   float64 // Σ per-shard Optimistic
	index int     // heap bookkeeping
}

func (f *facState) upper() float64 { return f.exact + f.opt }

// relax advances the shard exploration with the largest optimistic
// remainder by one round and refreshes the cached sums.
func (f *facState) relax(m *query.Metrics) {
	best := -1
	for i, x := range f.exps {
		if x.Done() {
			continue
		}
		if best < 0 || x.Optimistic() > f.exps[best].Optimistic() {
			best = i
		}
	}
	if best < 0 {
		return
	}
	f.exps[best].Relax(m)
	f.refresh()
}

func (f *facState) refresh() {
	f.exact, f.opt = 0, 0
	for _, x := range f.exps {
		f.exact += x.Exact()
		f.opt += x.Optimistic()
	}
}

func (f *facState) done() bool { return f.opt == 0 }

// facHeap is a max-heap on upper() with facility ID as the deterministic
// tie-break — the same ordering as the single-tree state heap.
type facHeap []*facState

func (h facHeap) Len() int { return len(h) }
func (h facHeap) Less(i, j int) bool {
	if h[i].upper() != h[j].upper() {
		return h[i].upper() > h[j].upper()
	}
	return h[i].fac.ID < h[j].fac.ID
}
func (h facHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *facHeap) Push(x any) {
	f := x.(*facState)
	f.index = len(*h)
	*h = append(*h, f)
}
func (h *facHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}

// explorerSeeder seeds one facility's exploration on every shard of an
// index. Shards with an empty tree contribute a zero upper bound and
// start Done, so they cost nothing beyond the seed.
type explorerSeeder interface {
	numShards() int
	newExploration(shard int, f *trajectory.Facility, p Params) (query.Exploration, error)
}

func newFacState(s explorerSeeder, f *trajectory.Facility, p Params) (*facState, error) {
	fs := &facState{fac: f, exps: make([]query.Exploration, 0, s.numShards())}
	for i := 0; i < s.numShards(); i++ {
		x, err := s.newExploration(i, f, p)
		if err != nil {
			return nil, err
		}
		fs.exps = append(fs.exps, x)
	}
	fs.refresh()
	return fs, nil
}

// seedHeap clamps k and seeds the global heap with one facState per
// facility. The returned k is 0 when there is nothing to do. The caller
// must have validated the query against every shard already.
func seedHeap(s explorerSeeder, facilities []*trajectory.Facility, k int, p Params) (*facHeap, int, error) {
	if k <= 0 || len(facilities) == 0 {
		return nil, 0, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	h := make(facHeap, 0, len(facilities))
	for _, f := range facilities {
		fs, err := newFacState(s, f, p)
		if err != nil {
			return nil, 0, err
		}
		h = append(h, fs)
	}
	heap.Init(&h)
	return &h, k, nil
}

// mergeTopK drains the global heap best first, emitting a facility only
// when every shard's optimistic remainder is zero. ctx (nil means
// "never") is polled between relaxations via query.CtxErr; a done
// context aborts the merge with its error and no partial answer.
func mergeTopK(ctx context.Context, h *facHeap, k int, m *query.Metrics) ([]query.Result, error) {
	results := make([]query.Result, 0, k)
	for h.Len() > 0 && len(results) < k {
		if err := query.CtxErr(ctx); err != nil {
			return nil, err
		}
		fs := heap.Pop(h).(*facState)
		if fs.done() {
			results = append(results, query.Result{Facility: fs.fac, Service: fs.exact})
			continue
		}
		fs.relax(m)
		heap.Push(h, fs)
	}
	return results, nil
}

// mergeTopKParallel is mergeTopK with up to `workers` facility
// relaxations run concurrently per round (each relaxation touches only
// that facility's per-shard explorations, and the indexes are immutable
// under queries, so the batch shares no mutable state). Results are
// identical to mergeTopK; the speculative extra relaxations buy
// wall-clock time, exactly as in the single-tree executor.
func mergeTopKParallel(ctx context.Context, h *facHeap, k, workers int, m *query.Metrics) ([]query.Result, error) {
	results := make([]query.Result, 0, k)
	batch := make([]*facState, 0, workers)
	perWorker := make([]query.Metrics, workers)
	for h.Len() > 0 && len(results) < k {
		if err := query.CtxErr(ctx); err != nil {
			for _, wm := range perWorker {
				m.Add(wm)
			}
			return nil, err
		}
		fs := heap.Pop(h).(*facState)
		if fs.done() {
			results = append(results, query.Result{Facility: fs.fac, Service: fs.exact})
			continue
		}
		// Grab more non-final states to relax alongside the top one; a
		// final state stops the grab — it must be re-examined at the top
		// of the heap after the batch reorders, not emitted early.
		batch = append(batch[:0], fs)
		for len(batch) < workers && h.Len() > 0 {
			if (*h)[0].done() {
				break
			}
			batch = append(batch, heap.Pop(h).(*facState))
		}
		if len(batch) == 1 {
			fs.relax(m)
		} else {
			var wg sync.WaitGroup
			for i, bs := range batch {
				wg.Add(1)
				go func(i int, bs *facState) {
					defer wg.Done()
					bs.relax(&perWorker[i])
				}(i, bs)
			}
			wg.Wait()
		}
		for _, bs := range batch {
			heap.Push(h, bs)
		}
	}
	for _, wm := range perWorker {
		m.Add(wm)
	}
	return results, nil
}

// numShards implements explorerSeeder.
func (s *Sharded) numShards() int { return len(s.shards) }

// newExploration implements explorerSeeder over the pointer trees.
func (s *Sharded) newExploration(i int, f *trajectory.Facility, p Params) (query.Exploration, error) {
	return s.shards[i].engine.NewExplorer(f, p)
}

// TopK answers kMaxRRST over the sharded index: the k facilities with
// the highest total service value, best first. Answers match the
// single-tree TopK (exactly for integral scenarios such as Binary; up to
// floating-point summation order otherwise).
func (s *Sharded) TopK(facilities []*trajectory.Facility, k int, p Params) ([]query.Result, query.Metrics, error) {
	return s.TopKCtx(nil, facilities, k, p)
}

// TopKCtx is TopK with cooperative cancellation: the scatter-gather
// merge polls ctx between facility relaxations and returns ctx.Err()
// instead of an answer once the context is done.
func (s *Sharded) TopKCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params) ([]query.Result, query.Metrics, error) {
	var m query.Metrics
	if err := s.validate(p); err != nil {
		return nil, m, err
	}
	h, k, err := seedHeap(s, facilities, k, p)
	if err != nil || k == 0 {
		return nil, m, err
	}
	res, err := mergeTopK(ctx, h, k, &m)
	return res, m, err
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK. workers is
// normalized by query.ResolveWorkers; a single-worker pool falls back to
// the serial TopK.
func (s *Sharded) TopKParallel(facilities []*trajectory.Facility, k int, p Params, workers int) ([]query.Result, query.Metrics, error) {
	return s.TopKParallelCtx(nil, facilities, k, p, workers)
}

// TopKParallelCtx is TopKParallel with cooperative cancellation, checked
// between relaxation rounds.
func (s *Sharded) TopKParallelCtx(ctx context.Context, facilities []*trajectory.Facility, k int, p Params, workers int) ([]query.Result, query.Metrics, error) {
	workers = query.ResolveWorkers(workers, len(facilities))
	if workers <= 1 {
		return s.TopKCtx(ctx, facilities, k, p)
	}
	var m query.Metrics
	if err := s.validate(p); err != nil {
		return nil, m, err
	}
	h, k, err := seedHeap(s, facilities, k, p)
	if err != nil || k == 0 {
		return nil, m, err
	}
	res, err := mergeTopKParallel(ctx, h, k, workers, &m)
	return res, m, err
}
