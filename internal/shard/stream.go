package shard

// Streaming scatter-gather: the sharded batch executors re-cut to
// yield per-facility service values chunk by chunk. Each chunk runs
// the ordinary per-shard batch and sums shard answers in shard order —
// exactly the arithmetic of the batch path, so streamed values are
// bit-identical to ServiceValuesCtx over the same facilities. The live
// variant captures its epoch set ONCE, up front: every chunk of one
// stream answers from the same write-consistent cut, whatever writes
// land while the stream runs.

import (
	"context"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// streamShardedValues is the shared chunk loop: values(chunk) computes
// one chunk's summed shard answer.
func streamShardedValues(facilities []*trajectory.Facility, chunk int, values func(chunk []*trajectory.Facility) ([]float64, error), yield func(start int, vals []float64) error) error {
	if chunk <= 0 {
		chunk = query.DefaultStreamChunk
	}
	for start := 0; start < len(facilities); start += chunk {
		end := start + chunk
		if end > len(facilities) {
			end = len(facilities)
		}
		vals, err := values(facilities[start:end])
		if err != nil {
			return err
		}
		if err := yield(start, vals); err != nil {
			return err
		}
	}
	return nil
}

// ServiceValuesStreamCtx streams SO(U, f) over the frozen shards in
// chunks of the given size (<= 0: query.DefaultStreamChunk), calling
// yield(start, vals) once per chunk in facility order. Values are
// bit-identical to ServiceValuesCtx. A yield error or a done context
// aborts the stream; Metrics accumulate across yielded chunks.
func (f *Frozen) ServiceValuesStreamCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers, chunk int, yield func(start int, vals []float64) error) (query.Metrics, error) {
	var m query.Metrics
	if len(facilities) == 0 {
		// Nothing to stream; still surface parameter validation like the
		// batch path (serviceValuesG validates before the length check).
		for _, e := range f.engines {
			if _, sm, err := e.ServiceValuesCtx(ctx, nil, p, workers); err != nil {
				return m, err
			} else {
				m.Add(sm)
			}
		}
		return m, nil
	}
	err := streamShardedValues(facilities, chunk, func(chunk []*trajectory.Facility) ([]float64, error) {
		out := make([]float64, len(chunk))
		for _, e := range f.engines {
			vs, sm, err := e.ServiceValuesCtx(ctx, chunk, p, workers)
			if err != nil {
				return nil, err
			}
			for i, v := range vs {
				out[i] += v
			}
			m.Add(sm)
		}
		return out, nil
	}, yield)
	return m, err
}

// ServiceValuesStreamCtx streams SO(U, f) over the heap shards; see
// Frozen.ServiceValuesStreamCtx.
func (s *Sharded) ServiceValuesStreamCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers, chunk int, yield func(start int, vals []float64) error) (query.Metrics, error) {
	var m query.Metrics
	if len(facilities) == 0 {
		for _, sh := range s.shards {
			if _, sm, err := sh.engine.ServiceValuesCtx(ctx, nil, p, workers); err != nil {
				return m, err
			} else {
				m.Add(sm)
			}
		}
		return m, nil
	}
	err := streamShardedValues(facilities, chunk, func(chunk []*trajectory.Facility) ([]float64, error) {
		out := make([]float64, len(chunk))
		for _, sh := range s.shards {
			vs, sm, err := sh.engine.ServiceValuesCtx(ctx, chunk, p, workers)
			if err != nil {
				return nil, err
			}
			for i, v := range vs {
				out[i] += v
			}
			m.Add(sm)
		}
		return out, nil
	}, yield)
	return m, err
}

// ServiceValuesStreamCtx streams SO(U, f) over the live shards; see
// Frozen.ServiceValuesStreamCtx. The epoch set is captured once before
// the first chunk, so the whole stream answers from one
// write-consistent cut — a client consuming the stream concurrently
// with writes sees the corpus as of the capture, never a mix.
func (l *Live) ServiceValuesStreamCtx(ctx context.Context, facilities []*trajectory.Facility, p Params, workers, chunk int, yield func(start int, vals []float64) error) (query.Metrics, error) {
	eps := l.Epochs()
	var m query.Metrics
	if len(facilities) == 0 {
		for _, ep := range eps {
			if _, sm, err := ep.ServiceValuesCtx(ctx, nil, p, workers); err != nil {
				return m, err
			} else {
				m.Add(sm)
			}
		}
		return m, nil
	}
	err := streamShardedValues(facilities, chunk, func(chunk []*trajectory.Facility) ([]float64, error) {
		out := make([]float64, len(chunk))
		for _, ep := range eps {
			vs, sm, err := ep.ServiceValuesCtx(ctx, chunk, p, workers)
			if err != nil {
				return nil, err
			}
			for i, v := range vs {
				out[i] += v
			}
			m.Add(sm)
		}
		return out, nil
	}, yield)
	return m, err
}
