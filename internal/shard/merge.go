package shard

// The scatter-gather merge, exported for callers that seed their own
// explorations. internal/dist's query frontend is the motivating one:
// its per-(facility, backend) explorations answer Exact() with an HTTP
// call to a remote tqserve process, and MergeExplorations schedules
// them with exactly the heap the in-process paths use — so the
// shard-prune (never relaxing an exploration whose summed upper bound
// cannot reach the top k) holds across the wire, and the emission
// order (value descending, ID ascending) matches the single-process
// TopK byte for byte.

import (
	"container/heap"
	"context"
	"fmt"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// MergeExplorations runs the kMaxRRST scatter-gather merge over
// pre-seeded explorations: exps[i] holds facility facs[i]'s per-shard
// explorations (every facility must carry the same shard count, in the
// same shard order). The merge relaxes only explorations whose
// facility's summed upper bound can still reach the top k, emits a
// facility once every shard's optimistic remainder is zero, and
// returns the k best (value descending, ID ascending on ties) — the
// same answers as Sharded.TopK when the explorations come from the
// same trees. workers > 1 relaxes up to that many facilities
// concurrently per round (identical answers, as in TopKParallel); ctx
// (nil means "never") cancels between relaxations; m (nil means
// "discard") collects relaxation counters.
func MergeExplorations(ctx context.Context, facs []*trajectory.Facility, exps [][]query.Exploration, k, workers int, m *query.Metrics) ([]query.Result, error) {
	if len(facs) != len(exps) {
		return nil, fmt.Errorf("shard: %d facilities but %d exploration sets", len(facs), len(exps))
	}
	if m == nil {
		m = &query.Metrics{}
	}
	if k <= 0 || len(facs) == 0 {
		return nil, nil
	}
	if k > len(facs) {
		k = len(facs)
	}
	h := make(facHeap, 0, len(facs))
	for i, f := range facs {
		fs := &facState{fac: f, exps: exps[i]}
		fs.refresh()
		h = append(h, fs)
	}
	heap.Init(&h)
	workers = query.ResolveWorkers(workers, len(facs))
	if workers > 1 {
		return mergeTopKParallel(ctx, &h, k, workers, m)
	}
	return mergeTopK(ctx, &h, k, m)
}

// UpperBounds seeds (without relaxing) every facility's exploration on
// every shard of a captured epoch set and returns the summed initial
// upper bounds, indexed like facilities — each a sound overestimate of
// the facility's exact service value over the live corpus. ctx (nil
// means "never") is polled between facilities.
func (l *Live) UpperBounds(ctx context.Context, facilities []*trajectory.Facility, p Params) ([]float64, error) {
	eps := l.Epochs()
	if err := validateEpochs(eps, p); err != nil {
		return nil, err
	}
	out := make([]float64, len(facilities))
	for i, f := range facilities {
		if err := query.CtxErr(ctx); err != nil {
			return nil, err
		}
		for _, ep := range eps {
			ub, err := ep.UpperBound(f, p)
			if err != nil {
				return nil, err
			}
			out[i] += ub
		}
	}
	return out, nil
}
