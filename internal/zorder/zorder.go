// Package zorder implements the Z-order (Morton) space-filling curve in the
// two flavors the TQ-tree needs:
//
//   - Classic 64-bit Morton codes over a fixed 2^31 × 2^31 grid, used to
//     sort points by spatial locality (Encode/Decode/PointCode).
//   - Hierarchical, variable-depth z-ids (ZID) — the "0.3.2"-style quadrant
//     paths from the paper. A ZID names a quadtree cell of any depth; the
//     z-ordering of the paper's z-nodes is exactly the lexicographic order
//     of these digit paths, and cell containment is digit-prefix testing.
//
// Quadrant digits follow the geo package convention (SW=0, SE=1, NW=2,
// NE=3), i.e. digit = (yBit << 1) | xBit, so the curve traces the familiar
// "Z" shape and ZID order agrees with Morton order of the cell corners.
package zorder

import (
	"strconv"
	"strings"

	"github.com/trajcover/trajcover/internal/geo"
)

// MaxDepth is the deepest quadtree level a ZID can address. 31 levels at
// 2 bits per level fill 62 bits, leaving the bottom 2 bits of the packed
// representation unused.
const MaxDepth = 31

// ZID is a hierarchical z-id: a path of quadrant digits from the root of a
// space partition. The zero value is the root cell (the whole space).
//
// Internally the digits are packed left-aligned into bits 63..2 of a
// uint64: digit i (0-based from the root) occupies bits 63-2i .. 62-2i.
// Left-alignment makes lexicographic digit order equal numeric order of
// the packed bits, with ties broken by depth (a prefix sorts first).
type ZID struct {
	bits  uint64
	depth uint8
}

// Root returns the root z-id (the whole space, depth 0).
func Root() ZID { return ZID{} }

// Depth returns the number of digits in z.
func (z ZID) Depth() int { return int(z.depth) }

// IsRoot reports whether z is the root cell.
func (z ZID) IsRoot() bool { return z.depth == 0 }

// Digit returns the i-th quadrant digit (0-based from the root).
// It panics if i is out of range.
func (z ZID) Digit(i int) int {
	if i < 0 || i >= int(z.depth) {
		panic("zorder: digit index out of range")
	}
	return int(z.bits >> (62 - 2*uint(i)) & 3)
}

// Child returns the z-id of the q-th quadrant of z (q in 0..3).
// It panics if z is already at MaxDepth or q is out of range.
func (z ZID) Child(q int) ZID {
	if q < 0 || q > 3 {
		panic("zorder: quadrant out of range")
	}
	if z.depth >= MaxDepth {
		panic("zorder: Child beyond MaxDepth")
	}
	return ZID{
		bits:  z.bits | uint64(q)<<(62-2*uint(z.depth)),
		depth: z.depth + 1,
	}
}

// Parent returns the z-id with the last digit removed.
// It panics on the root.
func (z ZID) Parent() ZID {
	if z.depth == 0 {
		panic("zorder: Parent of root")
	}
	d := z.depth - 1
	mask := ^uint64(0) << (64 - 2*uint(d))
	if d == 0 {
		mask = 0
	}
	return ZID{bits: z.bits & mask, depth: d}
}

// Ancestor returns the prefix of z at the given depth (<= z.Depth()).
func (z ZID) Ancestor(depth int) ZID {
	if depth < 0 || depth > int(z.depth) {
		panic("zorder: Ancestor depth out of range")
	}
	if depth == 0 {
		return ZID{}
	}
	mask := ^uint64(0) << (64 - 2*uint(depth))
	return ZID{bits: z.bits & mask, depth: uint8(depth)}
}

// Contains reports whether the cell named by z contains the cell named by
// o, i.e. whether z's digit path is a prefix of o's.
func (z ZID) Contains(o ZID) bool {
	if z.depth > o.depth {
		return false
	}
	if z.depth == 0 {
		return true
	}
	mask := ^uint64(0) << (64 - 2*uint(z.depth))
	return (o.bits & mask) == z.bits
}

// Compare returns -1, 0, or +1 ordering z-ids lexicographically by digit
// path (a prefix sorts before its extensions). This is the order the
// TQ-tree's z-node bucket lists are kept in.
func (z ZID) Compare(o ZID) int {
	switch {
	case z.bits < o.bits:
		return -1
	case z.bits > o.bits:
		return 1
	case z.depth < o.depth:
		return -1
	case z.depth > o.depth:
		return 1
	}
	return 0
}

// Less reports whether z sorts before o.
func (z ZID) Less(o ZID) bool { return z.Compare(o) < 0 }

// Cell returns the rectangle named by z inside the given root space.
func (z ZID) Cell(root geo.Rect) geo.Rect {
	r := root
	for i := 0; i < int(z.depth); i++ {
		r = r.Quadrant(z.Digit(i))
	}
	return r
}

// String renders z as dot-separated quadrant digits, e.g. "0.3.2".
// The root renders as "*".
func (z ZID) String() string {
	if z.depth == 0 {
		return "*"
	}
	var b strings.Builder
	for i := 0; i < int(z.depth); i++ {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(z.Digit(i)))
	}
	return b.String()
}

// Parse converts a String() rendering back to a ZID.
func Parse(s string) (ZID, error) {
	if s == "*" || s == "" {
		return ZID{}, nil
	}
	z := ZID{}
	for _, part := range strings.Split(s, ".") {
		d, err := strconv.Atoi(part)
		if err != nil {
			return ZID{}, err
		}
		z = z.Child(d)
	}
	return z, nil
}

// PointZID returns the depth-d z-id of the cell containing p within root.
// Points outside root are clamped to its boundary. The digits produced
// agree with geo.Rect.QuadrantOf at every level.
func PointZID(root geo.Rect, p geo.Point, depth int) ZID {
	if depth < 0 || depth > MaxDepth {
		panic("zorder: PointZID depth out of range")
	}
	code := PointCode(root, p)
	// PointCode packs MaxDepth digit pairs into bits 61..0; align them to
	// the ZID layout (bits 63..2) and truncate to the requested depth.
	z := ZID{bits: code << 2, depth: MaxDepth}
	return z.Ancestor(depth)
}

// FullZID returns the MaxDepth z-id of p within root; its prefixes are the
// z-ids of p at every coarser level.
func FullZID(root geo.Rect, p geo.Point) ZID {
	return PointZID(root, p, MaxDepth)
}

// PointCode returns the 62-bit Morton code of p on a 2^31 × 2^31 grid over
// root. Sorting points by PointCode is sorting them in Z-order. Points
// outside root clamp to the boundary cells.
func PointCode(root geo.Rect, p geo.Point) uint64 {
	const scale = 1 << MaxDepth
	fx := 0.0
	if w := root.Width(); w > 0 {
		fx = (p.X - root.MinX) / w
	}
	fy := 0.0
	if h := root.Height(); h > 0 {
		fy = (p.Y - root.MinY) / h
	}
	xi := clampGrid(fx * scale)
	yi := clampGrid(fy * scale)
	return Encode(xi, yi)
}

func clampGrid(v float64) uint32 {
	const max = 1<<MaxDepth - 1
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return uint32(v)
}

// Encode interleaves the low 31 bits of x and y into a Morton code with y
// bits in the odd (higher) positions, so each 2-bit group from the top is
// the quadrant digit (yBit<<1 | xBit) at that level.
func Encode(x, y uint32) uint64 {
	return spreadBits(x) | spreadBits(y)<<1
}

// Decode splits a Morton code back into its x and y components.
func Decode(code uint64) (x, y uint32) {
	return compactBits(code), compactBits(code >> 1)
}

// spreadBits inserts a zero bit above each of the low 31 bits of v.
func spreadBits(v uint32) uint64 {
	x := uint64(v) & 0x7fffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compactBits inverts spreadBits.
func compactBits(code uint64) uint32 {
	x := code & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}
