package zorder

import (
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
)

func TestCoverIntervalsSoundness(t *testing.T) {
	// Every point inside the query rect must have its code covered.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a := geo.Pt(rng.Float64()*1024, rng.Float64()*1024)
		b := geo.Pt(rng.Float64()*1024, rng.Float64()*1024)
		rect := geo.NewRect(a, b)
		ivs := CoverIntervals(bounds, rect, 8, 16, nil)
		if len(ivs) == 0 {
			t.Fatal("no intervals for intersecting rect")
		}
		for probe := 0; probe < 200; probe++ {
			p := geo.Pt(
				rect.MinX+rng.Float64()*rect.Width(),
				rect.MinY+rng.Float64()*rect.Height(),
			)
			code := PointCode(bounds, p)
			covered := false
			for _, iv := range ivs {
				if iv.Contains(code) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: point %v code %d not covered by %v (rect %v)",
					trial, p, code, ivs, rect)
			}
		}
	}
}

func TestCoverIntervalsSortedDisjointBounded(t *testing.T) {
	bounds := geo.Rect{MinX: -500, MinY: -500, MaxX: 500, MaxY: 500}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		a := geo.Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		b := geo.Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		rect := geo.NewRect(a, b)
		maxIv := 1 + rng.Intn(20)
		ivs := CoverIntervals(bounds, rect, 10, maxIv, nil)
		if len(ivs) > maxIv {
			t.Fatalf("emitted %d intervals, budget %d", len(ivs), maxIv)
		}
		for i, iv := range ivs {
			if iv.Lo > iv.Hi {
				t.Fatalf("inverted interval %v", iv)
			}
			if i > 0 && ivs[i-1].Hi >= iv.Lo {
				t.Fatalf("intervals overlap or touch unmerged: %v then %v", ivs[i-1], iv)
			}
		}
	}
}

func TestCoverIntervalsSplitLineRect(t *testing.T) {
	// A rect straddling the center vertical line has a near-total naive
	// code range; the decomposition must produce a far tighter cover.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rect := geo.Rect{MinX: 480, MinY: 100, MaxX: 520, MaxY: 140}
	ivs := CoverIntervals(bounds, rect, 10, 16, nil)
	var covered uint64
	for _, iv := range ivs {
		covered += iv.Hi - iv.Lo + 1
	}
	naive := PointCode(bounds, geo.Pt(rect.MaxX, rect.MaxY)) -
		PointCode(bounds, geo.Pt(rect.MinX, rect.MinY))
	if covered >= naive/4 {
		t.Errorf("decomposition covered %d codes, naive range %d — no tightening", covered, naive)
	}
}

func TestCoverIntervalsDisjointRect(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if ivs := CoverIntervals(bounds, geo.Rect{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30}, 6, 8, nil); len(ivs) != 0 {
		t.Errorf("disjoint rect produced intervals: %v", ivs)
	}
}

func TestCoverIntervalsFullSpace(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	ivs := CoverIntervals(bounds, bounds.Expand(1), 6, 8, nil)
	if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != maxCode {
		t.Errorf("full-space cover = %v, want single [0, maxCode]", ivs)
	}
}

func TestCoverIntervalsReusesBuffer(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	buf := make([]Interval, 0, 32)
	out := CoverIntervals(bounds, geo.Rect{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}, 8, 16, buf)
	if cap(out) != cap(buf) && len(out) <= cap(buf) {
		t.Error("buffer not reused despite sufficient capacity")
	}
}
