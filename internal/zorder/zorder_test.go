package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/trajcover/trajcover/internal/geo"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<MaxDepth - 1
		y &= 1<<MaxDepth - 1
		gx, gy := Decode(Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKnownValues(t *testing.T) {
	tests := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
	}
	for _, tt := range tests {
		if got := Encode(tt.x, tt.y); got != tt.want {
			t.Errorf("Encode(%d,%d) = %d, want %d", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestZIDChildParent(t *testing.T) {
	z := Root().Child(2).Child(0).Child(3)
	if z.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", z.Depth())
	}
	if z.Digit(0) != 2 || z.Digit(1) != 0 || z.Digit(2) != 3 {
		t.Errorf("digits = %d,%d,%d want 2,0,3", z.Digit(0), z.Digit(1), z.Digit(2))
	}
	p := z.Parent()
	if p.Depth() != 2 || p.Digit(0) != 2 || p.Digit(1) != 0 {
		t.Errorf("Parent = %v", p)
	}
	if !p.Contains(z) {
		t.Error("parent does not Contain child")
	}
	if z.Contains(p) {
		t.Error("child Contains parent")
	}
}

func TestZIDString(t *testing.T) {
	tests := []struct {
		z    ZID
		want string
	}{
		{Root(), "*"},
		{Root().Child(0), "0"},
		{Root().Child(0).Child(3), "0.3"},
		{Root().Child(2).Child(1).Child(0), "2.1.0"},
	}
	for _, tt := range tests {
		if got := tt.z.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
		back, err := Parse(tt.want)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.want, err)
		}
		if back.Compare(tt.z) != 0 {
			t.Errorf("Parse(String) = %v, want %v", back, tt.z)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("0.x.1"); err == nil {
		t.Error("Parse accepted non-numeric digit")
	}
}

func TestZIDOrderingIsLexicographic(t *testing.T) {
	// Build a set of z-ids and verify Compare agrees with digit-path
	// lexicographic comparison.
	rng := rand.New(rand.NewSource(7))
	randZID := func() (ZID, []int) {
		depth := rng.Intn(8)
		z := Root()
		digits := make([]int, 0, depth)
		for i := 0; i < depth; i++ {
			d := rng.Intn(4)
			z = z.Child(d)
			digits = append(digits, d)
		}
		return z, digits
	}
	lexLess := func(a, b []int) int {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(a) < len(b):
			return -1
		case len(a) > len(b):
			return 1
		}
		return 0
	}
	for i := 0; i < 5000; i++ {
		za, da := randZID()
		zb, db := randZID()
		if za.Compare(zb) != lexLess(da, db) {
			t.Fatalf("Compare(%v,%v) = %d, lex = %d", za, zb, za.Compare(zb), lexLess(da, db))
		}
	}
}

func TestContainsIffPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		depth := rng.Intn(10)
		z := Root()
		for j := 0; j < depth; j++ {
			z = z.Child(rng.Intn(4))
		}
		ext := z
		extra := rng.Intn(5)
		for j := 0; j < extra; j++ {
			ext = ext.Child(rng.Intn(4))
		}
		if !z.Contains(ext) {
			t.Fatalf("%v does not Contain its extension %v", z, ext)
		}
		// A sibling-diverted path must not be contained.
		if depth > 0 {
			d0 := z.Digit(depth - 1)
			other := z.Parent().Child((d0 + 1) % 4)
			if z.Contains(other) {
				t.Fatalf("%v Contains sibling %v", z, other)
			}
		}
	}
}

func TestCellMatchesQuadrantWalk(t *testing.T) {
	root := geo.Rect{MinX: 0, MinY: 0, MaxX: 16, MaxY: 16}
	z := Root().Child(geo.QuadNW).Child(geo.QuadSE)
	got := z.Cell(root)
	want := root.Quadrant(geo.QuadNW).Quadrant(geo.QuadSE)
	if got != want {
		t.Errorf("Cell = %v, want %v", got, want)
	}
}

func TestPointZIDCellContainsPoint(t *testing.T) {
	root := geo.Rect{MinX: -100, MinY: -50, MaxX: 300, MaxY: 350}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := geo.Pt(
			root.MinX+rng.Float64()*root.Width(),
			root.MinY+rng.Float64()*root.Height(),
		)
		for depth := 0; depth <= 12; depth++ {
			z := PointZID(root, p, depth)
			if z.Depth() != depth {
				t.Fatalf("PointZID depth = %d, want %d", z.Depth(), depth)
			}
			cell := z.Cell(root)
			// Allow boundary slop: the grid assigns boundary points to the
			// higher cell, matching geo.Rect.QuadrantOf.
			grow := cell.Expand(1e-9 * root.Width())
			if !grow.Contains(p) {
				t.Fatalf("depth %d cell %v does not contain %v", depth, cell, p)
			}
		}
	}
}

func TestPointZIDPrefixConsistency(t *testing.T) {
	// The depth-d z-id of a point must be the Ancestor(d) of its full z-id.
	root := geo.Rect{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := geo.Pt(rng.Float64()*1024, rng.Float64()*1024)
		full := FullZID(root, p)
		for d := 0; d <= 16; d++ {
			if PointZID(root, p, d).Compare(full.Ancestor(d)) != 0 {
				t.Fatalf("PointZID(%d) != FullZID.Ancestor(%d) for %v", d, d, p)
			}
		}
	}
}

func TestPointZIDAgreesWithQuadrantOf(t *testing.T) {
	root := geo.Rect{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		p := geo.Pt(rng.Float64()*64, rng.Float64()*64)
		z := PointZID(root, p, 3)
		r := root
		for lvl := 0; lvl < 3; lvl++ {
			q := r.QuadrantOf(p)
			if z.Digit(lvl) != q {
				// Boundary points can legitimately differ by a grid ulp;
				// accept only if p is within an ulp of the split line.
				cx := (r.MinX + r.MaxX) / 2
				cy := (r.MinY + r.MaxY) / 2
				eps := root.Width() / (1 << MaxDepth)
				nearSplit := absf(p.X-cx) < eps || absf(p.Y-cy) < eps
				if !nearSplit {
					t.Fatalf("digit %d = %d, QuadrantOf = %d at %v", lvl, z.Digit(lvl), q, p)
				}
			}
			r = r.Quadrant(z.Digit(lvl))
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestMortonOrderMatchesZIDOrder(t *testing.T) {
	// Sorting points by PointCode must equal sorting by full-depth ZID.
	root := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(13))
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	byCode := append([]geo.Point(nil), pts...)
	sort.Slice(byCode, func(i, j int) bool {
		return PointCode(root, byCode[i]) < PointCode(root, byCode[j])
	})
	byZID := append([]geo.Point(nil), pts...)
	sort.Slice(byZID, func(i, j int) bool {
		return FullZID(root, byZID[i]).Less(FullZID(root, byZID[j]))
	})
	for i := range byCode {
		if byCode[i] != byZID[i] {
			t.Fatalf("order diverges at %d: %v vs %v", i, byCode[i], byZID[i])
		}
	}
}

func TestPointCodeClampsOutside(t *testing.T) {
	root := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if PointCode(root, geo.Pt(-5, -5)) != 0 {
		t.Error("point below min did not clamp to code 0")
	}
	maxCode := Encode(1<<MaxDepth-1, 1<<MaxDepth-1)
	if PointCode(root, geo.Pt(100, 100)) != maxCode {
		t.Error("point above max did not clamp to max code")
	}
}

func TestAncestorAndRootEdgeCases(t *testing.T) {
	z := Root().Child(3).Child(1)
	if z.Ancestor(0).Compare(Root()) != 0 {
		t.Error("Ancestor(0) != Root")
	}
	if z.Ancestor(2).Compare(z) != 0 {
		t.Error("Ancestor(full depth) != self")
	}
	if !Root().Contains(z) {
		t.Error("Root does not Contain descendant")
	}
	if Root().IsRoot() != true || z.IsRoot() {
		t.Error("IsRoot misreports")
	}
}

func TestDegenerateRootRect(t *testing.T) {
	// Zero-size root must not divide by zero; all points collapse to cell 0.
	root := geo.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}
	if PointCode(root, geo.Pt(5, 5)) != 0 {
		t.Error("degenerate root did not produce code 0")
	}
}
