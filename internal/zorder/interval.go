package zorder

import (
	"github.com/trajcover/trajcover/internal/geo"
)

// Interval is a closed range [Lo, Hi] of Morton point codes.
type Interval struct {
	Lo, Hi uint64
}

// Contains reports whether code lies in the interval.
func (iv Interval) Contains(code uint64) bool { return code >= iv.Lo && code <= iv.Hi }

// maxCode is the largest code PointCode can produce (MaxDepth levels).
const maxCode = 1<<(2*MaxDepth) - 1

// CoverIntervals returns sorted, disjoint Morton-code intervals that
// together contain the code of every point of bounds∩rect. A rectangle
// that straddles a major split line of the space has an enormous single
// [min-corner, max-corner] code range (the Z-curve jumps); decomposing it
// into per-quadrant intervals lets a z-ordered scan skip the gaps.
//
// The cover is computed by iterative deepening: subdivision stops at the
// finest depth (≤ maxDepth) whose merged cover still fits in
// maxIntervals intervals, so the result is always a superset of the
// exact code set (sound for pruning) with balanced granularity. dst is
// reused when its capacity allows.
func CoverIntervals(bounds, rect geo.Rect, maxDepth, maxIntervals int, dst []Interval) []Interval {
	dst = dst[:0]
	if maxIntervals < 1 {
		maxIntervals = 1
	}
	if maxDepth < 0 {
		maxDepth = 0
	}
	if maxDepth > MaxDepth {
		maxDepth = MaxDepth
	}
	if !bounds.Intersects(rect) {
		return dst
	}
	best := append(dst, Interval{Lo: 0, Hi: maxCode})
	var scratch []Interval
	for d := 1; d <= maxDepth; d++ {
		c := coverer{rect: rect, out: scratch[:0]}
		c.cover(bounds, 0, uint64(1)<<(2*MaxDepth), d)
		scratch = c.out
		if len(scratch) > maxIntervals {
			break
		}
		best = append(best[:0], scratch...)
		if c.allInside {
			// Every emitted cell lies inside rect: deeper subdivision
			// cannot tighten the cover further.
			break
		}
	}
	return best
}

// CoverIntervalsAuto computes an interval cover with a single walk at a
// depth chosen from the rect/bounds size ratio (cells about half the
// rect's larger side), which keeps both the walk and the interval count
// small. Budget overruns coarsen into the previous interval (still a
// sound superset). This is the hot-path variant used by the TQ-tree's
// zReduce; CoverIntervals is the precision-controlled form.
func CoverIntervalsAuto(bounds, rect geo.Rect, maxIntervals int, dst []Interval) []Interval {
	dst = dst[:0]
	if !bounds.Intersects(rect) {
		return dst
	}
	if maxIntervals < 1 {
		maxIntervals = 1
	}
	size := rect.Width()
	if rect.Height() > size {
		size = rect.Height()
	}
	span := bounds.Width()
	if bounds.Height() > span {
		span = bounds.Height()
	}
	depth := 0
	for d := 0; d < 12; d++ {
		if span <= size {
			break
		}
		span /= 2
		depth = d + 2 // cells ≈ half the rect's larger side
	}
	if depth > MaxDepth {
		depth = MaxDepth
	}
	c := coverer{rect: rect, out: dst, maxIntervals: maxIntervals}
	c.cover(bounds, 0, uint64(1)<<(2*MaxDepth), depth)
	return c.out
}

type coverer struct {
	rect         geo.Rect
	out          []Interval
	maxIntervals int
	allInside    bool
}

// cover walks the implicit quadtree of the space down to the given depth.
// cell is the current cell, lo the smallest point code inside it, span
// the count of codes it owns (a power of four).
func (c *coverer) cover(cell geo.Rect, lo, span uint64, depth int) {
	if !cell.Intersects(c.rect) {
		return
	}
	inside := c.rect.ContainsRect(cell)
	if depth == 0 || span == 1 || inside {
		if !inside && len(c.out) == 0 {
			c.allInside = false
		}
		if len(c.out) == 0 {
			c.allInside = inside
		} else {
			c.allInside = c.allInside && inside
		}
		c.emit(lo, lo+span-1)
		return
	}
	childSpan := span / 4
	for q := 0; q < 4; q++ {
		c.cover(cell.Quadrant(q), lo+uint64(q)*childSpan, childSpan, depth-1)
	}
}

// emit appends [lo, hi], merging with the previous interval when they
// touch.
func (c *coverer) emit(lo, hi uint64) {
	if hi > maxCode {
		hi = maxCode
	}
	n := len(c.out)
	merge := n > 0 && (lo == 0 || c.out[n-1].Hi >= lo-1)
	if !merge && c.maxIntervals > 0 && n >= c.maxIntervals {
		// Budget spent: coarsen into the previous interval (covers the
		// gap too — still a superset, so still sound).
		merge = n > 0
	}
	if merge {
		if hi > c.out[n-1].Hi {
			c.out[n-1].Hi = hi
		}
		return
	}
	c.out = append(c.out, Interval{Lo: lo, Hi: hi})
}
