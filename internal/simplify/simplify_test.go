package simplify

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func TestDouglasPeuckerKeepsEndpoints(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 5), geo.Pt(2, 0), geo.Pt(3, 5), geo.Pt(4, 0)}
	out := DouglasPeucker(pts, 0.1)
	if out[0] != pts[0] || out[len(out)-1] != pts[len(pts)-1] {
		t.Error("endpoints not preserved")
	}
}

func TestDouglasPeuckerCollinear(t *testing.T) {
	// Perfectly collinear points collapse to the two endpoints.
	pts := make([]geo.Point, 50)
	for i := range pts {
		pts[i] = geo.Pt(float64(i), 2*float64(i))
	}
	out := DouglasPeucker(pts, 0.001)
	if len(out) != 2 {
		t.Errorf("collinear simplified to %d points, want 2", len(out))
	}
}

func TestDouglasPeuckerKeepsSharpFeatures(t *testing.T) {
	// A zig-zag above the tolerance must keep its corners.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 100), geo.Pt(20, 0), geo.Pt(30, 100), geo.Pt(40, 0)}
	out := DouglasPeucker(pts, 1)
	if len(out) != len(pts) {
		t.Errorf("zig-zag lost corners: %d of %d kept", len(out), len(pts))
	}
}

func TestDeviationBoundedByEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(200)
		pts := make([]geo.Point, n)
		x, y := 0.0, 0.0
		for i := range pts {
			x += rng.Float64() * 10
			y += rng.NormFloat64() * 5
			pts[i] = geo.Pt(x, y)
		}
		eps := 0.5 + rng.Float64()*10
		out := DouglasPeucker(pts, eps)
		if dev := MaxDeviation(pts, out); dev > eps+1e-9 {
			t.Fatalf("trial %d: deviation %v exceeds epsilon %v (kept %d/%d)",
				trial, dev, eps, len(out), n)
		}
		// Order preserved, subsequence of input.
		j := 0
		for _, p := range out {
			for j < n && pts[j] != p {
				j++
			}
			if j == n {
				t.Fatal("output is not an ordered subsequence of the input")
			}
		}
	}
}

func TestDeviationMonotoneInEpsilon(t *testing.T) {
	city := datagen.Beijing()
	traces := datagen.GPSTraces(city, 20, 30, 100, 7)
	for _, tr := range traces {
		prev := tr.Len()
		for _, eps := range []float64{1, 10, 100, 1000} {
			out := DouglasPeucker(tr.Points, eps)
			if len(out) > prev {
				t.Fatalf("epsilon %v kept more points (%d) than smaller epsilon (%d)",
					eps, len(out), prev)
			}
			prev = len(out)
		}
	}
}

func TestTrajectoryAndSet(t *testing.T) {
	city := datagen.Beijing()
	traces := datagen.GPSTraces(city, 30, 20, 80, 9)
	simplified, err := Set(traces, 50)
	if err != nil {
		t.Fatal(err)
	}
	var before, after int
	for i := range traces {
		if simplified[i].ID != traces[i].ID {
			t.Fatal("ID not preserved")
		}
		if simplified[i].Len() < 2 {
			t.Fatal("simplified below 2 points")
		}
		before += traces[i].Len()
		after += simplified[i].Len()
	}
	if after >= before {
		t.Errorf("simplification did not reduce points: %d -> %d", before, after)
	}
	// Length can only shrink (triangle inequality).
	for i := range traces {
		if simplified[i].Length() > traces[i].Length()+1e-9 {
			t.Error("simplified longer than original")
		}
	}
}

func TestTwoPointUnchanged(t *testing.T) {
	u := trajectory.MustNew(1, []geo.Point{geo.Pt(0, 0), geo.Pt(5, 5)})
	out, err := Trajectory(u, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out != u {
		t.Error("two-point trajectory was copied unnecessarily")
	}
}

func TestMaxDeviationDegenerate(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(3, 4)}
	if d := MaxDeviation(pts, []geo.Point{geo.Pt(0, 0)}); math.Abs(d-5) > 1e-12 {
		t.Errorf("single-point deviation = %v, want 5", d)
	}
}
