// Package simplify reduces raw GPS traces to representative trajectories
// using Douglas-Peucker polyline simplification. Real trajectory corpora
// like Geolife sample every few seconds, producing thousands of nearly
// collinear points per trip; the paper's BJG dataset is the simplified
// form, and this package is the preprocessing step a user needs to bring
// raw traces into the indexes.
package simplify

import (
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// DouglasPeucker returns the subsequence of pts whose deviation from the
// original polyline is at most epsilon. The first and last points are
// always kept; the result preserves point order.
func DouglasPeucker(pts []geo.Point, epsilon float64) []geo.Point {
	if len(pts) <= 2 {
		return append([]geo.Point(nil), pts...)
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	dpMark(pts, 0, len(pts)-1, epsilon, keep)
	out := make([]geo.Point, 0, len(pts)/2)
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

// dpMark marks the points to keep between endpoints lo and hi
// (exclusive), using an explicit recursion on the farthest-point split.
func dpMark(pts []geo.Point, lo, hi int, epsilon float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	far, farDist := -1, epsilon
	for i := lo + 1; i < hi; i++ {
		if d := geo.DistPointSegment(pts[i], pts[lo], pts[hi]); d > farDist {
			far, farDist = i, d
		}
	}
	if far < 0 {
		return
	}
	keep[far] = true
	dpMark(pts, lo, far, epsilon, keep)
	dpMark(pts, far, hi, epsilon, keep)
}

// Trajectory simplifies a trajectory with tolerance epsilon, keeping its
// ID. Trajectories already at two points are returned unchanged.
func Trajectory(t *trajectory.Trajectory, epsilon float64) (*trajectory.Trajectory, error) {
	if t.Len() <= 2 {
		return t, nil
	}
	return trajectory.New(t.ID, DouglasPeucker(t.Points, epsilon))
}

// Set simplifies every trajectory in ts with tolerance epsilon.
func Set(ts []*trajectory.Trajectory, epsilon float64) ([]*trajectory.Trajectory, error) {
	out := make([]*trajectory.Trajectory, len(ts))
	for i, t := range ts {
		s, err := Trajectory(t, epsilon)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// MaxDeviation returns the largest distance from any point of the
// original polyline to the simplified one — the quantity DouglasPeucker
// bounds by epsilon. It is O(n·m) and intended for tests and validation.
func MaxDeviation(original, simplified []geo.Point) float64 {
	var worst float64
	for _, p := range original {
		best := -1.0
		for i := 1; i < len(simplified); i++ {
			d := geo.DistPointSegment(p, simplified[i-1], simplified[i])
			if best < 0 || d < best {
				best = d
			}
		}
		if len(simplified) == 1 {
			best = p.Dist(simplified[0])
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
