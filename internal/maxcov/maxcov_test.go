package maxcov

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

var testBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

func makeUsers(n int, seed int64) *trajectory.Set {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	for i := range out {
		ax, ay := rng.Float64()*1000, rng.Float64()*1000
		bx := clampF(ax+rng.NormFloat64()*150, 0, 1000)
		by := clampF(ay+rng.NormFloat64()*150, 0, 1000)
		out[i] = trajectory.MustNew(trajectory.ID(i), []geo.Point{geo.Pt(ax, ay), geo.Pt(bx, by)})
	}
	return trajectory.MustNewSet(out)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func makeFacilities(n, stops int, seed int64) []*trajectory.Facility {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Facility, n)
	for i := range out {
		ax, ay := rng.Float64()*1000, rng.Float64()*1000
		dx, dy := rng.NormFloat64(), rng.NormFloat64()
		pts := make([]geo.Point, stops)
		for j := range pts {
			t := float64(j) * 40
			pts[j] = geo.Pt(clampF(ax+dx*t, 0, 1000), clampF(ay+dy*t, 0, 1000))
		}
		out[i] = trajectory.MustNewFacility(trajectory.ID(i), pts)
	}
	return out
}

func engineFor(t *testing.T, users *trajectory.Set, ordering tqtree.Ordering) *query.Engine {
	t.Helper()
	tree, err := tqtree.Build(users.All, tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: ordering, Beta: 8, Bounds: testBounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return query.NewEngine(tree, users)
}

var params = query.Params{Scenario: service.Binary, Psi: 50}

func TestNonSubmodularWitness(t *testing.T) {
	// Reproduce the paper's Lemma 1 construction: user u's source is
	// covered by facility b (in B) but by nothing in A; u's destination
	// is covered only by facility x. Then adding x to B gains service
	// while adding x to A (⊆ B) gains nothing — violating diminishing
	// returns, so the objective is non-submodular.
	u := trajectory.MustNew(1, []geo.Point{geo.Pt(100, 100), geo.Pt(900, 900)})
	users := trajectory.MustNewSet([]*trajectory.Trajectory{u})

	fa := trajectory.MustNewFacility(1, []geo.Point{geo.Pt(500, 500)}) // covers nothing
	fb := trajectory.MustNewFacility(2, []geo.Point{geo.Pt(100, 105)}) // covers source
	fx := trajectory.MustNewFacility(3, []geo.Point{geo.Pt(900, 905)}) // covers destination

	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	cache, err := newCovCache(src, []*trajectory.Facility{fa, fb, fx}, params)
	if err != nil {
		t.Fatal(err)
	}
	val := func(fs ...*trajectory.Facility) float64 { return cache.subsetValue(fs) }

	gainA := val(fa, fx) - val(fa)         // A = {fa}
	gainB := val(fa, fb, fx) - val(fa, fb) // B = {fa, fb} ⊇ A
	if !(gainB > gainA) {
		t.Fatalf("submodularity not violated: gainA=%v gainB=%v (need gainB > gainA)", gainA, gainB)
	}
	if gainA != 0 || gainB != 1 {
		t.Errorf("expected gains 0 and 1, got %v and %v", gainA, gainB)
	}
}

func TestGreedyMatchesHandRolledReference(t *testing.T) {
	users := makeUsers(300, 1)
	facilities := makeFacilities(20, 6, 2)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}

	got, err := Greedy(src, facilities, 4, params)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-rolled reference greedy over brute-force coverage masks.
	type facCov struct {
		f   *trajectory.Facility
		cov service.Coverage
	}
	covs := make([]facCov, len(facilities))
	for i, f := range facilities {
		c := service.Coverage{}
		for _, u := range users.All {
			m := service.MaskOf(u, f.Stops, params.Psi)
			if !m.Empty() {
				c[u.ID] = m
			}
		}
		covs[i] = facCov{f, c}
	}
	value := func(sel []facCov) float64 {
		merged := service.Coverage{}
		for _, fc := range sel {
			merged.Merge(fc.cov)
		}
		var v float64
		for id, m := range merged {
			v += service.ValueFromMask(service.Binary, users.ByID(id), m)
		}
		return v
	}
	var sel []facCov
	remaining := append([]facCov(nil), covs...)
	for len(sel) < 4 {
		bestI, bestV := -1, -1.0
		base := value(sel)
		for i, fc := range remaining {
			v := value(append(sel, fc)) - base
			if v > bestV {
				bestV, bestI = v, i
			}
		}
		sel = append(sel, remaining[bestI])
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
	}
	want := value(sel)
	if math.Abs(got.Value-want) > 1e-9 {
		t.Fatalf("greedy value %v, reference %v", got.Value, want)
	}
	for i := range sel {
		if got.Facilities[i].ID != sel[i].f.ID {
			t.Errorf("selection order differs at %d: %d vs %d", i, got.Facilities[i].ID, sel[i].f.ID)
		}
	}
}

func TestGreedyBaselineAndTQAgree(t *testing.T) {
	users := makeUsers(400, 3)
	facilities := makeFacilities(25, 6, 4)
	eng := engineFor(t, users, tqtree.ZOrder)
	engB := engineFor(t, users, tqtree.Basic)
	bl := query.NewBaseline(users, tqtree.TwoPoint)

	rz, err := Greedy(EngineSource{Engine: eng}, facilities, 5, params)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Greedy(EngineSource{Engine: engB}, facilities, 5, params)
	if err != nil {
		t.Fatal(err)
	}
	rbl, err := Greedy(BaselineSource{Baseline: bl}, facilities, 5, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rz.Value-rb.Value) > 1e-9 || math.Abs(rz.Value-rbl.Value) > 1e-9 {
		t.Fatalf("greedy values diverge: z=%v basic=%v baseline=%v", rz.Value, rb.Value, rbl.Value)
	}
	if rz.UsersServed != rbl.UsersServed {
		t.Errorf("users served diverge: %d vs %d", rz.UsersServed, rbl.UsersServed)
	}
}

func TestExactSmallInstance(t *testing.T) {
	users := makeUsers(150, 5)
	facilities := makeFacilities(10, 5, 6)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}

	exact, err := Exact(src, facilities, 3, params)
	if err != nil {
		t.Fatal(err)
	}
	// Exact must dominate greedy and genetic.
	greedy, err := Greedy(src, facilities, 3, params)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Value > exact.Value+1e-9 {
		t.Fatalf("greedy %v beat exact %v", greedy.Value, exact.Value)
	}
	gen, err := Genetic(src, facilities, 3, params, GeneticOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Value > exact.Value+1e-9 {
		t.Fatalf("genetic %v beat exact %v", gen.Value, exact.Value)
	}
	if len(exact.Facilities) != 3 {
		t.Errorf("exact returned %d facilities", len(exact.Facilities))
	}
}

func TestExactMatchesBruteForceTinyInstance(t *testing.T) {
	// Cross-check Exact against a literal enumeration on a 6-facility
	// instance.
	users := makeUsers(100, 8)
	facilities := makeFacilities(6, 4, 9)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	cache, err := newCovCache(src, facilities, params)
	if err != nil {
		t.Fatal(err)
	}
	bestVal := -1.0
	n := len(facilities)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			v := cache.subsetValue([]*trajectory.Facility{facilities[a], facilities[b]})
			if v > bestVal {
				bestVal = v
			}
		}
	}
	exact, err := Exact(src, facilities, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Value-bestVal) > 1e-9 {
		t.Fatalf("Exact = %v, brute force = %v", exact.Value, bestVal)
	}
}

func TestTwoStepGreedyCloseToFullGreedy(t *testing.T) {
	users := makeUsers(500, 10)
	facilities := makeFacilities(40, 6, 11)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}

	full, err := Greedy(src, facilities, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	two, err := TwoStepGreedy(eng, facilities, 4, 0, params)
	if err != nil {
		t.Fatal(err)
	}
	if two.Value > full.Value+1e-9 {
		// Pruning can only remove candidates; the two-step result is a
		// greedy over a subset, whose greedy value can exceed the full
		// greedy only through tie-order differences — tolerate a tiny
		// margin but flag real excess, which would indicate a bug.
		t.Logf("two-step %v exceeded full greedy %v (tie-order artifact)", two.Value, full.Value)
	}
	if two.Value < 0.5*full.Value {
		t.Fatalf("two-step value %v collapsed versus full greedy %v", two.Value, full.Value)
	}
	if len(two.Facilities) != 4 {
		t.Errorf("two-step returned %d facilities", len(two.Facilities))
	}
}

func TestTwoStepKPrimeAtLeastK(t *testing.T) {
	users := makeUsers(100, 12)
	facilities := makeFacilities(10, 4, 13)
	eng := engineFor(t, users, tqtree.ZOrder)
	// kPrime below k must be clamped, not error.
	res, err := TwoStepGreedy(eng, facilities, 5, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 5 {
		t.Errorf("got %d facilities, want 5", len(res.Facilities))
	}
}

func TestGeneticBeatsRandomAndIsDeterministic(t *testing.T) {
	users := makeUsers(400, 14)
	facilities := makeFacilities(30, 6, 15)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	cache, err := newCovCache(src, facilities, params)
	if err != nil {
		t.Fatal(err)
	}

	gen1, err := Genetic(src, facilities, 5, params, GeneticOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := Genetic(src, facilities, 5, params, GeneticOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if gen1.Value != gen2.Value {
		t.Errorf("genetic not deterministic: %v vs %v", gen1.Value, gen2.Value)
	}

	// Average random subset value must not beat the genetic result.
	rng := rand.New(rand.NewSource(16))
	var avg float64
	const trials = 50
	for i := 0; i < trials; i++ {
		perm := rng.Perm(len(facilities))[:5]
		subset := make([]*trajectory.Facility, 5)
		for j, g := range perm {
			subset[j] = facilities[g]
		}
		avg += cache.subsetValue(subset)
	}
	avg /= trials
	if gen1.Value < avg {
		t.Errorf("genetic %v below average random %v", gen1.Value, avg)
	}
}

func TestGreedyResultValueMatchesSubsetValue(t *testing.T) {
	users := makeUsers(300, 17)
	facilities := makeFacilities(15, 5, 18)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	res, err := Greedy(src, facilities, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := newCovCache(src, facilities, params)
	if err != nil {
		t.Fatal(err)
	}
	if v := cache.subsetValue(res.Facilities); math.Abs(v-res.Value) > 1e-9 {
		t.Fatalf("incremental value %v != recomputed %v", res.Value, v)
	}
}

func TestApproximationRatioReasonable(t *testing.T) {
	// On random instances the paper observes greedy ratios >= 0.9; use a
	// conservative 0.8 floor to keep the test robust.
	for seed := int64(0); seed < 3; seed++ {
		users := makeUsers(200, 20+seed)
		facilities := makeFacilities(12, 5, 30+seed)
		eng := engineFor(t, users, tqtree.ZOrder)
		src := EngineSource{Engine: eng}
		exact, err := Exact(src, facilities, 3, params)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Value == 0 {
			continue
		}
		greedy, err := TwoStepGreedy(eng, facilities, 3, 0, params)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := greedy.Value / exact.Value; ratio < 0.8 {
			t.Errorf("seed %d: approximation ratio %v < 0.8", seed, ratio)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	users := makeUsers(50, 40)
	facilities := makeFacilities(5, 4, 41)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}

	if r, err := Greedy(src, facilities, 0, params); err != nil || len(r.Facilities) != 0 {
		t.Errorf("k=0: %+v, %v", r, err)
	}
	if r, err := Greedy(src, nil, 3, params); err != nil || len(r.Facilities) != 0 {
		t.Errorf("no facilities: %+v, %v", r, err)
	}
	r, err := Greedy(src, facilities, 10, params)
	if err != nil || len(r.Facilities) != 5 {
		t.Errorf("k>n: got %d facilities, %v", len(r.Facilities), err)
	}
	if _, err := Exact(src, makeFacilities(100, 3, 42), 50, params); err == nil {
		t.Error("Exact accepted a combinatorial blow-up")
	}
}

func TestBinaryFastPathMatchesGeneralPath(t *testing.T) {
	users := makeUsers(300, 50)
	facilities := makeFacilities(12, 5, 51)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	cache, err := newCovCache(src, facilities, params)
	if err != nil {
		t.Fatal(err)
	}
	if cache.binIdx == nil {
		t.Fatal("binary fast path not built for Binary scenario")
	}
	words := (len(cache.binIdx) + 63) / 64
	srcBuf := make([]uint64, words)
	dstBuf := make([]uint64, words)
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		perm := rng.Perm(len(facilities))[:k]
		subset := make([]*trajectory.Facility, k)
		for i, g := range perm {
			subset[i] = facilities[g]
		}
		fast := cache.binarySubsetValue(subset, srcBuf, dstBuf)
		slow := cache.subsetValue(subset)
		if math.Abs(fast-slow) > 1e-9 {
			t.Fatalf("fast path %v != general path %v for subset %v", fast, slow, perm)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 2, 10}, {10, 3, 120}, {6, 0, 1}, {6, 6, 1}, {4, 5, 0}, {60, 30, -1},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}
