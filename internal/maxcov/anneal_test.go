package maxcov

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func TestAnnealNeverBeatsExactAndBeatsRandom(t *testing.T) {
	users := makeUsers(300, 70)
	facilities := makeFacilities(14, 5, 71)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}

	exact, err := Exact(src, facilities, 3, params)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := Anneal(src, facilities, 3, params, AnnealOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ann.Value > exact.Value+1e-9 {
		t.Fatalf("anneal %v beat exact %v", ann.Value, exact.Value)
	}
	// Annealing must do at least as well as the average random subset.
	cache, err := newCovCache(src, facilities, params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	var avg float64
	const trials = 40
	for i := 0; i < trials; i++ {
		perm := rng.Perm(len(facilities))[:3]
		subset := make([]*trajectory.Facility, 3)
		for j, g := range perm {
			subset[j] = facilities[g]
		}
		avg += cache.subsetValue(subset)
	}
	avg /= trials
	if ann.Value < avg {
		t.Errorf("anneal %v below average random %v", ann.Value, avg)
	}
	// With enough iterations on a small instance, annealing should land
	// close to the optimum.
	if exact.Value > 0 && ann.Value/exact.Value < 0.8 {
		t.Errorf("anneal ratio %v < 0.8", ann.Value/exact.Value)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	users := makeUsers(200, 73)
	facilities := makeFacilities(20, 5, 74)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	a, err := Anneal(src, facilities, 4, params, AnnealOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(src, facilities, 4, params, AnnealOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-12 {
		t.Errorf("anneal not deterministic: %v vs %v", a.Value, b.Value)
	}
}

func TestAnnealEdgeCases(t *testing.T) {
	users := makeUsers(50, 75)
	facilities := makeFacilities(4, 4, 76)
	eng := engineFor(t, users, tqtree.ZOrder)
	src := EngineSource{Engine: eng}
	if r, err := Anneal(src, facilities, 0, params, AnnealOptions{}); err != nil || len(r.Facilities) != 0 {
		t.Errorf("k=0: %+v %v", r, err)
	}
	// k == n: the subset is forced; no swaps possible.
	r, err := Anneal(src, facilities, 10, params, AnnealOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Facilities) != 4 {
		t.Errorf("k>n returned %d facilities", len(r.Facilities))
	}
	full, err := Greedy(src, facilities, 4, params)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-full.Value) > 1e-9 {
		t.Errorf("forced full subset value %v != greedy full %v", r.Value, full.Value)
	}
}
