// Package maxcov implements MaxkCovRST: choosing the size-k facility
// subset maximizing the combined (AGG) service value. The paper proves
// the objective is non-submodular and NP-hard and answers it with a
// two-step greedy approximation; this package provides:
//
//   - Greedy: the straightforward greedy over all facilities (the paper's
//     G-BL / G-TQ building block).
//   - TwoStepGreedy: the paper's solution — first prune to the k' highest
//     individually-serving facilities with the kMaxRRST engine, then run
//     greedy on the pruned set (G-TQ(B), G-TQ(Z)).
//   - Genetic: the Gn-TQ(Z) comparison point, a genetic algorithm over
//     k-subsets.
//   - Exact: exhaustive subset enumeration, the approximation-ratio
//     reference for Figure 11.
package maxcov

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// CoverageSource produces per-facility coverage masks. Both the TQ-tree
// engine and the baseline satisfy it (see EngineSource / BaselineSource).
type CoverageSource interface {
	// Coverage returns which points of which users the facility covers.
	Coverage(f *trajectory.Facility, p query.Params) (service.Coverage, error)
	// Users is the user set coverage is computed against.
	Users() *trajectory.Set
	// Variant selects the objective translation for mask values.
	Variant() tqtree.Variant
}

// EngineSource adapts a kMaxRRST engine into a CoverageSource.
type EngineSource struct {
	Engine *query.Engine
}

// Coverage implements CoverageSource.
func (s EngineSource) Coverage(f *trajectory.Facility, p query.Params) (service.Coverage, error) {
	cov, _, err := s.Engine.Coverage(f, p)
	return cov, err
}

// Users implements CoverageSource.
func (s EngineSource) Users() *trajectory.Set { return s.Engine.Users() }

// Variant implements CoverageSource.
func (s EngineSource) Variant() tqtree.Variant { return s.Engine.Tree().Variant() }

// BaselineSource adapts the point-quadtree baseline into a CoverageSource.
type BaselineSource struct {
	Baseline *query.Baseline
}

// Coverage implements CoverageSource.
func (s BaselineSource) Coverage(f *trajectory.Facility, p query.Params) (service.Coverage, error) {
	return s.Baseline.Coverage(f, p)
}

// Users implements CoverageSource.
func (s BaselineSource) Users() *trajectory.Set { return s.Baseline.Users() }

// Variant implements CoverageSource.
func (s BaselineSource) Variant() tqtree.Variant { return s.Baseline.Variant() }

// Result is a MaxkCovRST answer.
type Result struct {
	// Facilities is the chosen subset, in selection order for greedy
	// solvers.
	Facilities []*trajectory.Facility
	// Value is the combined service value SO(U, F').
	Value float64
	// UsersServed counts users with positive combined service — the
	// quality metric of the paper's Figure 10(b)/(d).
	UsersServed int
}

// covCache precomputes and stores per-facility coverages.
type covCache struct {
	src  CoverageSource
	p    query.Params
	covs map[trajectory.ID]service.Coverage

	// Binary fast path (non-Segmented variants): per-facility bitsets of
	// users whose source / destination the facility covers, over a dense
	// index of touched users. A subset's combined value is then
	// popcount(OR(src) & OR(dst)) — no mask merging.
	binIdx map[trajectory.ID]int // user id -> dense bit index
	binSrc map[trajectory.ID][]uint64
	binDst map[trajectory.ID][]uint64
}

func newCovCache(src CoverageSource, facilities []*trajectory.Facility, p query.Params) (*covCache, error) {
	c := &covCache{src: src, p: p, covs: make(map[trajectory.ID]service.Coverage, len(facilities))}
	for _, f := range facilities {
		cov, err := src.Coverage(f, p)
		if err != nil {
			return nil, fmt.Errorf("maxcov: coverage of facility %d: %w", f.ID, err)
		}
		c.covs[f.ID] = cov
	}
	if p.Scenario == service.Binary && src.Variant() != tqtree.Segmented {
		c.buildBinaryPack(facilities)
	}
	return c, nil
}

// buildBinaryPack assembles the Binary fast-path bitsets.
func (c *covCache) buildBinaryPack(facilities []*trajectory.Facility) {
	users := c.src.Users()
	c.binIdx = map[trajectory.ID]int{}
	for _, cov := range c.covs {
		for id := range cov {
			if _, ok := c.binIdx[id]; !ok {
				c.binIdx[id] = len(c.binIdx)
			}
		}
	}
	words := (len(c.binIdx) + 63) / 64
	c.binSrc = make(map[trajectory.ID][]uint64, len(facilities))
	c.binDst = make(map[trajectory.ID][]uint64, len(facilities))
	for _, f := range facilities {
		srcBits := make([]uint64, words)
		dstBits := make([]uint64, words)
		for id, m := range c.covs[f.ID] {
			u := users.ByID(id)
			if u == nil {
				continue
			}
			bit := c.binIdx[id]
			if m.Get(0) {
				srcBits[bit/64] |= 1 << (uint(bit) % 64)
			}
			if m.Get(u.Len() - 1) {
				dstBits[bit/64] |= 1 << (uint(bit) % 64)
			}
		}
		c.binSrc[f.ID] = srcBits
		c.binDst[f.ID] = dstBits
	}
}

// binarySubsetValue computes the Binary combined value via bitsets.
// Buffers are reused across calls; not safe for concurrent use.
func (c *covCache) binarySubsetValue(subset []*trajectory.Facility, srcBuf, dstBuf []uint64) float64 {
	for i := range srcBuf {
		srcBuf[i], dstBuf[i] = 0, 0
	}
	for _, f := range subset {
		for i, w := range c.binSrc[f.ID] {
			srcBuf[i] |= w
		}
		for i, w := range c.binDst[f.ID] {
			dstBuf[i] |= w
		}
	}
	n := 0
	for i := range srcBuf {
		n += bits.OnesCount64(srcBuf[i] & dstBuf[i])
	}
	return float64(n)
}

// valueOf returns the objective value of a single user's mask.
func (c *covCache) valueOf(u *trajectory.Trajectory, m service.Mask) float64 {
	return query.ObjectiveFromMask(c.src.Variant(), c.p.Scenario, u, m)
}

// subsetValue computes SO(U, F') for a subset by mask union.
func (c *covCache) subsetValue(subset []*trajectory.Facility) float64 {
	merged := service.Coverage{}
	for _, f := range subset {
		merged.Merge(c.covs[f.ID])
	}
	users := c.src.Users()
	var total float64
	for id, m := range merged {
		if u := users.ByID(id); u != nil {
			total += c.valueOf(u, m)
		}
	}
	return total
}

// usersServed counts users with positive combined value for a subset.
func (c *covCache) usersServed(subset []*trajectory.Facility) int {
	merged := service.Coverage{}
	for _, f := range subset {
		merged.Merge(c.covs[f.ID])
	}
	users := c.src.Users()
	n := 0
	for id, m := range merged {
		if u := users.ByID(id); u != nil && c.valueOf(u, m) > 0 {
			n++
		}
	}
	return n
}

// greedyState tracks the merged coverage and per-user current values so
// marginal gains touch only the users a candidate facility covers.
type greedyState struct {
	cache  *covCache
	merged service.Coverage
	curVal map[trajectory.ID]float64
	total  float64
}

func newGreedyState(cache *covCache) *greedyState {
	return &greedyState{
		cache:  cache,
		merged: service.Coverage{},
		curVal: map[trajectory.ID]float64{},
	}
}

// marginal computes SO(U, chosen ∪ {f}) − SO(U, chosen) without mutating
// the state.
func (g *greedyState) marginal(f *trajectory.Facility) float64 {
	cov := g.cache.covs[f.ID]
	users := g.cache.src.Users()
	var delta float64
	for id, m := range cov {
		u := users.ByID(id)
		if u == nil {
			continue
		}
		var unioned service.Mask
		if cur, ok := g.merged[id]; ok {
			unioned = cur.Clone()
			unioned.Or(m)
		} else {
			unioned = m
		}
		delta += g.cache.valueOf(u, unioned) - g.curVal[id]
	}
	return delta
}

// add commits f to the chosen set.
func (g *greedyState) add(f *trajectory.Facility) {
	cov := g.cache.covs[f.ID]
	users := g.cache.src.Users()
	g.merged.Merge(cov)
	for id := range cov {
		u := users.ByID(id)
		if u == nil {
			continue
		}
		v := g.cache.valueOf(u, g.merged[id])
		g.total += v - g.curVal[id]
		g.curVal[id] = v
	}
}

// Greedy runs the straightforward greedy of Section V-A: iteratively add
// the facility with the highest marginal combined service. Ties break on
// facility ID for determinism.
func Greedy(src CoverageSource, facilities []*trajectory.Facility, k int, p query.Params) (Result, error) {
	if k <= 0 || len(facilities) == 0 {
		return Result{}, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	cache, err := newCovCache(src, facilities, p)
	if err != nil {
		return Result{}, err
	}
	return greedyFromCache(cache, facilities, k), nil
}

func greedyFromCache(cache *covCache, facilities []*trajectory.Facility, k int) Result {
	st := newGreedyState(cache)
	remaining := append([]*trajectory.Facility(nil), facilities...)
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].ID < remaining[j].ID })
	var chosen []*trajectory.Facility
	for len(chosen) < k && len(remaining) > 0 {
		bestIdx := -1
		bestGain := -1.0
		for i, f := range remaining {
			if gain := st.marginal(f); gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		f := remaining[bestIdx]
		st.add(f)
		chosen = append(chosen, f)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return Result{
		Facilities:  chosen,
		Value:       st.total,
		UsersServed: cache.usersServed(chosen),
	}
}

// DefaultCandidateSize returns the paper's k' (the two-step pruning
// width): at least k, by default max(2k, k+8), capped at n.
func DefaultCandidateSize(k, n int) int {
	kp := 2 * k
	if kp < k+8 {
		kp = k + 8
	}
	if kp > n {
		kp = n
	}
	return kp
}

// TwoStepGreedy is the paper's MaxkCovRST solution: step 1 selects the
// kPrime facilities with the highest individual service using the
// best-first kMaxRRST search; step 2 runs the greedy on that candidate
// set. kPrime <= 0 selects DefaultCandidateSize(k, len(facilities)).
func TwoStepGreedy(eng *query.Engine, facilities []*trajectory.Facility, k, kPrime int, p query.Params) (Result, error) {
	if k <= 0 || len(facilities) == 0 {
		return Result{}, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	if kPrime <= 0 {
		kPrime = DefaultCandidateSize(k, len(facilities))
	}
	if kPrime < k {
		kPrime = k
	}
	if kPrime > len(facilities) {
		kPrime = len(facilities)
	}
	top, _, err := eng.TopK(facilities, kPrime, p)
	if err != nil {
		return Result{}, err
	}
	candidates := make([]*trajectory.Facility, len(top))
	for i, r := range top {
		candidates[i] = r.Facility
	}
	cache, err := newCovCache(EngineSource{Engine: eng}, candidates, p)
	if err != nil {
		return Result{}, err
	}
	return greedyFromCache(cache, candidates, k), nil
}

// Exact enumerates every size-k subset and returns the best — feasible
// only for small instances; it guards against combinatorial blow-up.
func Exact(src CoverageSource, facilities []*trajectory.Facility, k int, p query.Params) (Result, error) {
	if k <= 0 || len(facilities) == 0 {
		return Result{}, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	const maxSubsets = 5_000_000
	if c := binomial(len(facilities), k); c < 0 || c > maxSubsets {
		return Result{}, fmt.Errorf("maxcov: exact enumeration of C(%d,%d) subsets exceeds limit %d",
			len(facilities), k, maxSubsets)
	}
	cache, err := newCovCache(src, facilities, p)
	if err != nil {
		return Result{}, err
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	best := Result{Value: -1}
	subset := make([]*trajectory.Facility, k)
	var srcBuf, dstBuf []uint64
	if cache.binIdx != nil {
		words := (len(cache.binIdx) + 63) / 64
		srcBuf = make([]uint64, words)
		dstBuf = make([]uint64, words)
	}
	for {
		for i, j := range idx {
			subset[i] = facilities[j]
		}
		var v float64
		if srcBuf != nil {
			v = cache.binarySubsetValue(subset, srcBuf, dstBuf)
		} else {
			v = cache.subsetValue(subset)
		}
		if v > best.Value {
			best.Value = v
			best.Facilities = append(best.Facilities[:0:0], subset...)
		}
		// Next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == len(facilities)-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	best.UsersServed = cache.usersServed(best.Facilities)
	return best, nil
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c < 0 || c > 1<<40 {
			return -1
		}
	}
	return c
}

// GeneticOptions tunes the genetic solver.
type GeneticOptions struct {
	// Population size (0 means 32).
	Population int
	// Generations to evolve (0 means 20, the paper's iteration count).
	Generations int
	// MutationRate is the per-offspring gene replacement probability
	// (0 means 0.2).
	MutationRate float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (o *GeneticOptions) defaults() {
	if o.Population <= 0 {
		o.Population = 32
	}
	if o.Generations <= 0 {
		o.Generations = 20
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.2
	}
}

// Genetic is the Gn-TQ(Z) comparison: a genetic algorithm over k-subsets
// with tournament selection, union crossover, and single-gene mutation.
// Fitness evaluations reuse precomputed coverage masks.
func Genetic(src CoverageSource, facilities []*trajectory.Facility, k int, p query.Params, opts GeneticOptions) (Result, error) {
	if k <= 0 || len(facilities) == 0 {
		return Result{}, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	opts.defaults()
	cache, err := newCovCache(src, facilities, p)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	type individual struct {
		genes   []int // indexes into facilities, sorted, distinct
		fitness float64
	}
	randomSubset := func() []int {
		perm := rng.Perm(len(facilities))[:k]
		sort.Ints(perm)
		return perm
	}
	var srcBuf, dstBuf []uint64
	if cache.binIdx != nil {
		words := (len(cache.binIdx) + 63) / 64
		srcBuf = make([]uint64, words)
		dstBuf = make([]uint64, words)
	}
	subsetBuf := make([]*trajectory.Facility, k)
	evaluate := func(genes []int) float64 {
		for i, g := range genes {
			subsetBuf[i] = facilities[g]
		}
		if srcBuf != nil {
			return cache.binarySubsetValue(subsetBuf, srcBuf, dstBuf)
		}
		return cache.subsetValue(subsetBuf)
	}

	pop := make([]individual, opts.Population)
	for i := range pop {
		g := randomSubset()
		pop[i] = individual{genes: g, fitness: evaluate(g)}
	}
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fitness > best.fitness {
			best = ind
		}
	}

	tournament := func() individual {
		winner := pop[rng.Intn(len(pop))]
		for i := 0; i < 2; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.fitness > winner.fitness {
				winner = c
			}
		}
		return winner
	}
	crossover := func(a, b []int) []int {
		union := map[int]bool{}
		for _, g := range a {
			union[g] = true
		}
		for _, g := range b {
			union[g] = true
		}
		pool := make([]int, 0, len(union))
		for g := range union {
			pool = append(pool, g)
		}
		sort.Ints(pool)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		child := append([]int(nil), pool[:k]...)
		sort.Ints(child)
		return child
	}
	mutate := func(genes []int) {
		if rng.Float64() >= opts.MutationRate {
			return
		}
		has := map[int]bool{}
		for _, g := range genes {
			has[g] = true
		}
		for tries := 0; tries < 10; tries++ {
			repl := rng.Intn(len(facilities))
			if !has[repl] {
				genes[rng.Intn(len(genes))] = repl
				sort.Ints(genes)
				return
			}
		}
	}

	for gen := 0; gen < opts.Generations; gen++ {
		next := make([]individual, 0, opts.Population)
		next = append(next, best) // elitism
		for len(next) < opts.Population {
			a, b := tournament(), tournament()
			child := crossover(a.genes, b.genes)
			mutate(child)
			ind := individual{genes: child, fitness: evaluate(child)}
			if ind.fitness > best.fitness {
				best = ind
			}
			next = append(next, ind)
		}
		pop = next
	}

	chosen := make([]*trajectory.Facility, k)
	for i, g := range best.genes {
		chosen[i] = facilities[g]
	}
	return Result{
		Facilities:  chosen,
		Value:       best.fitness,
		UsersServed: cache.usersServed(chosen),
	}, nil
}
