package maxcov

import (
	"math"
	"math/rand"
	"sort"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// AnnealOptions tunes the simulated-annealing solver.
type AnnealOptions struct {
	// Iterations is the number of proposal steps (0 means 2000).
	Iterations int
	// InitialTemp scales the acceptance of early uphill moves relative
	// to the incumbent value (0 means 0.1: a move 10% worse than the
	// incumbent is accepted with probability 1/e at the start).
	InitialTemp float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (o *AnnealOptions) defaults() {
	if o.Iterations <= 0 {
		o.Iterations = 2000
	}
	if o.InitialTemp <= 0 {
		o.InitialTemp = 0.1
	}
}

// Anneal solves MaxkCovRST with simulated annealing over k-subsets: the
// neighborhood swaps one chosen facility for one outside the subset, and
// the temperature decays geometrically to zero. The paper lists simulated
// annealing (with genetic algorithms and ant colony optimization) among
// the offline alternatives to its greedy solution; this implementation
// makes the comparison runnable.
func Anneal(src CoverageSource, facilities []*trajectory.Facility, k int, p query.Params, opts AnnealOptions) (Result, error) {
	if k <= 0 || len(facilities) == 0 {
		return Result{}, nil
	}
	if k > len(facilities) {
		k = len(facilities)
	}
	opts.defaults()
	cache, err := newCovCache(src, facilities, p)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var srcBuf, dstBuf []uint64
	if cache.binIdx != nil {
		words := (len(cache.binIdx) + 63) / 64
		srcBuf = make([]uint64, words)
		dstBuf = make([]uint64, words)
	}
	subsetBuf := make([]*trajectory.Facility, k)
	evaluate := func(genes []int) float64 {
		for i, g := range genes {
			subsetBuf[i] = facilities[g]
		}
		if srcBuf != nil {
			return cache.binarySubsetValue(subsetBuf, srcBuf, dstBuf)
		}
		return cache.subsetValue(subsetBuf)
	}

	// Start from a random subset.
	cur := rng.Perm(len(facilities))[:k]
	sort.Ints(cur)
	curVal := evaluate(cur)
	best := append([]int(nil), cur...)
	bestVal := curVal

	inCur := make(map[int]bool, k)
	for _, g := range cur {
		inCur[g] = true
	}
	if k < len(facilities) {
		for it := 0; it < opts.Iterations; it++ {
			// Geometric cooling from InitialTemp×max(bestVal,1) to ~0.
			temp := opts.InitialTemp * math.Max(bestVal, 1) *
				math.Pow(0.995, float64(it))
			// Propose: swap a random member for a random outsider.
			pos := rng.Intn(k)
			out := rng.Intn(len(facilities))
			for inCur[out] {
				out = rng.Intn(len(facilities))
			}
			old := cur[pos]
			cur[pos] = out
			val := evaluate(cur)
			accept := val >= curVal
			if !accept && temp > 0 {
				accept = rng.Float64() < math.Exp((val-curVal)/temp)
			}
			if accept {
				delete(inCur, old)
				inCur[out] = true
				curVal = val
				if val > bestVal {
					bestVal = val
					copy(best, cur)
				}
			} else {
				cur[pos] = old
			}
		}
	}
	sort.Ints(best)
	chosen := make([]*trajectory.Facility, k)
	for i, g := range best {
		chosen[i] = facilities[g]
	}
	return Result{
		Facilities:  chosen,
		Value:       bestVal,
		UsersServed: cache.usersServed(chosen),
	}, nil
}
