package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/replog"
	"github.com/trajcover/trajcover/internal/server"
)

// PathReplStatus is the replica-only status endpoint.
const PathReplStatus = "/v1/replstatus"

// ReplicaConfig tunes a replica's follow loop.
type ReplicaConfig struct {
	// Primary is the primary tqserve's base URL.
	Primary string
	// Policy tunes the restored index's compaction.
	Policy trajcover.LivePolicy
	// PollWait is the /v1/changes long-poll window (<= 0: 1s).
	PollWait time.Duration
	// RetryBackoff is the pause after a failed primary round trip
	// (<= 0: 200ms). Bootstraps and polls both back off by it.
	RetryBackoff time.Duration
	// Client is the primary-facing HTTP client (nil: default). It must
	// not carry a Timeout — snapshot streams and long-polls are meant
	// to outlive ordinary request budgets.
	Client *http.Client
	// OnSwap, when non-nil, receives each (re)bootstrapped index after
	// it has caught up to the primary's log head — the hook a serving
	// wrapper uses to swap the new index in (server.Server.SetIndex).
	OnSwap func(*trajcover.LiveShardedIndex)
	// Logf, when non-nil, receives operational events.
	Logf func(format string, args ...any)
}

// ReplicaStatus is the /v1/replstatus document.
type ReplicaStatus struct {
	Primary    string `json:"primary"`
	BootID     string `json:"boot_id"`
	AppliedSeq uint64 `json:"applied_seq"`
	Ready      bool   `json:"ready"`
	Bootstraps uint64 `json:"bootstraps"`
	LastError  string `json:"last_error,omitempty"`
}

// Replica follows one primary: it bootstraps a LiveShardedIndex from
// GET /v1/snapshot, replays the replication tail from GET /v1/changes
// in order, and hands the caught-up index to OnSwap. It re-bootstraps
// — loudly, from a fresh snapshot — whenever the primary's boot
// identity changes (crash + WAL recovery) or the log window trimmed
// past its cursor; the previously served index keeps serving through
// the re-bootstrap (stale reads are still a valid acknowledged
// prefix: the primary's WAL recovery never loses an acked write).
//
// The replica applies entries idempotently: a duplicate insert or a
// not-found delete is the snapshot/tail overlap working as designed
// (the snapshot header's X-Repl-Seq is read before the stream's epoch
// capture, so the tail may begin slightly before the snapshot's edge).
type Replica struct {
	cfg     ReplicaConfig
	client  *http.Client
	primary string

	mu         sync.Mutex
	idx        *trajcover.LiveShardedIndex // serving index (after first swap)
	boot       string
	applied    uint64
	ready      bool
	bootstraps uint64
	lastErr    string
}

// NewReplica builds a replica of the primary at the given base URL.
// Call Run to start following.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.PollWait <= 0 {
		cfg.PollWait = time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 200 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Replica{cfg: cfg, client: client, primary: cfg.Primary}
}

// Ready reports whether the replica has bootstrapped and caught up to
// the log head it observed; it stays true through primary outages (the
// replica serves its last applied state) and re-bootstraps.
func (rep *Replica) Ready() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.ready
}

// Index returns the currently served index (nil before the first
// successful bootstrap).
func (rep *Replica) Index() *trajcover.LiveShardedIndex {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.idx
}

// Status snapshots the replica's replication state.
func (rep *Replica) Status() ReplicaStatus {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return ReplicaStatus{
		Primary:    rep.primary,
		BootID:     rep.boot,
		AppliedSeq: rep.applied,
		Ready:      rep.ready,
		Bootstraps: rep.bootstraps,
		LastError:  rep.lastErr,
	}
}

func (rep *Replica) logf(format string, args ...any) {
	if rep.cfg.Logf != nil {
		rep.cfg.Logf(format, args...)
	}
}

func (rep *Replica) noteErr(err error) {
	rep.mu.Lock()
	rep.lastErr = err.Error()
	rep.mu.Unlock()
}

// errRebootstrap signals a 410 from /v1/changes: the tail cannot
// continue and only a fresh snapshot can.
var errRebootstrap = errors.New("dist: replication history diverged; re-bootstrap")

// Run follows the primary until ctx is cancelled. It never returns a
// partial state: the serving index either is the one from before Run
// or has caught up through OnSwap.
func (rep *Replica) Run(ctx context.Context) {
	for ctx.Err() == nil {
		if err := rep.followOnce(ctx); err != nil && ctx.Err() == nil {
			rep.noteErr(err)
			rep.logf("dist: replica: %v", err)
			select {
			case <-ctx.Done():
			case <-time.After(rep.cfg.RetryBackoff):
			}
		}
	}
}

// followOnce runs one bootstrap + tail session: snapshot, catch up,
// swap, then poll until the session breaks (error or 410).
func (rep *Replica) followOnce(ctx context.Context) error {
	idx, boot, seq, err := rep.Bootstrap(ctx)
	if err != nil {
		return err
	}
	rep.mu.Lock()
	rep.bootstraps++
	rep.mu.Unlock()
	rep.logf("dist: replica bootstrapped from %s (boot %s, seq %d, len %d)", rep.primary, boot, seq, idx.Len())

	swapped := false
	applied := seq
	for ctx.Err() == nil {
		cr, err := rep.fetchChanges(ctx, boot, applied)
		if err != nil {
			if errors.Is(err, errRebootstrap) {
				return err
			}
			// The primary is unreachable: keep serving what we have and
			// keep trying — the history we hold stays a valid prefix.
			if !swapped {
				return err // bootstrap session never went live; restart it
			}
			rep.noteErr(err)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(rep.cfg.RetryBackoff):
			}
			continue
		}
		for _, e := range cr.Entries {
			if err := applyEntry(idx, e); err != nil {
				return fmt.Errorf("apply seq %d: %w", e.Seq, err)
			}
			applied = e.Seq
		}
		rep.mu.Lock()
		rep.applied = applied
		rep.mu.Unlock()
		// Caught up to the head the primary reported with this batch:
		// everything acknowledged before the poll is applied, so the
		// index is safe to serve.
		if !swapped && applied >= cr.Seq {
			swapped = true
			rep.mu.Lock()
			rep.idx = idx
			rep.boot = boot
			rep.ready = true
			rep.mu.Unlock()
			if rep.cfg.OnSwap != nil {
				rep.cfg.OnSwap(idx)
			}
		}
	}
	return nil
}

// Bootstrap downloads and restores one snapshot, returning the index,
// the primary's replication boot identity, and the sequence cursor the
// tail replay starts after. Exported for the corruption sweep tests;
// Run is the normal entry point.
func (rep *Replica) Bootstrap(ctx context.Context) (*trajcover.LiveShardedIndex, string, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.primary+server.PathSnapshot, nil)
	if err != nil {
		return nil, "", 0, err
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		return nil, "", 0, fmt.Errorf("snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, "", 0, fmt.Errorf("snapshot: %s: %s", resp.Status, body)
	}
	boot := resp.Header.Get("X-Repl-Boot")
	if boot == "" {
		return nil, "", 0, fmt.Errorf("snapshot: primary at %s is not replicating (no X-Repl-Boot; is it multi-tenant or an old build?)", rep.primary)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Repl-Seq"), 10, 64)
	if err != nil {
		return nil, "", 0, fmt.Errorf("snapshot: bad X-Repl-Seq %q: %v", resp.Header.Get("X-Repl-Seq"), err)
	}
	idx, err := trajcover.ReadLiveSnapshot(resp.Body, rep.cfg.Policy)
	if err != nil {
		// Truncated or corrupted stream: fail loudly, restore nothing.
		return nil, "", 0, fmt.Errorf("snapshot restore: %w", err)
	}
	return idx, boot, seq, nil
}

// fetchChanges long-polls one tail batch. A 410 (boot change or trim)
// maps to errRebootstrap.
func (rep *Replica) fetchChanges(ctx context.Context, boot string, after uint64) (*server.ChangesResponse, error) {
	url := fmt.Sprintf("%s%s?after=%d&boot=%s&wait_ms=%d", rep.primary, server.PathChanges, after, boot, rep.cfg.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("changes: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("changes: %w", err)
	}
	if resp.StatusCode == http.StatusGone {
		return nil, fmt.Errorf("%w: %s", errRebootstrap, data)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("changes: %s: %s", resp.Status, data)
	}
	var cr server.ChangesResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		return nil, fmt.Errorf("changes: bad body: %v", err)
	}
	return &cr, nil
}

// applyEntry replays one replicated write. Overlap with the snapshot
// is expected and harmless (duplicate insert, not-found delete);
// anything else — a malformed trajectory, a degraded index — is a
// real divergence and fails the session loudly.
func applyEntry(idx *trajcover.LiveShardedIndex, e replog.Entry) error {
	switch e.Op {
	case replog.OpInsert:
		pts := make([]trajcover.Point, len(e.Points))
		for i, p := range e.Points {
			pts[i] = trajcover.Pt(p[0], p[1])
		}
		u, err := trajcover.NewTrajectory(trajcover.ID(e.ID), pts)
		if err != nil {
			return err
		}
		if err := idx.Insert(u); err != nil && !errors.Is(err, trajcover.ErrDuplicateID) {
			return err
		}
		return nil
	case replog.OpDelete:
		_, err := idx.Delete(trajcover.ID(e.ID))
		return err
	default:
		return fmt.Errorf("unknown replicated op %q", e.Op)
	}
}

// ReplicaHandler wraps a backend server's handler with replica
// semantics: writes and WAL ops answer 403 (the primary owns them),
// reads answer 503 + Retry-After until the replica's first catch-up,
// /healthz reports "syncing" (503) until then, and /v1/replstatus
// serves the replication cursor. After the first catch-up everything
// passes through — including during primary outages and
// re-bootstraps, when the last applied state keeps serving.
func ReplicaHandler(inner http.Handler, rep *Replica, retryAfter time.Duration) http.Handler {
	ra := strconv.Itoa(int((retryAfter + time.Second - 1) / time.Second))
	if retryAfter <= 0 {
		ra = "1"
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case server.PathInsert, server.PathDelete, server.PathCompact, server.PathCheckpoint:
			writeJSON(w, http.StatusForbidden, server.ErrorResponse{Error: fmt.Sprintf("replica is read-only: send writes to the primary (%s) or the frontend", rep.primary)})
			return
		case PathReplStatus:
			writeJSON(w, http.StatusOK, rep.Status())
			return
		}
		if !rep.Ready() {
			if r.URL.Path == server.PathHealth {
				w.Header().Set("Retry-After", ra)
				writeJSON(w, http.StatusServiceUnavailable, server.HealthResponse{Status: "syncing"})
				return
			}
			w.Header().Set("Retry-After", ra)
			writeJSON(w, http.StatusServiceUnavailable, server.ErrorResponse{Error: "replica syncing: not caught up to the primary yet"})
			return
		}
		inner.ServeHTTP(w, r)
	})
}
