package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/replog"
	"github.com/trajcover/trajcover/internal/server"
)

// newPrimary builds a replicating tqserve core over the given corpus:
// a live index with a replication log wired into the server.
func newPrimary(t *testing.T, users []*trajcover.Trajectory, logCap int) (*server.Server, *httptest.Server) {
	t.Helper()
	idx, err := trajcover.NewLiveShardedIndex(users, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, server.Config{
		Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second,
		ReplLog: replog.New(logCap),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// newReplicaStack builds the serving side of a replica exactly as
// cmd/tqserve's -replica-of mode does: a placeholder index behind a
// server whose SetIndex is the replica's swap hook, wrapped in
// ReplicaHandler. Run is NOT started; the caller owns the follow loop.
func newReplicaStack(t *testing.T, primary string) (*Replica, *httptest.Server) {
	t.Helper()
	empty, err := trajcover.NewLiveShardedIndex(nil, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(empty, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	rep := NewReplica(ReplicaConfig{
		Primary:      primary,
		Policy:       trajcover.LivePolicy{Manual: true},
		PollWait:     100 * time.Millisecond,
		RetryBackoff: 20 * time.Millisecond,
		OnSwap:       srv.SetIndex,
	})
	ts := httptest.NewServer(ReplicaHandler(srv.Handler(), rep, time.Second))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return rep, ts
}

func replStatus(t *testing.T, ts *httptest.Server) ReplicaStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + PathReplStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ReplicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicaFollowAndServe is the replication happy path: a replica
// bootstraps from the primary's snapshot, tails its changes feed, and
// serves byte-identical answers — before catch-up it answers 503
// syncing, and writes answer 403 forever.
func TestReplicaFollowAndServe(t *testing.T) {
	users := testUsers(260, 401)
	facs := testFacilities(6, 5, 402)
	fjs := facilityJSONOf(facs)
	srv, primTS := newPrimary(t, users[:200], replog.DefaultCap)
	rep, repTS := newReplicaStack(t, primTS.URL)

	topkBody := mustBody(t, server.QueryRequest{Facilities: fjs, K: 4, Psi: 40})

	// Before the follow loop starts: syncing, loudly.
	st, body, hdr := postTo(t, repTS.Client(), repTS.URL+server.PathTopK, topkBody)
	if st != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("pre-sync topk: %d %s, want 503+Retry-After", st, body)
	}
	if !strings.Contains(string(body), "syncing") {
		t.Fatalf("pre-sync topk body: %s", body)
	}
	resp, err := repTS.Client().Get(repTS.URL + server.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-sync healthz: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rep.Run(ctx)
	waitUntil(t, "first catch-up", rep.Ready)

	check := func(stage string) {
		t.Helper()
		stP, want, _ := postTo(t, primTS.Client(), primTS.URL+server.PathTopK, topkBody)
		stR, got, _ := postTo(t, repTS.Client(), repTS.URL+server.PathTopK, topkBody)
		if stP != http.StatusOK || stR != http.StatusOK {
			t.Fatalf("%s: topk primary %d, replica %d", stage, stP, stR)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: replica topk diverged\n got: %s\nwant: %s", stage, got, want)
		}
	}
	check("after bootstrap")

	// Writes land on the primary; the replica tails them. Count the
	// log-worthy ops (acked inserts + found deletes) to know the target.
	var acked uint64 = 0
	for _, u := range users[200:260] {
		pts := make([][2]float64, len(u.Points))
		for j, p := range u.Points {
			pts[j] = [2]float64{p.X, p.Y}
		}
		st, body, _ := postTo(t, primTS.Client(), primTS.URL+server.PathInsert,
			mustBody(t, server.InsertRequest{ID: uint32(u.ID), Points: pts}))
		if st != http.StatusOK {
			t.Fatalf("primary insert: %d %s", st, body)
		}
		acked++
	}
	for id := uint32(0); id < 30; id += 3 {
		st, _, _ := postTo(t, primTS.Client(), primTS.URL+server.PathDelete,
			mustBody(t, server.DeleteRequest{ID: id}))
		if st != http.StatusOK {
			t.Fatalf("primary delete: %d", st)
		}
		acked++
	}
	waitUntil(t, "tail catch-up", func() bool { return replStatus(t, repTS).AppliedSeq >= acked })
	check("after tail")

	// Replicas never take writes, even caught up.
	st, body, _ = postTo(t, repTS.Client(), repTS.URL+server.PathInsert,
		mustBody(t, server.InsertRequest{ID: 99999, Points: [][2]float64{{1, 1}, {2, 2}}}))
	if st != http.StatusForbidden {
		t.Fatalf("replica insert: %d %s, want 403", st, body)
	}
	if !strings.Contains(string(body), "primary") {
		t.Fatalf("replica 403 does not name the primary: %s", body)
	}
	if got := replStatus(t, repTS); !got.Ready || got.Bootstraps != 1 {
		t.Fatalf("replstatus after follow: %+v", got)
	}
	_ = srv
}

// TestReplicaReBootstrapOnPrimaryRestart: when the primary comes back
// with a new replication boot identity (crash + WAL recovery), the
// replica's tail gets 410 and it re-bootstraps from a fresh snapshot —
// while the old index keeps serving the stale (still valid) prefix.
func TestReplicaReBootstrapOnPrimaryRestart(t *testing.T) {
	users := testUsers(220, 411)
	facs := testFacilities(5, 5, 412)
	fjs := facilityJSONOf(facs)
	topkBody := mustBody(t, server.QueryRequest{Facilities: fjs, K: 3, Psi: 40})

	srvA, tsA := newPrimary(t, users[:150], replog.DefaultCap)
	_ = srvA
	var handler atomic.Value // http.Handler
	handler.Store(tsA.Config.Handler)
	outer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer outer.Close()

	rep, repTS := newReplicaStack(t, outer.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rep.Run(ctx)
	waitUntil(t, "first catch-up", rep.Ready)
	bootA := replStatus(t, repTS).BootID

	// "Restart" the primary: a new process over a longer acked prefix,
	// with a fresh boot identity.
	srvB, tsB := newPrimary(t, users[:180], replog.DefaultCap)
	_ = srvB
	handler.Store(tsB.Config.Handler)

	waitUntil(t, "re-bootstrap", func() bool {
		st := replStatus(t, repTS)
		return st.Bootstraps >= 2 && st.BootID != bootA
	})
	waitUntil(t, "post-restart convergence", func() bool {
		_, want, _ := postTo(t, tsB.Client(), tsB.URL+server.PathTopK, topkBody)
		_, got, _ := postTo(t, repTS.Client(), repTS.URL+server.PathTopK, topkBody)
		return bytes.Equal(got, want)
	})
	if st := replStatus(t, repTS); !st.Ready {
		t.Fatalf("replica not ready after re-bootstrap: %+v", st)
	}
}

// stubPrimary serves fixed snapshot bytes and a fixed changes body —
// the adversarial primary for the corruption sweep.
func stubPrimary(t *testing.T, snapshot []byte, boot, seq string, changes []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case server.PathSnapshot:
			if boot != "" {
				w.Header().Set("X-Repl-Boot", boot)
			}
			w.Header().Set("X-Repl-Seq", seq)
			w.Write(snapshot)
		case server.PathChanges:
			w.Write(changes)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestReplicaBootstrapCorruption is the satellite-4 sweep: a replica
// bootstrapping from truncated or bit-flipped snapshot bytes must fail
// loudly or restore data identical to the original — never panic,
// never serve silently corrupted state. (The TQLIVE01 container CRCs
// its header and every frame, so a flip that restores cleanly can only
// have hit bytes the format ignores.)
func TestReplicaBootstrapCorruption(t *testing.T) {
	users := testUsers(150, 421)
	facs := testFacilities(5, 5, 422)
	idx, err := trajcover.NewLiveShardedIndex(users, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}
	wantVals, err := idx.ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}

	type mutation struct {
		name string
		data []byte
		boot string
		seq  string
	}
	muts := []mutation{
		{"control (no corruption)", valid, "aaaaaaaaaaaaaaaa", "0"},
		{"missing boot header", valid, "", "0"},
		{"garbage seq header", valid, "aaaaaaaaaaaaaaaa", "not-a-number"},
		{"empty body", nil, "aaaaaaaaaaaaaaaa", "0"},
	}
	for _, cut := range []int{1, 7, len(valid) / 3, len(valid) / 2, len(valid) - 1} {
		muts = append(muts, mutation{fmt.Sprintf("truncated to %d bytes", cut), valid[:cut], "aaaaaaaaaaaaaaaa", "0"})
	}
	for _, off := range []int{0, 9, 13, len(valid) / 4, len(valid) / 2, 3 * len(valid) / 4, len(valid) - 5} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x40
		muts = append(muts, mutation{fmt.Sprintf("bit flip at offset %d", off), flipped, "aaaaaaaaaaaaaaaa", "0"})
	}

	ctx := context.Background()
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			ts := stubPrimary(t, m.data, m.boot, m.seq, []byte(`{"boot_id":"aaaaaaaaaaaaaaaa","seq":0,"entries":[]}`))
			rep := NewReplica(ReplicaConfig{Primary: ts.URL, Policy: trajcover.LivePolicy{Manual: true}})
			got, _, _, err := rep.Bootstrap(ctx)
			if m.name == "control (no corruption)" {
				if err != nil {
					t.Fatalf("control bootstrap failed: %v", err)
				}
			}
			if err != nil {
				if got != nil {
					t.Fatalf("error %v returned alongside an index", err)
				}
				return // loud failure: the contract held
			}
			// Restored cleanly: it must be EXACTLY the original corpus.
			if got.Len() != idx.Len() {
				t.Fatalf("silent corruption: restored %d trajectories, original %d", got.Len(), idx.Len())
			}
			gotVals, err := got.ServiceValues(facs, q, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gotVals {
				if gotVals[i] != wantVals[i] {
					t.Fatalf("silent corruption: value[%d] = %v, want %v", i, gotVals[i], wantVals[i])
				}
			}
		})
	}
}

// TestReplicaTailCorruption: a valid snapshot followed by a corrupted
// changes feed must never produce a ready replica serving diverged
// state — the follow loop fails the session loudly and retries.
func TestReplicaTailCorruption(t *testing.T) {
	users := testUsers(80, 431)
	idx, err := trajcover.NewLiveShardedIndex(users, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name      string
		changes   string
		wantReady bool
		wantErr   string
	}{
		{"clean empty tail", `{"boot_id":"aaaaaaaaaaaaaaaa","seq":0,"entries":[]}`, true, ""},
		{"garbage json", `not json at all`, false, "changes"},
		{"unknown op", `{"boot_id":"aaaaaaaaaaaaaaaa","seq":1,"entries":[{"seq":1,"op":"mangle","id":5}]}`, false, "apply seq 1"},
		{"unbuildable trajectory", `{"boot_id":"aaaaaaaaaaaaaaaa","seq":1,"entries":[{"seq":1,"op":"insert","id":5,"points":[]}]}`, false, "apply seq 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := stubPrimary(t, valid, "aaaaaaaaaaaaaaaa", "0", []byte(tc.changes))
			rep := NewReplica(ReplicaConfig{
				Primary:      ts.URL,
				Policy:       trajcover.LivePolicy{Manual: true},
				PollWait:     20 * time.Millisecond,
				RetryBackoff: 10 * time.Millisecond,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			go rep.Run(ctx)
			if tc.wantReady {
				waitUntil(t, "clean-tail catch-up", rep.Ready)
				return
			}
			waitUntil(t, "loud tail failure", func() bool { return rep.Status().LastError != "" })
			st := rep.Status()
			if st.Ready {
				t.Fatalf("replica went ready over a corrupted tail: %+v", st)
			}
			if !strings.Contains(st.LastError, tc.wantErr) {
				t.Fatalf("last error %q does not mention %q", st.LastError, tc.wantErr)
			}
		})
	}
}
