// Package dist is the multi-process serving tier over tqserve: shard
// groups of replicated backend processes behind a scatter-gather
// frontend, with the same exact-answer discipline as a single process.
//
// Topology. The corpus is partitioned across N shard groups by the
// same FNV-1a hash the in-process partitioner uses (RouteID), so a
// trajectory's owning group is a pure function of its ID. Each group
// is one primary tqserve (the write owner, WAL-backed) plus any number
// of replicas — read-only processes that bootstrap from the primary's
// GET /v1/snapshot and then follow its replication log over GET
// /v1/changes (see internal/replog). The frontend owns the group map:
// it forwards each write to its owner group's primary, scatters reads
// across the groups (any healthy member serves a read), and merges.
//
// Exactness across the wire. /v1/topk is NOT answered by merging
// per-group top-k lists — that would be wrong (a global winner can be
// mediocre in every group) and would do exact work for facilities the
// bound search never needs. Instead the frontend runs the SAME
// branch-and-bound merge as the in-process sharded index, one level
// up: one cheap POST /v1/upperbounds per group seeds a
// query.Exploration per (facility, group), and shard.MergeExplorations
// schedules them by summed upper bound; relaxing a remote exploration
// is one exact /v1/servicevalues RPC for that single facility. A
// facility whose summed bounds cannot reach the top k is pruned
// without any group ever computing its exact value — the paper's
// shard-prune, preserved across process boundaries. Answers are
// byte-identical to one process over the same corpus for integral
// scenarios (Binary), and equal up to float summation order otherwise
// — the same contract the in-process sharded merge documents.
//
// Degradation. Per-member health probes remove unresponsive backends
// and readmit them when they recover; reads fail over among a group's
// members mid-query. When an entire group is unreachable the default
// answer is 503 with Retry-After (the frontend never silently narrows
// the corpus); a client that opts in with ?partial=1 instead gets 200
// over the surviving groups plus a partial flag naming the missing
// ones.
package dist

import (
	"fmt"
	"strings"
)

// Group is one shard group: member base URLs, Members[0] the primary
// (the write owner and the replicas' bootstrap source).
type Group struct {
	Members []string
}

// ParseMap parses a backend map flag: comma-separated shard groups,
// each a |-separated list of member base URLs with the primary first.
//
//	http://a:8001|http://a:8002,http://b:8001
//
// is two shard groups, the first with one replica.
func ParseMap(s string) ([]Group, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("dist: empty backend map")
	}
	var groups []Group
	for gi, part := range strings.Split(s, ",") {
		var g Group
		for _, m := range strings.Split(part, "|") {
			m = strings.TrimSuffix(strings.TrimSpace(m), "/")
			if m == "" {
				return nil, fmt.Errorf("dist: group %d has an empty member", gi)
			}
			if !strings.HasPrefix(m, "http://") && !strings.HasPrefix(m, "https://") {
				return nil, fmt.Errorf("dist: member %q: want an http(s):// base URL", m)
			}
			g.Members = append(g.Members, m)
		}
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("dist: group %d is empty", gi)
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// RouteID maps a trajectory ID to its owning shard group — the same
// FNV-1a over the ID's four little-endian bytes as the in-process hash
// partitioner (shard.Hash), so a corpus split across groups by RouteID
// partitions exactly like one process's hash-sharded index.
func RouteID(id uint32, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < 4; i++ {
		h ^= id >> (8 * i) & 0xff
		h *= prime32
	}
	return int(h % uint32(n))
}
