package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/server"
	"github.com/trajcover/trajcover/internal/shard"
)

// FrontendConfig tunes the scatter-gather frontend. The zero value
// probes every 250ms, gives each backend RPC 2s, serves requests under
// a 2s default deadline capped at 30s, and hints 1s retries.
type FrontendConfig struct {
	// Groups is the shard-group map (ParseMap); at least one group.
	Groups []Group
	// RPCTimeout bounds one backend call (<= 0: 2s).
	RPCTimeout time.Duration
	// DefaultTimeout is the per-request deadline when the request names
	// none (<= 0: 2s); MaxTimeout caps timeout_ms (<= 0: 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ProbeInterval is the health-probe period (<= 0: 250ms).
	ProbeInterval time.Duration
	// MaxBodyBytes caps request bodies (<= 0: 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint on transient rejections
	// (<= 0: 1s).
	RetryAfter time.Duration
	// Client is the backend HTTP client (nil: http.DefaultTransport).
	Client *http.Client
	// Logf, when non-nil, receives operational events (member removal
	// and readmission).
	Logf func(format string, args ...any)
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// feMember is one backend process. healthy is the probe's verdict,
// flipped false eagerly by any failed RPC (removal) and true again
// only by a successful probe (readmission).
type feMember struct {
	url     string
	healthy atomic.Bool
}

// feGroup is one shard group's members; members[0] is the primary.
type feGroup struct {
	id      int
	members []*feMember
	rr      atomic.Uint32 // read round-robin cursor
}

// Frontend owns the shard-group map and serves the tqserve wire API by
// scattering over the groups. Construct with NewFrontend, serve
// Handler, stop with Close.
type Frontend struct {
	cfg        FrontendConfig
	groups     []*feGroup
	mux        *http.ServeMux
	retryAfter string
	draining   atomic.Bool
	start      time.Time
	probeStop  chan struct{}
	probeDone  chan struct{}
	closeOnce  sync.Once

	requests  atomic.Uint64
	errs      atomic.Uint64
	partials  atomic.Uint64
	failovers atomic.Uint64
	boundRPCs atomic.Uint64
	exactRPCs atomic.Uint64
	pruned    atomic.Uint64 // facilities answered without an exact RPC
}

// NewFrontend builds a frontend over the group map and starts its
// health-probe loop. Members start healthy (optimistic: the first
// failed RPC or probe removes them).
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("dist: frontend needs at least one shard group")
	}
	cfg = cfg.withDefaults()
	fe := &Frontend{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		retryAfter: strconv.Itoa(int((cfg.RetryAfter + time.Second - 1) / time.Second)),
		start:      time.Now(),
		probeStop:  make(chan struct{}),
		probeDone:  make(chan struct{}),
	}
	for gi, g := range cfg.Groups {
		if len(g.Members) == 0 {
			return nil, fmt.Errorf("dist: group %d is empty", gi)
		}
		fg := &feGroup{id: gi}
		for _, m := range g.Members {
			fm := &feMember{url: m}
			fm.healthy.Store(true)
			fg.members = append(fg.members, fm)
		}
		fe.groups = append(fe.groups, fg)
	}
	fe.mux.HandleFunc(server.PathTopK, fe.requirePost(fe.handleTopK))
	fe.mux.HandleFunc(server.PathServiceValues, fe.requirePost(fe.handleServiceValues))
	fe.mux.HandleFunc(server.PathInsert, fe.requirePost(func(w http.ResponseWriter, r *http.Request) {
		fe.handleWrite(w, r, server.PathInsert)
	}))
	fe.mux.HandleFunc(server.PathDelete, fe.requirePost(func(w http.ResponseWriter, r *http.Request) {
		fe.handleWrite(w, r, server.PathDelete)
	}))
	fe.mux.HandleFunc(server.PathHealth, fe.handleHealth)
	fe.mux.HandleFunc(server.PathStats, fe.handleStats)
	go fe.probeLoop()
	return fe, nil
}

// Handler returns the HTTP handler serving the frontend API.
func (fe *Frontend) Handler() http.Handler { return fe.mux }

// BeginDrain flips the frontend into draining: /healthz answers 503 and
// new work is rejected with 503 + Retry-After. Idempotent.
func (fe *Frontend) BeginDrain() { fe.draining.Store(true) }

// Close stops the health-probe loop. Idempotent.
func (fe *Frontend) Close() {
	fe.closeOnce.Do(func() { close(fe.probeStop) })
	<-fe.probeDone
}

func (fe *Frontend) logf(format string, args ...any) {
	if fe.cfg.Logf != nil {
		fe.cfg.Logf(format, args...)
	}
}

// probeLoop polls every member's /healthz. Any 200 — "ok" or
// "degraded" — readmits: a degraded backend still serves reads, and
// writes answer their own 503s. Non-200 or transport failure removes.
func (fe *Frontend) probeLoop() {
	defer close(fe.probeDone)
	tick := time.NewTicker(fe.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-fe.probeStop:
			return
		case <-tick.C:
		}
		for _, g := range fe.groups {
			for _, m := range g.members {
				up := fe.probe(m)
				if was := m.healthy.Swap(up); was != up {
					if up {
						fe.logf("dist: readmitted %s (group %d)", m.url, g.id)
					} else {
						fe.logf("dist: removed %s (group %d)", m.url, g.id)
					}
				}
			}
		}
	}
}

func (fe *Frontend) probe(m *feMember) bool {
	ctx, cancel := context.WithTimeout(context.Background(), fe.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+server.PathHealth, nil)
	if err != nil {
		return false
	}
	resp, err := fe.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// permanentError is a backend 4xx: the request itself is at fault, so
// failing over to another member would only repeat it. Relayed as-is.
type permanentError struct {
	status int
	body   []byte
}

func (e *permanentError) Error() string { return fmt.Sprintf("backend %d: %s", e.status, e.body) }

// groupError means every member of one shard group failed a read.
type groupError struct {
	group int
	err   error
}

func (e *groupError) Error() string {
	return fmt.Sprintf("shard group %d unavailable: %v", e.group, e.err)
}
func (e *groupError) Unwrap() error { return e.err }

// post runs one backend RPC under the per-call timeout and decodes a
// 200 body into out. Non-200 becomes a permanentError (4xx except 429)
// or a transient error (everything else).
func (fe *Frontend) post(ctx context.Context, m *feMember, path string, body []byte, out any) error {
	rctx, cancel := context.WithTimeout(ctx, fe.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, m.url+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := fe.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return &permanentError{status: resp.StatusCode, body: data}
		}
		return fmt.Errorf("%s %s: %s", m.url, resp.Status, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("%s: bad response body: %v", m.url, err)
	}
	return nil
}

// readGroup posts a read to some member of g, failing over across the
// group: healthy members first in round-robin order, then — in case
// the probe's verdicts are stale — the rest. A member that fails is
// removed on the spot; a 4xx aborts the failover (the request is at
// fault). When every member fails the caller gets a groupError wrapping
// the first failure.
func (fe *Frontend) readGroup(ctx context.Context, g *feGroup, path string, body []byte, out any) error {
	n := len(g.members)
	start := int(g.rr.Add(1)) % n
	tried := make([]bool, n)
	var firstErr error
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			mi := (start + i) % n
			m := g.members[mi]
			if tried[mi] || (pass == 0 && !m.healthy.Load()) {
				continue
			}
			if err := ctx.Err(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return &groupError{group: g.id, err: firstErr}
			}
			tried[mi] = true
			err := fe.post(ctx, m, path, body, out)
			if err == nil {
				return nil
			}
			var perm *permanentError
			if errors.As(err, &perm) {
				return err
			}
			m.healthy.Store(false)
			fe.failovers.Add(1)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no members")
	}
	return &groupError{group: g.id, err: firstErr}
}

func (fe *Frontend) requirePost(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, server.ErrorResponse{Error: "use POST"})
			return
		}
		h(w, r)
	}
}

// admit gates a handler on drain state and reads the capped body; a
// false return means admit already answered.
func (fe *Frontend) admit(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	fe.requests.Add(1)
	if fe.draining.Load() {
		fe.errs.Add(1)
		fe.rejectRetryable(w, http.StatusServiceUnavailable, "frontend draining")
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, fe.cfg.MaxBodyBytes))
	if err != nil {
		fe.errs.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, server.ErrorResponse{Error: err.Error()})
		return nil, false
	}
	return body, true
}

func (fe *Frontend) rejectRetryable(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", fe.retryAfter)
	writeJSON(w, status, server.ErrorResponse{Error: msg})
}

func (fe *Frontend) requestTimeout(timeoutMS int64) time.Duration {
	d := fe.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > fe.cfg.MaxTimeout {
			d = fe.cfg.MaxTimeout
		}
	}
	return d
}

// failRead answers a failed scatter/merge: an expired request deadline
// is 504 (mirroring the backends' errResponse contract), anything else
// is a transient 503 with Retry-After — the group map has no healthy
// owner for part of the corpus right now.
func (fe *Frontend) failRead(w http.ResponseWriter, ctx context.Context, err error) {
	fe.errs.Add(1)
	var perm *permanentError
	if errors.As(err, &perm) {
		// Relay the backend's own verdict on the request.
		writeRaw(w, perm.status, perm.body)
		return
	}
	// 504 only on genuine deadline expiry. A scatter that died mid-merge
	// cancels its own context (sc.fail), and that self-inflicted
	// cancellation is a transient backend failure, not a timeout — it
	// must fall through to 503 + Retry-After so clients retry.
	if errors.Is(ctx.Err(), context.DeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		writeJSON(w, http.StatusGatewayTimeout, server.ErrorResponse{Error: err.Error()})
		return
	}
	fe.rejectRetryable(w, http.StatusServiceUnavailable, err.Error())
}

// PartialTopKResponse is the /v1/topk?partial=1 body when shard groups
// were missing: the exact top k over the surviving groups' corpus,
// plus the flag and the missing group indexes. With no groups missing
// the plain TopKResponse is served byte-identically to a backend's.
type PartialTopKResponse struct {
	Results       []server.RankedJSON `json:"results"`
	Partial       bool                `json:"partial"`
	MissingGroups []int               `json:"missing_groups"`
}

// PartialValuesResponse is the /v1/servicevalues?partial=1 counterpart.
type PartialValuesResponse struct {
	Values        []float64 `json:"values"`
	Partial       bool      `json:"partial"`
	MissingGroups []int     `json:"missing_groups"`
}

// scatterBounds runs the upper-bound scatter: one /v1/upperbounds RPC
// per group over the full facility list. It returns per-group bounds
// (nil for failed groups), the missing group indexes, and the first
// failure.
func (fe *Frontend) scatterBounds(ctx context.Context, body []byte, nFacs int) (bounds [][]float64, missing []int, firstErr error) {
	bounds = make([][]float64, len(fe.groups))
	gerrs := make([]error, len(fe.groups))
	var wg sync.WaitGroup
	for gi, g := range fe.groups {
		wg.Add(1)
		go func(gi int, g *feGroup) {
			defer wg.Done()
			fe.boundRPCs.Add(1)
			var resp server.BoundsResponse
			err := fe.readGroup(ctx, g, server.PathUpperBounds, body, &resp)
			if err == nil && len(resp.Bounds) != nFacs {
				err = fmt.Errorf("group %d answered %d bounds for %d facilities", gi, len(resp.Bounds), nFacs)
			}
			if err != nil {
				gerrs[gi] = err
				return
			}
			bounds[gi] = resp.Bounds
		}(gi, g)
	}
	wg.Wait()
	for gi, err := range gerrs {
		if err != nil {
			missing = append(missing, gi)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return bounds, missing, firstErr
}

func (fe *Frontend) handleTopK(w http.ResponseWriter, r *http.Request) {
	body, ok := fe.admit(w, r)
	if !ok {
		return
	}
	req, facs, _, err := server.DecodeQueryRequest(body, true)
	if err != nil {
		fe.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
		return
	}
	partial := r.URL.Query().Get("partial") == "1"
	ctx, cancel := context.WithTimeout(r.Context(), fe.requestTimeout(req.TimeoutMS))
	defer cancel()

	sc := newScatter(fe, ctx, cancel, req, facs)
	bounds, missing, scErr := fe.scatterBounds(ctx, sc.allFacsBody(), len(facs))
	if scErr != nil && (!partial || len(missing) == len(fe.groups)) {
		fe.failRead(w, ctx, scErr)
		return
	}

	exps := sc.explorations(bounds)
	res, err := shard.MergeExplorations(ctx, facs, exps, req.K, req.Workers, nil)
	if rpcErr := sc.err(); rpcErr != nil {
		// A group answered its bounds, then lost every member before an
		// exact RPC landed. The merged state is unusable even in partial
		// mode — the client retries against the new group health.
		fe.failRead(w, ctx, rpcErr)
		return
	}
	if err != nil {
		fe.failRead(w, ctx, err)
		return
	}
	for _, row := range exps {
		paid := false
		for _, e := range row {
			if re, ok := e.(*remoteExploration); ok && re.paid {
				paid = true
				break
			}
		}
		if !paid {
			fe.pruned.Add(1)
		}
	}
	if len(missing) > 0 {
		fe.partials.Add(1)
		writeJSON(w, http.StatusOK, PartialTopKResponse{Results: toRankedJSON(res), Partial: true, MissingGroups: missing})
		return
	}
	writeRaw(w, http.StatusOK, server.MarshalTopKResponse(res))
}

func (fe *Frontend) handleServiceValues(w http.ResponseWriter, r *http.Request) {
	body, ok := fe.admit(w, r)
	if !ok {
		return
	}
	req, facs, _, err := server.DecodeQueryRequest(body, false)
	if err != nil {
		fe.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
		return
	}
	partial := r.URL.Query().Get("partial") == "1"
	ctx, cancel := context.WithTimeout(r.Context(), fe.requestTimeout(req.TimeoutMS))
	defer cancel()

	// Scatter the whole batch to every group; the total service value
	// of a facility is the sum of its per-group values (the groups
	// partition the corpus). Sums run in group order — deterministic,
	// and exact (hence byte-identical to one process) for integral
	// scenarios.
	fwd := marshalQuery(req, req.Facilities)
	values := make([][]float64, len(fe.groups))
	gerrs := make([]error, len(fe.groups))
	var wg sync.WaitGroup
	for gi, g := range fe.groups {
		wg.Add(1)
		go func(gi int, g *feGroup) {
			defer wg.Done()
			var resp server.ValuesResponse
			err := fe.readGroup(ctx, g, server.PathServiceValues, fwd, &resp)
			if err == nil && len(resp.Values) != len(facs) {
				err = fmt.Errorf("group %d answered %d values for %d facilities", gi, len(resp.Values), len(facs))
			}
			if err != nil {
				gerrs[gi] = err
				return
			}
			values[gi] = resp.Values
		}(gi, g)
	}
	wg.Wait()
	var missing []int
	var scErr error
	for gi, err := range gerrs {
		if err != nil {
			missing = append(missing, gi)
			if scErr == nil {
				scErr = err
			}
		}
	}
	if scErr != nil && (!partial || len(missing) == len(fe.groups)) {
		fe.failRead(w, ctx, scErr)
		return
	}
	sums := make([]float64, len(facs))
	for _, vs := range values {
		if vs == nil {
			continue
		}
		for i, v := range vs {
			sums[i] += v
		}
	}
	if len(missing) > 0 {
		fe.partials.Add(1)
		writeJSON(w, http.StatusOK, PartialValuesResponse{Values: sums, Partial: true, MissingGroups: missing})
		return
	}
	writeRaw(w, http.StatusOK, server.MarshalValuesResponse(sums))
}

// handleWrite forwards an insert/delete to its owner group's primary —
// never a replica — and relays the primary's verdict verbatim (status,
// body, and Retry-After, so the backends' degraded-mode contract
// passes through). An unreachable primary is a transient 503: replicas
// cannot accept the write, and the client retries after the hint.
func (fe *Frontend) handleWrite(w http.ResponseWriter, r *http.Request, path string) {
	body, ok := fe.admit(w, r)
	if !ok {
		return
	}
	var id uint32
	var timeoutMS int64
	if path == server.PathInsert {
		req, _, err := server.DecodeInsertRequest(body)
		if err != nil {
			fe.errs.Add(1)
			writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
			return
		}
		id, timeoutMS = req.ID, req.TimeoutMS
	} else {
		req, err := server.DecodeDeleteRequest(body)
		if err != nil {
			fe.errs.Add(1)
			writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
			return
		}
		id, timeoutMS = req.ID, req.TimeoutMS
	}
	g := fe.groups[RouteID(id, len(fe.groups))]
	primary := g.members[0]

	ctx, cancel := context.WithTimeout(r.Context(), fe.requestTimeout(timeoutMS))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primary.url+path, bytes.NewReader(body))
	if err != nil {
		fe.errs.Add(1)
		writeJSON(w, http.StatusInternalServerError, server.ErrorResponse{Error: err.Error()})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := fe.cfg.Client.Do(req)
	if err != nil {
		fe.errs.Add(1)
		primary.healthy.Store(false)
		if ctx.Err() != nil {
			writeJSON(w, http.StatusGatewayTimeout, server.ErrorResponse{Error: ctx.Err().Error()})
			return
		}
		fe.rejectRetryable(w, http.StatusServiceUnavailable, fmt.Sprintf("shard group %d primary unavailable: %v", g.id, err))
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		fe.errs.Add(1)
		fe.rejectRetryable(w, http.StatusServiceUnavailable, fmt.Sprintf("shard group %d primary: %v", g.id, err))
		return
	}
	if resp.StatusCode >= 400 {
		fe.errs.Add(1)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	writeRaw(w, resp.StatusCode, data)
}

// GroupHealth is one shard group's view in /healthz and /statsz.
type GroupHealth struct {
	Primary string         `json:"primary"`
	Healthy int            `json:"healthy"`
	Members []MemberHealth `json:"members"`
}

// MemberHealth is one backend's probe verdict.
type MemberHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Primary bool   `json:"primary"`
}

// FrontendHealth is the frontend's /healthz document.
type FrontendHealth struct {
	Status string        `json:"status"`
	Groups []GroupHealth `json:"groups"`
}

func (fe *Frontend) groupHealth() ([]GroupHealth, bool) {
	all := true
	out := make([]GroupHealth, len(fe.groups))
	for gi, g := range fe.groups {
		gh := GroupHealth{Primary: g.members[0].url}
		for mi, m := range g.members {
			up := m.healthy.Load()
			if up {
				gh.Healthy++
			} else {
				all = false
			}
			gh.Members = append(gh.Members, MemberHealth{URL: m.url, Healthy: up, Primary: mi == 0})
		}
		out[gi] = gh
	}
	return out, all
}

func (fe *Frontend) handleHealth(w http.ResponseWriter, r *http.Request) {
	if fe.draining.Load() {
		w.Header().Set("Retry-After", fe.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, FrontendHealth{Status: "draining"})
		return
	}
	groups, all := fe.groupHealth()
	status := "ok"
	if !all {
		// Degraded, not down: reads fail over within groups and writes
		// answer their own errors, so the frontend keeps serving.
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, FrontendHealth{Status: status, Groups: groups})
}

// FrontendStats is the frontend's /statsz document.
type FrontendStats struct {
	UptimeSeconds    float64       `json:"uptime_seconds"`
	Groups           []GroupHealth `json:"groups"`
	Requests         uint64        `json:"requests"`
	Errors           uint64        `json:"errors"`
	PartialResponses uint64        `json:"partial_responses"`
	Failovers        uint64        `json:"failovers"`
	BoundRPCs        uint64        `json:"bound_rpcs"`
	ExactRPCs        uint64        `json:"exact_rpcs"`
	PrunedFacilities uint64        `json:"pruned_facilities"`
}

// Stats snapshots the frontend counters — the /statsz document.
func (fe *Frontend) Stats() FrontendStats {
	groups, _ := fe.groupHealth()
	return FrontendStats{
		UptimeSeconds:    time.Since(fe.start).Seconds(),
		Groups:           groups,
		Requests:         fe.requests.Load(),
		Errors:           fe.errs.Load(),
		PartialResponses: fe.partials.Load(),
		Failovers:        fe.failovers.Load(),
		BoundRPCs:        fe.boundRPCs.Load(),
		ExactRPCs:        fe.exactRPCs.Load(),
		PrunedFacilities: fe.pruned.Load(),
	}
}

func (fe *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, fe.Stats())
}

func toRankedJSON(res []trajcover.Ranked) []server.RankedJSON {
	out := make([]server.RankedJSON, len(res))
	for i, r := range res {
		out[i] = server.RankedJSON{ID: uint32(r.Facility.ID), Service: r.Service}
	}
	return out
}

// marshalQuery rebuilds a backend query body from the decoded request
// with the given facility subset: scenario, ψ, and workers pass
// through; k and tenant do not (backends answer per-group exact work,
// and the tier is single-tenant).
func marshalQuery(req *server.QueryRequest, facs []server.FacilityJSON) []byte {
	b, err := json.Marshal(server.QueryRequest{Facilities: facs, Scenario: req.Scenario, Psi: req.Psi, Workers: req.Workers})
	if err != nil {
		panic(fmt.Sprintf("dist: marshal query: %v", err))
	}
	return b
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("dist: marshal response: %v", err))
	}
	writeRaw(w, status, b)
}
