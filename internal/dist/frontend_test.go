package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/server"
	"github.com/trajcover/trajcover/internal/shard"
)

var testBounds = trajcover.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func testUsers(n int, seed int64) []*trajcover.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajcover.Trajectory, n)
	for i := range out {
		ax, ay := rng.Float64()*1000, rng.Float64()*1000
		pts := []trajcover.Point{
			trajcover.Pt(clampF(ax+rng.NormFloat64()*80, 0, 1000), clampF(ay+rng.NormFloat64()*80, 0, 1000)),
			trajcover.Pt(clampF(ax+rng.NormFloat64()*80, 0, 1000), clampF(ay+rng.NormFloat64()*80, 0, 1000)),
		}
		u, err := trajcover.NewTrajectory(trajcover.ID(i), pts)
		if err != nil {
			panic(err)
		}
		out[i] = u
	}
	return out
}

func testFacilities(n, stops int, seed int64) []*trajcover.Facility {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajcover.Facility, n)
	for i := range out {
		ax, ay := rng.Float64()*1000, rng.Float64()*1000
		dx, dy := rng.NormFloat64(), rng.NormFloat64()
		pts := make([]trajcover.Point, stops)
		for j := range pts {
			pts[j] = trajcover.Pt(
				clampF(ax+float64(j)*20*dx+rng.NormFloat64()*10, 0, 1000),
				clampF(ay+float64(j)*20*dy+rng.NormFloat64()*10, 0, 1000),
			)
		}
		f, err := trajcover.NewFacility(trajcover.ID(10_000+i), pts)
		if err != nil {
			panic(err)
		}
		out[i] = f
	}
	return out
}

func facilityJSONOf(fs []*trajcover.Facility) []server.FacilityJSON {
	out := make([]server.FacilityJSON, len(fs))
	for i, f := range fs {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		out[i] = server.FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	return out
}

func liveOpts() trajcover.LiveShardOptions {
	return trajcover.LiveShardOptions{
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
		Policy:      trajcover.LivePolicy{Manual: true},
	}
}

func mustBody(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// partitionUsers splits the corpus by RouteID — the same owner map the
// frontend forwards writes with.
func partitionUsers(users []*trajcover.Trajectory, nGroups int) [][]*trajcover.Trajectory {
	out := make([][]*trajcover.Trajectory, nGroups)
	for _, u := range users {
		g := RouteID(uint32(u.ID), nGroups)
		out[g] = append(out[g], u)
	}
	return out
}

// distEnv is a full in-process tier: nGroups backend tqserve cores each
// owning a RouteID slice of the corpus, a frontend over them, and one
// single-process reference server over the whole corpus.
type distEnv struct {
	t        *testing.T
	fe       *Frontend
	fets     *httptest.Server
	backends []*httptest.Server
	srvs     []*server.Server
	ref      *server.Server
	refTS    *httptest.Server
	client   *http.Client
}

func newDistEnv(t *testing.T, users []*trajcover.Trajectory, nGroups int, feCfg FrontendConfig) *distEnv {
	t.Helper()
	e := &distEnv{t: t}
	parts := partitionUsers(users, nGroups)
	var groups []Group
	for g := 0; g < nGroups; g++ {
		idx, err := trajcover.NewLiveShardedIndex(parts[g], liveOpts())
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(idx, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
		ts := httptest.NewServer(srv.Handler())
		e.srvs = append(e.srvs, srv)
		e.backends = append(e.backends, ts)
		groups = append(groups, Group{Members: []string{ts.URL}})
	}
	refIdx, err := trajcover.NewLiveShardedIndex(users, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	e.ref = server.New(refIdx, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	e.refTS = httptest.NewServer(e.ref.Handler())

	feCfg.Groups = groups
	fe, err := NewFrontend(feCfg)
	if err != nil {
		t.Fatal(err)
	}
	e.fe = fe
	e.fets = httptest.NewServer(fe.Handler())
	e.client = e.fets.Client()
	t.Cleanup(func() {
		e.fets.Close()
		fe.Close()
		e.refTS.Close()
		e.ref.Close()
		for i, ts := range e.backends {
			ts.Close()
			e.srvs[i].Close()
		}
	})
	return e
}

func postTo(t *testing.T, client *http.Client, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

func (e *distEnv) post(path string, body []byte) (int, []byte, http.Header) {
	e.t.Helper()
	return postTo(e.t, e.client, e.fets.URL+path, body)
}

// TestFrontendByteIdentity is the distributed-exactness property: with
// every group healthy, topk and servicevalues through the frontend are
// byte-identical to the same requests against one process holding the
// whole corpus — across k, worker counts, and a write history flowing
// through the frontend's owner-routing.
func TestFrontendByteIdentity(t *testing.T) {
	users := testUsers(500, 301)
	e := newDistEnv(t, users[:400], 2, FrontendConfig{DefaultTimeout: 30 * time.Second})
	facs := testFacilities(14, 7, 302)
	fjs := facilityJSONOf(facs)

	check := func(stage string, k, workers int) {
		t.Helper()
		body := mustBody(t, server.QueryRequest{Facilities: fjs, K: k, Psi: 40, Workers: workers})
		st, got, _ := e.post(server.PathTopK, body)
		if st != http.StatusOK {
			t.Fatalf("%s: frontend topk %d: %s", stage, st, got)
		}
		st, want, _ := postTo(t, e.refTS.Client(), e.refTS.URL+server.PathTopK, body)
		if st != http.StatusOK {
			t.Fatalf("%s: reference topk %d", stage, st)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: distributed topk differs from single process\n got: %s\nwant: %s", stage, got, want)
		}

		svBody := mustBody(t, server.QueryRequest{Facilities: fjs, Psi: 40, Workers: workers})
		st, got, _ = e.post(server.PathServiceValues, svBody)
		if st != http.StatusOK {
			t.Fatalf("%s: frontend servicevalues %d: %s", stage, st, got)
		}
		st, want, _ = postTo(t, e.refTS.Client(), e.refTS.URL+server.PathServiceValues, svBody)
		if st != http.StatusOK {
			t.Fatalf("%s: reference servicevalues %d", stage, st)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: distributed servicevalues differs from single process\n got: %s\nwant: %s", stage, got, want)
		}
	}

	check("initial k=5", 5, 0)
	check("initial k=1", 1, 2)
	check("initial k=14", 14, 3)

	// Writes through the frontend land on their owner group AND on the
	// reference; answers must stay identical.
	alive := map[uint32]bool{}
	for _, u := range users[:400] {
		alive[uint32(u.ID)] = true
	}
	for i, u := range users[400:450] {
		pts := make([][2]float64, len(u.Points))
		for j, p := range u.Points {
			pts[j] = [2]float64{p.X, p.Y}
		}
		b := mustBody(t, server.InsertRequest{ID: uint32(u.ID), Points: pts})
		if st, body, _ := e.post(server.PathInsert, b); st != http.StatusOK {
			t.Fatalf("insert %d: %d %s", u.ID, st, body)
		}
		if st, _, _ := postTo(t, e.refTS.Client(), e.refTS.URL+server.PathInsert, b); st != http.StatusOK {
			t.Fatal("reference insert failed")
		}
		alive[uint32(u.ID)] = true
		if i%3 == 0 {
			id := uint32(i * 7)
			del := mustBody(t, server.DeleteRequest{ID: id})
			st, body, _ := e.post(server.PathDelete, del)
			if st != http.StatusOK {
				t.Fatalf("delete: %d %s", st, body)
			}
			st2, body2, _ := postTo(t, e.refTS.Client(), e.refTS.URL+server.PathDelete, del)
			if st2 != http.StatusOK || !bytes.Equal(body, body2) {
				t.Fatalf("delete verdicts diverge: %s vs %s", body, body2)
			}
			delete(alive, id)
		}
	}
	check("after writes", 6, 0)

	// Owner routing: each backend holds exactly its RouteID slice of the
	// surviving corpus.
	var total int
	for g, srv := range e.srvs {
		n := srv.Index().Len()
		want := 0
		for id := range alive {
			if RouteID(id, 2) == g {
				want++
			}
		}
		if n != want {
			t.Fatalf("group %d holds %d trajectories, want %d", g, n, want)
		}
		total += n
	}
	if total != e.ref.Index().Len() {
		t.Fatalf("groups hold %d total, reference %d", total, e.ref.Index().Len())
	}

	// A duplicate insert's 409 comes back verbatim from the owner.
	var dup *trajcover.Trajectory
	for _, cand := range users[:450] {
		if alive[uint32(cand.ID)] {
			dup = cand
			break
		}
	}
	pts := make([][2]float64, len(dup.Points))
	for j, p := range dup.Points {
		pts[j] = [2]float64{p.X, p.Y}
	}
	st, body, _ := e.post(server.PathInsert, mustBody(t, server.InsertRequest{ID: uint32(dup.ID), Points: pts}))
	if st != http.StatusConflict {
		t.Fatalf("duplicate insert through frontend: %d %s, want 409", st, body)
	}

	// The prune accounting moved: every topk scattered one bounds RPC
	// per group, and exact RPCs were spent.
	stats := e.fe.Stats()
	if stats.BoundRPCs == 0 || stats.ExactRPCs == 0 {
		t.Fatalf("scatter counters never moved: %+v", stats)
	}
	if stats.Errors != 1 { // the 409 is the only error
		t.Fatalf("errors = %d, want 1 (the 409): %+v", stats.Errors, stats)
	}
}

// TestFrontendPartialMatrix is the degradation contract, table-driven:
// the same read against (a) a dead group, (b) a deadline-starved group,
// and (c) a mid-merge death answers exactly per the contract — default
// mode fails with the right status, ?partial=1 either serves the
// surviving groups' exact answer with the partial flag or still fails
// when the merge itself was poisoned.
func TestFrontendPartialMatrix(t *testing.T) {
	users := testUsers(300, 311)
	facs := testFacilities(8, 6, 312)
	fjs := facilityJSONOf(facs)
	parts := partitionUsers(users, 2)

	// Group 0 is a real backend; group 1's behavior is the table knob.
	mkReal := func(t *testing.T, us []*trajcover.Trajectory) (*httptest.Server, *server.Server) {
		idx, err := trajcover.NewLiveShardedIndex(us, liveOpts())
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(idx, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
		return httptest.NewServer(srv.Handler()), srv
	}

	// The surviving group's own exact answers — what partial mode must
	// serve byte-for-byte (values) / result-for-result (topk).
	survivorIdx, err := trajcover.NewLiveShardedIndex(parts[0], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}
	survivorVals, err := survivorIdx.ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	survivorTop, err := survivorIdx.TopK(facs, 4, q)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		// group1 returns the second group's base URL and a cleanup.
		group1      func(t *testing.T) (string, func())
		wantStatus  int  // default-mode status
		wantRetry   bool // default-mode Retry-After present
		partialOK   bool // ?partial=1 serves a 200 partial answer
		partialCode int  // when !partialOK, the ?partial=1 status
	}{
		{
			name: "group down",
			group1: func(t *testing.T) (string, func()) {
				ts := httptest.NewServer(http.NotFoundHandler())
				url := ts.URL
				ts.Close() // connection refused from the first RPC
				return url, func() {}
			},
			wantStatus: http.StatusServiceUnavailable,
			wantRetry:  true,
			partialOK:  true,
		},
		{
			name: "group deadline-starved",
			group1: func(t *testing.T) (string, func()) {
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if r.URL.Path == server.PathHealth {
						w.Write([]byte(`{"status":"ok"}`))
						return
					}
					select { // hang until the caller gives up
					case <-r.Context().Done():
					case <-time.After(30 * time.Second):
					}
				}))
				return ts.URL, ts.Close
			},
			wantStatus: http.StatusGatewayTimeout,
			partialOK:  true,
		},
		{
			name: "mid-merge death",
			group1: func(t *testing.T) (string, func()) {
				// Answers the bounds scatter with un-prunable bounds, then
				// fails every exact RPC: the merge is poisoned after the
				// group was counted present.
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					switch r.URL.Path {
					case server.PathHealth:
						w.Write([]byte(`{"status":"ok"}`))
					case server.PathUpperBounds:
						var req struct {
							Facilities []json.RawMessage `json:"facilities"`
						}
						body, _ := io.ReadAll(r.Body)
						json.Unmarshal(body, &req)
						bounds := make([]float64, len(req.Facilities))
						for i := range bounds {
							bounds[i] = 1e9
						}
						json.NewEncoder(w).Encode(map[string]any{"bounds": bounds})
					default:
						w.WriteHeader(http.StatusInternalServerError)
						w.Write([]byte(`{"error":"killed"}`))
					}
				}))
				return ts.URL, ts.Close
			},
			wantStatus:  http.StatusServiceUnavailable,
			wantRetry:   true,
			partialOK:   false,
			partialCode: http.StatusServiceUnavailable,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts0, srv0 := mkReal(t, parts[0])
			defer func() { ts0.Close(); srv0.Close() }()
			url1, cleanup1 := tc.group1(t)
			defer cleanup1()

			fe, err := NewFrontend(FrontendConfig{
				Groups:         []Group{{Members: []string{ts0.URL}}, {Members: []string{url1}}},
				RPCTimeout:     500 * time.Millisecond,
				DefaultTimeout: 5 * time.Second,
				ProbeInterval:  time.Hour, // keep probes out of the picture
			})
			if err != nil {
				t.Fatal(err)
			}
			defer fe.Close()
			fets := httptest.NewServer(fe.Handler())
			defer fets.Close()

			topkBody := mustBody(t, server.QueryRequest{Facilities: fjs, K: 4, Psi: 40})
			svBody := mustBody(t, server.QueryRequest{Facilities: fjs, Psi: 40})

			// Default mode: the contracted failure status.
			st, body, hdr := postTo(t, fets.Client(), fets.URL+server.PathTopK, topkBody)
			if st != tc.wantStatus {
				t.Fatalf("default topk: %d %s, want %d", st, body, tc.wantStatus)
			}
			if tc.wantRetry && hdr.Get("Retry-After") == "" {
				t.Fatalf("default topk %d without Retry-After", st)
			}
			st, body, _ = postTo(t, fets.Client(), fets.URL+server.PathServiceValues, svBody)
			if st != tc.wantStatus {
				t.Fatalf("default servicevalues: %d %s, want %d", st, body, tc.wantStatus)
			}

			// ?partial=1.
			st, body, _ = postTo(t, fets.Client(), fets.URL+server.PathTopK+"?partial=1", topkBody)
			if !tc.partialOK {
				if st != tc.partialCode {
					t.Fatalf("partial topk after poisoned merge: %d %s, want %d", st, body, tc.partialCode)
				}
				return
			}
			if st != http.StatusOK {
				t.Fatalf("partial topk: %d %s", st, body)
			}
			var pt PartialTopKResponse
			if err := json.Unmarshal(body, &pt); err != nil {
				t.Fatal(err)
			}
			if !pt.Partial || len(pt.MissingGroups) != 1 || pt.MissingGroups[0] != 1 {
				t.Fatalf("partial topk flags: %s", body)
			}
			if len(pt.Results) != len(survivorTop) {
				t.Fatalf("partial topk %d results, survivor answers %d", len(pt.Results), len(survivorTop))
			}
			for i, r := range pt.Results {
				if r.ID != uint32(survivorTop[i].Facility.ID) || r.Service != survivorTop[i].Service {
					t.Fatalf("partial topk[%d] = (%d, %v), survivor (%d, %v)",
						i, r.ID, r.Service, survivorTop[i].Facility.ID, survivorTop[i].Service)
				}
			}

			st, body, _ = postTo(t, fets.Client(), fets.URL+server.PathServiceValues+"?partial=1", svBody)
			if st != http.StatusOK {
				t.Fatalf("partial servicevalues: %d %s", st, body)
			}
			var pv PartialValuesResponse
			if err := json.Unmarshal(body, &pv); err != nil {
				t.Fatal(err)
			}
			if !pv.Partial || len(pv.MissingGroups) != 1 || pv.MissingGroups[0] != 1 {
				t.Fatalf("partial servicevalues flags: %s", body)
			}
			for i, v := range pv.Values {
				if v != survivorVals[i] {
					t.Fatalf("partial value[%d] = %v, survivor %v", i, v, survivorVals[i])
				}
			}
		})
	}
}

// TestFrontendIntraGroupFailover: a group whose primary is dead still
// answers reads from its replica member, and writes to that group are
// 503 (replicas are not write-capable owners).
func TestFrontendIntraGroupFailover(t *testing.T) {
	users := testUsers(200, 321)
	facs := testFacilities(6, 5, 322)
	parts := partitionUsers(users, 2)

	idxA, err := trajcover.NewLiveShardedIndex(parts[0], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srvA := server.New(idxA, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	defer srvA.Close()
	// "Replica": an identically stocked second member of group 0.
	idxA2, err := trajcover.NewLiveShardedIndex(parts[0], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srvA2 := server.New(idxA2, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	defer srvA2.Close()
	idxB, err := trajcover.NewLiveShardedIndex(parts[1], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srvB := server.New(idxB, server.Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	defer srvB.Close()

	tsA := httptest.NewServer(srvA.Handler())
	tsA2 := httptest.NewServer(srvA2.Handler())
	defer tsA2.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	fe, err := NewFrontend(FrontendConfig{
		Groups:         []Group{{Members: []string{tsA.URL, tsA2.URL}}, {Members: []string{tsB.URL}}},
		RPCTimeout:     500 * time.Millisecond,
		DefaultTimeout: 10 * time.Second,
		ProbeInterval:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	fets := httptest.NewServer(fe.Handler())
	defer fets.Close()

	// Kill group 0's primary. Reads must fail over to the replica and
	// stay complete (not partial).
	tsA.Close()
	body := mustBody(t, server.QueryRequest{Facilities: facilityJSONOf(facs), K: 3, Psi: 40})
	st, got, _ := postTo(t, fets.Client(), fets.URL+server.PathTopK, body)
	if st != http.StatusOK {
		t.Fatalf("topk with dead primary: %d %s", st, got)
	}
	if strings.Contains(string(got), `"partial":true`) {
		t.Fatalf("failover answer flagged partial: %s", got)
	}
	if fe.Stats().Failovers == 0 {
		t.Fatal("failover counter never moved")
	}

	// A write owned by group 0 has no live primary: transient 503 with
	// the retry hint — never silently written to a replica.
	var ownedBy0 uint32
	for id := uint32(100000); ; id++ {
		if RouteID(id, 2) == 0 {
			ownedBy0 = id
			break
		}
	}
	st, got, hdr := postTo(t, fets.Client(), fets.URL+server.PathInsert,
		mustBody(t, server.InsertRequest{ID: ownedBy0, Points: [][2]float64{{1, 1}, {2, 2}}}))
	if st != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("write to dead primary: %d %s (Retry-After %q), want 503+hint", st, got, hdr.Get("Retry-After"))
	}
	// Group 1 writes still land.
	var ownedBy1 uint32
	for id := uint32(100000); ; id++ {
		if RouteID(id, 2) == 1 {
			ownedBy1 = id
			break
		}
	}
	st, got, _ = postTo(t, fets.Client(), fets.URL+server.PathInsert,
		mustBody(t, server.InsertRequest{ID: ownedBy1, Points: [][2]float64{{1, 1}, {2, 2}}}))
	if st != http.StatusOK {
		t.Fatalf("write to live group: %d %s", st, got)
	}
}

// TestFrontendProbeRemovalReadmission: the probe loop removes a member
// that stops answering /healthz and readmits it when it recovers,
// surfacing both through /healthz ("degraded" vs "ok") and the log.
func TestFrontendProbeRemovalReadmission(t *testing.T) {
	users := testUsers(100, 331)
	idx, err := trajcover.NewLiveShardedIndex(users, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, server.Config{Workers: 1, QueueDepth: 8})
	defer srv.Close()

	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	var logMu sync.Mutex
	var logs []string
	fe, err := NewFrontend(FrontendConfig{
		Groups:        []Group{{Members: []string{ts.URL}}},
		ProbeInterval: 20 * time.Millisecond,
		RPCTimeout:    time.Second,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	fets := httptest.NewServer(fe.Handler())
	defer fets.Close()

	waitHealth := func(want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := fets.Client().Get(fets.URL + server.PathHealth)
			if err != nil {
				t.Fatal(err)
			}
			var h FrontendHealth
			json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if h.Status == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("health never became %q (now %q)", want, h.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitHealth("ok")
	down.Store(true)
	waitHealth("degraded")
	down.Store(false)
	waitHealth("ok")

	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "removed") || !strings.Contains(joined, "readmitted") {
		t.Fatalf("probe transitions not logged: %q", joined)
	}
}

// TestFrontendDrainAndLimits: drain flips healthz and rejects reads with
// Retry-After; oversized bodies are 413; bad JSON is 400 without any
// backend RPC.
func TestFrontendDrainAndLimits(t *testing.T) {
	users := testUsers(60, 341)
	e := newDistEnv(t, users, 2, FrontendConfig{MaxBodyBytes: 512})

	if st, body, _ := e.post(server.PathTopK, []byte(`{"facilities":`)); st != http.StatusBadRequest {
		t.Fatalf("bad json: %d %s", st, body)
	}
	big := `{"filler":"` + strings.Repeat("x", 2048) + `"}`
	if st, _, _ := e.post(server.PathTopK, []byte(big)); st != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body not 413")
	}
	resp, err := e.client.Get(e.fets.URL + server.PathTopK)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET topk: %d", resp.StatusCode)
	}

	e.fe.BeginDrain()
	resp, err = e.client.Get(e.fets.URL + server.PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", resp.StatusCode)
	}
	st, _, hdr := e.post(server.PathTopK, mustBody(t, server.QueryRequest{
		Facilities: facilityJSONOf(testFacilities(2, 3, 342)), K: 1, Psi: 40,
	}))
	if st != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining topk: %d, want 503+Retry-After", st)
	}
}

// TestFrontendPrunesAcrossTheWire pins the distributed shard-prune: a
// facility whose summed upper bounds cannot reach the top k must be
// answered without ANY group computing its exact value — the exact-RPC
// spend stays proportional to the contenders, not the candidate set.
func TestFrontendPrunesAcrossTheWire(t *testing.T) {
	// A dense cluster in one corner and a near-empty one far away:
	// heavily skewed, so bounds separate the contenders immediately.
	var users []*trajcover.Trajectory
	rng := rand.New(rand.NewSource(351))
	for i := 0; i < 300; i++ {
		x, y := 40+rng.Float64()*80, 40+rng.Float64()*80
		u, err := trajcover.NewTrajectory(trajcover.ID(i), []trajcover.Point{
			trajcover.Pt(x, y), trajcover.Pt(clampF(x+rng.NormFloat64()*5, 0, 1000), clampF(y+rng.NormFloat64()*5, 0, 1000)),
		})
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, u)
	}
	for i := 300; i < 303; i++ { // three stragglers by the far corner
		u, err := trajcover.NewTrajectory(trajcover.ID(i), []trajcover.Point{
			trajcover.Pt(900+float64(i-300), 900), trajcover.Pt(905+float64(i-300), 905),
		})
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, u)
	}
	e := newDistEnv(t, users, 2, FrontendConfig{DefaultTimeout: 30 * time.Second})

	// One facility in the cluster, several out in the sparse corner.
	mkFac := func(id uint32, x, y float64) server.FacilityJSON {
		return server.FacilityJSON{ID: id, Stops: [][2]float64{{x, y}, {x + 30, y + 30}}}
	}
	fjs := []server.FacilityJSON{mkFac(1, 80, 80)}
	for i := uint32(2); i <= 6; i++ {
		fjs = append(fjs, mkFac(i, 880+float64(i), 880))
	}
	st, body, _ := e.post(server.PathTopK, mustBody(t, server.QueryRequest{Facilities: fjs, K: 1, Psi: 30}))
	if st != http.StatusOK {
		t.Fatalf("topk: %d %s", st, body)
	}
	var tr server.TopKResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != 1 || tr.Results[0].ID != 1 {
		t.Fatalf("top-1 = %s, want facility 1", body)
	}
	stats := e.fe.Stats()
	if stats.PrunedFacilities == 0 {
		t.Fatalf("no facility pruned under heavy skew: %+v", stats)
	}
	// The pruned facilities must not have paid exact RPCs: at most the
	// contenders (6 - pruned) across 2 groups each.
	if max := (6 - stats.PrunedFacilities) * 2; stats.ExactRPCs > max {
		t.Fatalf("%d exact RPCs for %d unpruned facilities over 2 groups (max %d)", stats.ExactRPCs, 6-stats.PrunedFacilities, max)
	}
}

// TestRouteIDMatchesShardHash pins the frontend's owner map to the
// index's own hash partitioner — the invariant that makes a RouteID
// slice of the corpus exactly one backend's shard content.
func TestRouteIDMatchesShardHash(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for id := uint32(0); id < 5000; id++ {
			u, err := trajcover.NewTrajectory(trajcover.ID(id), []trajcover.Point{trajcover.Pt(1, 1), trajcover.Pt(2, 2)})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := RouteID(id, n), (shard.Hash{}).Assign(u, testBounds, n); got != want {
				t.Fatalf("RouteID(%d, %d) = %d, shard.Hash = %d", id, n, got, want)
			}
		}
	}
}

// TestParseMap pins the -backends grammar.
func TestParseMap(t *testing.T) {
	groups, err := ParseMap("http://a:8080|http://a:8081/,http://b:8080")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0].Members) != 2 || len(groups[1].Members) != 1 {
		t.Fatalf("parsed %+v", groups)
	}
	if groups[0].Members[1] != "http://a:8081" {
		t.Fatalf("trailing slash kept: %q", groups[0].Members[1])
	}
	for _, bad := range []string{"", ",", "http://a|,http://b", "ftp://a:1", "a:8080"} {
		if _, err := ParseMap(bad); err == nil {
			t.Fatalf("ParseMap(%q) accepted", bad)
		}
	}
}
