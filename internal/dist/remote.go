package dist

import (
	"context"
	"fmt"
	"sync"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/server"
)

// scatter is one /v1/topk request's shared state across its remote
// explorations: the request context (cancelled on the first RPC
// failure, so the merge unwinds instead of issuing doomed RPCs), the
// decoded facilities, and the first error.
type scatter struct {
	fe     *Frontend
	ctx    context.Context
	cancel context.CancelFunc
	req    *server.QueryRequest
	facs   []*trajcover.Facility

	mu       sync.Mutex
	firstErr error
}

func newScatter(fe *Frontend, ctx context.Context, cancel context.CancelFunc, req *server.QueryRequest, facs []*trajcover.Facility) *scatter {
	return &scatter{fe: fe, ctx: ctx, cancel: cancel, req: req, facs: facs}
}

func (sc *scatter) allFacsBody() []byte { return marshalQuery(sc.req, sc.req.Facilities) }

func (sc *scatter) oneFacBody(fi int) []byte {
	return marshalQuery(sc.req, sc.req.Facilities[fi:fi+1])
}

func (sc *scatter) fail(err error) {
	sc.mu.Lock()
	if sc.firstErr == nil {
		sc.firstErr = err
		sc.cancel()
	}
	sc.mu.Unlock()
}

func (sc *scatter) err() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.firstErr
}

// explorations builds the merge input: one remoteExploration per
// (facility, answering group), rows indexed like the facilities.
// Groups with nil bounds (failed the scatter; partial mode) are left
// out of every row — the merge then answers exactly over the
// surviving groups' corpus.
func (sc *scatter) explorations(bounds [][]float64) [][]query.Exploration {
	exps := make([][]query.Exploration, len(sc.facs))
	for i := range sc.facs {
		row := make([]query.Exploration, 0, len(sc.fe.groups))
		for gi, g := range sc.fe.groups {
			if bounds[gi] == nil {
				continue
			}
			row = append(row, &remoteExploration{sc: sc, g: g, fi: i, opt: bounds[gi][i]})
		}
		exps[i] = row
	}
	return exps
}

// remoteExploration is one (facility, shard group) leg of a
// distributed top-k: a query.Exploration whose upper bound was seeded
// by the group's /v1/upperbounds answer and whose single Relax is one
// exact /v1/servicevalues RPC for that facility alone. The merge heap
// schedules these exactly like in-process explorations, so a facility
// whose summed bounds cannot reach the top k never pays the RPC —
// the shard-prune across the wire.
//
// Like the in-process explorers it mirrors, a remoteExploration is not
// safe for concurrent use; the merge relaxes any one facility's
// explorations from one worker at a time.
type remoteExploration struct {
	sc    *scatter
	g     *feGroup
	fi    int
	exact float64
	opt   float64
	done  bool
	paid  bool // an exact RPC was issued (the facility was not pruned)
}

var _ query.Exploration = (*remoteExploration)(nil)

func (x *remoteExploration) Facility() *trajcover.Facility { return x.sc.facs[x.fi] }
func (x *remoteExploration) Exact() float64                { return x.exact }
func (x *remoteExploration) Optimistic() float64           { return x.opt }
func (x *remoteExploration) UpperBound() float64           { return x.exact + x.opt }
func (x *remoteExploration) Done() bool                    { return x.done }

// Relax completes the leg: one exact RPC against the group (failing
// over across its members), after which Exact is the facility's
// service value over the group's corpus and Optimistic is zero. On a
// whole-group failure the scatter is poisoned and cancelled; the leg
// reports done with a zero bound so the merge drains fast — its answer
// is discarded.
func (x *remoteExploration) Relax(_ *query.Metrics) {
	if x.done {
		return
	}
	x.done = true
	x.opt = 0
	x.paid = true
	var resp server.ValuesResponse
	if err := x.sc.fe.readGroup(x.sc.ctx, x.g, server.PathServiceValues, x.sc.oneFacBody(x.fi), &resp); err != nil {
		x.sc.fail(err)
		return
	}
	if len(resp.Values) != 1 {
		x.sc.fail(fmt.Errorf("group %d answered %d values for 1 facility", x.g.id, len(resp.Values)))
		return
	}
	x.sc.fe.exactRPCs.Add(1)
	x.exact = resp.Values[0]
}

func (x *remoteExploration) Run(m *query.Metrics) float64 {
	for !x.done {
		x.Relax(m)
	}
	return x.exact
}
