package service

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func TestStopSetServedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		// Alternate between linear (small) and gridded (large) sets.
		n := 3
		if trial%2 == 0 {
			n = stopGridThreshold + rng.Intn(200)
		}
		stops := make([]geo.Point, n)
		for i := range stops {
			stops[i] = geo.Pt(rng.Float64()*5000, rng.Float64()*5000)
		}
		psi := 50 + rng.Float64()*400
		ss := NewStopSet(stops, psi)
		if n > stopGridThreshold && len(ss.keys) == 0 {
			t.Fatal("large stop set did not build a grid")
		}
		for probe := 0; probe < 500; probe++ {
			// Bias probes near stops so both outcomes are exercised,
			// including boundary-ish distances.
			var p geo.Point
			switch probe % 3 {
			case 0:
				p = geo.Pt(rng.Float64()*5000, rng.Float64()*5000)
			case 1:
				s := stops[rng.Intn(n)]
				p = geo.Pt(s.X+rng.NormFloat64()*psi, s.Y+rng.NormFloat64()*psi)
			default:
				s := stops[rng.Intn(n)]
				ang := rng.Float64() * 2 * math.Pi
				p = geo.Pt(s.X+math.Cos(ang)*psi*0.999, s.Y+math.Sin(ang)*psi*0.999)
			}
			if got, want := ss.Served(p), PointServed(p, stops, psi); got != want {
				t.Fatalf("trial %d: Served(%v) = %v, linear = %v (n=%d psi=%v)",
					trial, p, got, want, n, psi)
			}
		}
	}
}

// TestNewStopSetGridHeuristic is the regression test for NewStopSet's
// grid decision: with no query-count hint the grid is built exactly when
// the stop count clears stopGridThreshold. The earlier 1<<30 default
// pretended an unbounded query count, so the expectedQueries gate was
// dead for every NewStopSet caller regardless of set size.
func TestNewStopSetGridHeuristic(t *testing.T) {
	mkStops := func(n int) []geo.Point {
		stops := make([]geo.Point, n)
		for i := range stops {
			stops[i] = geo.Pt(float64(i)*100, float64(i%7)*100)
		}
		return stops
	}
	for _, tc := range []struct {
		n    int
		grid bool
	}{
		{1, false},
		{stopGridThreshold / 2, false},
		{stopGridThreshold, false},
		{stopGridThreshold + 1, true},
		{4 * stopGridThreshold, true},
	} {
		ss := NewStopSet(mkStops(tc.n), 50)
		if got := len(ss.keys) > 0; got != tc.grid {
			t.Errorf("NewStopSet with %d stops: grid=%v, want %v", tc.n, got, tc.grid)
		}
	}
	// An explicit low query-count hint must keep even a large set linear.
	if ss := NewStopSetHint(mkStops(4*stopGridThreshold), 50, gridMinQueries-1); len(ss.keys) > 0 {
		t.Error("NewStopSetHint with a tiny query count built a grid")
	}
	// Zero psi never builds a grid (cells would be degenerate).
	if ss := NewStopSet(mkStops(4*stopGridThreshold), 0); len(ss.keys) > 0 {
		t.Error("NewStopSet with psi=0 built a grid")
	}
}

func TestValueSetMatchesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		npts := 2 + rng.Intn(10)
		pts := make([]geo.Point, npts)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		}
		u := trajectory.MustNew(trajectory.ID(trial), pts)
		nstops := 1 + rng.Intn(80)
		stops := make([]geo.Point, nstops)
		for i := range stops {
			stops[i] = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		}
		psi := 30 + rng.Float64()*300
		ss := NewStopSet(stops, psi)
		for sc := Binary; sc <= Length; sc++ {
			a := Value(sc, u, stops, psi)
			b := ValueSet(sc, u, ss)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%v: Value %v != ValueSet %v (stops=%d)", sc, a, b, nstops)
			}
		}
	}
}

func TestStopSetPointsOutsideGridBounds(t *testing.T) {
	// Stops clustered in a corner; probes far outside the stop MBR must
	// not panic and must report false (or true within psi).
	stops := make([]geo.Point, 64)
	for i := range stops {
		stops[i] = geo.Pt(float64(i%8)*10, float64(i/8)*10)
	}
	ss := NewStopSet(stops, 25)
	if ss.Served(geo.Pt(1e7, -1e7)) {
		t.Error("far point reported served")
	}
	if !ss.Served(geo.Pt(-20, -15)) {
		t.Error("point within psi below origin not served")
	}
}

func TestStopSetEmptyAndZeroPsi(t *testing.T) {
	ss := NewStopSet(nil, 100)
	if ss.Served(geo.Pt(0, 0)) {
		t.Error("empty stop set served a point")
	}
	stops := []geo.Point{geo.Pt(5, 5)}
	zero := NewStopSet(stops, 0)
	if !zero.Served(geo.Pt(5, 5)) {
		t.Error("zero psi did not serve the exact stop location")
	}
	if zero.Served(geo.Pt(5.001, 5)) {
		t.Error("zero psi served a displaced point")
	}
}

func TestStopSetAccessors(t *testing.T) {
	stops := []geo.Point{geo.Pt(1, 2), geo.Pt(3, 4)}
	ss := NewStopSet(stops, 42)
	if ss.Psi() != 42 || len(ss.Stops()) != 2 {
		t.Error("accessors broken")
	}
}

func TestAcquireStopSetMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	// Cycle sets of varying sizes through the pool: reused grid arrays
	// must answer identically to fresh ones, including after shrinking
	// from a grid-mode set to a linear-mode one.
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(2*stopGridThreshold)
		stops := make([]geo.Point, n)
		for i := range stops {
			stops[i] = geo.Pt(rng.Float64()*3000, rng.Float64()*3000)
		}
		psi := 40 + rng.Float64()*300
		pooled := AcquireStopSet(stops, psi, 1<<30)
		fresh := NewStopSet(stops, psi)
		for probe := 0; probe < 200; probe++ {
			p := geo.Pt(rng.Float64()*3000, rng.Float64()*3000)
			if pooled.Served(p) != fresh.Served(p) {
				t.Fatalf("trial %d: pooled and fresh disagree at %v (n=%d)", trial, p, n)
			}
		}
		pooled.Release()
	}
}

func TestStopSetReleaseDropsStops(t *testing.T) {
	stops := []geo.Point{geo.Pt(1, 1)}
	ss := AcquireStopSet(stops, 10, 1<<30)
	ss.Release()
	if ss.Stops() != nil {
		t.Error("Release kept the stops reference")
	}
}
