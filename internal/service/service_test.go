package service

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func twoPoint(id trajectory.ID, sx, sy, dx, dy float64) *trajectory.Trajectory {
	return trajectory.MustNew(id, []geo.Point{geo.Pt(sx, sy), geo.Pt(dx, dy)})
}

func TestBinaryValue(t *testing.T) {
	u := twoPoint(1, 0, 0, 10, 0)
	tests := []struct {
		name  string
		stops []geo.Point
		psi   float64
		want  float64
	}{
		{"both ends near stops", []geo.Point{geo.Pt(0, 1), geo.Pt(10, 1)}, 1.5, 1},
		{"only source near", []geo.Point{geo.Pt(0, 1)}, 1.5, 0},
		{"only dest near", []geo.Point{geo.Pt(10, 1)}, 1.5, 0},
		{"same stop serves both within psi", []geo.Point{geo.Pt(5, 0)}, 5, 1},
		{"nothing near", []geo.Point{geo.Pt(100, 100)}, 1, 0},
		{"boundary exactly psi", []geo.Point{geo.Pt(0, 2), geo.Pt(10, 2)}, 2, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Value(Binary, u, tt.stops, tt.psi); got != tt.want {
				t.Errorf("Value = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPointCountValue(t *testing.T) {
	u := trajectory.MustNew(1, []geo.Point{
		geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(20, 0), geo.Pt(30, 0),
	})
	// Stops cover points 0 and 2 only.
	stops := []geo.Point{geo.Pt(0, 1), geo.Pt(20, 1)}
	if got := Value(PointCount, u, stops, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Value = %v, want 0.5", got)
	}
	if got := Value(PointCount, u, stops, 0.5); got != 0 {
		t.Errorf("Value with tiny psi = %v, want 0", got)
	}
	if got := Value(PointCount, u, stops, 1e6); got != 1 {
		t.Errorf("Value with huge psi = %v, want 1", got)
	}
}

func TestLengthValue(t *testing.T) {
	// Three segments of lengths 10, 20, 30 (total 60).
	u := trajectory.MustNew(1, []geo.Point{
		geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(30, 0), geo.Pt(60, 0),
	})
	// Cover points 0,1 -> first segment (length 10) served.
	stops := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0)}
	if got := Value(Length, u, stops, 1); math.Abs(got-10.0/60) > 1e-12 {
		t.Errorf("Value = %v, want %v", got, 10.0/60)
	}
	// Cover points 1,2 -> middle segment (20/60).
	stops = []geo.Point{geo.Pt(10, 0), geo.Pt(30, 0)}
	if got := Value(Length, u, stops, 1); math.Abs(got-20.0/60) > 1e-12 {
		t.Errorf("middle segment = %v, want %v", got, 20.0/60)
	}
	// Covering only point 1 serves no segment.
	stops = []geo.Point{geo.Pt(10, 0)}
	if got := Value(Length, u, stops, 1); got != 0 {
		t.Errorf("single covered point = %v, want 0", got)
	}
	// All points -> full length.
	stops = u.Points
	if got := Value(Length, u, stops, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("all covered = %v, want 1", got)
	}
}

func TestLengthValueZeroLengthTrajectory(t *testing.T) {
	u := trajectory.MustNew(1, []geo.Point{geo.Pt(5, 5), geo.Pt(5, 5)})
	if got := Value(Length, u, []geo.Point{geo.Pt(5, 5)}, 1); got != 0 {
		t.Errorf("zero-length trajectory value = %v, want 0", got)
	}
}

func TestPointServedBoundaryInclusive(t *testing.T) {
	if !PointServed(geo.Pt(0, 0), []geo.Point{geo.Pt(3, 4)}, 5) {
		t.Error("distance exactly psi not served")
	}
	if PointServed(geo.Pt(0, 0), []geo.Point{geo.Pt(3, 4)}, 4.999) {
		t.Error("distance beyond psi served")
	}
	if PointServed(geo.Pt(0, 0), nil, 100) {
		t.Error("empty stop set served a point")
	}
}

func TestMaskBasics(t *testing.T) {
	m := NewMask(130)
	if !m.Empty() || m.Count() != 0 {
		t.Error("fresh mask not empty")
	}
	m.Set(0)
	m.Set(64)
	m.Set(129)
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !m.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if m.Get(1) || m.Get(128) {
		t.Error("unset bit reads true")
	}
	if m.Empty() {
		t.Error("non-empty mask reports Empty")
	}
	c := m.Clone()
	c.Set(5)
	if m.Get(5) {
		t.Error("Clone aliases the original")
	}
	other := NewMask(130)
	other.Set(7)
	m.Or(other)
	if !m.Get(7) || m.Count() != 4 {
		t.Error("Or failed")
	}
}

func TestMaskOfAndValueFromMaskAgreeWithValue(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		u := trajectory.MustNew(trajectory.ID(trial), pts)
		stops := make([]geo.Point, 1+rng.Intn(8))
		for i := range stops {
			stops[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		psi := rng.Float64() * 30
		m := MaskOf(u, stops, psi)
		for _, sc := range []Scenario{Binary, PointCount, Length} {
			direct := Value(sc, u, stops, psi)
			viaMask := ValueFromMask(sc, u, m)
			if math.Abs(direct-viaMask) > 1e-12 {
				t.Fatalf("%v: direct %v != viaMask %v", sc, direct, viaMask)
			}
		}
	}
}

func TestCoverageMergeAndCombinedValue(t *testing.T) {
	// A user whose source is covered by f1 and dest by f2: combined AGG
	// semantics must count it as served in Binary — the paper's
	// non-submodularity construction.
	u := twoPoint(1, 0, 0, 100, 0)
	users := trajectory.MustNewSet([]*trajectory.Trajectory{u})
	f1stops := []geo.Point{geo.Pt(0, 1)}   // covers source only
	f2stops := []geo.Point{geo.Pt(100, 1)} // covers dest only
	psi := 2.0
	cov1 := Coverage{1: MaskOf(u, f1stops, psi)}
	cov2 := Coverage{1: MaskOf(u, f2stops, psi)}

	if v := cov1.TotalValue(Binary, users); v != 0 {
		t.Errorf("f1 alone = %v, want 0", v)
	}
	if v := cov2.TotalValue(Binary, users); v != 0 {
		t.Errorf("f2 alone = %v, want 0", v)
	}
	if v := CombinedValue(Binary, users, []Coverage{cov1, cov2}); v != 1 {
		t.Errorf("combined = %v, want 1 (joint service)", v)
	}
	if n := UsersServed(Binary, users, []Coverage{cov1, cov2}); n != 1 {
		t.Errorf("UsersServed = %d, want 1", n)
	}
	if n := UsersServed(Binary, users, []Coverage{cov1}); n != 0 {
		t.Errorf("UsersServed f1 alone = %d, want 0", n)
	}
}

func TestCoverageMergeDoesNotMutateInputs(t *testing.T) {
	u := twoPoint(1, 0, 0, 10, 0)
	a := Coverage{1: MaskOf(u, []geo.Point{geo.Pt(0, 0)}, 1)}
	b := Coverage{1: MaskOf(u, []geo.Point{geo.Pt(10, 0)}, 1)}
	before := b[1].Count()
	merged := Coverage{}
	merged.Merge(a)
	merged.Merge(b)
	if b[1].Count() != before {
		t.Error("Merge mutated its input")
	}
	if merged[1].Count() != 2 {
		t.Errorf("merged count = %d, want 2", merged[1].Count())
	}
}

func TestCombinedValueNoDoubleCounting(t *testing.T) {
	// Two facilities covering the same points must not double the value.
	u := trajectory.MustNew(1, []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)})
	users := trajectory.MustNewSet([]*trajectory.Trajectory{u})
	stops := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0)}
	cov := Coverage{1: MaskOf(u, stops, 0.1)}
	covDup := Coverage{1: MaskOf(u, stops, 0.1)}
	single := CombinedValue(PointCount, users, []Coverage{cov})
	double := CombinedValue(PointCount, users, []Coverage{cov, covDup})
	if math.Abs(single-double) > 1e-12 {
		t.Errorf("duplicate coverage changed value: %v vs %v", single, double)
	}
	if math.Abs(single-0.5) > 1e-12 {
		t.Errorf("value = %v, want 0.5", single)
	}
}

func TestScenarioString(t *testing.T) {
	if Binary.String() != "binary" || PointCount.String() != "pointcount" || Length.String() != "length" {
		t.Error("Scenario.String broken")
	}
	if !Binary.Valid() || Scenario(9).Valid() {
		t.Error("Scenario.Valid broken")
	}
}
