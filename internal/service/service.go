// Package service implements the paper's service-value semantics: how much
// a facility trajectory (or a set of them) "serves" a user trajectory.
//
// Three scenarios are supported (Section II of the paper):
//
//   - Binary: S(u,f) = 1 iff both the source and the destination of u are
//     within ψ of some stop of f (Scenario 1, e.g. commuter pickup and
//     drop-off).
//   - PointCount: S(u,f) = scount(u,f)/|u|, the fraction of u's points
//     within ψ of f's stops (Scenario 2, e.g. POIs a tourist can visit).
//   - Length: S(u,f) = slength(u,f)/length(u), the fraction of u's length
//     served; a segment is served when both of its endpoints are within ψ
//     of stops (Scenario 3, e.g. ad-display duration).
//
// For MaxkCovRST the package also implements the combined AGG semantics:
// a user's points may be covered by different facilities of a set F', and
// coverage is unioned per point before the scenario formula is applied —
// exactly the semantics under which the paper proves non-submodularity
// (a source served by f1 and a destination served by f2 counts).
package service

import (
	"fmt"
	"math/bits"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Scenario selects the service-value semantics.
type Scenario int

const (
	// Binary is Scenario 1: served iff source and destination are both
	// within ψ of the facility's stops.
	Binary Scenario = iota
	// PointCount is Scenario 2: fraction of points within ψ.
	PointCount
	// Length is Scenario 3: fraction of trajectory length on segments
	// whose endpoints are both within ψ.
	Length

	// NumScenarios is the number of scenarios, for sizing arrays.
	NumScenarios = 3
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Binary:
		return "binary"
	case PointCount:
		return "pointcount"
	case Length:
		return "length"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Valid reports whether s is a defined scenario.
func (s Scenario) Valid() bool { return s >= Binary && s <= Length }

// PointServed reports whether p is within psi of any of the stops.
// This is the dist(p, f) <= ψ predicate of the paper.
func PointServed(p geo.Point, stops []geo.Point, psi float64) bool {
	psi2 := psi * psi
	for _, s := range stops {
		if p.Dist2(s) <= psi2 {
			return true
		}
	}
	return false
}

// Value computes S(u, f) for a single facility given its stop points,
// by direct scan. It is the reference ("oracle") implementation every
// index-accelerated path is tested against, and the building block the
// node-level evaluators use on pruned candidate sets.
func Value(sc Scenario, u *trajectory.Trajectory, stops []geo.Point, psi float64) float64 {
	switch sc {
	case Binary:
		if PointServed(u.Source(), stops, psi) && PointServed(u.Dest(), stops, psi) {
			return 1
		}
		return 0
	case PointCount:
		served := 0
		for _, p := range u.Points {
			if PointServed(p, stops, psi) {
				served++
			}
		}
		return float64(served) / float64(u.Len())
	case Length:
		if u.Length() == 0 {
			return 0
		}
		var sl float64
		prev := PointServed(u.Points[0], stops, psi)
		for i := 1; i < u.Len(); i++ {
			cur := PointServed(u.Points[i], stops, psi)
			if prev && cur {
				sl += u.SegmentLength(i - 1)
			}
			prev = cur
		}
		return sl / u.Length()
	}
	panic(fmt.Sprintf("service: invalid scenario %d", sc))
}

// Mask is a per-point coverage bitmap for one user trajectory: bit i is
// set when point i is within ψ of some stop of the facility (or facility
// set) under consideration.
type Mask []uint64

// NewMask returns an all-zero mask sized for n points.
func NewMask(n int) Mask { return make(Mask, (n+63)/64) }

// Set marks point i covered.
func (m Mask) Set(i int) { m[i/64] |= 1 << (uint(i) % 64) }

// Get reports whether point i is covered.
func (m Mask) Get(i int) bool { return m[i/64]>>(uint(i)%64)&1 == 1 }

// Or unions other into m. The masks must be the same size.
func (m Mask) Or(other Mask) {
	for i, w := range other {
		m[i] |= w
	}
}

// Count returns the number of covered points.
func (m Mask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no point is covered.
func (m Mask) Empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of m.
func (m Mask) Clone() Mask {
	out := make(Mask, len(m))
	copy(out, m)
	return out
}

// MaskOf computes the coverage mask of u against the given stops.
func MaskOf(u *trajectory.Trajectory, stops []geo.Point, psi float64) Mask {
	m := NewMask(u.Len())
	for i, p := range u.Points {
		if PointServed(p, stops, psi) {
			m.Set(i)
		}
	}
	return m
}

// ValueFromMask applies the scenario formula to a coverage mask. For a
// single facility, ValueFromMask(sc, u, MaskOf(u, stops, ψ)) equals
// Value(sc, u, stops, ψ); for a facility set it implements the combined
// AGG semantics over the unioned mask.
func ValueFromMask(sc Scenario, u *trajectory.Trajectory, m Mask) float64 {
	switch sc {
	case Binary:
		if m.Get(0) && m.Get(u.Len()-1) {
			return 1
		}
		return 0
	case PointCount:
		return float64(m.Count()) / float64(u.Len())
	case Length:
		if u.Length() == 0 {
			return 0
		}
		var sl float64
		for i := 0; i < u.NumSegments(); i++ {
			if m.Get(i) && m.Get(i+1) {
				sl += u.SegmentLength(i)
			}
		}
		return sl / u.Length()
	}
	panic(fmt.Sprintf("service: invalid scenario %d", sc))
}

// Coverage maps user trajectory IDs to their coverage masks for one
// facility (or one facility set). Only users with at least one covered
// point appear.
type Coverage map[trajectory.ID]Mask

// Merge unions other into c, cloning masks as needed so other remains
// unmodified.
func (c Coverage) Merge(other Coverage) {
	for id, m := range other {
		if mine, ok := c[id]; ok {
			mine.Or(m)
		} else {
			c[id] = m.Clone()
		}
	}
}

// TotalValue applies the scenario formula to every covered user and sums.
// users must be the set the coverage was computed against.
func (c Coverage) TotalValue(sc Scenario, users *trajectory.Set) float64 {
	var total float64
	for id, m := range c {
		u := users.ByID(id)
		if u == nil {
			continue
		}
		total += ValueFromMask(sc, u, m)
	}
	return total
}

// CombinedValue computes SO(U, F') for a set of per-facility coverages
// under the AGG union semantics, without mutating the inputs.
func CombinedValue(sc Scenario, users *trajectory.Set, covs []Coverage) float64 {
	merged := Coverage{}
	for _, c := range covs {
		merged.Merge(c)
	}
	return merged.TotalValue(sc, users)
}

// UsersServed counts the users with a strictly positive service value in
// the merged coverage — the "# users served" quality metric of Fig 10.
func UsersServed(sc Scenario, users *trajectory.Set, covs []Coverage) int {
	merged := Coverage{}
	for _, c := range covs {
		merged.Merge(c)
	}
	n := 0
	for id, m := range merged {
		u := users.ByID(id)
		if u == nil {
			continue
		}
		if ValueFromMask(sc, u, m) > 0 {
			n++
		}
	}
	return n
}
