package service

import (
	"sort"
	"sync"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// stopGridThreshold is the component size above which StopSet builds a
// grid; at or below it a linear scan is faster than the indexing.
const stopGridThreshold = 48

// gridMinQueries is the expected-query count below which building the
// grid cannot amortize: grid construction costs a few linear scans, so a
// set answering fewer queries than this stays in linear mode.
const gridMinQueries = 16

// StopSet answers "is this point within ψ of any stop?" for a fixed stop
// set. For small sets it scans linearly; for larger sets it buckets the
// stops into a uniform grid with ψ-sized cells, stored as two sorted
// parallel arrays (cell key → stop index) so a query probes the 3×3
// neighborhood of the point's cell with binary searches and no per-query
// allocation. The node-level evaluators build one StopSet per ⟨q-node,
// component⟩ evaluation and reuse it for every surviving candidate.
type StopSet struct {
	stops []geo.Point
	psi   float64
	psi2  float64

	// Grid fields; keys is empty in linear mode. keys is sorted and
	// parallel to order: stops[order[i]] lies in cell keys[i].
	keys       []uint64
	order      []int32
	minX, minY float64
	invCell    float64
}

// NewStopSet prepares a membership structure over stops for threshold
// psi. With no query-count hint, the choice between linear scan and grid
// is made purely by set size: sets larger than stopGridThreshold are
// assumed to answer enough queries to amortize the grid, smaller sets
// stay linear. (An earlier version passed an effectively-infinite query
// count here, which silently forced the grid decision onto the size
// check alone while suggesting otherwise; the heuristic is now explicit.)
func NewStopSet(stops []geo.Point, psi float64) *StopSet {
	return NewStopSetHint(stops, psi, defaultExpectedQueries(len(stops)))
}

// defaultExpectedQueries is NewStopSet's heuristic: just enough expected
// queries to enable the grid when the stop count clears the threshold,
// zero otherwise.
func defaultExpectedQueries(n int) int {
	if n > stopGridThreshold {
		return gridMinQueries
	}
	return 0
}

// NewStopSetHint is NewStopSet with an estimate of how many Served
// queries the set will answer; building the grid costs a few linear
// scans, so few expected queries keep the cheaper linear mode.
func NewStopSetHint(stops []geo.Point, psi float64, expectedQueries int) *StopSet {
	s := &StopSet{}
	s.init(stops, psi, expectedQueries)
	return s
}

// stopSetPool recycles StopSet structs together with their grid backing
// arrays. The node-level evaluators build one StopSet per ⟨q-node,
// component⟩ pair, so on the query hot path the grid arrays dominate
// allocation without pooling.
var stopSetPool = sync.Pool{New: func() any { return new(StopSet) }}

// AcquireStopSet is NewStopSetHint backed by a pool: the returned set
// reuses the key/order arrays of a previously Released set when their
// capacity suffices. Call Release when done; the set must not be used
// afterwards.
func AcquireStopSet(stops []geo.Point, psi float64, expectedQueries int) *StopSet {
	s := stopSetPool.Get().(*StopSet)
	s.init(stops, psi, expectedQueries)
	return s
}

// Release returns the set to the pool, dropping its reference to the
// caller's stops but keeping the grid arrays for reuse.
func (s *StopSet) Release() {
	s.stops = nil
	stopSetPool.Put(s)
}

// init (re)prepares the set in place, reusing grid capacity if present.
func (s *StopSet) init(stops []geo.Point, psi float64, expectedQueries int) {
	s.stops, s.psi, s.psi2 = stops, psi, psi*psi
	s.keys = s.keys[:0]
	s.order = s.order[:0]
	if len(stops) <= stopGridThreshold || psi <= 0 || expectedQueries < gridMinQueries {
		return
	}
	r := geo.RectOf(stops)
	s.minX, s.minY = r.MinX, r.MinY
	s.invCell = 1 / psi
	for i, st := range stops {
		s.keys = append(s.keys, s.cellKey(st.X, st.Y))
		s.order = append(s.order, int32(i))
	}
	sort.Sort(gridSorter{s})
}

// gridSorter sorts keys and order together.
type gridSorter struct{ s *StopSet }

func (g gridSorter) Len() int           { return len(g.s.keys) }
func (g gridSorter) Less(i, j int) bool { return g.s.keys[i] < g.s.keys[j] }
func (g gridSorter) Swap(i, j int) {
	g.s.keys[i], g.s.keys[j] = g.s.keys[j], g.s.keys[i]
	g.s.order[i], g.s.order[j] = g.s.order[j], g.s.order[i]
}

// cellKey maps coordinates to a packed grid-cell key. Negative cell
// indexes (points slightly outside the stop MBR) are fine: the int32
// cast preserves distinctness.
func (s *StopSet) cellKey(x, y float64) uint64 {
	cx := int32(fastFloor((x - s.minX) * s.invCell))
	cy := int32(fastFloor((y - s.minY) * s.invCell))
	return packCell(cx, cy)
}

func packCell(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

func fastFloor(v float64) int64 {
	i := int64(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}

// Psi returns the threshold the set was built for.
func (s *StopSet) Psi() float64 { return s.psi }

// Stops returns the underlying stop points (read-only).
func (s *StopSet) Stops() []geo.Point { return s.stops }

// Served reports whether p is within ψ of any stop.
func (s *StopSet) Served(p geo.Point) bool {
	if len(s.keys) == 0 {
		return PointServed(p, s.stops, s.psi)
	}
	cx := int32(fastFloor((p.X - s.minX) * s.invCell))
	cy := int32(fastFloor((p.Y - s.minY) * s.invCell))
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			key := packCell(cx+dx, cy+dy)
			i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
			for ; i < len(s.keys) && s.keys[i] == key; i++ {
				if p.Dist2(s.stops[s.order[i]]) <= s.psi2 {
					return true
				}
			}
		}
	}
	return false
}

// ValueSet is Value with the stop-membership test delegated to a StopSet.
func ValueSet(sc Scenario, u *trajectory.Trajectory, ss *StopSet) float64 {
	switch sc {
	case Binary:
		if ss.Served(u.Source()) && ss.Served(u.Dest()) {
			return 1
		}
		return 0
	case PointCount:
		served := 0
		for _, p := range u.Points {
			if ss.Served(p) {
				served++
			}
		}
		return float64(served) / float64(u.Len())
	case Length:
		if u.Length() == 0 {
			return 0
		}
		var sl float64
		prev := ss.Served(u.Points[0])
		for i := 1; i < u.Len(); i++ {
			cur := ss.Served(u.Points[i])
			if prev && cur {
				sl += u.SegmentLength(i - 1)
			}
			prev = cur
		}
		return sl / u.Length()
	}
	panic("service: invalid scenario")
}
