package mmap

import (
	"encoding/binary"
	"math"

	"github.com/trajcover/trajcover/internal/geo"
)

// Decoded-copy views, shared by the non-little-endian builds and the
// misaligned-input fallback of the aliasing builds. Inputs must be an
// exact multiple of the element size (the snapshot cursor guarantees
// it); a trailing remainder is ignored rather than read out of bounds.

func decodeU64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func decodeU32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func decodeI32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func decodeF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func decodeRects(b []byte) []geo.Rect {
	out := make([]geo.Rect, len(b)/32)
	for i := range out {
		r := b[i*32:]
		out[i] = geo.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(r[0:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(r[8:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(r[16:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(r[24:])),
		}
	}
	return out
}

func decodePoints(b []byte) []geo.Point {
	out := make([]geo.Point, len(b)/16)
	for i := range out {
		p := b[i*16:]
		out[i] = geo.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(p[0:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		}
	}
	return out
}
