package mmap

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
)

func TestOpenAndRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	want := []byte("hello, mapping")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data()) != string(want) {
		t.Fatalf("Data = %q, want %q", m.Data(), want)
	}
	if m.Refs() != 1 {
		t.Fatalf("Refs = %d, want 1", m.Refs())
	}
	m.Retain()
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	if string(m.Data()) != string(want) {
		t.Fatalf("Data gone after non-final Release")
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	if m.Data() != nil {
		t.Fatalf("Data survived final Release")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data()) != 0 {
		t.Fatalf("Data = %v, want empty", m.Data())
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

// TestViewsMatchDecode pins every aliased view to the explicit
// little-endian decode — on aliasing builds this proves the unsafe cast
// reads the same values the portable path does.
func TestViewsMatchDecode(t *testing.T) {
	// 8-aligned backing buffer (make of []byte is at least 8-aligned for
	// sizes >= 8 in practice; force it via a uint64 slice to be sure).
	back := make([]uint64, 16)
	b := make([]byte, 0, len(back)*8)
	vals := []uint64{0, 1, 0xdeadbeefcafef00d, math.Float64bits(3.5), ^uint64(0)}
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	_ = back

	u := U64s(b)
	for i, v := range vals {
		if u[i] != v {
			t.Fatalf("U64s[%d] = %x, want %x", i, u[i], v)
		}
	}
	f := F64s(b[3*8 : 4*8])
	if f[0] != 3.5 {
		t.Fatalf("F64s = %v, want 3.5", f[0])
	}

	ib := binary.LittleEndian.AppendUint32(nil, 7)
	ib = binary.LittleEndian.AppendUint32(ib, 0xffffffff)
	i32 := I32s(ib)
	if i32[0] != 7 || i32[1] != -1 {
		t.Fatalf("I32s = %v, want [7 -1]", i32)
	}
	u32 := U32s(ib)
	if u32[0] != 7 || u32[1] != 0xffffffff {
		t.Fatalf("U32s = %v", u32)
	}

	var rb []byte
	for _, v := range []float64{1, 2, 3, 4, -1, -2, -3, -4} {
		rb = binary.LittleEndian.AppendUint64(rb, math.Float64bits(v))
	}
	rects := Rects(rb)
	want := []geo.Rect{{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}, {MinX: -1, MinY: -2, MaxX: -3, MaxY: -4}}
	for i := range want {
		if rects[i] != want[i] {
			t.Fatalf("Rects[%d] = %+v, want %+v", i, rects[i], want[i])
		}
	}
	pts := Points(rb)
	if len(pts) != 4 || pts[0] != (geo.Point{X: 1, Y: 2}) || pts[3] != (geo.Point{X: -3, Y: -4}) {
		t.Fatalf("Points = %+v", pts)
	}
}

// TestMisalignedFallsBack feeds a deliberately misaligned slice and
// checks the view still decodes correctly (via the copy path) instead of
// panicking.
func TestMisalignedFallsBack(t *testing.T) {
	raw := make([]byte, 8+1)
	binary.LittleEndian.PutUint64(raw[1:], 42)
	u := U64s(raw[1:])
	if len(u) != 1 || u[0] != 42 {
		t.Fatalf("U64s misaligned = %v, want [42]", u)
	}
}

func TestEmptyViews(t *testing.T) {
	if len(U64s(nil)) != 0 || len(I32s(nil)) != 0 || len(Rects(nil)) != 0 {
		t.Fatal("empty input produced non-empty view")
	}
}
