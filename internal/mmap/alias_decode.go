//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package mmap

import "github.com/trajcover/trajcover/internal/geo"

// Architectures whose native layout does not match the little-endian
// on-disk format: every view is a decoded heap copy. Slower restore,
// identical results.

// ZeroCopy reports whether this build aliases columns in place.
func ZeroCopy() bool { return false }

// U64s views b as little-endian uint64s (decoded copy on this build).
func U64s(b []byte) []uint64 { return decodeU64s(b) }

// U32s views b as little-endian uint32s.
func U32s(b []byte) []uint32 { return decodeU32s(b) }

// I32s views b as little-endian int32s.
func I32s(b []byte) []int32 { return decodeI32s(b) }

// F64s views b as little-endian float64s.
func F64s(b []byte) []float64 { return decodeF64s(b) }

// Rects views b as geo.Rects.
func Rects(b []byte) []geo.Rect { return decodeRects(b) }

// Points views b as geo.Points.
func Points(b []byte) []geo.Point { return decodePoints(b) }
