//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm

package mmap

import (
	"unsafe"

	"github.com/trajcover/trajcover/internal/geo"
)

// Little-endian architectures: the on-disk layout (little-endian scalars,
// geo structs whose field order matches serialization order) is the
// in-memory layout, so columns alias the mapping with an unsafe slice
// cast — zero copies, zero heap. A misaligned or odd-length input (which
// a well-formed snapshot never produces, but a corrupt one might) falls
// back to the decoded copy instead of tripping checkptr.

// ZeroCopy reports whether this build aliases columns in place.
func ZeroCopy() bool { return true }

// alias reinterprets b as a []T when the pointer is aligned for T and
// the length is an exact multiple of T's size; nil otherwise.
func alias[T any](b []byte) []T {
	var zero T
	size := unsafe.Sizeof(zero)
	if len(b) == 0 {
		return []T{}
	}
	p := unsafe.SliceData(b)
	if uintptr(unsafe.Pointer(p))%unsafe.Alignof(zero) != 0 || uintptr(len(b))%size != 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(p)), uintptr(len(b))/size)
}

// U64s views b as little-endian uint64s (aliased when possible).
func U64s(b []byte) []uint64 {
	if s := alias[uint64](b); s != nil {
		return s
	}
	return decodeU64s(b)
}

// U32s views b as little-endian uint32s.
func U32s(b []byte) []uint32 {
	if s := alias[uint32](b); s != nil {
		return s
	}
	return decodeU32s(b)
}

// I32s views b as little-endian int32s.
func I32s(b []byte) []int32 {
	if s := alias[int32](b); s != nil {
		return s
	}
	return decodeI32s(b)
}

// F64s views b as little-endian float64s.
func F64s(b []byte) []float64 {
	if s := alias[float64](b); s != nil {
		return s
	}
	return decodeF64s(b)
}

// Rects views b as geo.Rects (4 little-endian float64s each, field
// order MinX, MinY, MaxX, MaxY — the serialization order).
func Rects(b []byte) []geo.Rect {
	if s := alias[geo.Rect](b); s != nil {
		return s
	}
	return decodeRects(b)
}

// Points views b as geo.Points (2 little-endian float64s each, field
// order X, Y — the serialization order).
func Points(b []byte) []geo.Point {
	if s := alias[geo.Point](b); s != nil {
		return s
	}
	return decodePoints(b)
}
