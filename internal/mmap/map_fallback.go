//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package mmap

import (
	"io"
	"os"
)

// mapFile on platforms without mmap reads the file into a heap buffer.
// Not zero-copy, but every caller-visible property holds: the bytes are
// immutable-by-convention and live until the final Release.
func mapFile(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func([]byte) error { return nil }, nil
}
