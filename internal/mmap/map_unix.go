//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package mmap

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared (page-cache backed,
// no copy on open).
func mapFile(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
