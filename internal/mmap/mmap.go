// Package mmap maps read-only snapshot files into memory and aliases
// typed column slices directly onto the mapping, so a frozen index can
// serve from the page cache instead of a heap restore.
//
// Two independent fallbacks keep every platform correct:
//
//   - Platforms without mmap (no unix build tag) read the whole file
//     into a heap buffer; callers see the same []byte either way.
//   - Architectures where the on-disk little-endian layout cannot be
//     aliased in place (big-endian, or a misaligned input slice) decode
//     into fresh heap slices instead of casting.
//
// Aliased slices are views into the mapping: they are valid only while
// the Mapping is retained, and writing to them faults (PROT_READ). The
// snapshot layer pins the mapping from every object that can reach an
// aliased slice and releases it from a finalizer, so a mapping never
// outlives its readers and never unmaps under one.
package mmap

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Mapping is one read-only file mapping (or, on platforms without mmap,
// a heap copy of the file). It is refcounted: Open returns it with one
// reference, Retain/Release adjust it, and the final Release unmaps.
type Mapping struct {
	data  []byte
	refs  atomic.Int64
	unmap func([]byte) error
}

// Open maps the file at path read-only. The returned Mapping holds one
// reference; the caller owns it and must Release it (directly or via a
// finalizer on whatever pins it).
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("mmap: %s: file size %d not mappable", path, size)
	}
	m := &Mapping{}
	m.refs.Store(1)
	if size == 0 {
		return m, nil
	}
	data, unmap, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", path, err)
	}
	m.data = data
	m.unmap = unmap
	return m, nil
}

// Data returns the mapped bytes. The slice is valid only while the
// mapping is retained.
func (m *Mapping) Data() []byte { return m.data }

// Retain adds a reference.
func (m *Mapping) Retain() { m.refs.Add(1) }

// Release drops a reference; the last release unmaps. Releasing an
// already-dead mapping panics (a refcount bug, not a runtime condition).
func (m *Mapping) Release() error {
	n := m.refs.Add(-1)
	if n < 0 {
		panic("mmap: Release of dead Mapping")
	}
	if n > 0 {
		return nil
	}
	data, unmap := m.data, m.unmap
	m.data, m.unmap = nil, nil
	if unmap == nil || data == nil {
		return nil
	}
	return unmap(data)
}

// Refs reports the current reference count (for tests).
func (m *Mapping) Refs() int64 { return m.refs.Load() }
