// Package server is the long-running HTTP (JSON) front end over a live
// trajectory-coverage index — the layer that turns the batch executor
// into a system with an SLO. cmd/tqserve is its CLI wrapper.
//
// The serving core is a bounded worker pool with admission control:
// every /v1/* request is decoded and validated in the HTTP handler, then
// submitted to a queue of configurable depth ahead of a fixed pool of
// workers. A full queue fails fast — 429 with a Retry-After hint —
// instead of letting latency collapse under overload. Each admitted
// request carries a deadline (the server default, or the request's
// timeout_ms capped at Config.MaxTimeout) propagated as a
// context.Context into the cancellation-aware query executor, so an
// expired request aborts between facility relaxations rather than
// holding a worker. /healthz and /statsz serve readiness and the
// per-endpoint latency/queue counters; /v1/snapshot streams a TQLIVE01
// checkpoint without stopping writes.
//
// Endpoints:
//
//	POST /v1/topk           {"facilities":[{"id":1,"stops":[[x,y],...]}],"k":8,"scenario":"binary","psi":300}
//	POST /v1/servicevalues  {"facilities":[...],"scenario":"binary","psi":300}
//	POST /v1/upperbounds    {"facilities":[...],"scenario":"binary","psi":300} (initial bounds; dist scatter unit)
//	POST /v1/insert         {"id":9001,"points":[[x,y],[x,y]]}
//	POST /v1/delete         {"id":9001}
//	POST /v1/compact        {}
//	GET  /v1/snapshot       -> TQLIVE01 stream (+X-Repl-Boot/X-Repl-Seq when replicating)
//	POST /v1/checkpoint     {} (WAL-backed index only)
//	GET  /v1/changes        ?after=N&boot=ID&wait_ms=MS -> replication tail (Config.ReplLog)
//	GET  /healthz, /statsz
//
// On a WAL-backed index (tqserve -wal-dir), /v1/snapshot streams the
// checkpoint it just made durable on disk — so every snapshot download
// also truncates the WAL — and /v1/checkpoint runs the same checkpoint
// without streaming the bytes. /statsz gains a "wal" section with
// append/fsync counters and the time since the last checkpoint.
//
// Multi-tenancy: a server built with NewMulti serves one independent
// live index per tenant out of a trajcover.TenantRegistry. Requests
// name their tenant with the X-Tenant header or the "tenant" JSON field
// (both set and disagreeing is a 400); absent both, the request belongs
// to the "default" tenant, so single-tenant clients keep working
// unchanged. Reads of unknown tenants are 404; writes create the tenant
// lazily (its own WAL directory under the registry root); invalid
// tenant IDs are 400 before any state can exist. On top of the global
// worker pool, each tenant passes a per-tenant admission gate —
// max_inflight, max_queue, and a writes_per_sec token bucket, from a
// hot-reloadable overrides document (SetOverrides) — and over-quota
// requests get 429 with Retry-After and a per-tenant reject counter in
// the /statsz "tenants" section. X-Tenant also selects the tenant of
// /v1/snapshot, /v1/checkpoint, and /v1/compact.
//
// Shutdown protocol: BeginDrain (new work → 503, health → draining),
// then stop the HTTP listener (http.Server.Shutdown waits for in-flight
// handlers, whose queued tasks the pool finishes or abandons at their
// deadlines), then Close to stop the workers. Close must come after the
// HTTP layer has stopped delivering requests.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/replog"
	"github.com/trajcover/trajcover/internal/rescache"
	"github.com/trajcover/trajcover/internal/tenant"
)

// Config tunes the serving core. The zero value serves with GOMAXPROCS
// workers, a 64-deep queue, a 2s default deadline capped at 30s, 8 MiB
// request bodies, and a 1s Retry-After hint.
type Config struct {
	// Workers is the size of the query worker pool (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// before new ones are rejected with 429 (<= 0: 64).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request names
	// none (<= 0: 2s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (<= 0: 30s).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (<= 0: 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint on 429 responses (<= 0: 1s).
	RetryAfter time.Duration
	// ResultCacheBytes bounds the epoch-keyed result cache for /v1/topk
	// and /v1/servicevalues answers (<= 0: disabled). Entries key on the
	// request's canonical hash, the tenant, and the index's write
	// version, so a cached answer is always what the index would answer
	// right now — writes invalidate by construction, not by purging.
	ResultCacheBytes int64
	// ReplLog, when non-nil, turns on primary-side replication on a
	// single-tenant server: every acknowledged insert/delete is appended
	// to the log in the order it took effect on the index, GET
	// /v1/changes serves ordered suffixes to replicas (long-polling on
	// wait_ms), and /v1/snapshot stamps X-Repl-Boot / X-Repl-Seq so a
	// bootstrapping replica knows which log suffix follows the stream it
	// is downloading. Ignored by multi-tenant servers.
	ReplLog *replog.Log
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// response is a computed answer a worker hands back to the waiting
// handler; the handler alone touches the ResponseWriter. retryAfter
// marks a transient rejection (degraded writes) the handler must stamp
// with a Retry-After header — the worker never touches w.
type response struct {
	status     int
	body       []byte
	retryAfter bool
}

// task is one admitted request: the deadline context, the work closure,
// and the channel the handler waits on. If the handler gives up at its
// deadline first, the finished (or skipped) response is simply dropped.
// started/finished (optional) are the tenant gate's bookkeeping: they
// run on the worker when the task leaves the queue and when it is done
// (even for skipped tasks), so a tenant's quota slots are held exactly
// as long as the tenant genuinely occupies queue + worker capacity.
type task struct {
	ctx      context.Context
	run      func(ctx context.Context) response
	resp     response
	done     chan struct{}
	started  func()
	finished func()
}

// endpointStats is one endpoint's counters, updated with atomics on the
// serving path and snapshotted by /statsz. `observed` counts only the
// requests that reached a timed terminal path (admitted work and
// snapshot streams) and is the latency mean's denominator — decode and
// drain rejections bump `requests`/`errors` without skewing the mean.
type endpointStats struct {
	requests atomic.Uint64
	rejected atomic.Uint64
	errors   atomic.Uint64
	deadline atomic.Uint64
	observed atomic.Uint64
	totalNs  atomic.Int64
	maxNs    atomic.Int64
}

func (e *endpointStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	e.observed.Add(1)
	e.totalNs.Add(ns)
	for {
		cur := e.maxNs.Load()
		if ns <= cur || e.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// EndpointSnapshot is one endpoint's counters as served by /statsz.
// MeanMillis/MaxMillis are over Observed (requests that reached the
// pool or the snapshot stream), not Requests, so decode rejections
// cannot dilute the served-latency figures.
type EndpointSnapshot struct {
	Requests         uint64  `json:"requests"`
	Observed         uint64  `json:"observed"`
	Rejected         uint64  `json:"rejected"`
	Errors           uint64  `json:"errors"`
	DeadlineExceeded uint64  `json:"deadline_exceeded"`
	MeanMillis       float64 `json:"mean_ms"`
	MaxMillis        float64 `json:"max_ms"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests:         e.requests.Load(),
		Observed:         e.observed.Load(),
		Rejected:         e.rejected.Load(),
		Errors:           e.errors.Load(),
		DeadlineExceeded: e.deadline.Load(),
		MaxMillis:        float64(e.maxNs.Load()) / 1e6,
	}
	if s.Observed > 0 {
		s.MeanMillis = float64(e.totalNs.Load()) / 1e6 / float64(s.Observed)
	}
	return s
}

// IndexSnapshot is the served index's state as reported by /statsz.
// Health carries the degraded-mode state machine: cause and entry time
// while degraded, monotone Entries/Exits transition counters, and the
// recovery probe's attempt/success counts.
type IndexSnapshot struct {
	Len          int                        `json:"len"`
	Shards       int                        `json:"shards"`
	PerShard     []trajcover.LiveShardStats `json:"per_shard"`
	RebuildError string                     `json:"rebuild_error,omitempty"`
	Health       *trajcover.Health          `json:"health,omitempty"`
}

// ProcessSnapshot is the process-level /statsz section: the figures an
// operator correlates with degraded windows and leak reports. RSSBytes
// is the OS-visible resident set from /proc/self/statm (0 where that
// file is unavailable); alongside HeapInuseBytes it makes the memory
// tiers legible — a mapped snapshot shows up as the gap between a
// large RSS and a small heap, and memory pressure evicts it from the
// RSS without the heap moving.
type ProcessSnapshot struct {
	Goroutines     int     `json:"goroutines"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
	RSSBytes       uint64  `json:"rss_bytes"`
}

// readRSSBytes reads the resident set size from /proc/self/statm
// (second field, pages). Returns 0 on platforms without procfs.
func readRSSBytes() uint64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

// WALSnapshot is the durability layer's state as reported by /statsz
// (present only for WAL-backed indexes).
type WALSnapshot struct {
	Records                uint64  `json:"records"`
	Segments               int     `json:"segments"`
	Bytes                  int64   `json:"bytes"`
	Fsyncs                 uint64  `json:"fsyncs"`
	MaxFsyncMillis         float64 `json:"max_fsync_ms"`
	SinceCheckpointSeconds float64 `json:"since_checkpoint_seconds"`
}

// TenantSnapshot is one tenant's /statsz section: its effective limits
// and its admission-gate counters (including per-reason rejections).
type TenantSnapshot struct {
	Limits tenant.Limits       `json:"limits"`
	Gate   tenant.GateSnapshot `json:"gate"`
}

// Stats is the /statsz document. Index and WAL describe the default
// tenant's index (absent when no default tenant exists); Tenants holds
// one section per tenant that has sent traffic this session;
// DegradedTenants maps each currently-degraded tenant to its cause.
type Stats struct {
	UptimeSeconds   float64                        `json:"uptime_seconds"`
	Workers         int                            `json:"workers"`
	QueueCap        int                            `json:"queue_cap"`
	QueueDepth      int                            `json:"queue_depth"`
	Draining        bool                           `json:"draining"`
	Process         ProcessSnapshot                `json:"process"`
	Endpoints       map[string]EndpointSnapshot    `json:"endpoints"`
	Index           IndexSnapshot                  `json:"index"`
	WAL             *WALSnapshot                   `json:"wal,omitempty"`
	Tenants         map[string]TenantSnapshot      `json:"tenants,omitempty"`
	DegradedTenants map[string]string              `json:"degraded_tenants,omitempty"`
	Registry        *trajcover.TenantRegistryStats `json:"registry,omitempty"`
	OverridesInfo   *OverridesSnapshot             `json:"overrides,omitempty"`
	ResultCache     *rescache.Snapshot             `json:"result_cache,omitempty"`
	Replication     *replog.Stats                  `json:"replication,omitempty"`
}

// OverridesSnapshot reports the overrides reload counters /statsz shows
// (wired by cmd/tqserve from the watcher).
type OverridesSnapshot struct {
	Reloads uint64 `json:"reloads"`
	Fails   uint64 `json:"fails"`
}

// Server is the worker-pool front end over a live sharded index.
// Construct with New, expose Handler over any http.Server, and shut
// down with BeginDrain → HTTP shutdown → Close.
type Server struct {
	cfg Config
	// Exactly one of idx/reg is live: idx is the single-tenant mode
	// (New; every request belongs to the default tenant), reg the
	// multi-tenant mode (NewMulti). idx is an atomic pointer so a
	// replica can swap in a freshly bootstrapped index (SetIndex) when
	// its primary restarts, without dropping the listener.
	idx   atomic.Pointer[trajcover.LiveShardedIndex]
	reg   *trajcover.TenantRegistry
	queue chan *task

	// repl is the primary-side replication log (Config.ReplLog;
	// single-tenant only). replmu serializes each (index write, log
	// append) pair so the log order is exactly the order writes took
	// effect — without it two racing writes to the same ID could
	// replicate in the opposite order they applied.
	repl   *replog.Log
	replmu sync.Mutex

	// cache is the epoch-keyed result cache (nil when disabled; a nil
	// *rescache.Cache is a valid always-miss cache).
	cache *rescache.Cache

	// qmu makes Close safe against stragglers: enqueues hold the read
	// side, Close closes the queue under the write side. The intended
	// shutdown order (HTTP first, then Close) makes contention zero;
	// the lock is what turns a violated order — e.g. a slow-body
	// handler outliving a timed-out http.Server.Shutdown — into a 503
	// instead of a send-on-closed-channel panic.
	qmu       sync.RWMutex
	closed    bool
	wg        sync.WaitGroup
	closeOnce sync.Once
	draining  atomic.Bool
	start     time.Time

	mux        *http.ServeMux
	stats      map[string]*endpointStats // fixed key set; read-only after New
	retryAfter string

	// Per-tenant admission state. ovr is the current overrides document
	// (swapped whole on reload — never partially applied); gates holds
	// one Gate per tenant that has sent traffic. now is the gates' clock
	// (nil: time.Now), injectable by tests to pin the write-rate bucket.
	ovr       atomic.Pointer[tenant.Overrides]
	gmu       sync.Mutex
	gates     map[string]*tenant.Gate
	now       func() time.Time
	ovrStatus func() OverridesSnapshot
}

// Endpoint paths, also the /statsz counter keys.
const (
	PathTopK          = "/v1/topk"
	PathServiceValues = "/v1/servicevalues"
	PathUpperBounds   = "/v1/upperbounds"
	PathInsert        = "/v1/insert"
	PathDelete        = "/v1/delete"
	PathCompact       = "/v1/compact"
	PathSnapshot      = "/v1/snapshot"
	PathCheckpoint    = "/v1/checkpoint"
	PathChanges       = "/v1/changes"
	PathHealth        = "/healthz"
	PathStats         = "/statsz"
)

// New builds a single-tenant Server over idx and starts its worker
// pool: every request (whatever tenant it names, as long as it is the
// default) is served from idx.
func New(idx *trajcover.LiveShardedIndex, cfg Config) *Server {
	return newServer(idx, nil, cfg)
}

// NewMulti builds a multi-tenant Server over a registry: each request's
// tenant resolves to its own live index, lazily created on first write.
// The registry is the caller's (close it after Close).
func NewMulti(reg *trajcover.TenantRegistry, cfg Config) *Server {
	return newServer(nil, reg, cfg)
}

func newServer(idx *trajcover.LiveShardedIndex, reg *trajcover.TenantRegistry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		queue:      make(chan *task, cfg.QueueDepth),
		cache:      rescache.New(cfg.ResultCacheBytes),
		start:      time.Now(),
		mux:        http.NewServeMux(),
		stats:      map[string]*endpointStats{},
		gates:      map[string]*tenant.Gate{},
		retryAfter: strconv.Itoa(int((cfg.RetryAfter + time.Second - 1) / time.Second)),
	}
	if idx != nil {
		s.idx.Store(idx)
	}
	if reg == nil {
		s.repl = cfg.ReplLog
	}
	for _, p := range []string{PathTopK, PathServiceValues, PathUpperBounds, PathInsert, PathDelete, PathCompact, PathSnapshot, PathCheckpoint, PathChanges} {
		s.stats[p] = &endpointStats{}
	}
	s.mux.HandleFunc(PathTopK, s.requirePost(s.handleTopK))
	s.mux.HandleFunc(PathServiceValues, s.requirePost(s.handleServiceValues))
	s.mux.HandleFunc(PathUpperBounds, s.requirePost(s.handleUpperBounds))
	s.mux.HandleFunc(PathInsert, s.requirePost(s.handleInsert))
	s.mux.HandleFunc(PathDelete, s.requirePost(s.handleDelete))
	s.mux.HandleFunc(PathCompact, s.requirePost(s.handleCompact))
	s.mux.HandleFunc(PathSnapshot, s.handleSnapshot)
	s.mux.HandleFunc(PathCheckpoint, s.handleCheckpoint)
	s.mux.HandleFunc(PathChanges, s.handleChanges)
	s.mux.HandleFunc(PathHealth, s.handleHealth)
	s.mux.HandleFunc(PathStats, s.handleStats)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Index returns the default tenant's index (nil when a multi-tenant
// server has no default tenant yet).
func (s *Server) Index() *trajcover.LiveShardedIndex {
	if s.reg == nil {
		return s.idx.Load()
	}
	idx, release, err := s.reg.Acquire(tenant.DefaultID, false)
	if err != nil {
		return nil
	}
	release()
	return idx
}

// SetIndex atomically replaces the single-tenant served index. It is
// the replica re-bootstrap hook: when the primary's replication boot
// identity changes (crash + WAL recovery), the replica restores a
// fresh index from the new snapshot and swaps it in here without
// dropping its listener. Requests already admitted finish against the
// index they were admitted on — still a valid acknowledged prefix.
// Servers that swap indexes must run with the result cache disabled
// (Config.ResultCacheBytes <= 0): cache keys include the index's write
// version but not its identity, so entries from the old index could
// answer for the new one. Panics on a multi-tenant server or a nil
// index.
func (s *Server) SetIndex(idx *trajcover.LiveShardedIndex) {
	if s.reg != nil {
		panic("server: SetIndex on a multi-tenant server")
	}
	if idx == nil {
		panic("server: SetIndex(nil)")
	}
	s.idx.Store(idx)
}

// SetOverrides swaps in a new per-tenant limits document — the whole
// document atomically, which with ParseOverrides' all-or-nothing
// validation is what makes "an invalid overrides file keeps the old
// limits" hold end to end. nil means no limits.
func (s *Server) SetOverrides(o *tenant.Overrides) { s.ovr.Store(o) }

// SetOverridesStatus installs a callback reporting overrides reload
// counters on /statsz (wired by cmd/tqserve from the file watcher).
func (s *Server) SetOverridesStatus(fn func() OverridesSnapshot) { s.ovrStatus = fn }

// limitsFor resolves a tenant's effective limits under the current
// overrides document.
func (s *Server) limitsFor(id string) tenant.Limits { return s.ovr.Load().For(id) }

// gateOf returns tenant id's admission gate, creating it on first
// traffic.
func (s *Server) gateOf(id string) *tenant.Gate {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	g := s.gates[id]
	if g == nil {
		g = &tenant.Gate{Now: s.now}
		s.gates[id] = g
	}
	return g
}

// resolveTenant extracts the request's tenant from the X-Tenant header
// and/or the body's "tenant" field: absent both it is the default
// tenant; set both and disagreeing it is a 400. The ID is validated
// BEFORE any registry access, so a malformed tenant (path traversal,
// oversized, non-ASCII) can never create directories or gates.
func resolveTenant(r *http.Request, bodyTenant string) (string, error) {
	id := r.Header.Get("X-Tenant")
	if id == "" {
		id = bodyTenant
	} else if bodyTenant != "" && bodyTenant != id {
		return "", badRequestf("tenant mismatch: X-Tenant header %q vs body tenant %q", id, bodyTenant)
	}
	if id == "" {
		return tenant.DefaultID, nil
	}
	if err := tenant.ValidateID(id); err != nil {
		return "", badRequestf("%v", err)
	}
	return id, nil
}

// acquireTenant resolves a tenant ID to its index plus a release func.
// In single-tenant mode only the default tenant exists.
func (s *Server) acquireTenant(id string, create bool) (*trajcover.LiveShardedIndex, func(), error) {
	if s.reg != nil {
		return s.reg.Acquire(id, create)
	}
	if id != tenant.DefaultID {
		return nil, nil, fmt.Errorf("%w: %q", trajcover.ErrUnknownTenant, id)
	}
	return s.idx.Load(), func() {}, nil
}

// BeginDrain flips the server into draining: /healthz reports 503 (so
// load balancers stop routing here) and new /v1/* work is rejected with
// 503 while in-flight requests finish. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the worker pool after the remaining queue drains and
// blocks until every worker has exited. Call it after the HTTP layer
// has stopped delivering requests (http.Server.Shutdown or
// httptest.Server.Close has returned); a handler that nevertheless
// outlived a timed-out Shutdown gets 503 from then on rather than
// racing the queue close. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.qmu.Lock()
		s.closed = true
		close(s.queue)
		s.qmu.Unlock()
	})
	s.wg.Wait()
}

// enqueue admits a task unless the queue is full (false, nil) or the
// pool is closed (false, error).
func (s *Server) enqueue(t *task) (bool, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return false, errors.New("server closed")
	}
	select {
	case s.queue <- t:
		return true, nil
	default:
		return false, nil
	}
}

// worker executes admitted tasks in arrival order. A task whose
// deadline already passed while queued is skipped — its handler has
// answered 504 — so a saturated queue sheds abandoned work at a glance
// instead of running queries nobody is waiting for.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		if t.started != nil {
			t.started()
		}
		if err := t.ctx.Err(); err != nil {
			t.resp = errResponse(err)
		} else {
			t.resp = t.run(t.ctx)
		}
		if t.finished != nil {
			t.finished()
		}
		close(t.done)
	}
}

// requestTimeout resolves a request's deadline from its timeout_ms,
// capped by Config.MaxTimeout and the tenant's max_timeout_ms.
func (s *Server) requestTimeout(timeoutMS int64, lim tenant.Limits) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	if lim.MaxTimeoutMS > 0 {
		if tmax := time.Duration(lim.MaxTimeoutMS) * time.Millisecond; d > tmax {
			d = tmax
		}
	}
	return d
}

// rejectRetryable answers any transient rejection — 429 on queue or
// quota pressure, 503 on drain or degraded mode — with a Retry-After
// hint. Every rejection that a well-behaved client should back off and
// retry goes through here; permanent errors (400/404/409/500) never
// carry the header.
func (s *Server) rejectRetryable(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", s.retryAfter)
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// rejectQuota answers a 429 for a tenant over one of its limits. The
// gate already counted the per-reason rejection; here it reaches the
// endpoint counters and the client, with Retry-After like global queue
// pressure — the client backoff story is the same.
func (s *Server) rejectQuota(w http.ResponseWriter, ep *endpointStats, tid string, reason tenant.RejectReason) {
	ep.rejected.Add(1)
	s.rejectRetryable(w, http.StatusTooManyRequests, fmt.Sprintf("tenant %q over %s", tid, reason))
}

// executeTenant runs one unit of work through the pool on behalf of a
// tenant: per-tenant admission (429 over quota), index resolution (404
// unknown on reads, lazy create on writes), global admission (429 on a
// full queue), deadline propagation, and the wait for the worker's
// response or the deadline (504). Gate slots are held until the worker
// is genuinely done with the task — not until the handler gives up — so
// quotas bound real queue + worker occupancy. All terminal paths update
// the endpoint's counters; only this handler goroutine writes w.
//
// reqHash, when non-nil, is the request's canonical digest and makes
// the work cacheable: the handler captures the index version v, probes
// the cache at (hash, tenant, v) — a hit answers from the handler
// goroutine, bypassing the queue entirely — and on a miss the worker
// stores its 200 answer only if the version still reads v afterwards.
// That capture/compute/recheck protocol is what keeps the cache
// linearizable: an equal recheck proves no epoch was published while
// the query ran, and a version observed at request time always names
// an answer the client could have gotten from an uncached server at
// that moment. Per-tenant quota admission still applies to hits.
func (s *Server) executeTenant(w http.ResponseWriter, r *http.Request, ep *endpointStats, tid string, isWrite bool, timeoutMS int64, reqHash *[32]byte, run func(ctx context.Context, idx *trajcover.LiveShardedIndex) response) {
	start := time.Now()
	ep.requests.Add(1)

	lim := s.limitsFor(tid)
	gate := s.gateOf(tid)
	ok, reason := gate.Admit(lim)
	if !ok {
		s.rejectQuota(w, ep, tid, reason)
		return
	}
	if isWrite && !gate.AdmitWrite(lim) {
		gate.Cancel()
		s.rejectQuota(w, ep, tid, tenant.RejectRate)
		return
	}
	idx, release, err := s.acquireTenant(tid, isWrite)
	if err != nil {
		gate.Cancel()
		ep.errors.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, trajcover.ErrUnknownTenant) {
			status = http.StatusNotFound
		} else if trajcover.IsBadTenantID(err) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}

	if reqHash != nil && s.cache != nil {
		ver := idx.Version()
		key := rescache.Key{Hash: *reqHash, Tenant: tid, Version: ver}
		if body, ok := s.cache.Get(key); ok {
			gate.Cancel()
			release()
			ep.observe(time.Since(start))
			writeRaw(w, http.StatusOK, body)
			return
		}
		inner := run
		run = func(ctx context.Context, idx *trajcover.LiveShardedIndex) response {
			resp := inner(ctx, idx)
			if resp.status == http.StatusOK && idx.Version() == ver {
				s.cache.Put(key, resp.body)
			}
			return resp
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(timeoutMS, lim))
	defer cancel()
	t := &task{
		ctx:     ctx,
		run:     func(ctx context.Context) response { return run(ctx, idx) },
		done:    make(chan struct{}),
		started: gate.Started,
		finished: func() {
			gate.Finished()
			release()
		},
	}
	ok, err = s.enqueue(t)
	if err != nil {
		gate.Cancel()
		release()
		ep.errors.Add(1)
		s.rejectRetryable(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if !ok {
		gate.Cancel()
		release()
		ep.rejected.Add(1)
		s.rejectRetryable(w, http.StatusTooManyRequests, "worker queue full")
		return
	}
	// Only admitted requests are timed: rejections return in
	// microseconds and would otherwise dilute the served-latency mean.
	defer func() { ep.observe(time.Since(start)) }()
	select {
	case <-t.done:
		if t.resp.status >= 400 {
			ep.errors.Add(1)
			if t.resp.status == http.StatusGatewayTimeout {
				ep.deadline.Add(1)
			}
		}
		if t.resp.retryAfter {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		writeRaw(w, t.resp.status, t.resp.body)
	case <-ctx.Done():
		// Deadline or client disconnect while queued or mid-query; the
		// query layer unwinds on its own and the worker drops the task
		// (releasing the gate slots and the tenant reference then).
		ep.errors.Add(1)
		ep.deadline.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: ctx.Err().Error()})
	}
}

// admit gates an endpoint handler on drain state and reads the capped
// body; a nil return means admit already answered.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, ep *endpointStats) ([]byte, bool) {
	if s.draining.Load() {
		ep.requests.Add(1)
		ep.errors.Add(1)
		s.rejectRetryable(w, http.StatusServiceUnavailable, "server draining")
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		ep.requests.Add(1)
		ep.errors.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return nil, false
	}
	return body, true
}

func (s *Server) requirePost(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
			return
		}
		h(w, r)
	}
}

func (s *Server) rejectDecode(w http.ResponseWriter, ep *endpointStats, err error) {
	ep.requests.Add(1)
	ep.errors.Add(1)
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
}

// replLock serializes one (index write, replication append) pair. When
// replication is off it is a no-op, keeping the write path's existing
// concurrency; when on, it pins the log order to the order writes took
// effect on the index, which is what lets a replica replay the log and
// land on the primary's exact corpus.
func (s *Server) replLock() func() {
	if s.repl == nil {
		return func() {}
	}
	s.replmu.Lock()
	return s.replmu.Unlock
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathTopK]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, facs, q, err := DecodeQueryRequest(body, true)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	tid, err := resolveTenant(r, req.Tenant)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	hash := CanonicalQueryHash(PathTopK, req, req.K, q)
	s.executeTenant(w, r, ep, tid, false, req.TimeoutMS, &hash, func(ctx context.Context, idx *trajcover.LiveShardedIndex) response {
		res, err := idx.TopKParallelCtx(ctx, facs, req.K, q, req.Workers)
		if err != nil {
			return errResponse(err)
		}
		return response{status: http.StatusOK, body: MarshalTopKResponse(res)}
	})
}

func (s *Server) handleServiceValues(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathServiceValues]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, facs, q, err := DecodeQueryRequest(body, false)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	tid, err := resolveTenant(r, req.Tenant)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		s.streamServiceValues(w, r, ep, tid, req, facs, q)
		return
	}
	hash := CanonicalQueryHash(PathServiceValues, req, 0, q)
	s.executeTenant(w, r, ep, tid, false, req.TimeoutMS, &hash, func(ctx context.Context, idx *trajcover.LiveShardedIndex) response {
		vs, err := idx.ServiceValuesCtx(ctx, facs, q, req.Workers)
		if err != nil {
			return errResponse(err)
		}
		return response{status: http.StatusOK, body: MarshalValuesResponse(vs)}
	})
}

// streamServiceValues answers /v1/servicevalues?stream=1: the same
// query as the batch path, delivered as NDJSON — one StreamChunk line
// per facility chunk, in facility order, ending with a StreamTrailer
// line on success or an ErrorResponse line if the query fails after
// the first chunk was sent (headers are committed by then, so the
// status stays 200 and the error travels in-band; a stream without a
// trailer is truncated). Values are bit-identical to the batch
// response over the same facilities: chunks run the same batch core,
// and the stream answers from one epoch capture taken before the
// first chunk. Streams run inline on the handler goroutine — they
// hold a response open for their whole life, which the worker pool's
// occupancy model is not built for — but still pass per-tenant
// admission and count against inflight quota until done. Streamed
// responses bypass the result cache (the cache stores whole bodies,
// and a client asking to stream is asking not to wait for one).
// Chunk size comes from ?chunk=N (default query.DefaultStreamChunk).
func (s *Server) streamServiceValues(w http.ResponseWriter, r *http.Request, ep *endpointStats, tid string, req *QueryRequest, facs []*trajcover.Facility, q trajcover.Query) {
	start := time.Now()
	ep.requests.Add(1)

	chunk := 0
	if c := r.URL.Query().Get("chunk"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 {
			ep.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "chunk must be a positive integer"})
			return
		}
		chunk = n
	}

	lim := s.limitsFor(tid)
	gate := s.gateOf(tid)
	ok, reason := gate.Admit(lim)
	if !ok {
		s.rejectQuota(w, ep, tid, reason)
		return
	}
	gate.Started()
	defer gate.Finished()
	idx, release, err := s.acquireTenant(tid, false)
	if err != nil {
		ep.errors.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, trajcover.ErrUnknownTenant) {
			status = http.StatusNotFound
		} else if trajcover.IsBadTenantID(err) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS, lim))
	defer cancel()

	flusher, _ := w.(http.Flusher)
	wrote := false
	err = idx.ServiceValuesStreamCtx(ctx, facs, q, req.Workers, chunk, func(at int, vals []float64) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if _, err := w.Write(MarshalStreamChunk(at, vals)); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		ep.errors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			ep.deadline.Add(1)
		}
		if !wrote {
			resp := errResponse(err)
			writeRaw(w, resp.status, resp.body)
		} else {
			w.Write(append(mustMarshal(ErrorResponse{Error: err.Error()}), '\n'))
		}
		return
	}
	if !wrote {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	w.Write(append(mustMarshal(StreamTrailer{Done: true, Count: len(facs)}), '\n'))
	if flusher != nil {
		flusher.Flush()
	}
	ep.observe(time.Since(start))
}

// handleUpperBounds answers POST /v1/upperbounds: per-facility initial
// upper bounds (seeded, never relaxed — cheap) over the live corpus.
// This is the distributed frontend's scatter unit: a facility whose
// bounds summed across every backend cannot reach the provisional top
// k is pruned without any backend doing exact work for it. The body is
// a /v1/servicevalues request (k ignored); bounds are indexed like the
// facilities. Cached like the other read endpoints — bounds are a pure
// function of (request, index version).
func (s *Server) handleUpperBounds(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathUpperBounds]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, facs, q, err := DecodeQueryRequest(body, false)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	tid, err := resolveTenant(r, req.Tenant)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	hash := CanonicalQueryHash(PathUpperBounds, req, 0, q)
	s.executeTenant(w, r, ep, tid, false, req.TimeoutMS, &hash, func(ctx context.Context, idx *trajcover.LiveShardedIndex) response {
		bs, err := idx.UpperBoundsCtx(ctx, facs, q)
		if err != nil {
			return errResponse(err)
		}
		return response{status: http.StatusOK, body: MarshalBoundsResponse(bs)}
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathInsert]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, u, err := DecodeInsertRequest(body)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	tid, err := resolveTenant(r, req.Tenant)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	s.executeTenant(w, r, ep, tid, true, req.TimeoutMS, nil, func(_ context.Context, idx *trajcover.LiveShardedIndex) response {
		unlock := s.replLock()
		err := idx.Insert(u)
		if err == nil && s.repl != nil {
			s.repl.Append(replog.Entry{Op: replog.OpInsert, ID: req.ID, Points: req.Points})
		}
		unlock()
		if err != nil {
			// Duplicate IDs and unroutable (immutable-restore) inserts
			// are conflicts with the served corpus, not malformed input.
			// A degraded index is a transient 503: the write was NOT
			// acknowledged, queries still serve, and the recovery probe
			// is working the disk — retry after the hint. Anything else
			// is a durability failure the client cannot retry through.
			if trajcover.IsDegraded(err) {
				return response{status: http.StatusServiceUnavailable, body: mustMarshal(ErrorResponse{Error: err.Error()}), retryAfter: true}
			}
			status := http.StatusInternalServerError
			if errors.Is(err, trajcover.ErrDuplicateID) || trajcover.IsImmutable(err) {
				status = http.StatusConflict
			}
			return response{status: status, body: mustMarshal(ErrorResponse{Error: err.Error()})}
		}
		return response{status: http.StatusOK, body: mustMarshal(InsertResponse{Len: idx.Len()})}
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathDelete]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, err := DecodeDeleteRequest(body)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	tid, err := resolveTenant(r, req.Tenant)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	s.executeTenant(w, r, ep, tid, true, req.TimeoutMS, nil, func(_ context.Context, idx *trajcover.LiveShardedIndex) response {
		unlock := s.replLock()
		found, err := idx.Delete(trajcover.ID(req.ID))
		if err == nil && found && s.repl != nil {
			// A not-found delete mutated nothing; replicating it would
			// only burn sequence numbers.
			s.repl.Append(replog.Entry{Op: replog.OpDelete, ID: req.ID})
		}
		unlock()
		if err != nil {
			// The delete was not acknowledged: transient 503 while
			// degraded (retry after the hint), 500 otherwise.
			if trajcover.IsDegraded(err) {
				return response{status: http.StatusServiceUnavailable, body: mustMarshal(ErrorResponse{Error: err.Error()}), retryAfter: true}
			}
			return response{status: http.StatusInternalServerError, body: mustMarshal(ErrorResponse{Error: err.Error()})}
		}
		return response{status: http.StatusOK, body: mustMarshal(DeleteResponse{Found: found})}
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathCompact]
	if _, ok := s.admit(w, r, ep); !ok {
		return
	}
	// Compact has no body fields; its tenant comes from X-Tenant alone.
	tid, err := resolveTenant(r, "")
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	// Compact is not deadline-aware below the swap points; give it the
	// full MaxTimeout rather than the query default.
	s.executeTenant(w, r, ep, tid, false, s.cfg.MaxTimeout.Milliseconds(), nil, func(_ context.Context, idx *trajcover.LiveShardedIndex) response {
		if err := idx.Compact(); err != nil {
			return response{status: http.StatusInternalServerError, body: mustMarshal(ErrorResponse{Error: err.Error()})}
		}
		return response{status: http.StatusOK, body: mustMarshal(CompactResponse{OK: true})}
	})
}

// handleSnapshot streams a TQLIVE01 checkpoint of the live index. The
// capture is one atomic epoch-set read, so writes keep flowing while
// the stream runs; it bypasses the query pool (it is IO-bound ops
// traffic, not index work) but still counts on /statsz. On a WAL-backed
// index the stream comes from CheckpointTo — the checkpoint is made
// durable on disk and the WAL truncated before a byte reaches the
// client, so downloading a snapshot doubles as a checkpoint.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathSnapshot]
	ep.requests.Add(1)
	start := time.Now()
	defer func() { ep.observe(time.Since(start)) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		ep.errors.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use GET"})
		return
	}
	if s.draining.Load() {
		ep.errors.Add(1)
		s.rejectRetryable(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	idx, release, ok := s.opsTenant(w, r, ep)
	if !ok {
		return
	}
	defer release()
	w.Header().Set("Content-Type", "application/octet-stream")
	if s.repl != nil {
		// Seq is read BEFORE the stream's epoch capture, so every write
		// the snapshot might miss has a sequence number strictly above
		// the header — the replica's tail replay starts there, and any
		// overlap (writes landing between this read and the capture)
		// replays idempotently on the replica.
		w.Header().Set("X-Repl-Boot", s.repl.BootID())
		w.Header().Set("X-Repl-Seq", strconv.FormatUint(s.repl.Seq(), 10))
	}
	var err error
	if _, hasWAL := idx.WALStats(); hasWAL {
		err = idx.CheckpointTo(w)
	} else {
		err = idx.WriteSnapshot(w)
	}
	if err != nil {
		// Headers are already gone; all we can do is count and cut the
		// stream short so the client's CRC check fails loudly.
		ep.errors.Add(1)
	}
}

// opsTenant resolves the tenant of an out-of-pool ops endpoint
// (/v1/snapshot, /v1/checkpoint) from the X-Tenant header and acquires
// its index (never creating one). A false return means the error was
// already written (and counted).
func (s *Server) opsTenant(w http.ResponseWriter, r *http.Request, ep *endpointStats) (*trajcover.LiveShardedIndex, func(), bool) {
	tid, err := resolveTenant(r, "")
	if err != nil {
		ep.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return nil, nil, false
	}
	idx, release, err := s.acquireTenant(tid, false)
	if err != nil {
		ep.errors.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, trajcover.ErrUnknownTenant) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return nil, nil, false
	}
	return idx, release, true
}

// handleCheckpoint runs a WAL checkpoint (durable TQLIVE01 snapshot in
// the WAL directory + segment truncation) without streaming the bytes.
// Writes keep flowing; like /v1/snapshot it bypasses the query pool.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathCheckpoint]
	ep.requests.Add(1)
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		ep.errors.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
		return
	}
	if s.draining.Load() {
		ep.errors.Add(1)
		s.rejectRetryable(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	idx, release, ok := s.opsTenant(w, r, ep)
	if !ok {
		return
	}
	defer release()
	wst, hasWAL := idx.WALStats()
	if !hasWAL {
		ep.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "index has no WAL (start tqserve with -wal-dir or -tenant-root)"})
		return
	}
	defer func() { ep.observe(time.Since(start)) }()
	if err := idx.Checkpoint(); err != nil {
		ep.errors.Add(1)
		// A failed checkpoint degrades the index (durability stalled);
		// tell the client it is transient — the probe owns the retry.
		if idx.Degraded() {
			s.rejectRetryable(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	wst, _ = idx.WALStats()
	writeJSON(w, http.StatusOK, CheckpointResponse{OK: true, WALSegments: wst.Segments, WALBytes: wst.Bytes})
}

// maxChangesWait caps /v1/changes long-polls so a silent replica can
// never pin a handler goroutine indefinitely.
const maxChangesWait = 30 * time.Second

// handleChanges serves GET /v1/changes — the replication tail. Query
// parameters: after (last applied sequence number, default 0), boot
// (the BootID the replica bootstrapped against), limit (max entries,
// default unbounded), wait_ms (long-poll: block up to this long for
// entries past `after` before answering empty). Answers 410 Gone when
// the boot identity changed or `after` precedes the retained window —
// both mean the replica's history diverged from what the log can
// replay, and it must re-bootstrap from /v1/snapshot. Like
// /v1/snapshot it bypasses the query pool, and it keeps serving while
// draining so replicas can catch up right until the primary exits.
func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathChanges]
	ep.requests.Add(1)
	start := time.Now()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		ep.errors.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use GET"})
		return
	}
	if s.repl == nil {
		ep.errors.Add(1)
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "replication log not enabled (single-tenant tqserve only)"})
		return
	}
	q := r.URL.Query()
	parseUint := func(name string) (uint64, bool) {
		raw := q.Get(name)
		if raw == "" {
			return 0, true
		}
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			ep.errors.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: name + " must be a non-negative integer"})
			return 0, false
		}
		return v, true
	}
	after, ok := parseUint("after")
	if !ok {
		return
	}
	limit64, ok := parseUint("limit")
	if !ok {
		return
	}
	waitMS, ok := parseUint("wait_ms")
	if !ok {
		return
	}
	if boot := q.Get("boot"); boot != "" && boot != s.repl.BootID() {
		ep.errors.Add(1)
		writeJSON(w, http.StatusGone, ErrorResponse{Error: fmt.Sprintf("replication boot changed (now %s): re-bootstrap from %s", s.repl.BootID(), PathSnapshot)})
		return
	}
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxChangesWait {
		wait = maxChangesWait
	}
	var deadline <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		deadline = t.C
	}
	for {
		entries, ok := s.repl.After(after, int(limit64))
		if !ok {
			ep.errors.Add(1)
			writeJSON(w, http.StatusGone, ErrorResponse{Error: fmt.Sprintf("replication window trimmed past seq %d: re-bootstrap from %s", after, PathSnapshot)})
			return
		}
		if len(entries) > 0 || wait == 0 {
			writeJSON(w, http.StatusOK, ChangesResponse{BootID: s.repl.BootID(), Seq: s.repl.Seq(), Entries: entries})
			ep.observe(time.Since(start))
			return
		}
		wake, head := s.repl.WaitChan()
		if head > after {
			continue // appended between After and WaitChan
		}
		select {
		case <-wake:
		case <-deadline:
			wait = 0 // answer whatever is there now (possibly empty)
		case <-r.Context().Done():
			ep.errors.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: r.Context().Err().Error()})
			return
		}
	}
}

// HealthResponse is the /healthz document. Degraded maps each tenant
// currently in degraded read-only mode to its cause.
type HealthResponse struct {
	Status   string            `json:"status"`
	Degraded map[string]string `json:"degraded,omitempty"`
}

// degradedCauses maps each currently-degraded tenant to its cause
// (single-tenant mode reports under the default tenant ID). Nil when
// everything is writable.
func (s *Server) degradedCauses() map[string]string {
	if s.reg != nil {
		if deg := s.reg.Degraded(); len(deg) > 0 {
			return deg
		}
		return nil
	}
	if h := s.idx.Load().Health(); h.Degraded {
		return map[string]string{tenant.DefaultID: h.Cause}
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	// Degraded is NOT down: queries still serve from the last published
	// epochs, so load balancers must keep routing reads here — 200 with
	// the causes spelled out, writes answering 503 individually.
	if deg := s.degradedCauses(); deg != nil {
		writeJSON(w, http.StatusOK, HealthResponse{Status: "degraded", Degraded: deg})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the serving counters — the same document /statsz
// serves. Index/WAL describe the default tenant (when it exists);
// Tenants carries each traffic-bearing tenant's effective limits and
// gate counters.
func (s *Server) Stats() Stats {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueCap:      s.cfg.QueueDepth,
		QueueDepth:    len(s.queue),
		Draining:      s.draining.Load(),
		Process: ProcessSnapshot{
			Goroutines:     runtime.NumGoroutine(),
			UptimeSeconds:  time.Since(s.start).Seconds(),
			HeapInuseBytes: mem.HeapInuse,
			RSSBytes:       readRSSBytes(),
		},
		Endpoints: make(map[string]EndpointSnapshot, len(s.stats)),
	}
	for p, ep := range s.stats {
		st.Endpoints[p] = ep.snapshot()
	}
	if idx := s.Index(); idx != nil {
		h := idx.Health()
		st.Index = IndexSnapshot{
			Len:      idx.Len(),
			Shards:   idx.NumShards(),
			PerShard: idx.Stats(),
			Health:   &h,
		}
		if err := idx.Err(); err != nil {
			st.Index.RebuildError = err.Error()
		}
		if wst, ok := idx.WALStats(); ok {
			st.WAL = &WALSnapshot{
				Records:                wst.Records,
				Segments:               wst.Segments,
				Bytes:                  wst.Bytes,
				Fsyncs:                 wst.Fsyncs,
				MaxFsyncMillis:         float64(wst.MaxFsync.Nanoseconds()) / 1e6,
				SinceCheckpointSeconds: wst.SinceCheckpoint.Seconds(),
			}
		}
	}
	s.gmu.Lock()
	if len(s.gates) > 0 {
		st.Tenants = make(map[string]TenantSnapshot, len(s.gates))
		for id, g := range s.gates {
			st.Tenants[id] = TenantSnapshot{Limits: s.limitsFor(id), Gate: g.Snapshot()}
		}
	}
	s.gmu.Unlock()
	if s.reg != nil {
		rst := s.reg.Stats()
		st.Registry = &rst
		st.DegradedTenants = s.degradedCauses()
	}
	if s.ovrStatus != nil {
		ost := s.ovrStatus()
		st.OverridesInfo = &ost
	}
	if s.cache != nil {
		cst := s.cache.Stats()
		st.ResultCache = &cst
	}
	if s.repl != nil {
		rst := s.repl.Snapshot()
		st.Replication = &rst
	}
	return st
}

// errResponse maps a query-layer error to a response: expired deadlines
// and cancelled clients are 504 (the deadline did its job), anything
// else surviving the hardened decoder is a request the index rejected
// (e.g. a scenario the index variant cannot answer exactly) — 400.
func errResponse(err error) response {
	status := http.StatusBadRequest
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	return response{status: status, body: mustMarshal(ErrorResponse{Error: err.Error()})}
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRaw(w, status, mustMarshal(v))
}
