// Package server is the long-running HTTP (JSON) front end over a live
// trajectory-coverage index — the layer that turns the batch executor
// into a system with an SLO. cmd/tqserve is its CLI wrapper.
//
// The serving core is a bounded worker pool with admission control:
// every /v1/* request is decoded and validated in the HTTP handler, then
// submitted to a queue of configurable depth ahead of a fixed pool of
// workers. A full queue fails fast — 429 with a Retry-After hint —
// instead of letting latency collapse under overload. Each admitted
// request carries a deadline (the server default, or the request's
// timeout_ms capped at Config.MaxTimeout) propagated as a
// context.Context into the cancellation-aware query executor, so an
// expired request aborts between facility relaxations rather than
// holding a worker. /healthz and /statsz serve readiness and the
// per-endpoint latency/queue counters; /v1/snapshot streams a TQLIVE01
// checkpoint without stopping writes.
//
// Endpoints:
//
//	POST /v1/topk           {"facilities":[{"id":1,"stops":[[x,y],...]}],"k":8,"scenario":"binary","psi":300}
//	POST /v1/servicevalues  {"facilities":[...],"scenario":"binary","psi":300}
//	POST /v1/insert         {"id":9001,"points":[[x,y],[x,y]]}
//	POST /v1/delete         {"id":9001}
//	POST /v1/compact        {}
//	GET  /v1/snapshot       -> TQLIVE01 stream
//	POST /v1/checkpoint     {} (WAL-backed index only)
//	GET  /healthz, /statsz
//
// On a WAL-backed index (tqserve -wal-dir), /v1/snapshot streams the
// checkpoint it just made durable on disk — so every snapshot download
// also truncates the WAL — and /v1/checkpoint runs the same checkpoint
// without streaming the bytes. /statsz gains a "wal" section with
// append/fsync counters and the time since the last checkpoint.
//
// Shutdown protocol: BeginDrain (new work → 503, health → draining),
// then stop the HTTP listener (http.Server.Shutdown waits for in-flight
// handlers, whose queued tasks the pool finishes or abandons at their
// deadlines), then Close to stop the workers. Close must come after the
// HTTP layer has stopped delivering requests.
package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	trajcover "github.com/trajcover/trajcover"
)

// Config tunes the serving core. The zero value serves with GOMAXPROCS
// workers, a 64-deep queue, a 2s default deadline capped at 30s, 8 MiB
// request bodies, and a 1s Retry-After hint.
type Config struct {
	// Workers is the size of the query worker pool (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// before new ones are rejected with 429 (<= 0: 64).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request names
	// none (<= 0: 2s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (<= 0: 30s).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (<= 0: 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint on 429 responses (<= 0: 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// response is a computed answer a worker hands back to the waiting
// handler; the handler alone touches the ResponseWriter.
type response struct {
	status int
	body   []byte
}

// task is one admitted request: the deadline context, the work closure,
// and the channel the handler waits on. If the handler gives up at its
// deadline first, the finished (or skipped) response is simply dropped.
type task struct {
	ctx  context.Context
	run  func(ctx context.Context) response
	resp response
	done chan struct{}
}

// endpointStats is one endpoint's counters, updated with atomics on the
// serving path and snapshotted by /statsz. `observed` counts only the
// requests that reached a timed terminal path (admitted work and
// snapshot streams) and is the latency mean's denominator — decode and
// drain rejections bump `requests`/`errors` without skewing the mean.
type endpointStats struct {
	requests atomic.Uint64
	rejected atomic.Uint64
	errors   atomic.Uint64
	deadline atomic.Uint64
	observed atomic.Uint64
	totalNs  atomic.Int64
	maxNs    atomic.Int64
}

func (e *endpointStats) observe(d time.Duration) {
	ns := d.Nanoseconds()
	e.observed.Add(1)
	e.totalNs.Add(ns)
	for {
		cur := e.maxNs.Load()
		if ns <= cur || e.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// EndpointSnapshot is one endpoint's counters as served by /statsz.
// MeanMillis/MaxMillis are over Observed (requests that reached the
// pool or the snapshot stream), not Requests, so decode rejections
// cannot dilute the served-latency figures.
type EndpointSnapshot struct {
	Requests         uint64  `json:"requests"`
	Observed         uint64  `json:"observed"`
	Rejected         uint64  `json:"rejected"`
	Errors           uint64  `json:"errors"`
	DeadlineExceeded uint64  `json:"deadline_exceeded"`
	MeanMillis       float64 `json:"mean_ms"`
	MaxMillis        float64 `json:"max_ms"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests:         e.requests.Load(),
		Observed:         e.observed.Load(),
		Rejected:         e.rejected.Load(),
		Errors:           e.errors.Load(),
		DeadlineExceeded: e.deadline.Load(),
		MaxMillis:        float64(e.maxNs.Load()) / 1e6,
	}
	if s.Observed > 0 {
		s.MeanMillis = float64(e.totalNs.Load()) / 1e6 / float64(s.Observed)
	}
	return s
}

// IndexSnapshot is the served index's state as reported by /statsz.
type IndexSnapshot struct {
	Len          int                        `json:"len"`
	Shards       int                        `json:"shards"`
	PerShard     []trajcover.LiveShardStats `json:"per_shard"`
	RebuildError string                     `json:"rebuild_error,omitempty"`
}

// WALSnapshot is the durability layer's state as reported by /statsz
// (present only for WAL-backed indexes).
type WALSnapshot struct {
	Records                uint64  `json:"records"`
	Segments               int     `json:"segments"`
	Bytes                  int64   `json:"bytes"`
	Fsyncs                 uint64  `json:"fsyncs"`
	MaxFsyncMillis         float64 `json:"max_fsync_ms"`
	SinceCheckpointSeconds float64 `json:"since_checkpoint_seconds"`
}

// Stats is the /statsz document.
type Stats struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Workers       int                         `json:"workers"`
	QueueCap      int                         `json:"queue_cap"`
	QueueDepth    int                         `json:"queue_depth"`
	Draining      bool                        `json:"draining"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Index         IndexSnapshot               `json:"index"`
	WAL           *WALSnapshot                `json:"wal,omitempty"`
}

// Server is the worker-pool front end over a live sharded index.
// Construct with New, expose Handler over any http.Server, and shut
// down with BeginDrain → HTTP shutdown → Close.
type Server struct {
	cfg   Config
	idx   *trajcover.LiveShardedIndex
	queue chan *task

	// qmu makes Close safe against stragglers: enqueues hold the read
	// side, Close closes the queue under the write side. The intended
	// shutdown order (HTTP first, then Close) makes contention zero;
	// the lock is what turns a violated order — e.g. a slow-body
	// handler outliving a timed-out http.Server.Shutdown — into a 503
	// instead of a send-on-closed-channel panic.
	qmu       sync.RWMutex
	closed    bool
	wg        sync.WaitGroup
	closeOnce sync.Once
	draining  atomic.Bool
	start     time.Time

	mux        *http.ServeMux
	stats      map[string]*endpointStats // fixed key set; read-only after New
	retryAfter string
}

// Endpoint paths, also the /statsz counter keys.
const (
	PathTopK          = "/v1/topk"
	PathServiceValues = "/v1/servicevalues"
	PathInsert        = "/v1/insert"
	PathDelete        = "/v1/delete"
	PathCompact       = "/v1/compact"
	PathSnapshot      = "/v1/snapshot"
	PathCheckpoint    = "/v1/checkpoint"
	PathHealth        = "/healthz"
	PathStats         = "/statsz"
)

// New builds a Server over idx and starts its worker pool.
func New(idx *trajcover.LiveShardedIndex, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		idx:        idx,
		queue:      make(chan *task, cfg.QueueDepth),
		start:      time.Now(),
		mux:        http.NewServeMux(),
		stats:      map[string]*endpointStats{},
		retryAfter: strconv.Itoa(int((cfg.RetryAfter + time.Second - 1) / time.Second)),
	}
	for _, p := range []string{PathTopK, PathServiceValues, PathInsert, PathDelete, PathCompact, PathSnapshot, PathCheckpoint} {
		s.stats[p] = &endpointStats{}
	}
	s.mux.HandleFunc(PathTopK, s.requirePost(s.handleTopK))
	s.mux.HandleFunc(PathServiceValues, s.requirePost(s.handleServiceValues))
	s.mux.HandleFunc(PathInsert, s.requirePost(s.handleInsert))
	s.mux.HandleFunc(PathDelete, s.requirePost(s.handleDelete))
	s.mux.HandleFunc(PathCompact, s.requirePost(s.handleCompact))
	s.mux.HandleFunc(PathSnapshot, s.handleSnapshot)
	s.mux.HandleFunc(PathCheckpoint, s.handleCheckpoint)
	s.mux.HandleFunc(PathHealth, s.handleHealth)
	s.mux.HandleFunc(PathStats, s.handleStats)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Index returns the served index.
func (s *Server) Index() *trajcover.LiveShardedIndex { return s.idx }

// BeginDrain flips the server into draining: /healthz reports 503 (so
// load balancers stop routing here) and new /v1/* work is rejected with
// 503 while in-flight requests finish. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the worker pool after the remaining queue drains and
// blocks until every worker has exited. Call it after the HTTP layer
// has stopped delivering requests (http.Server.Shutdown or
// httptest.Server.Close has returned); a handler that nevertheless
// outlived a timed-out Shutdown gets 503 from then on rather than
// racing the queue close. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.qmu.Lock()
		s.closed = true
		close(s.queue)
		s.qmu.Unlock()
	})
	s.wg.Wait()
}

// enqueue admits a task unless the queue is full (false, nil) or the
// pool is closed (false, error).
func (s *Server) enqueue(t *task) (bool, error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return false, errors.New("server closed")
	}
	select {
	case s.queue <- t:
		return true, nil
	default:
		return false, nil
	}
}

// worker executes admitted tasks in arrival order. A task whose
// deadline already passed while queued is skipped — its handler has
// answered 504 — so a saturated queue sheds abandoned work at a glance
// instead of running queries nobody is waiting for.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		if err := t.ctx.Err(); err != nil {
			t.resp = errResponse(err)
		} else {
			t.resp = t.run(t.ctx)
		}
		close(t.done)
	}
}

// requestTimeout resolves a request's deadline from its timeout_ms.
func (s *Server) requestTimeout(timeoutMS int64) time.Duration {
	if timeoutMS <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(timeoutMS) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// execute runs one admitted unit of work through the pool: admission
// (429 on a full queue), deadline propagation, and the wait for either
// the worker's response or the deadline (504). All terminal paths
// update the endpoint's counters; only this handler goroutine writes w.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, ep *endpointStats, timeoutMS int64, run func(ctx context.Context) response) {
	start := time.Now()
	ep.requests.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(timeoutMS))
	defer cancel()
	t := &task{ctx: ctx, run: run, done: make(chan struct{})}
	ok, err := s.enqueue(t)
	if err != nil {
		ep.errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		return
	}
	if !ok {
		ep.rejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "worker queue full"})
		return
	}
	// Only admitted requests are timed: rejections return in
	// microseconds and would otherwise dilute the served-latency mean.
	defer func() { ep.observe(time.Since(start)) }()
	select {
	case <-t.done:
		if t.resp.status >= 400 {
			ep.errors.Add(1)
			if t.resp.status == http.StatusGatewayTimeout {
				ep.deadline.Add(1)
			}
		}
		writeRaw(w, t.resp.status, t.resp.body)
	case <-ctx.Done():
		// Deadline or client disconnect while queued or mid-query; the
		// query layer unwinds on its own and the worker drops the task.
		ep.errors.Add(1)
		ep.deadline.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: ctx.Err().Error()})
	}
}

// admit gates an endpoint handler on drain state and reads the capped
// body; a nil return means admit already answered.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, ep *endpointStats) ([]byte, bool) {
	if s.draining.Load() {
		ep.requests.Add(1)
		ep.errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server draining"})
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		ep.requests.Add(1)
		ep.errors.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return nil, false
	}
	return body, true
}

func (s *Server) requirePost(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
			return
		}
		h(w, r)
	}
}

func (s *Server) rejectDecode(w http.ResponseWriter, ep *endpointStats, err error) {
	ep.requests.Add(1)
	ep.errors.Add(1)
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathTopK]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, facs, q, err := DecodeQueryRequest(body, true)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	s.execute(w, r, ep, req.TimeoutMS, func(ctx context.Context) response {
		res, err := s.idx.TopKParallelCtx(ctx, facs, req.K, q, req.Workers)
		if err != nil {
			return errResponse(err)
		}
		return response{status: http.StatusOK, body: MarshalTopKResponse(res)}
	})
}

func (s *Server) handleServiceValues(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathServiceValues]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, facs, q, err := DecodeQueryRequest(body, false)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	s.execute(w, r, ep, req.TimeoutMS, func(ctx context.Context) response {
		vs, err := s.idx.ServiceValuesCtx(ctx, facs, q, req.Workers)
		if err != nil {
			return errResponse(err)
		}
		return response{status: http.StatusOK, body: MarshalValuesResponse(vs)}
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathInsert]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, u, err := DecodeInsertRequest(body)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	s.execute(w, r, ep, req.TimeoutMS, func(context.Context) response {
		if err := s.idx.Insert(u); err != nil {
			// Duplicate IDs and unroutable (immutable-restore) inserts
			// are conflicts with the served corpus, not malformed input;
			// anything else is a durability failure — the write was NOT
			// acknowledged and the WAL is wedged.
			status := http.StatusInternalServerError
			if errors.Is(err, trajcover.ErrDuplicateID) || trajcover.IsImmutable(err) {
				status = http.StatusConflict
			}
			return response{status: status, body: mustMarshal(ErrorResponse{Error: err.Error()})}
		}
		return response{status: http.StatusOK, body: mustMarshal(InsertResponse{Len: s.idx.Len()})}
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathDelete]
	body, ok := s.admit(w, r, ep)
	if !ok {
		return
	}
	req, err := DecodeDeleteRequest(body)
	if err != nil {
		s.rejectDecode(w, ep, err)
		return
	}
	s.execute(w, r, ep, req.TimeoutMS, func(context.Context) response {
		found, err := s.idx.Delete(trajcover.ID(req.ID))
		if err != nil {
			// A durability failure: the delete was not acknowledged.
			return response{status: http.StatusInternalServerError, body: mustMarshal(ErrorResponse{Error: err.Error()})}
		}
		return response{status: http.StatusOK, body: mustMarshal(DeleteResponse{Found: found})}
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathCompact]
	if _, ok := s.admit(w, r, ep); !ok {
		return
	}
	// Compact is not deadline-aware below the swap points; give it the
	// full MaxTimeout rather than the query default.
	s.execute(w, r, ep, s.cfg.MaxTimeout.Milliseconds(), func(context.Context) response {
		if err := s.idx.Compact(); err != nil {
			return response{status: http.StatusInternalServerError, body: mustMarshal(ErrorResponse{Error: err.Error()})}
		}
		return response{status: http.StatusOK, body: mustMarshal(CompactResponse{OK: true})}
	})
}

// handleSnapshot streams a TQLIVE01 checkpoint of the live index. The
// capture is one atomic epoch-set read, so writes keep flowing while
// the stream runs; it bypasses the query pool (it is IO-bound ops
// traffic, not index work) but still counts on /statsz. On a WAL-backed
// index the stream comes from CheckpointTo — the checkpoint is made
// durable on disk and the WAL truncated before a byte reaches the
// client, so downloading a snapshot doubles as a checkpoint.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathSnapshot]
	ep.requests.Add(1)
	start := time.Now()
	defer func() { ep.observe(time.Since(start)) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		ep.errors.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use GET"})
		return
	}
	if s.draining.Load() {
		ep.errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server draining"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	var err error
	if _, hasWAL := s.idx.WALStats(); hasWAL {
		err = s.idx.CheckpointTo(w)
	} else {
		err = s.idx.WriteSnapshot(w)
	}
	if err != nil {
		// Headers are already gone; all we can do is count and cut the
		// stream short so the client's CRC check fails loudly.
		ep.errors.Add(1)
	}
}

// handleCheckpoint runs a WAL checkpoint (durable TQLIVE01 snapshot in
// the WAL directory + segment truncation) without streaming the bytes.
// Writes keep flowing; like /v1/snapshot it bypasses the query pool.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ep := s.stats[PathCheckpoint]
	ep.requests.Add(1)
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		ep.errors.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "use POST"})
		return
	}
	if s.draining.Load() {
		ep.errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server draining"})
		return
	}
	wst, hasWAL := s.idx.WALStats()
	if !hasWAL {
		ep.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "index has no WAL (start tqserve with -wal-dir)"})
		return
	}
	defer func() { ep.observe(time.Since(start)) }()
	if err := s.idx.Checkpoint(); err != nil {
		ep.errors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	wst, _ = s.idx.WALStats()
	writeJSON(w, http.StatusOK, CheckpointResponse{OK: true, WALSegments: wst.Segments, WALBytes: wst.Bytes})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the serving counters — the same document /statsz
// serves.
func (s *Server) Stats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueCap:      s.cfg.QueueDepth,
		QueueDepth:    len(s.queue),
		Draining:      s.draining.Load(),
		Endpoints:     make(map[string]EndpointSnapshot, len(s.stats)),
	}
	for p, ep := range s.stats {
		st.Endpoints[p] = ep.snapshot()
	}
	per := s.idx.Stats()
	st.Index = IndexSnapshot{
		Len:      s.idx.Len(),
		Shards:   s.idx.NumShards(),
		PerShard: per,
	}
	if err := s.idx.Err(); err != nil {
		st.Index.RebuildError = err.Error()
	}
	if wst, ok := s.idx.WALStats(); ok {
		st.WAL = &WALSnapshot{
			Records:                wst.Records,
			Segments:               wst.Segments,
			Bytes:                  wst.Bytes,
			Fsyncs:                 wst.Fsyncs,
			MaxFsyncMillis:         float64(wst.MaxFsync.Nanoseconds()) / 1e6,
			SinceCheckpointSeconds: wst.SinceCheckpoint.Seconds(),
		}
	}
	return st
}

// errResponse maps a query-layer error to a response: expired deadlines
// and cancelled clients are 504 (the deadline did its job), anything
// else surviving the hardened decoder is a request the index rejected
// (e.g. a scenario the index variant cannot answer exactly) — 400.
func errResponse(err error) response {
	status := http.StatusBadRequest
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	return response{status: status, body: mustMarshal(ErrorResponse{Error: err.Error()})}
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRaw(w, status, mustMarshal(v))
}
