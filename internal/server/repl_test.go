package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/replog"
)

// newReplEnv is newEnv with primary-side replication on.
func newReplEnv(t *testing.T, base []*trajcover.Trajectory, rl *replog.Log) *env {
	t.Helper()
	return newEnv(t, base, Config{
		Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second, ReplLog: rl,
	})
}

// TestServerChangesFeed drives writes through HTTP and asserts the
// /v1/changes feed replays them exactly: same order the index applied
// them, bit-exact coordinates, deletes only when they found something,
// and failed writes absent entirely.
func TestServerChangesFeed(t *testing.T) {
	users := testUsers(120, 211)
	rl := replog.New(1024)
	e := newReplEnv(t, users[:100], rl)

	// 10 inserts, one delete, one failed duplicate insert, one no-op
	// delete of an unknown ID.
	for _, u := range users[100:110] {
		if status, body, _ := e.post(PathInsert, insertBody(t, u, "")); status != http.StatusOK {
			t.Fatalf("insert: %d %s", status, body)
		}
	}
	if status, _, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: 5})); status != http.StatusOK {
		t.Fatal("delete failed")
	}
	if status, _, _ := e.post(PathInsert, insertBody(t, users[100], "")); status != http.StatusConflict {
		t.Fatal("duplicate insert not 409")
	}
	status, body, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: 999999}))
	if status != http.StatusOK {
		t.Fatalf("unknown delete: %d %s", status, body)
	}
	var dr DeleteResponse
	if err := json.Unmarshal(body, &dr); err != nil || dr.Found {
		t.Fatalf("unknown delete found=%v err=%v", dr.Found, err)
	}

	st, raw := e.get(PathChanges + "?after=0")
	if st != http.StatusOK {
		t.Fatalf("changes: %d %s", st, raw)
	}
	var cr ChangesResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.BootID != rl.BootID() || cr.Seq != 11 || len(cr.Entries) != 11 {
		t.Fatalf("changes boot=%q seq=%d entries=%d, want boot=%q seq=11 entries=11",
			cr.BootID, cr.Seq, len(cr.Entries), rl.BootID())
	}
	for i, ent := range cr.Entries[:10] {
		u := users[100+i]
		if ent.Seq != uint64(i+1) || ent.Op != replog.OpInsert || ent.ID != uint32(u.ID) {
			t.Fatalf("entry %d: %+v", i, ent)
		}
		if len(ent.Points) != len(u.Points) {
			t.Fatalf("entry %d: %d points, want %d", i, len(ent.Points), len(u.Points))
		}
		for j, p := range u.Points {
			if ent.Points[j] != [2]float64{p.X, p.Y} {
				t.Fatalf("entry %d point %d: %v != %v", i, j, ent.Points[j], p)
			}
		}
	}
	if del := cr.Entries[10]; del.Op != replog.OpDelete || del.ID != 5 || del.Points != nil {
		t.Fatalf("delete entry: %+v", del)
	}

	// Paged + positioned reads.
	st, raw = e.get(PathChanges + "?after=9&limit=5")
	if st != http.StatusOK {
		t.Fatalf("paged changes: %d", st)
	}
	cr = ChangesResponse{}
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Entries) != 2 || cr.Entries[0].Seq != 10 {
		t.Fatalf("paged read: %+v", cr.Entries)
	}

	// Snapshot carries the replication handoff headers, and the seq
	// stamped is <= the log head at capture time (here: equal).
	resp, err := e.client.Get(e.ts.URL + PathSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Repl-Boot") != rl.BootID() {
		t.Fatalf("snapshot X-Repl-Boot %q, want %q", resp.Header.Get("X-Repl-Boot"), rl.BootID())
	}
	if got := resp.Header.Get("X-Repl-Seq"); got != "11" {
		t.Fatalf("snapshot X-Repl-Seq %q, want 11", got)
	}

	// /statsz exposes the log.
	st, raw = e.get(PathStats)
	if st != http.StatusOK {
		t.Fatal("statsz failed")
	}
	var stats Stats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replication == nil || stats.Replication.Seq != 11 || stats.Replication.BootID != rl.BootID() {
		t.Fatalf("statsz replication section: %+v", stats.Replication)
	}
}

// TestServerChangesGoneAndErrors pins the re-bootstrap (410) and 4xx
// surface of /v1/changes.
func TestServerChangesGoneAndErrors(t *testing.T) {
	users := testUsers(60, 221)
	rl := replog.New(4) // tiny window so trims are easy to force
	e := newReplEnv(t, users[:40], rl)
	for _, u := range users[40:50] {
		if status, _, _ := e.post(PathInsert, insertBody(t, u, "")); status != http.StatusOK {
			t.Fatal("insert failed")
		}
	}

	// Position trimmed out of the window: 410 naming the snapshot path.
	st, body := e.get(PathChanges + "?after=1")
	if st != http.StatusGone || !strings.Contains(string(body), PathSnapshot) {
		t.Fatalf("trimmed read: %d %s, want 410 naming %s", st, body, PathSnapshot)
	}
	// Wrong boot pin: 410 too.
	st, body = e.get(PathChanges + "?after=10&boot=0000000000000000")
	if st != http.StatusGone || !strings.Contains(string(body), "re-bootstrap") {
		t.Fatalf("boot mismatch: %d %s", st, body)
	}
	// Matching boot pin inside the window: fine.
	if st, _ = e.get(PathChanges + "?after=9&boot=" + rl.BootID()); st != http.StatusOK {
		t.Fatalf("pinned read: %d", st)
	}
	// Bad numbers: 400.
	for _, q := range []string{"?after=-1", "?after=x", "?limit=x", "?wait_ms=x"} {
		if st, _ = e.get(PathChanges + q); st != http.StatusBadRequest {
			t.Fatalf("changes%s: %d, want 400", q, st)
		}
	}
	// POST: 405.
	if st, _, _ := e.post(PathChanges, nil); st != http.StatusMethodNotAllowed {
		t.Fatalf("POST changes: %d", st)
	}
}

// TestServerChangesDisabled: without a ReplLog the feed does not exist.
func TestServerChangesDisabled(t *testing.T) {
	e := newEnv(t, testUsers(30, 231), Config{Workers: 1, QueueDepth: 4})
	if st, body := e.get(PathChanges + "?after=0"); st != http.StatusNotFound {
		t.Fatalf("changes without log: %d %s, want 404", st, body)
	}
}

// TestServerChangesLongPoll: a caught-up poll with wait_ms blocks until
// the next acknowledged write, then delivers it; an empty window with
// wait_ms=0 returns immediately.
func TestServerChangesLongPoll(t *testing.T) {
	users := testUsers(50, 241)
	rl := replog.New(64)
	e := newReplEnv(t, users[:40], rl)

	if st, raw := e.get(PathChanges + "?after=0&wait_ms=0"); st != http.StatusOK {
		t.Fatalf("empty immediate poll: %d", st)
	} else {
		var cr ChangesResponse
		if err := json.Unmarshal(raw, &cr); err != nil || len(cr.Entries) != 0 {
			t.Fatalf("empty immediate poll entries=%d err=%v", len(cr.Entries), err)
		}
	}

	type pollResult struct {
		st      int
		cr      ChangesResponse
		err     error
		elapsed time.Duration
	}
	res := make(chan pollResult, 1)
	go func() {
		start := time.Now()
		resp, err := e.client.Get(e.ts.URL + PathChanges + "?after=0&wait_ms=20000")
		if err != nil {
			res <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		var cr ChangesResponse
		err = json.NewDecoder(resp.Body).Decode(&cr)
		res <- pollResult{st: resp.StatusCode, cr: cr, err: err, elapsed: time.Since(start)}
	}()

	// Give the poller time to park, then write.
	time.Sleep(100 * time.Millisecond)
	if status, _, _ := e.post(PathInsert, insertBody(t, users[40], "")); status != http.StatusOK {
		t.Fatal("insert failed")
	}
	select {
	case r := <-res:
		if r.err != nil || r.st != http.StatusOK {
			t.Fatalf("long poll: %d err=%v", r.st, r.err)
		}
		if len(r.cr.Entries) != 1 || r.cr.Entries[0].ID != uint32(users[40].ID) {
			t.Fatalf("long poll entries: %+v", r.cr.Entries)
		}
		if r.elapsed > 15*time.Second {
			t.Fatalf("long poll woke after %v, not on the append", r.elapsed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long poll never answered after the append")
	}
}

// TestServerUpperBounds: the scatter unit of the distributed tier. The
// endpoint's bounds must equal the library's UpperBoundsCtx and
// dominate the exact service values (admissibility — the property the
// distributed prune is sound under).
func TestServerUpperBounds(t *testing.T) {
	users := testUsers(300, 251)
	e := newEnv(t, users, Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	facs := testFacilities(12, 6, 252)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}

	status, raw, _ := e.post(PathUpperBounds, mustBody(t, QueryRequest{
		Facilities: facilityJSONOf(facs), Psi: 40,
	}))
	if status != http.StatusOK {
		t.Fatalf("upperbounds: %d %s", status, raw)
	}
	var br BoundsResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Bounds) != len(facs) {
		t.Fatalf("%d bounds for %d facilities", len(br.Bounds), len(facs))
	}
	want, err := e.srv.Index().UpperBoundsCtx(context.Background(), facs, trajcover.Query{Scenario: trajcover.Binary, Psi: 40})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.mirror.ServiceValuesCtx(context.Background(), facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range facs {
		if br.Bounds[i] != want[i] {
			t.Fatalf("facility %d: endpoint bound %v, library %v", facs[i].ID, br.Bounds[i], want[i])
		}
		if br.Bounds[i] < exact[i] {
			t.Fatalf("facility %d: bound %v below exact value %v (inadmissible)", facs[i].ID, br.Bounds[i], exact[i])
		}
	}

	// Bad request surface matches the other query endpoints.
	if status, _, _ := e.post(PathUpperBounds, []byte(`{"facilities":[{"id":1,"stops":[]}],"psi":10}`)); status != http.StatusBadRequest {
		t.Fatalf("stopless facility: %d, want 400", status)
	}
	resp, err := e.client.Get(e.ts.URL + PathUpperBounds)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET upperbounds: %d", resp.StatusCode)
	}
}

// TestServerReplicationOrderMatchesApply hammers concurrent writes and
// asserts the changes feed, replayed onto a fresh index, reproduces the
// primary's corpus exactly — the log-order == apply-order invariant the
// replmu serialization exists for. Run under -race.
func TestServerReplicationOrderMatchesApply(t *testing.T) {
	users := testUsers(400, 261)
	rl := replog.New(1 << 12)
	e := newReplEnv(t, users[:200], rl)

	// 8 writers race inserts and deletes over overlapping IDs.
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 25; i++ {
				u := users[200+w*25+i]
				if status, body, _ := e.post(PathInsert, insertBody(t, u, "")); status != http.StatusOK {
					errs <- fmt.Errorf("insert %d: %d %s", u.ID, status, body)
					return
				}
				if i%5 == 4 {
					// Deleting a racing target: 200 whether found or not.
					if status, _, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: uint32(200 + ((w*25 + i) % 100))})); status != http.StatusOK {
						errs <- fmt.Errorf("delete: status != 200")
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	st, raw := e.get(PathChanges + "?after=0")
	if st != http.StatusOK {
		t.Fatalf("changes: %d", st)
	}
	var cr ChangesResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	replayed, err := trajcover.NewLiveShardedIndex(users[:200], liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range cr.Entries {
		switch ent.Op {
		case replog.OpInsert:
			pts := make([]trajcover.Point, len(ent.Points))
			for i, p := range ent.Points {
				pts[i] = trajcover.Pt(p[0], p[1])
			}
			u, err := trajcover.NewTrajectory(trajcover.ID(ent.ID), pts)
			if err != nil {
				t.Fatal(err)
			}
			if err := replayed.Insert(u); err != nil {
				t.Fatalf("replay insert %d (seq %d): %v", ent.ID, ent.Seq, err)
			}
		case replog.OpDelete:
			if _, err := replayed.Delete(trajcover.ID(ent.ID)); err != nil {
				t.Fatalf("replay delete %d (seq %d): %v", ent.ID, ent.Seq, err)
			}
		}
	}
	if replayed.Len() != e.srv.Index().Len() {
		t.Fatalf("replayed len %d, primary %d", replayed.Len(), e.srv.Index().Len())
	}
	facs := testFacilities(8, 6, 262)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}
	got, err := replayed.ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.srv.Index().ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("facility %d: replayed %v, primary %v — feed order diverged from apply order", facs[i].ID, got[i], want[i])
		}
	}
}
