package server

// Tests for the two serving-path additions of the memory-tier work:
// the NDJSON streaming variant of /v1/servicevalues and the
// epoch-keyed result cache. Both are pinned against the batch path as
// oracle — streamed values must reassemble bit-identical to the batch
// body, and cached answers must never be distinguishable from
// uncached ones, even under concurrent writes.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/trajcover/trajcover"
)

// streamLine is the union of the three NDJSON line shapes.
type streamLine struct {
	Start  *int      `json:"start"`
	Values []float64 `json:"values"`
	Done   *bool     `json:"done"`
	Count  int       `json:"count"`
	Error  *string   `json:"error"`
}

// readStream POSTs a streaming servicevalues request and parses the
// NDJSON body into lines.
func (e *env) readStream(query string, body []byte) (int, string, []streamLine) {
	e.t.Helper()
	resp, err := e.client.Post(e.ts.URL+PathServiceValues+query, "application/json", bytes.NewReader(body))
	if err != nil {
		e.t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ln streamLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			e.t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		e.t.Fatalf("stream read: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), lines
}

// TestServerStreamServiceValues drives /v1/servicevalues?stream=1 end
// to end: the reassembled NDJSON chunks must be bit-identical to the
// batch endpoint's values (compared through the same JSON encoding),
// chunks must arrive in facility order with the requested size, and
// the stream must end with a done trailer.
func TestServerStreamServiceValues(t *testing.T) {
	users := testUsers(200, 61)
	e := newEnv(t, users, Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	facs := testFacilities(17, 6, 62)
	body := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), Psi: 40, Workers: 1})

	status, batch, _ := e.post(PathServiceValues, body)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, batch)
	}
	var batchResp ValuesResponse
	if err := json.Unmarshal(batch, &batchResp); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 5, 17, 100} {
		status, ct, lines := e.readStream(fmt.Sprintf("?stream=1&chunk=%d", chunk), body)
		if status != http.StatusOK {
			t.Fatalf("chunk %d: status %d", chunk, status)
		}
		if ct != "application/x-ndjson" {
			t.Fatalf("chunk %d: content-type %q", chunk, ct)
		}
		if len(lines) == 0 {
			t.Fatalf("chunk %d: empty stream", chunk)
		}
		last := lines[len(lines)-1]
		if last.Done == nil || !*last.Done || last.Count != len(facs) {
			t.Fatalf("chunk %d: missing/short trailer: %+v", chunk, last)
		}
		var got []float64
		for i, ln := range lines[:len(lines)-1] {
			if ln.Error != nil {
				t.Fatalf("chunk %d: in-band error: %s", chunk, *ln.Error)
			}
			if ln.Start == nil || *ln.Start != len(got) {
				t.Fatalf("chunk %d: line %d start %v, want %d", chunk, i, ln.Start, len(got))
			}
			want := chunk
			if rem := len(facs) - len(got); want > rem {
				want = rem
			}
			if len(ln.Values) != want {
				t.Fatalf("chunk %d: line %d has %d values, want %d", chunk, i, len(ln.Values), want)
			}
			got = append(got, ln.Values...)
		}
		// Compare through the canonical JSON encoding: equal bytes mean
		// equal float bit patterns.
		if !bytes.Equal(MarshalValuesResponse(got), MarshalValuesResponse(batchResp.Values)) {
			t.Fatalf("chunk %d: streamed values differ from batch", chunk)
		}
	}

	// Default chunk (no chunk param) must also work.
	if status, _, lines := e.readStream("?stream=1", body); status != http.StatusOK || len(lines) < 2 {
		t.Fatalf("default chunk: status %d, %d lines", status, len(lines))
	}

	// Malformed chunk values are rejected before any work.
	for _, bad := range []string{"abc", "0", "-3"} {
		if status, _, _ := e.readStream("?stream=1&chunk="+bad, body); status != http.StatusBadRequest {
			t.Fatalf("chunk %q: status %d, want 400", bad, status)
		}
	}

	// Streams resolve tenants like the batch path: unknown tenant 404.
	unknown := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), Psi: 40, Tenant: "ghost"})
	if status, _, _ := e.readStream("?stream=1", unknown); status != http.StatusNotFound {
		t.Fatalf("unknown tenant stream: status %d, want 404", status)
	}
}

// TestServerResultCache pins the cache protocol at the HTTP boundary:
// a repeated identical request is served from cache byte-identically
// (hit counter moves, body unchanged), a write invalidates by
// construction (the version key rotates, so the next read recomputes
// and reflects the write), and streamed requests bypass the cache.
func TestServerResultCache(t *testing.T) {
	users := testUsers(200, 71)
	base, feed := users[:150], users[150:]
	e := newEnv(t, base, Config{
		Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second,
		ResultCacheBytes: 1 << 20,
	})
	facs := testFacilities(8, 6, 72)
	fjs := facilityJSONOf(facs)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}
	svBody := mustBody(t, QueryRequest{Facilities: fjs, Psi: 40, Workers: 1})
	topkBody := mustBody(t, QueryRequest{Facilities: fjs, K: 4, Psi: 40, Workers: 1})

	cacheStats := func() (hits, misses uint64, entries int) {
		t.Helper()
		rc := e.srv.Stats().ResultCache
		if rc == nil {
			t.Fatal("ResultCache stats missing with cache enabled")
		}
		return rc.Hits, rc.Misses, rc.Entries
	}

	status, first, _ := e.post(PathServiceValues, svBody)
	if status != http.StatusOK {
		t.Fatalf("servicevalues: status %d: %s", status, first)
	}
	hits0, _, _ := cacheStats()
	status, second, _ := e.post(PathServiceValues, svBody)
	if status != http.StatusOK {
		t.Fatalf("servicevalues repeat: status %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached body differs:\n first: %s\nsecond: %s", first, second)
	}
	hits1, _, _ := cacheStats()
	if hits1 != hits0+1 {
		t.Fatalf("servicevalues repeat: hits %d -> %d, want +1", hits0, hits1)
	}

	// TopK is cached independently under its own endpoint + k.
	status, tk1, _ := e.post(PathTopK, topkBody)
	if status != http.StatusOK {
		t.Fatalf("topk: status %d: %s", status, tk1)
	}
	status, tk2, _ := e.post(PathTopK, topkBody)
	if status != http.StatusOK || !bytes.Equal(tk1, tk2) {
		t.Fatalf("topk repeat: status %d, equal %v", status, bytes.Equal(tk1, tk2))
	}
	hits2, _, _ := cacheStats()
	if hits2 != hits1+1 {
		t.Fatalf("topk repeat: hits %d -> %d, want +1", hits1, hits2)
	}

	// A write rotates the version: the same read recomputes and must
	// reflect the insert, matching a direct call on the mirror.
	u := feed[0]
	pts := make([][2]float64, len(u.Points))
	for i, p := range u.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	if status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts})); status != http.StatusOK {
		t.Fatalf("insert: status %d: %s", status, body)
	}
	if err := e.mirror.Insert(u); err != nil {
		t.Fatal(err)
	}
	status, third, _ := e.post(PathServiceValues, svBody)
	if status != http.StatusOK {
		t.Fatalf("servicevalues after insert: status %d", status)
	}
	want, err := e.mirror.ServiceValuesCtx(context.Background(), facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(third, MarshalValuesResponse(want)) {
		t.Fatalf("post-insert read does not reflect the write:\n got: %s\nwant: %s", third, MarshalValuesResponse(want))
	}
	if hits3, _, _ := cacheStats(); hits3 != hits2 {
		t.Fatalf("post-insert read hit a stale entry: hits %d -> %d", hits2, hits3)
	}

	// Streamed requests bypass the cache entirely.
	_, _, before := cacheStats()
	if status, _, _ := e.readStream("?stream=1&chunk=4", svBody); status != http.StatusOK {
		t.Fatalf("stream: status %d", status)
	}
	if _, _, after := cacheStats(); after != before {
		t.Fatalf("stream changed cache entries %d -> %d", before, after)
	}
}

// TestServerCacheConsistencyUnderConcurrentWrites is the cache's
// linearizability property test: with the cache enabled, readers
// hammering one identical request while a writer applies a scripted
// history must (a) only ever see bodies a fresh build of SOME prefix
// of the history could produce, and (b) immediately after a write is
// acknowledged, see a body achievable at a prefix at least that new —
// i.e. the cache can never serve an answer from before an
// acknowledged write. Run under -race this also exercises the
// capture/compute/recheck protocol for data races.
func TestServerCacheConsistencyUnderConcurrentWrites(t *testing.T) {
	users := testUsers(260, 81)
	base, feed := users[:200], users[200:]
	e := newEnv(t, base, Config{
		Workers: 2, QueueDepth: 64, DefaultTimeout: 30 * time.Second,
		ResultCacheBytes: 1 << 20,
	})
	facs := testFacilities(6, 6, 82)
	fjs := facilityJSONOf(facs)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}
	svBody := mustBody(t, QueryRequest{Facilities: fjs, Psi: 40, Workers: 1})

	type write struct {
		insert *trajcover.Trajectory
		delete trajcover.ID
	}
	var script []write
	for i := 0; i < 25; i++ {
		script = append(script, write{insert: feed[i]}, write{delete: base[i*7].ID})
	}

	// allowedMax[body] = newest prefix index that can produce body.
	corpus := map[trajcover.ID]*trajcover.Trajectory{}
	for _, u := range base {
		corpus[u.ID] = u
	}
	shardOpts := trajcover.ShardOptions{
		Shards: 2, Partitioner: trajcover.HashPartitioner(),
		Index: trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
	}
	allowedMax := map[string]int{}
	snapshotPrefix := func(i int) {
		var all []*trajcover.Trajectory
		for id := trajcover.ID(0); int(id) < len(users); id++ {
			if u, ok := corpus[id]; ok {
				all = append(all, u)
			}
		}
		fresh, err := trajcover.NewShardedIndex(all, shardOpts)
		if err != nil {
			t.Fatal(err)
		}
		vs, err := fresh.ServiceValues(facs, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		allowedMax[string(MarshalValuesResponse(vs))] = i
	}
	snapshotPrefix(0)
	for i, wr := range script {
		if wr.insert != nil {
			corpus[wr.insert.ID] = wr.insert
		} else {
			delete(corpus, wr.delete)
		}
		snapshotPrefix(i + 1)
	}

	readOnce := func() (string, error) {
		resp, err := e.client.Post(e.ts.URL+PathServiceValues, "application/json", bytes.NewReader(svBody))
		if err != nil {
			return "", err
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d: %s", resp.StatusCode, got)
		}
		return string(got), nil
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readerErr error
	var readerOnce sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			body, err := readOnce()
			if err != nil {
				readerOnce.Do(func() { readerErr = err })
				return
			}
			if _, ok := allowedMax[body]; !ok {
				readerOnce.Do(func() { readerErr = fmt.Errorf("answer matches no prefix of the write history: %s", body) })
				return
			}
		}
	}()

	for i, wr := range script {
		if wr.insert != nil {
			u := wr.insert
			pts := make([][2]float64, len(u.Points))
			for j, p := range u.Points {
				pts[j] = [2]float64{p.X, p.Y}
			}
			status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts}))
			if status != http.StatusOK {
				t.Fatalf("insert %d: status %d: %s", u.ID, status, body)
			}
		} else {
			status, body, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: uint32(wr.delete)}))
			if status != http.StatusOK {
				t.Fatalf("delete %d: status %d: %s", wr.delete, status, body)
			}
		}
		// Read-your-writes through the cache: the answer must be
		// achievable at prefix >= i+1 — a cached pre-write body whose
		// newest producing prefix is older fails here.
		body, err := readOnce()
		if err != nil {
			t.Fatal(err)
		}
		maxIdx, ok := allowedMax[body]
		if !ok {
			t.Fatalf("after write %d: answer matches no prefix: %s", i, body)
		}
		if maxIdx < i+1 {
			t.Fatalf("after write %d: stale cached answer (newest producing prefix %d)", i+1, maxIdx)
		}
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	if rc := e.srv.Stats().ResultCache; rc == nil || rc.Hits+rc.Misses == 0 {
		t.Fatal("cache saw no traffic during the property test")
	}
}
