package server

// Multi-tenant serving tests: the tenant-isolation property test (every
// tenant's HTTP answers byte-identical to a single-tenant mirror of its
// own write history, while co-tenants write concurrently and a noisy
// tenant saturates its quota), deterministic per-tenant quota tests
// built on the blocker-task technique and an injected clock, and the
// 4xx paths that must never create tenant state.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/tenant"
)

// stressN scales property-test workloads under TRAJCOVER_STRESS (the CI
// tenant-e2e job sets it).
func stressN(n int) int {
	if os.Getenv("TRAJCOVER_STRESS") != "" {
		return n * 4
	}
	return n
}

// menv is a multi-tenant serving fixture: a NewMulti server over a
// durable (or in-memory, root == "") registry behind httptest.
type menv struct {
	t      *testing.T
	srv    *Server
	reg    *trajcover.TenantRegistry
	ts     *httptest.Server
	client *http.Client
}

func newMultiEnv(t *testing.T, root string, cfg Config) *menv {
	t.Helper()
	opts := trajcover.TenantRegistryOptions{
		Root:        root,
		WAL:         trajcover.WALOptions{Sync: trajcover.WALSyncAlways, SegmentBytes: 1 << 15},
		Policy:      trajcover.LivePolicy{Manual: true},
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
	}
	reg, err := trajcover.OpenTenantRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMulti(reg, cfg)
	ts := httptest.NewServer(srv.Handler())
	e := &menv{t: t, srv: srv, reg: reg, ts: ts, client: ts.Client()}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		reg.Close()
	})
	return e
}

// mirrorOpts must build mirrors exactly like newMultiEnv's registry
// builds tenants, or byte-identity cannot hold.
func mirrorOpts() trajcover.LiveShardOptions {
	return trajcover.LiveShardOptions{
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
		Policy:      trajcover.LivePolicy{Manual: true},
	}
}

// post sends body to path, optionally with an X-Tenant header, and is
// safe for concurrent use (unlike env.post it reports errors, letting
// property-test goroutines fail their own tenant).
func (e *menv) post(path, xTenant string, body []byte) (int, []byte, http.Header, error) {
	req, err := http.NewRequest(http.MethodPost, e.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if xTenant != "" {
		req.Header.Set("X-Tenant", xTenant)
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := readAll(resp)
	return resp.StatusCode, out, resp.Header, err
}

func readAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// mustPost is post that fails the test on transport errors or an
// unexpected status.
func (e *menv) mustPost(path, xTenant string, body []byte, wantStatus int) ([]byte, http.Header) {
	e.t.Helper()
	status, out, hdr, err := e.post(path, xTenant, body)
	if err != nil {
		e.t.Fatalf("POST %s: %v", path, err)
	}
	if status != wantStatus {
		e.t.Fatalf("POST %s (tenant %q): status %d, want %d: %s", path, xTenant, status, wantStatus, out)
	}
	return out, hdr
}

func insertBody(t *testing.T, u *trajcover.Trajectory, tenantField string) []byte {
	t.Helper()
	pts := make([][2]float64, len(u.Points))
	for i, p := range u.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	return mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts, Tenant: tenantField})
}

// tenantHistory is one tenant's scripted write history: base inserts,
// then ops (insert or delete), all derived from the tenant's own seed so
// every tenant's corpus is distinct while ID spaces deliberately
// overlap — a cross-tenant leak would collide immediately.
type tenantHistory struct {
	id    string
	users []*trajcover.Trajectory
	facs  []*trajcover.Facility
}

func historyOf(id string, seed int64, n int) tenantHistory {
	return tenantHistory{id: id, users: testUsers(n, seed), facs: testFacilities(8, 6, seed+1)}
}

// runTenantHistory drives one tenant's full history over HTTP,
// alternating the tenant between the X-Tenant header and the body
// field, and after every few writes asserts the served answers are
// byte-identical to a private single-tenant mirror of this history
// alone — while every other tenant writes concurrently. Returns an
// error instead of calling t.Fatal so it can run on a goroutine.
func (e *menv) runTenantHistory(h tenantHistory) error {
	mirror, err := trajcover.NewLiveShardedIndex(nil, mirrorOpts())
	if err != nil {
		return err
	}
	fjs := facilityJSONOf(h.facs)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 60}
	check := func(step int) error {
		status, body, _, err := e.post(PathTopK, h.id, mustBody(e.t, QueryRequest{Facilities: fjs, K: 5, Psi: 60}))
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("tenant %s step %d: topk status %d: %s", h.id, step, status, body)
		}
		direct, err := mirror.TopKParallelCtx(context.Background(), h.facs, 5, q, 1)
		if err != nil {
			return err
		}
		if want := MarshalTopKResponse(direct); !bytes.Equal(body, want) {
			return fmt.Errorf("tenant %s step %d: topk diverged from single-tenant mirror\n got: %s\nwant: %s", h.id, step, body, want)
		}
		status, body, _, err = e.post(PathServiceValues, "", mustBody(e.t, QueryRequest{Facilities: fjs, Psi: 60, Tenant: h.id}))
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("tenant %s step %d: servicevalues status %d: %s", h.id, step, status, body)
		}
		values, err := mirror.ServiceValuesCtx(context.Background(), h.facs, q, 1)
		if err != nil {
			return err
		}
		if want := MarshalValuesResponse(values); !bytes.Equal(body, want) {
			return fmt.Errorf("tenant %s step %d: servicevalues diverged from mirror", h.id, step)
		}
		return nil
	}
	for i, u := range h.users {
		// Alternate the tenant-naming mechanism: header one write, body
		// field the next — both must address the same tenant.
		var status int
		var body []byte
		if i%2 == 0 {
			status, body, _, err = e.post(PathInsert, h.id, insertBody(e.t, u, ""))
		} else {
			status, body, _, err = e.post(PathInsert, "", insertBody(e.t, u, h.id))
		}
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("tenant %s insert %d: status %d: %s", h.id, i, status, body)
		}
		if err := mirror.Insert(u); err != nil {
			return err
		}
		// The insert response's len is itself a per-tenant answer: it
		// must match the mirror even while co-tenants insert concurrently.
		if want := mustBody(e.t, InsertResponse{Len: mirror.Len()}); !bytes.Equal(body, want) {
			return fmt.Errorf("tenant %s insert %d: len answer %s, mirror %s", h.id, i, body, want)
		}
		// Delete every 7th user right after inserting it, again through
		// either naming mechanism.
		if i%7 == 3 {
			status, body, _, err = e.post(PathDelete, h.id, mustBody(e.t, DeleteRequest{ID: uint32(u.ID)}))
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("tenant %s delete %d: status %d: %s", h.id, i, status, body)
			}
			if _, err := mirror.Delete(u.ID); err != nil {
				return err
			}
			if want := mustBody(e.t, DeleteResponse{Found: true}); !bytes.Equal(body, want) {
				return fmt.Errorf("tenant %s delete %d: answer %s", h.id, i, body)
			}
		}
		if i%5 == 4 {
			if err := check(i); err != nil {
				return err
			}
		}
	}
	return check(len(h.users))
}

// TestTenantIsolationProperty is the archetype centerpiece: N tenants
// run concurrent scripted write/query histories through one HTTP server
// while a noisy co-tenant saturates its write-rate quota, and every
// tenant's every answer must be byte-identical to a fresh single-tenant
// mirror of its own history alone. Run it under -race; TRAJCOVER_STRESS
// scales the histories.
func TestTenantIsolationProperty(t *testing.T) {
	e := newMultiEnv(t, t.TempDir(), Config{Workers: 4, QueueDepth: 64, DefaultTimeout: 30 * time.Second})
	e.srv.SetOverrides(&tenant.Overrides{
		Tenants: map[string]tenant.Limits{
			// The noisy tenant's write rate is tiny; its flood must be
			// shed with 429s without perturbing anyone else's answers.
			"noisy": {WritesPerSec: 20},
		},
	})

	n := stressN(40)
	histories := []tenantHistory{
		historyOf("alpha", 101, n),
		historyOf("beta", 202, n),
		historyOf("gamma", 303, n),
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(histories)+1)

	// The noisy tenant: a write flood that outruns its 20 writes/sec
	// budget. Some writes land (200), the rest bounce (429) — and its
	// own accepted-prefix must still answer like a mirror of exactly the
	// accepted writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		mirror, err := trajcover.NewLiveShardedIndex(nil, mirrorOpts())
		if err != nil {
			errs <- err
			return
		}
		noisy := testUsers(stressN(150), 999)
		rejected := 0
		for _, u := range noisy {
			status, body, hdr, err := e.post(PathInsert, "noisy", insertBody(e.t, u, ""))
			if err != nil {
				errs <- err
				return
			}
			switch status {
			case http.StatusOK:
				if err := mirror.Insert(u); err != nil {
					errs <- err
					return
				}
			case http.StatusTooManyRequests:
				rejected++
				if hdr.Get("Retry-After") == "" {
					errs <- fmt.Errorf("noisy 429 without Retry-After")
					return
				}
				if !strings.Contains(string(body), string(tenant.RejectRate)) {
					errs <- fmt.Errorf("noisy 429 reason: %s", body)
					return
				}
			default:
				errs <- fmt.Errorf("noisy insert status %d: %s", status, body)
				return
			}
		}
		if rejected == 0 {
			errs <- fmt.Errorf("noisy tenant was never rate limited (flood of %d writes)", len(noisy))
			return
		}
		facs := testFacilities(6, 6, 998)
		status, body, _, err := e.post(PathServiceValues, "noisy", mustBody(e.t, QueryRequest{Facilities: facilityJSONOf(facs), Psi: 60}))
		if err != nil {
			errs <- err
			return
		}
		if status != http.StatusOK {
			errs <- fmt.Errorf("noisy query status %d: %s", status, body)
			return
		}
		values, err := mirror.ServiceValuesCtx(context.Background(), facs, trajcover.Query{Scenario: trajcover.Binary, Psi: 60}, 1)
		if err != nil {
			errs <- err
			return
		}
		if want := MarshalValuesResponse(values); !bytes.Equal(body, want) {
			errs <- fmt.Errorf("noisy tenant's accepted-prefix answers diverged from its mirror")
		}
	}()

	for _, h := range histories {
		wg.Add(1)
		go func(h tenantHistory) {
			defer wg.Done()
			if err := e.runTenantHistory(h); err != nil {
				errs <- err
			}
		}(h)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The per-tenant /statsz sections must agree: the noisy tenant has
	// rate rejections, the scripted tenants none.
	st := e.srv.Stats()
	if st.Tenants["noisy"].Gate.RejectedRate == 0 {
		t.Error("statsz shows no rate rejections for the noisy tenant")
	}
	for _, id := range []string{"alpha", "beta", "gamma"} {
		if got := st.Tenants[id].Gate; got.Rejected() != 0 {
			t.Errorf("tenant %s has rejections %+v despite no quota", id, got)
		}
	}
	if st.Registry == nil || st.Registry.Created != 4 {
		t.Errorf("registry stats %+v, want 4 created tenants", st.Registry)
	}
}

// TestTenantQuotaDeterministic pins one tenant at max_inflight with the
// blocker-task technique: with the only worker parked, two admitted
// requests hold the noisy tenant's two inflight slots, its third
// request gets an immediate 429 + Retry-After naming the limit, and a
// second tenant's request still succeeds once the worker frees up.
func TestTenantQuotaDeterministic(t *testing.T) {
	e := newMultiEnv(t, "", Config{Workers: 1, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	e.srv.SetOverrides(&tenant.Overrides{
		Tenants: map[string]tenant.Limits{"noisy": {MaxInflight: 2}},
	})

	// Materialize both tenants before the worker is parked.
	users := testUsers(4, 71)
	e.mustPost(PathInsert, "noisy", insertBody(t, users[0], ""), http.StatusOK)
	e.mustPost(PathInsert, "quiet", insertBody(t, users[1], ""), http.StatusOK)

	// blockWorkers' release closes a channel; Once-wrap it so the happy
	// path and the deferred cleanup can both call it.
	var relOnce sync.Once
	blockerRelease := blockWorkers(t, e.srv, 1)
	release := func() { relOnce.Do(blockerRelease) }
	defer release()

	facs := testFacilities(2, 4, 72)
	query := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 1, Psi: 40})

	// Two noisy queries sit in the global queue holding both of the
	// tenant's inflight slots.
	type result struct {
		status int
		body   []byte
	}
	async := make(chan result, 3)
	for i := 0; i < 2; i++ {
		go func() {
			status, body, _, err := e.post(PathTopK, "noisy", query)
			if err != nil {
				status = -1
			}
			async <- result{status, body}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.srv.Stats().Tenants["noisy"].Gate.Inflight == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("noisy tenant never reached 2 inflight")
		}
		time.Sleep(time.Millisecond)
	}

	// The third noisy request must bounce instantly — worker still
	// parked, so this is the per-tenant gate, not the global queue.
	start := time.Now()
	status, body, hdr, err := e.post(PathTopK, "noisy", query)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("third noisy query: status %d: %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	if !strings.Contains(string(body), string(tenant.RejectInflight)) {
		t.Fatalf("quota 429 body %s does not name max_inflight", body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("quota rejection took %v; must fail fast", elapsed)
	}

	// The quiet tenant is admitted despite the noisy tenant's pin.
	go func() {
		status, body, _, err := e.post(PathTopK, "quiet", query)
		if err != nil {
			status = -1
		}
		async <- result{status, body}
	}()
	// Give the quiet request time to be admitted, then free the worker:
	// all three admitted requests must complete 200.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if e.srv.Stats().Tenants["quiet"].Gate.Inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quiet tenant was never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	for i := 0; i < 3; i++ {
		r := <-async
		if r.status != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d: %s", i, r.status, r.body)
		}
	}

	st := e.srv.Stats()
	if got := st.Tenants["noisy"].Gate.RejectedInflight; got != 1 {
		t.Fatalf("noisy rejected_inflight = %d, want 1", got)
	}
	if got := st.Tenants["quiet"].Gate.Rejected(); got != 0 {
		t.Fatalf("quiet tenant has %d rejections", got)
	}
}

// TestTenantWriteRateDeterministic drives the writes_per_sec bucket
// through HTTP with an injected clock: a burst of rate writes lands,
// the next bounces with 429, and one advanced second refills exactly
// rate tokens.
func TestTenantWriteRateDeterministic(t *testing.T) {
	e := newMultiEnv(t, "", Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	e.srv.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	e.srv.SetOverrides(&tenant.Overrides{
		Tenants: map[string]tenant.Limits{"w": {WritesPerSec: 2}},
	})

	users := testUsers(8, 81)
	e.mustPost(PathInsert, "w", insertBody(t, users[0], ""), http.StatusOK)
	e.mustPost(PathInsert, "w", insertBody(t, users[1], ""), http.StatusOK)
	body, _ := e.mustPost(PathInsert, "w", insertBody(t, users[2], ""), http.StatusTooManyRequests)
	if !strings.Contains(string(body), string(tenant.RejectRate)) {
		t.Fatalf("rate 429 body: %s", body)
	}

	advance(time.Second)
	e.mustPost(PathInsert, "w", insertBody(t, users[3], ""), http.StatusOK)
	e.mustPost(PathInsert, "w", insertBody(t, users[4], ""), http.StatusOK)
	e.mustPost(PathInsert, "w", insertBody(t, users[5], ""), http.StatusTooManyRequests)

	// Hot-swapping the overrides changes the limit without restart: the
	// loosened document admits the same write that just bounced...
	e.srv.SetOverrides(nil)
	e.mustPost(PathInsert, "w", insertBody(t, users[5], ""), http.StatusOK)
	// ...and re-tightening re-clamps the bucket to the new burst.
	e.srv.SetOverrides(&tenant.Overrides{
		Tenants: map[string]tenant.Limits{"w": {WritesPerSec: 1}},
	})
	e.mustPost(PathInsert, "w", insertBody(t, users[6], ""), http.StatusOK)
	e.mustPost(PathInsert, "w", insertBody(t, users[7], ""), http.StatusTooManyRequests)

	if got := e.srv.Stats().Tenants["w"].Gate.RejectedRate; got != 3 {
		t.Fatalf("rejected_rate = %d, want 3", got)
	}
}

// TestTenantInvalidAndUnknown pins the 4xx paths: unknown tenants are
// 404 on every read surface, invalid tenant IDs (traversal, oversized,
// malformed) are 400 everywhere, header/body disagreement is 400 — and
// none of it may create directories under the registry root.
func TestTenantInvalidAndUnknown(t *testing.T) {
	root := t.TempDir()
	e := newMultiEnv(t, root, Config{Workers: 2, QueueDepth: 16})

	facs := testFacilities(2, 4, 91)
	query := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 1, Psi: 40})
	users := testUsers(2, 92)

	// Reads of unknown tenants: 404, never a lazy create.
	e.mustPost(PathTopK, "ghost", query, http.StatusNotFound)
	e.mustPost(PathServiceValues, "ghost", mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), Psi: 40}), http.StatusNotFound)
	e.mustPost(PathCompact, "ghost", []byte(`{}`), http.StatusNotFound)
	e.mustPost(PathCheckpoint, "ghost", nil, http.StatusNotFound)
	if status, _ := e.getTenant(PathSnapshot, "ghost"); status != http.StatusNotFound {
		t.Fatalf("snapshot of unknown tenant: %d", status)
	}

	// Invalid IDs: 400 from header and body alike, including writes —
	// and the fuzz contract's HTTP half: no directory may appear.
	for _, id := range []string{"../evil", "..", "a/b", strings.Repeat("x", 65), ".hidden", "a b"} {
		e.mustPost(PathTopK, id, query, http.StatusBadRequest)
		e.mustPost(PathInsert, id, insertBody(t, users[0], ""), http.StatusBadRequest)
		e.mustPost(PathInsert, "", insertBody(t, users[0], id), http.StatusBadRequest)
	}

	// Header and body must agree when both are set.
	e.mustPost(PathInsert, "alpha", insertBody(t, users[0], "beta"), http.StatusBadRequest)
	// Agreement is fine.
	e.mustPost(PathInsert, "alpha", insertBody(t, users[0], "alpha"), http.StatusOK)

	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "alpha" {
		names := make([]string, len(ents))
		for i, en := range ents {
			names[i] = en.Name()
		}
		t.Fatalf("registry root holds %v, want only [alpha]", names)
	}

	// The parent of the root must be untouched by traversal attempts
	// (t.TempDir gives us a clean parent to assert on).
	parentEnts, err := os.ReadDir(root + "/..")
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range parentEnts {
		if en.Name() == "evil" {
			t.Fatal("path-traversal tenant escaped the registry root")
		}
	}
}

func (e *menv) getTenant(path, xTenant string) (int, []byte) {
	e.t.Helper()
	req, err := http.NewRequest(http.MethodGet, e.ts.URL+path, nil)
	if err != nil {
		e.t.Fatal(err)
	}
	if xTenant != "" {
		req.Header.Set("X-Tenant", xTenant)
	}
	resp, err := e.client.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := readAll(resp)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestTenantCheckpointAndSnapshot covers the per-tenant ops surface:
// X-Tenant selects which tenant's WAL is checkpointed, and each
// tenant's snapshot stream restores to that tenant's corpus alone.
func TestTenantCheckpointAndSnapshot(t *testing.T) {
	e := newMultiEnv(t, t.TempDir(), Config{Workers: 2, QueueDepth: 16})
	users := testUsers(40, 61)
	for _, u := range users[:20] {
		e.mustPost(PathInsert, "a", insertBody(t, u, ""), http.StatusOK)
	}
	for _, u := range users[20:30] {
		e.mustPost(PathInsert, "b", insertBody(t, u, ""), http.StatusOK)
	}

	var ck CheckpointResponse
	out, _ := e.mustPost(PathCheckpoint, "a", nil, http.StatusOK)
	if err := unmarshalStrict(out, &ck); err != nil || !ck.OK {
		t.Fatalf("checkpoint a: %s (%v)", out, err)
	}
	e.mustPost(PathCheckpoint, "b", nil, http.StatusOK)

	// Snapshot of tenant a restores to exactly a's 20 trajectories.
	status, snap := e.getTenant(PathSnapshot, "a")
	if status != http.StatusOK {
		t.Fatalf("snapshot a: %d", status)
	}
	restored, err := trajcover.ReadLiveSnapshot(bytes.NewReader(snap), trajcover.LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 20 {
		t.Fatalf("tenant a snapshot restored %d trajectories, want 20", restored.Len())
	}
	status, snap = e.getTenant(PathSnapshot, "b")
	if status != http.StatusOK {
		t.Fatalf("snapshot b: %d", status)
	}
	restored, err = trajcover.ReadLiveSnapshot(bytes.NewReader(snap), trajcover.LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 10 {
		t.Fatalf("tenant b snapshot restored %d trajectories, want 10", restored.Len())
	}
}

// TestTenantMaxTimeoutCap pins the per-tenant deadline cap: a tenant
// with max_timeout_ms below the requested timeout gets the tight
// deadline (504 under a parked pool), while an uncapped tenant's
// request with the same timeout survives to completion.
func TestTenantMaxTimeoutCap(t *testing.T) {
	e := newMultiEnv(t, "", Config{Workers: 1, QueueDepth: 16, DefaultTimeout: 10 * time.Second, MaxTimeout: 10 * time.Second})
	e.srv.SetOverrides(&tenant.Overrides{
		Tenants: map[string]tenant.Limits{"tight": {MaxTimeoutMS: 50}},
	})
	users := testUsers(2, 51)
	e.mustPost(PathInsert, "tight", insertBody(t, users[0], ""), http.StatusOK)

	release := blockWorkers(t, e.srv, 1)
	defer release()

	facs := testFacilities(2, 4, 52)
	// The request asks for 5s; the tenant cap shrinks it to 50ms, so it
	// times out 504 while the worker is parked — fast.
	start := time.Now()
	body, _ := e.mustPost(PathTopK, "tight", mustBody(t, QueryRequest{
		Facilities: facilityJSONOf(facs), K: 1, Psi: 40, TimeoutMS: 5000,
	}), http.StatusGatewayTimeout)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("capped request took %v to time out (cap is 50ms): %s", elapsed, body)
	}
}
