package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
)

var testBounds = trajcover.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func testUsers(n int, seed int64) []*trajcover.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajcover.Trajectory, n)
	for i := range out {
		ax, ay := rng.Float64()*1000, rng.Float64()*1000
		pts := []trajcover.Point{
			trajcover.Pt(clampF(ax+rng.NormFloat64()*80, 0, 1000), clampF(ay+rng.NormFloat64()*80, 0, 1000)),
			trajcover.Pt(clampF(ax+rng.NormFloat64()*80, 0, 1000), clampF(ay+rng.NormFloat64()*80, 0, 1000)),
		}
		u, err := trajcover.NewTrajectory(trajcover.ID(i), pts)
		if err != nil {
			panic(err)
		}
		out[i] = u
	}
	return out
}

func testFacilities(n, stops int, seed int64) []*trajcover.Facility {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajcover.Facility, n)
	for i := range out {
		ax, ay := rng.Float64()*1000, rng.Float64()*1000
		dx, dy := rng.NormFloat64(), rng.NormFloat64()
		pts := make([]trajcover.Point, stops)
		for j := range pts {
			pts[j] = trajcover.Pt(
				clampF(ax+float64(j)*20*dx+rng.NormFloat64()*10, 0, 1000),
				clampF(ay+float64(j)*20*dy+rng.NormFloat64()*10, 0, 1000),
			)
		}
		f, err := trajcover.NewFacility(trajcover.ID(10_000+i), pts)
		if err != nil {
			panic(err)
		}
		out[i] = f
	}
	return out
}

func facilityJSONOf(fs []*trajcover.Facility) []FacilityJSON {
	out := make([]FacilityJSON, len(fs))
	for i, f := range fs {
		stops := make([][2]float64, len(f.Stops))
		for j, st := range f.Stops {
			stops[j] = [2]float64{st.X, st.Y}
		}
		out[i] = FacilityJSON{ID: uint32(f.ID), Stops: stops}
	}
	return out
}

func liveOpts() trajcover.LiveShardOptions {
	return trajcover.LiveShardOptions{
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
		Policy:      trajcover.LivePolicy{Manual: true},
	}
}

// env is one serving fixture: the server under test behind httptest and
// an identically built mirror index driven directly.
type env struct {
	t      *testing.T
	srv    *Server
	ts     *httptest.Server
	mirror *trajcover.LiveShardedIndex
	client *http.Client
}

func newEnv(t *testing.T, base []*trajcover.Trajectory, cfg Config) *env {
	t.Helper()
	idx, err := trajcover.NewLiveShardedIndex(base, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := trajcover.NewLiveShardedIndex(base, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, cfg)
	ts := httptest.NewServer(srv.Handler())
	e := &env{t: t, srv: srv, ts: ts, mirror: mirror, client: ts.Client()}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return e
}

func (e *env) post(path string, body []byte) (int, []byte, http.Header) {
	e.t.Helper()
	resp, err := e.client.Post(e.ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		e.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp.StatusCode, out, resp.Header
}

func (e *env) get(path string) (int, []byte) {
	e.t.Helper()
	resp, err := e.client.Get(e.ts.URL + path)
	if err != nil {
		e.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, out
}

func mustBody(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerEndToEndMatchesDirect drives mixed topk / servicevalues /
// insert / delete / compact traffic through HTTP and asserts every
// response byte-identical to direct LiveShardedIndex calls applying the
// same write history to an identically built mirror.
func TestServerEndToEndMatchesDirect(t *testing.T) {
	users := testUsers(600, 21)
	base, feed := users[:400], users[400:]
	e := newEnv(t, base, Config{Workers: 2, QueueDepth: 32, DefaultTimeout: 30 * time.Second})
	facs := testFacilities(16, 8, 22)
	fjs := facilityJSONOf(facs)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}

	checkQueries := func(stage string, workers int) {
		t.Helper()
		status, body, _ := e.post(PathTopK, mustBody(t, QueryRequest{
			Facilities: fjs, K: 8, Psi: 40, Workers: workers,
		}))
		if status != http.StatusOK {
			t.Fatalf("%s: topk status %d: %s", stage, status, body)
		}
		direct, err := e.mirror.TopKParallelCtx(context.Background(), facs, 8, q, workers)
		if err != nil {
			t.Fatal(err)
		}
		if want := MarshalTopKResponse(direct); !bytes.Equal(body, want) {
			t.Fatalf("%s: topk response differs from direct call\n got: %s\nwant: %s", stage, body, want)
		}

		status, body, _ = e.post(PathServiceValues, mustBody(t, QueryRequest{
			Facilities: fjs, Psi: 40, Workers: workers,
		}))
		if status != http.StatusOK {
			t.Fatalf("%s: servicevalues status %d: %s", stage, status, body)
		}
		values, err := e.mirror.ServiceValuesCtx(context.Background(), facs, q, workers)
		if err != nil {
			t.Fatal(err)
		}
		if want := MarshalValuesResponse(values); !bytes.Equal(body, want) {
			t.Fatalf("%s: servicevalues response differs from direct call\n got: %s\nwant: %s", stage, body, want)
		}
	}

	checkQueries("initial", 0)
	rng := rand.New(rand.NewSource(23))
	alive := map[uint32]bool{}
	for _, u := range base {
		alive[uint32(u.ID)] = true
	}
	for op := 0; op < 120; op++ {
		if rng.Intn(2) == 0 && len(feed) > 0 {
			u := feed[0]
			feed = feed[1:]
			pts := make([][2]float64, len(u.Points))
			for i, p := range u.Points {
				pts[i] = [2]float64{p.X, p.Y}
			}
			status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts}))
			if status != http.StatusOK {
				t.Fatalf("insert %d: status %d: %s", u.ID, status, body)
			}
			if err := e.mirror.Insert(u); err != nil {
				t.Fatal(err)
			}
			var ir InsertResponse
			if err := json.Unmarshal(body, &ir); err != nil {
				t.Fatal(err)
			}
			if ir.Len != e.mirror.Len() {
				t.Fatalf("insert %d: len %d, mirror %d", u.ID, ir.Len, e.mirror.Len())
			}
			alive[uint32(u.ID)] = true
		} else {
			var id uint32
			for cand := range alive {
				id = cand
				break
			}
			status, body, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: id}))
			if status != http.StatusOK {
				t.Fatalf("delete %d: status %d: %s", id, status, body)
			}
			found, err := e.mirror.Delete(trajcover.ID(id))
			if err != nil {
				t.Fatal(err)
			}
			var dr DeleteResponse
			if err := json.Unmarshal(body, &dr); err != nil {
				t.Fatal(err)
			}
			if dr.Found != found {
				t.Fatalf("delete %d: found %v, mirror %v", id, dr.Found, found)
			}
			delete(alive, id)
		}
		if op%20 == 19 {
			checkQueries(fmt.Sprintf("op %d", op), op%3)
		}
		if op == 60 {
			status, body, _ := e.post(PathCompact, nil)
			if status != http.StatusOK {
				t.Fatalf("compact: status %d: %s", status, body)
			}
			if err := e.mirror.Compact(); err != nil {
				t.Fatal(err)
			}
			checkQueries("post-compact", 4)
		}
	}
	checkQueries("final", 0)

	// A duplicate insert is a conflict, mirrored by the library error.
	dupID := uint32(0)
	for id := range alive {
		dupID = id
		break
	}
	u := users[dupID]
	pts := make([][2]float64, len(u.Points))
	for i, p := range u.Points {
		pts[i] = [2]float64{p.X, p.Y}
	}
	if status, _, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: dupID, Points: pts})); status != http.StatusConflict {
		t.Fatalf("duplicate insert: status %d, want 409", status)
	}
}

// TestServerPrefixConsistencyUnderConcurrentWrites extends the live
// prefix-consistency idiom to the HTTP boundary: readers hammer
// /v1/servicevalues and /v1/topk while a writer applies a scripted
// insert/delete history; every response must be byte-identical to a
// fresh build of SOME prefix of that history.
func TestServerPrefixConsistencyUnderConcurrentWrites(t *testing.T) {
	users := testUsers(400, 31)
	base, feed := users[:300], users[300:]
	e := newEnv(t, base, Config{Workers: 2, QueueDepth: 64, DefaultTimeout: 30 * time.Second})
	facs := testFacilities(8, 8, 32)
	fjs := facilityJSONOf(facs)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}

	// Scripted history: insert feed[i], then delete a base trajectory,
	// alternating — 60 writes.
	type write struct {
		insert *trajcover.Trajectory
		delete trajcover.ID
	}
	var script []write
	for i := 0; i < 30; i++ {
		script = append(script, write{insert: feed[i]}, write{delete: base[i*7].ID})
	}

	// Allowed answers: one per prefix, from fresh sharded builds.
	corpus := map[trajcover.ID]*trajcover.Trajectory{}
	for _, u := range base {
		corpus[u.ID] = u
	}
	shardOpts := trajcover.ShardOptions{
		Shards: 2, Partitioner: trajcover.HashPartitioner(),
		Index: trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
	}
	allowedSV := map[string]int{}
	allowedTopK := map[string]int{}
	snapshotPrefix := func(i int) {
		var all []*trajcover.Trajectory
		for id := trajcover.ID(0); int(id) < len(users); id++ {
			if u, ok := corpus[id]; ok {
				all = append(all, u)
			}
		}
		fresh, err := trajcover.NewShardedIndex(all, shardOpts)
		if err != nil {
			t.Fatal(err)
		}
		vs, err := fresh.ServiceValues(facs, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		allowedSV[string(MarshalValuesResponse(vs))] = i
		top, err := fresh.TopK(facs, 4, q)
		if err != nil {
			t.Fatal(err)
		}
		allowedTopK[string(MarshalTopKResponse(top))] = i
	}
	snapshotPrefix(0)
	for i, wr := range script {
		if wr.insert != nil {
			corpus[wr.insert.ID] = wr.insert
		} else {
			delete(corpus, wr.delete)
		}
		snapshotPrefix(i + 1)
	}

	stop := make(chan struct{})
	var readerErr error
	var readerOnce sync.Once
	var wg sync.WaitGroup
	reads := make([]int, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var path string
				var body []byte
				var allowed map[string]int
				if reads[r]%2 == 0 {
					path = PathServiceValues
					body = mustBody(t, QueryRequest{Facilities: fjs, Psi: 40, Workers: 1})
					allowed = allowedSV
				} else {
					path = PathTopK
					body = mustBody(t, QueryRequest{Facilities: fjs, K: 4, Psi: 40, Workers: 1})
					allowed = allowedTopK
				}
				resp, err := e.client.Post(e.ts.URL+path, "application/json", bytes.NewReader(body))
				if err != nil {
					readerOnce.Do(func() { readerErr = err })
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					readerOnce.Do(func() { readerErr = err })
					return
				}
				if resp.StatusCode != http.StatusOK {
					readerOnce.Do(func() { readerErr = fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, got) })
					return
				}
				if _, ok := allowed[string(got)]; !ok {
					readerOnce.Do(func() { readerErr = fmt.Errorf("%s answer matches no prefix of the write history: %s", path, got) })
					return
				}
				reads[r]++
				// Yield so the hammering readers cannot starve the writer
				// on small core counts (see internal/shard/live_test.go).
				time.Sleep(50 * time.Microsecond)
			}
		}(r)
	}

	for _, wr := range script {
		if wr.insert != nil {
			pts := make([][2]float64, len(wr.insert.Points))
			for i, p := range wr.insert.Points {
				pts[i] = [2]float64{p.X, p.Y}
			}
			status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: uint32(wr.insert.ID), Points: pts}))
			if status != http.StatusOK {
				t.Fatalf("insert %d: status %d: %s", wr.insert.ID, status, body)
			}
		} else {
			status, body, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: uint32(wr.delete)}))
			if status != http.StatusOK {
				t.Fatalf("delete %d: status %d: %s", wr.delete, status, body)
			}
			var dr DeleteResponse
			if err := json.Unmarshal(body, &dr); err != nil {
				t.Fatal(err)
			}
			if !dr.Found {
				t.Fatalf("delete %d: not found", wr.delete)
			}
		}
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if reads[0]+reads[1] == 0 {
		t.Fatal("readers made no progress during the write history")
	}

	// After the full history, the answer must be the final prefix's.
	status, got, _ := e.post(PathServiceValues, mustBody(t, QueryRequest{Facilities: fjs, Psi: 40, Workers: 1}))
	if status != http.StatusOK {
		t.Fatalf("final servicevalues: status %d", status)
	}
	if idx, ok := allowedSV[string(got)]; !ok || idx != len(script) {
		t.Fatalf("final answer is prefix %d (ok=%v), want %d", idx, ok, len(script))
	}
}

// blockWorkers parks n pool workers on a channel and returns once they
// are all mid-task, plus the release function.
func blockWorkers(t *testing.T, s *Server, n int) func() {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		bt := &task{
			ctx: context.Background(),
			run: func(context.Context) response {
				started <- struct{}{}
				<-release
				return response{status: http.StatusOK, body: []byte("{}")}
			},
			done: make(chan struct{}),
		}
		select {
		case s.queue <- bt:
		case <-time.After(5 * time.Second):
			t.Fatal("could not enqueue blocker")
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("worker did not pick up blocker")
		}
	}
	return func() { close(release) }
}

// fillQueue stuffs the admission queue with parked tasks (they never
// run while the workers are blocked).
func fillQueue(t *testing.T, s *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ft := &task{
			ctx:  context.Background(),
			run:  func(context.Context) response { return response{status: http.StatusOK, body: []byte("{}")} },
			done: make(chan struct{}),
		}
		select {
		case s.queue <- ft:
		case <-time.After(5 * time.Second):
			t.Fatal("could not fill queue")
		}
	}
}

// TestServerAdmissionControl saturates the pool and queue and asserts
// overflow requests are rejected immediately with 429 + Retry-After —
// well inside their deadline — and that service resumes once the pool
// frees up.
func TestServerAdmissionControl(t *testing.T) {
	users := testUsers(200, 41)
	e := newEnv(t, users, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 10 * time.Second})
	facs := testFacilities(4, 4, 42)
	body := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 2, Psi: 40})

	releaseWorker := blockWorkers(t, e.srv, 1)
	fillQueue(t, e.srv, 1)

	start := time.Now()
	status, respBody, hdr := e.post(PathTopK, body)
	elapsed := time.Since(start)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated topk: status %d, want 429 (%s)", status, respBody)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("429 took %v; admission must fail fast, not wait out the deadline", elapsed)
	}
	if got := e.srv.Stats().Endpoints[PathTopK].Rejected; got < 1 {
		t.Fatalf("rejected counter = %d, want >= 1", got)
	}

	releaseWorker()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, _ := e.post(PathTopK, body)
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not resume after release: status %d", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDeadline: a request whose deadline expires while it waits
// behind a blocked pool is answered 504 at the deadline, the abandoned
// task is skipped (never runs), and the cancellation-aware executor
// surfaces context.DeadlineExceeded at the library level too.
func TestServerDeadline(t *testing.T) {
	users := testUsers(200, 51)
	e := newEnv(t, users, Config{Workers: 1, QueueDepth: 8, DefaultTimeout: 10 * time.Second})
	facs := testFacilities(4, 4, 52)

	release := blockWorkers(t, e.srv, 1)
	start := time.Now()
	status, body, _ := e.post(PathTopK, mustBody(t, QueryRequest{
		Facilities: facilityJSONOf(facs), K: 2, Psi: 40, TimeoutMS: 150,
	}))
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline topk: status %d (%s), want 504", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("504 body %q does not name the deadline", body)
	}
	if elapsed < 100*time.Millisecond || elapsed > 8*time.Second {
		t.Fatalf("504 arrived after %v, want ~150ms", elapsed)
	}
	if got := e.srv.Stats().Endpoints[PathTopK].DeadlineExceeded; got < 1 {
		t.Fatalf("deadline counter = %d, want >= 1", got)
	}
	release()

	// The executor itself reports DeadlineExceeded on an expired ctx —
	// the contract the 504 mapping stands on.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}
	if _, err := e.srv.Index().TopKCtx(ctx, facs, 2, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKCtx(expired) err = %v, want DeadlineExceeded", err)
	}
	if _, err := e.srv.Index().ServiceValuesCtx(ctx, facs, q, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ServiceValuesCtx(expired) err = %v, want DeadlineExceeded", err)
	}
	if _, err := e.srv.Index().TopKParallelCtx(ctx, facs, 2, q, 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKParallelCtx(expired) err = %v, want DeadlineExceeded", err)
	}

	// And service resumes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, _, _ := e.post(PathTopK, mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 2, Psi: 40}))
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not resume: status %d", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerRejectsBadRequests pins the 4xx surface of the decoder and
// transport limits.
func TestServerRejectsBadRequests(t *testing.T) {
	users := testUsers(100, 61)
	e := newEnv(t, users, Config{Workers: 1, QueueDepth: 4, MaxBodyBytes: 512})

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", PathTopK, `{"facilities":`, http.StatusBadRequest},
		{"k zero", PathTopK, `{"facilities":[{"id":1,"stops":[[1,2]]}],"k":0,"psi":10}`, http.StatusBadRequest},
		{"k negative", PathTopK, `{"facilities":[{"id":1,"stops":[[1,2]]}],"k":-4,"psi":10}`, http.StatusBadRequest},
		{"psi negative", PathTopK, `{"facilities":[{"id":1,"stops":[[1,2]]}],"k":1,"psi":-1}`, http.StatusBadRequest},
		{"nan literal", PathTopK, `{"facilities":[{"id":1,"stops":[[NaN,2]]}],"k":1,"psi":10}`, http.StatusBadRequest},
		{"overflow number", PathTopK, `{"facilities":[{"id":1,"stops":[[1e999,2]]}],"k":1,"psi":10}`, http.StatusBadRequest},
		{"facility without stops", PathTopK, `{"facilities":[{"id":1,"stops":[]}],"k":1,"psi":10}`, http.StatusBadRequest},
		{"bogus scenario", PathServiceValues, `{"facilities":[{"id":1,"stops":[[1,2]]}],"scenario":"nope","psi":10}`, http.StatusBadRequest},
		{"negative timeout", PathServiceValues, `{"facilities":[{"id":1,"stops":[[1,2]]}],"psi":10,"timeout_ms":-5}`, http.StatusBadRequest},
		{"one-point trajectory", PathInsert, `{"id":9001,"points":[[1,2]]}`, http.StatusBadRequest},
		{"insert nan", PathInsert, `{"id":9001,"points":[[1,2],[3,NaN]]}`, http.StatusBadRequest},
		{"unknown field (typoed timeout)", PathTopK, `{"facilities":[{"id":1,"stops":[[1,2]]}],"k":1,"psi":10,"timeoutms":50}`, http.StatusBadRequest},
		{"trailing data", PathDelete, `{"id":1}{"id":2}`, http.StatusBadRequest},
		{"oversized body", PathTopK, `{"filler":"` + strings.Repeat("x", 2048) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := e.post(tc.path, []byte(tc.body))
			if status != tc.want {
				t.Fatalf("status %d (%s), want %d", status, body, tc.want)
			}
		})
	}

	resp, err := e.client.Get(e.ts.URL + PathTopK)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET topk: status %d, want 405", resp.StatusCode)
	}
}

// TestServerSnapshotRoundTrip streams /v1/snapshot and restores it:
// the restored index must answer byte-identically to the served one.
func TestServerSnapshotRoundTrip(t *testing.T) {
	users := testUsers(300, 71)
	e := newEnv(t, users[:250], Config{Workers: 1, QueueDepth: 8})
	facs := testFacilities(8, 6, 72)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}

	// Leave pending churn in the epochs so the snapshot carries delta
	// and tombstones, not just a frozen base.
	for _, u := range users[250:] {
		pts := make([][2]float64, len(u.Points))
		for i, p := range u.Points {
			pts[i] = [2]float64{p.X, p.Y}
		}
		if status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts})); status != http.StatusOK {
			t.Fatalf("insert: %d %s", status, body)
		}
	}
	if status, _, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: 3})); status != http.StatusOK {
		t.Fatal("delete failed")
	}

	status, raw := e.get(PathSnapshot)
	if status != http.StatusOK {
		t.Fatalf("snapshot: status %d", status)
	}
	restored, err := trajcover.ReadLiveSnapshot(bytes.NewReader(raw), trajcover.LivePolicy{Manual: true})
	if err != nil {
		t.Fatalf("restore streamed snapshot: %v", err)
	}
	if restored.Len() != e.srv.Index().Len() {
		t.Fatalf("restored len %d, served %d", restored.Len(), e.srv.Index().Len())
	}
	want, err := e.srv.Index().ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(MarshalValuesResponse(got), MarshalValuesResponse(want)) {
		t.Fatal("restored snapshot answers differ from served index")
	}
}

// TestServerStatsAndHealth exercises /healthz and /statsz before and
// during drain.
func TestServerStatsAndHealth(t *testing.T) {
	users := testUsers(150, 81)
	e := newEnv(t, users, Config{Workers: 2, QueueDepth: 8})
	facs := testFacilities(4, 4, 82)

	if status, body := e.get(PathHealth); status != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", status, body)
	}
	for i := 0; i < 3; i++ {
		if status, _, _ := e.post(PathTopK, mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 2, Psi: 40})); status != http.StatusOK {
			t.Fatalf("topk warmup: %d", status)
		}
	}
	status, body := e.get(PathStats)
	if status != http.StatusOK {
		t.Fatalf("statsz: %d", status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	if st.Workers != 2 || st.QueueCap != 8 {
		t.Fatalf("statsz config: %+v", st)
	}
	tk := st.Endpoints[PathTopK]
	if tk.Requests < 3 || tk.MeanMillis <= 0 || tk.MaxMillis < tk.MeanMillis {
		t.Fatalf("statsz topk counters: %+v", tk)
	}
	if st.Index.Len != e.srv.Index().Len() || st.Index.Shards != 2 {
		t.Fatalf("statsz index: %+v", st.Index)
	}

	e.srv.BeginDrain()
	if status, _ := e.get(PathHealth); status != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", status)
	}
	if status, _, _ := e.post(PathTopK, mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 2, Psi: 40})); status != http.StatusServiceUnavailable {
		t.Fatalf("draining topk: %d, want 503", status)
	}
	if status, _ := e.get(PathSnapshot); status != http.StatusServiceUnavailable {
		t.Fatalf("draining snapshot: %d, want 503", status)
	}
}

// TestServerDrainLeavesNoGoroutines proves the shutdown protocol sheds
// every goroutine the serving stack started: after drain + HTTP close +
// pool Close, the process goroutine count returns to its baseline.
func TestServerDrainLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	users := testUsers(200, 91)
	idx, err := trajcover.NewLiveShardedIndex(users, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{Workers: 4, QueueDepth: 8, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	facs := testFacilities(4, 4, 92)
	body := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 2, Psi: 40})
	for i := 0; i < 8; i++ {
		resp, err := client.Post(ts.URL+PathTopK, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	srv.BeginDrain()
	ts.Close()
	srv.Close()
	client.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A straggler handler that somehow outlives the HTTP shutdown gets
	// 503 from the closed pool, never a send-on-closed-channel panic.
	if ok, err := srv.enqueue(&task{ctx: context.Background(), done: make(chan struct{})}); ok || err == nil {
		t.Fatalf("enqueue after Close = (%v, %v), want (false, error)", ok, err)
	}
}

// newWALEnv is newEnv over a WAL-backed index: the server under test
// persists every acknowledged write to a temp WAL directory, the mirror
// stays in-memory (the wire behavior must not depend on durability).
func newWALEnv(t *testing.T, base []*trajcover.Trajectory, cfg Config) *env {
	t.Helper()
	idx, err := trajcover.OpenLiveShardedIndex(trajcover.WALOptions{
		Dir:  t.TempDir(),
		Sync: trajcover.WALSyncAlways,
	}, trajcover.LivePolicy{Manual: true}, func() (*trajcover.LiveShardedIndex, error) {
		return trajcover.NewLiveShardedIndex(base, liveOpts())
	})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := trajcover.NewLiveShardedIndex(base, liveOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, cfg)
	ts := httptest.NewServer(srv.Handler())
	e := &env{t: t, srv: srv, ts: ts, mirror: mirror, client: ts.Client()}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		idx.Close()
	})
	return e
}

// TestServerWALCheckpointAndStats covers the durability wiring end to
// end: /statsz grows a wal section whose counters move with traffic,
// POST /v1/checkpoint truncates the log while concurrent writes keep
// landing, and GET /v1/snapshot on a WAL-backed index both streams a
// restorable snapshot and checkpoints (segment footprint resets).
func TestServerWALCheckpointAndStats(t *testing.T) {
	users := testUsers(400, 101)
	e := newWALEnv(t, users[:300], Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 10 * time.Second})
	facs := testFacilities(6, 5, 102)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: 40}

	writes := 0
	for _, u := range users[300:350] {
		pts := make([][2]float64, len(u.Points))
		for i, p := range u.Points {
			pts[i] = [2]float64{p.X, p.Y}
		}
		if status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts})); status != http.StatusOK {
			t.Fatalf("insert: %d %s", status, body)
		}
		writes++
	}
	if status, _, _ := e.post(PathDelete, mustBody(t, DeleteRequest{ID: 7})); status != http.StatusOK {
		t.Fatal("delete failed")
	}
	writes++

	// A duplicate ID is a client error (409), not a durability failure.
	if status, body, _ := e.post(PathInsert, mustBody(t, InsertRequest{ID: 300, Points: [][2]float64{{1, 1}, {2, 2}}})); status != http.StatusConflict {
		t.Fatalf("duplicate insert: %d %s, want 409", status, body)
	}

	status, body := e.get(PathStats)
	if status != http.StatusOK {
		t.Fatalf("statsz: %d", status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	if st.WAL == nil {
		t.Fatalf("statsz has no wal section: %s", body)
	}
	if st.WAL.Records < uint64(writes) || st.WAL.Segments < 1 || st.WAL.Bytes <= 0 {
		t.Fatalf("wal counters did not move: %+v after %d writes", st.WAL, writes)
	}
	if st.WAL.Fsyncs < 1 || st.WAL.MaxFsyncMillis < 0 {
		t.Fatalf("wal fsync counters: %+v", st.WAL)
	}
	if st.WAL.SinceCheckpointSeconds < 0 || st.WAL.SinceCheckpointSeconds > 3600 {
		t.Fatalf("wal since_checkpoint_seconds implausible: %v", st.WAL.SinceCheckpointSeconds)
	}

	// Checkpoint must not stop writes: keep inserting while it runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var insertErr error
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, u := range users[350:] {
			select {
			case <-stop:
				return
			default:
			}
			pts := make([][2]float64, len(u.Points))
			for j, p := range u.Points {
				pts[j] = [2]float64{p.X, p.Y}
			}
			b := mustBody(t, InsertRequest{ID: uint32(u.ID), Points: pts})
			resp, err := e.client.Post(e.ts.URL+PathInsert, "application/json", bytes.NewReader(b))
			if err != nil {
				mu.Lock()
				insertErr = err
				mu.Unlock()
				return
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				mu.Lock()
				insertErr = fmt.Errorf("concurrent insert %d: %d %s", i, resp.StatusCode, out)
				mu.Unlock()
				return
			}
		}
	}()
	status, body, _ = e.post(PathCheckpoint, nil)
	close(stop)
	wg.Wait()
	if insertErr != nil {
		t.Fatalf("insert during checkpoint: %v", insertErr)
	}
	if status != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", status, body)
	}
	var ck CheckpointResponse
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatalf("checkpoint decode: %v", err)
	}
	if !ck.OK || ck.WALSegments < 1 || ck.WALBytes < 0 {
		t.Fatalf("checkpoint response: %+v", ck)
	}

	// GET on the checkpoint endpoint is a method error.
	resp, err := e.client.Get(e.ts.URL + PathCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET checkpoint: %d, want 405", resp.StatusCode)
	}

	// /v1/snapshot on a WAL-backed index streams a restorable TQLIVE01
	// image and checkpoints as a side effect: afterwards the log holds
	// only the fresh post-cut segment.
	status, raw := e.get(PathSnapshot)
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d", status)
	}
	restored, err := trajcover.ReadLiveSnapshot(bytes.NewReader(raw), trajcover.LivePolicy{Manual: true})
	if err != nil {
		t.Fatalf("restore streamed snapshot: %v", err)
	}
	if restored.Len() != e.srv.Index().Len() {
		t.Fatalf("restored len %d, served %d", restored.Len(), e.srv.Index().Len())
	}
	want, err := e.srv.Index().ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ServiceValues(facs, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(MarshalValuesResponse(got), MarshalValuesResponse(want)) {
		t.Fatal("restored snapshot answers differ from served index")
	}
	status, body = e.get(PathStats)
	if status != http.StatusOK {
		t.Fatalf("statsz after snapshot: %d", status)
	}
	st = Stats{}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	if st.WAL == nil || st.WAL.Segments != 1 {
		t.Fatalf("snapshot did not truncate the WAL: %+v", st.WAL)
	}
	if st.WAL.SinceCheckpointSeconds > 60 {
		t.Fatalf("since_checkpoint_seconds did not reset: %v", st.WAL.SinceCheckpointSeconds)
	}
}

// TestServerCheckpointWithoutWAL pins the 400 on /v1/checkpoint for an
// index serving without a WAL directory.
func TestServerCheckpointWithoutWAL(t *testing.T) {
	e := newEnv(t, testUsers(50, 111), Config{Workers: 1, QueueDepth: 4})
	status, body, _ := e.post(PathCheckpoint, nil)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "no WAL") {
		t.Fatalf("checkpoint without WAL: %d %s, want 400", status, body)
	}
}
