package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/faultfs"
	"github.com/trajcover/trajcover/internal/tenant"
)

// newFaultWALEnv is newWALEnv with an injectable filesystem under the
// WAL and a probe fast enough for tests, returning the index so tests
// can watch recovery directly.
func newFaultWALEnv(t *testing.T, base []*trajcover.Trajectory, cfg Config, inj *faultfs.Injector) (*env, *trajcover.LiveShardedIndex) {
	t.Helper()
	idx, err := trajcover.OpenLiveShardedIndex(trajcover.WALOptions{
		Dir:      t.TempDir(),
		Sync:     trajcover.WALSyncAlways,
		FS:       inj,
		ProbeMin: 2 * time.Millisecond,
		ProbeMax: 50 * time.Millisecond,
	}, trajcover.LivePolicy{Manual: true}, func() (*trajcover.LiveShardedIndex, error) {
		return trajcover.NewLiveShardedIndex(base, liveOpts())
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, cfg)
	ts := httptest.NewServer(srv.Handler())
	e := &env{t: t, srv: srv, ts: ts, client: ts.Client()}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		idx.Close()
	})
	return e, idx
}

func awaitRecovery(t *testing.T, idx *trajcover.LiveShardedIndex) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for idx.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("probe did not recover: %+v", idx.Health())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerDegradedWritesAndRecovery is the HTTP view of the degraded
// state machine: a wedged WAL turns writes into 503 + Retry-After while
// queries and /healthz (200, status "degraded", cause named) keep
// serving, /statsz exposes the health and process sections, and the
// backoff probe restores 200 writes with no restart.
func TestServerDegradedWritesAndRecovery(t *testing.T) {
	users := testUsers(200, 71)
	inj := faultfs.NewInjector(nil, 71)
	e, idx := newFaultWALEnv(t, users[:150], Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 10 * time.Second}, inj)
	facs := testFacilities(4, 4, 72)
	qbody := mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), Psi: 40, Workers: 1})

	status, body := e.get(PathHealth)
	if status != http.StatusOK {
		t.Fatalf("healthy /healthz: %d %s", status, body)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil || hr.Status != "ok" {
		t.Fatalf("healthy /healthz body %s (err %v)", body, err)
	}

	// Wedge the disk persistently (the probe's recovery attempts fail
	// too, keeping the degraded window open while we inspect it); the
	// write that hits it is rejected 503 and the header tells the
	// client when to come back.
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Times: 1 << 20})
	status, body, hdr := e.post(PathInsert, insertBody(t, users[150], ""))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("wedged insert: %d %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded insert 503 missing Retry-After")
	}

	// Fast-fail path for the next writes, same contract.
	status, _, hdr = e.post(PathDelete, mustBody(t, DeleteRequest{ID: uint32(users[0].ID)}))
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("degraded delete: %d, Retry-After %q", status, hdr.Get("Retry-After"))
	}

	// Degraded is not down: /healthz stays 200 so load balancers keep
	// routing reads, with the cause spelled out per tenant.
	status, body = e.get(PathHealth)
	if status != http.StatusOK {
		t.Fatalf("degraded /healthz status %d", status)
	}
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || hr.Degraded[tenant.DefaultID] == "" {
		t.Fatalf("degraded /healthz body %s", body)
	}

	// Queries serve the last published epochs.
	if status, _, _ = e.post(PathServiceValues, qbody); status != http.StatusOK {
		t.Fatalf("degraded query status %d", status)
	}

	// /statsz carries the health state machine and the process section.
	status, body = e.get(PathStats)
	if status != http.StatusOK {
		t.Fatalf("/statsz status %d", status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Index.Health == nil || !st.Index.Health.Degraded || st.Index.Health.Cause == "" || st.Index.Health.Entries != 1 {
		t.Fatalf("/statsz index health %+v", st.Index.Health)
	}
	if st.Process.Goroutines <= 0 || st.Process.HeapInuseBytes == 0 || st.Process.UptimeSeconds <= 0 {
		t.Fatalf("/statsz process section %+v", st.Process)
	}

	// Fix the disk; the probe recovers on its own and writes resume
	// over HTTP.
	inj.Heal()
	awaitRecovery(t, idx)
	status, body = e.get(PathHealth)
	if err := json.Unmarshal(body, &hr); err != nil || status != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("post-recovery /healthz %d %s", status, body)
	}
	// The wedged insert was applied-but-unacked (failed at fsync, after
	// the in-memory apply): the recovery checkpoint made it durable, so
	// the retry is a 409 conflict — exactly the duplicate-ID contract.
	status, _, _ = e.post(PathInsert, insertBody(t, users[150], ""))
	if status != http.StatusConflict {
		t.Fatalf("retried wedged insert: %d, want 409", status)
	}
	if status, _, _ = e.post(PathInsert, insertBody(t, users[151], "")); status != http.StatusOK {
		t.Fatalf("post-recovery insert: %d", status)
	}
}

// TestServerCheckpointDegraded503: a checkpoint that fails on disk
// degrades the index and answers 503 + Retry-After (not 500) — the
// probe owns the retry, and once it recovers /v1/checkpoint works.
func TestServerCheckpointDegraded503(t *testing.T) {
	users := testUsers(150, 73)
	inj := faultfs.NewInjector(nil, 73)
	e, idx := newFaultWALEnv(t, users, Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 10 * time.Second}, inj)

	inj.Add(faultfs.Rule{Op: faultfs.OpRename, Nth: 1})
	status, body, hdr := e.post(PathCheckpoint, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("failed checkpoint: %d %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded checkpoint 503 missing Retry-After")
	}
	awaitRecovery(t, idx)
	if status, body, _ = e.post(PathCheckpoint, nil); status != http.StatusOK {
		t.Fatalf("post-recovery checkpoint: %d %s", status, body)
	}
}

// TestRetryAfterMatrix audits every transient rejection the server can
// produce — pool overflow, tenant quota, drain, closed pool, degraded
// writes — and asserts each one carries a Retry-After hint, while
// permanent rejections (malformed input, conflicts) never do.
func TestRetryAfterMatrix(t *testing.T) {
	users := testUsers(120, 75)
	facs := testFacilities(4, 4, 76)
	qbody := func(t *testing.T) []byte {
		return mustBody(t, QueryRequest{Facilities: facilityJSONOf(facs), K: 2, Psi: 40})
	}

	cases := []struct {
		name       string
		wantStatus int
		wantRetry  bool
		run        func(t *testing.T) (int, http.Header)
	}{
		{"pool overflow topk", http.StatusTooManyRequests, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 10 * time.Second})
			release := blockWorkers(t, e.srv, 1)
			defer release()
			fillQueue(t, e.srv, 1)
			status, _, hdr := e.post(PathTopK, qbody(t))
			return status, hdr
		}},
		{"tenant write rate", http.StatusTooManyRequests, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:100], Config{Workers: 2, QueueDepth: 8, DefaultTimeout: 10 * time.Second})
			// Burst floor is one write; the second in the same instant is
			// over the bucket.
			e.srv.SetOverrides(&tenant.Overrides{Defaults: tenant.Limits{WritesPerSec: 0.001}})
			if status, _, _ := e.post(PathInsert, insertBody(t, users[100], "")); status != http.StatusOK {
				t.Fatalf("first write within burst: %d", status)
			}
			status, _, hdr := e.post(PathInsert, insertBody(t, users[101], ""))
			return status, hdr
		}},
		{"draining insert", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			e.srv.BeginDrain()
			status, _, hdr := e.post(PathInsert, insertBody(t, users[100], ""))
			return status, hdr
		}},
		{"draining snapshot", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			e.srv.BeginDrain()
			resp, err := e.client.Get(e.ts.URL + PathSnapshot)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode, resp.Header
		}},
		{"draining checkpoint", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			e.srv.BeginDrain()
			status, _, hdr := e.post(PathCheckpoint, nil)
			return status, hdr
		}},
		{"draining healthz", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			e.srv.BeginDrain()
			resp, err := e.client.Get(e.ts.URL + PathHealth)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode, resp.Header
		}},
		{"closed pool insert", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			e.srv.Close()
			status, _, hdr := e.post(PathInsert, insertBody(t, users[100], ""))
			return status, hdr
		}},
		{"degraded insert", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			inj := faultfs.NewInjector(nil, 77)
			e, _ := newFaultWALEnv(t, users[:50], Config{Workers: 2, QueueDepth: 8, DefaultTimeout: 10 * time.Second}, inj)
			inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1})
			status, _, hdr := e.post(PathInsert, insertBody(t, users[100], ""))
			return status, hdr
		}},
		{"degraded delete", http.StatusServiceUnavailable, true, func(t *testing.T) (int, http.Header) {
			inj := faultfs.NewInjector(nil, 78)
			e, _ := newFaultWALEnv(t, users[:50], Config{Workers: 2, QueueDepth: 8, DefaultTimeout: 10 * time.Second}, inj)
			inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1})
			if status, _, _ := e.post(PathInsert, insertBody(t, users[100], "")); status != http.StatusServiceUnavailable {
				t.Fatalf("wedging insert: %d", status)
			}
			status, _, hdr := e.post(PathDelete, mustBody(t, DeleteRequest{ID: uint32(users[0].ID)}))
			return status, hdr
		}},
		// Permanent rejections must NOT invite a retry.
		{"malformed body", http.StatusBadRequest, false, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			status, _, hdr := e.post(PathInsert, []byte("{"))
			return status, hdr
		}},
		{"duplicate insert conflict", http.StatusConflict, false, func(t *testing.T) (int, http.Header) {
			e := newEnv(t, users[:50], Config{})
			status, _, hdr := e.post(PathInsert, insertBody(t, users[0], ""))
			return status, hdr
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			status, hdr := tc.run(t)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d", status, tc.wantStatus)
			}
			if got := hdr.Get("Retry-After") != ""; got != tc.wantRetry {
				t.Fatalf("Retry-After present=%v, want %v (header %q)", got, tc.wantRetry, hdr.Get("Retry-After"))
			}
		})
	}
}

// TestServerMultiTenantDegradedIsolation is the HTTP view of per-tenant
// failure domains: one tenant's dying disk turns only that tenant's
// writes into 503 while the co-tenant stays at 200, /healthz names the
// faulted tenant alone, and its recovery clears the entry.
func TestServerMultiTenantDegradedIsolation(t *testing.T) {
	users := testUsers(200, 81)
	inj := faultfs.NewInjector(nil, 81)
	root := t.TempDir()
	reg, err := trajcover.OpenTenantRegistry(trajcover.TenantRegistryOptions{
		Root: root,
		WAL: trajcover.WALOptions{
			Sync: trajcover.WALSyncAlways, SegmentBytes: 1 << 15,
			FS: inj, ProbeMin: 2 * time.Millisecond, ProbeMax: 50 * time.Millisecond,
		},
		Policy:      trajcover.LivePolicy{Manual: true},
		Shards:      2,
		Partitioner: trajcover.HashPartitioner(),
		Index:       trajcover.IndexOptions{Ordering: trajcover.ZOrdering, Beta: 8, Bounds: testBounds},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewMulti(reg, Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	e := &menv{t: t, srv: srv, reg: reg, ts: ts, client: ts.Client()}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		reg.Close()
	})

	for i := 0; i < 20; i++ {
		e.mustPost(PathInsert, "alpha", insertBody(t, users[i], ""), http.StatusOK)
		e.mustPost(PathInsert, "beta", insertBody(t, users[i], ""), http.StatusOK)
	}

	// Only alpha's subtree faults.
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Path: "/alpha/", Nth: 1, Times: 2})
	status, _, hdr, err := e.post(PathInsert, "alpha", insertBody(t, users[20], ""))
	if err != nil || status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("alpha wedged insert: %d, Retry-After %q, err %v", status, hdr.Get("Retry-After"), err)
	}
	// Beta is a separate failure domain.
	e.mustPost(PathInsert, "beta", insertBody(t, users[20], ""), http.StatusOK)

	resp, err := e.client.Get(e.ts.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "degraded" {
		t.Fatalf("/healthz during alpha wedge: %d %+v", resp.StatusCode, hr)
	}
	if hr.Degraded["alpha"] == "" || len(hr.Degraded) != 1 {
		t.Fatalf("/healthz degraded map %v, want exactly alpha", hr.Degraded)
	}

	// Alpha's probe recovers alpha; the map clears.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if deg := reg.Degraded(); len(deg) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alpha did not recover: %v", reg.Degraded())
		}
		time.Sleep(time.Millisecond)
	}
	e.mustPost(PathInsert, "alpha", insertBody(t, users[21], ""), http.StatusOK)
}
