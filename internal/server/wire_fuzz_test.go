package server

// Fuzzing the request decoders: whatever bytes arrive on /v1/*, the
// decoder must either return a 4xx-mapped error or a fully validated
// request — never panic, never let non-finite geometry, non-positive k,
// or oversized shapes through (mirrors snapshot_fuzz_test.go's contract
// for the snapshot readers).

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/trajcover/trajcover/internal/tenant"
)

func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"facilities":[{"id":1,"stops":[[500,500],[800,300]]}],"k":8,"scenario":"binary","psi":300}`,
		`{"facilities":[{"id":1,"stops":[[0,0]]}],"scenario":"pointcount","psi":0,"workers":4,"timeout_ms":250}`,
		`{"facilities":[],"k":1,"psi":1}`,
		`{"facilities":[{"id":4294967295,"stops":[[1e308,-1e308]]}],"k":1,"psi":1e308}`,
		`{"id":9001,"points":[[1,2],[3,4],[5,6]]}`,
		`{"id":9001,"points":[[1,2]]}`,
		`{"id":7}`,
		`{"facilities":[{"id":1,"stops":[[NaN,2]]}],"k":1,"psi":10}`,
		`{"facilities":[{"id":1,"stops":[[1e999,2]]}],"k":1,"psi":10}`,
		`{"k":-1,"psi":-5}`,
		`{"facilities":[{"id":1,"stops":[[1,2]]}],"k":1,"psi":10,"timeout_ms":-9}`,
		`[]`, `null`, `{}`, `{"facilities":`, "\x00\x01\x02", strings.Repeat(`{"a":`, 1000),
		// Tenant corpus: legal names, the empty field, path traversal,
		// oversized, separators, and non-ASCII — everything the tenant
		// layer must 4xx without ever touching the filesystem.
		`{"facilities":[{"id":1,"stops":[[1,2]]}],"k":1,"psi":10,"tenant":"acme"}`,
		`{"id":9001,"points":[[1,2],[3,4]],"tenant":"a-b.c_9"}`,
		`{"id":9001,"points":[[1,2],[3,4]],"tenant":""}`,
		`{"id":9001,"tenant":"../../etc"}`,
		`{"id":9001,"tenant":".."}`,
		`{"id":9001,"tenant":"a/b"}`,
		`{"id":9001,"tenant":"` + strings.Repeat("x", 65) + `"}`,
		`{"id":9001,"tenant":".hidden"}`,
		`{"id":9001,"tenant":"-dash"}`,
		`{"id":9001,"tenant":"éclair"}`,
		`{"tenant":"t1","id":3}`,
	}
	for _, s := range seeds {
		for kind := byte(0); kind < 3; kind++ {
			f.Add(kind, []byte(s))
		}
	}
	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		switch kind % 3 {
		case 0:
			req, facs, q, err := DecodeQueryRequest(data, true)
			if err != nil {
				requireBadRequest(t, err)
				return
			}
			if req.K <= 0 || req.K > MaxK {
				t.Fatalf("accepted k=%d", req.K)
			}
			if req.Workers < 1 || req.Workers > MaxRequestWorkers {
				t.Fatalf("accepted workers=%d (must normalize to [1, %d] so the pool bounds CPU)", req.Workers, MaxRequestWorkers)
			}
			requireSafeTenant(t, req.Tenant)
			if req.TimeoutMS < 0 {
				t.Fatalf("accepted timeout_ms=%d", req.TimeoutMS)
			}
			if math.IsNaN(q.Psi) || math.IsInf(q.Psi, 0) || q.Psi < 0 {
				t.Fatalf("accepted psi=%v", q.Psi)
			}
			if len(facs) > MaxFacilities {
				t.Fatalf("accepted %d facilities", len(facs))
			}
			for _, fac := range facs {
				if len(fac.Stops) == 0 || len(fac.Stops) > MaxStops {
					t.Fatalf("accepted facility with %d stops", len(fac.Stops))
				}
				for _, st := range fac.Stops {
					if !finite(st.X) || !finite(st.Y) {
						t.Fatalf("accepted non-finite stop %+v", st)
					}
				}
			}
		case 1:
			req, u, err := DecodeInsertRequest(data)
			if err != nil {
				requireBadRequest(t, err)
				return
			}
			if req.TimeoutMS < 0 {
				t.Fatalf("accepted timeout_ms=%d", req.TimeoutMS)
			}
			if u.Len() < 2 || u.Len() > MaxPoints {
				t.Fatalf("accepted trajectory with %d points", u.Len())
			}
			requireSafeTenant(t, req.Tenant)
			for _, p := range u.Points {
				if !finite(p.X) || !finite(p.Y) {
					t.Fatalf("accepted non-finite point %+v", p)
				}
			}
		case 2:
			req, err := DecodeDeleteRequest(data)
			if err != nil {
				requireBadRequest(t, err)
				return
			}
			if req.TimeoutMS < 0 {
				t.Fatalf("accepted timeout_ms=%d", req.TimeoutMS)
			}
			requireSafeTenant(t, req.Tenant)
		}
	})
}

// requireSafeTenant pins the decode → resolve pipeline for a decoded
// body tenant: resolveTenant must either reject it as a 4xx or hand
// back a validated safe ID — the only two outcomes that can't create
// filesystem state for a hostile tenant name.
func requireSafeTenant(t *testing.T, bodyTenant string) {
	t.Helper()
	r := &http.Request{Header: http.Header{}}
	id, err := resolveTenant(r, bodyTenant)
	if err != nil {
		requireBadRequest(t, err)
		return
	}
	if err := tenant.ValidateID(id); err != nil {
		t.Fatalf("resolveTenant accepted %q as %q which fails validation: %v", bodyTenant, id, err)
	}
}

// FuzzResolveTenant throws arbitrary header/body tenant pairs at
// resolveTenant: whatever the bytes, the result is either a 4xx-mapped
// error or an ID that validates as a single safe path component —
// never a panic, never traversal, never an over-long name, and a
// header/body disagreement is always an error.
func FuzzResolveTenant(f *testing.F) {
	for _, pair := range [][2]string{
		{"", ""}, {"acme", ""}, {"", "acme"}, {"acme", "acme"},
		{"acme", "other"}, {"../evil", ""}, {"", "../evil"},
		{"..", ".."}, {"a/b", ""}, {strings.Repeat("x", 65), ""},
		{".hidden", ""}, {"-x", ""}, {"a b", ""}, {"é", "é"},
		{"x\x00y", ""}, {"default", ""},
	} {
		f.Add(pair[0], pair[1])
	}
	f.Fuzz(func(t *testing.T, header, body string) {
		r := &http.Request{Header: http.Header{}}
		if header != "" {
			r.Header.Set("X-Tenant", header)
		}
		id, err := resolveTenant(r, body)
		if err != nil {
			requireBadRequest(t, err)
			return
		}
		if err := tenant.ValidateID(id); err != nil {
			t.Fatalf("resolveTenant(%q, %q) = %q, fails validation: %v", header, body, id, err)
		}
		if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") || len(id) > tenant.MaxIDLen {
			t.Fatalf("resolveTenant(%q, %q) = %q is not a safe path component", header, body, id)
		}
		if header != "" && body != "" && header != body {
			t.Fatalf("resolveTenant(%q, %q) accepted a header/body mismatch", header, body)
		}
	})
}

// requireBadRequest pins every decoder failure to the 4xx-mapped type —
// a decoder error must never surface as a 5xx.
func requireBadRequest(t *testing.T, err error) {
	t.Helper()
	if _, ok := err.(*badRequest); !ok {
		t.Fatalf("decoder error %v (%T) is not a badRequest", err, err)
	}
}
