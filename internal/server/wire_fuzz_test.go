package server

// Fuzzing the request decoders: whatever bytes arrive on /v1/*, the
// decoder must either return a 4xx-mapped error or a fully validated
// request — never panic, never let non-finite geometry, non-positive k,
// or oversized shapes through (mirrors snapshot_fuzz_test.go's contract
// for the snapshot readers).

import (
	"math"
	"strings"
	"testing"
)

func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"facilities":[{"id":1,"stops":[[500,500],[800,300]]}],"k":8,"scenario":"binary","psi":300}`,
		`{"facilities":[{"id":1,"stops":[[0,0]]}],"scenario":"pointcount","psi":0,"workers":4,"timeout_ms":250}`,
		`{"facilities":[],"k":1,"psi":1}`,
		`{"facilities":[{"id":4294967295,"stops":[[1e308,-1e308]]}],"k":1,"psi":1e308}`,
		`{"id":9001,"points":[[1,2],[3,4],[5,6]]}`,
		`{"id":9001,"points":[[1,2]]}`,
		`{"id":7}`,
		`{"facilities":[{"id":1,"stops":[[NaN,2]]}],"k":1,"psi":10}`,
		`{"facilities":[{"id":1,"stops":[[1e999,2]]}],"k":1,"psi":10}`,
		`{"k":-1,"psi":-5}`,
		`{"facilities":[{"id":1,"stops":[[1,2]]}],"k":1,"psi":10,"timeout_ms":-9}`,
		`[]`, `null`, `{}`, `{"facilities":`, "\x00\x01\x02", strings.Repeat(`{"a":`, 1000),
	}
	for _, s := range seeds {
		for kind := byte(0); kind < 3; kind++ {
			f.Add(kind, []byte(s))
		}
	}
	f.Fuzz(func(t *testing.T, kind byte, data []byte) {
		switch kind % 3 {
		case 0:
			req, facs, q, err := DecodeQueryRequest(data, true)
			if err != nil {
				requireBadRequest(t, err)
				return
			}
			if req.K <= 0 || req.K > MaxK {
				t.Fatalf("accepted k=%d", req.K)
			}
			if req.Workers < 1 || req.Workers > MaxRequestWorkers {
				t.Fatalf("accepted workers=%d (must normalize to [1, %d] so the pool bounds CPU)", req.Workers, MaxRequestWorkers)
			}
			if req.TimeoutMS < 0 {
				t.Fatalf("accepted timeout_ms=%d", req.TimeoutMS)
			}
			if math.IsNaN(q.Psi) || math.IsInf(q.Psi, 0) || q.Psi < 0 {
				t.Fatalf("accepted psi=%v", q.Psi)
			}
			if len(facs) > MaxFacilities {
				t.Fatalf("accepted %d facilities", len(facs))
			}
			for _, fac := range facs {
				if len(fac.Stops) == 0 || len(fac.Stops) > MaxStops {
					t.Fatalf("accepted facility with %d stops", len(fac.Stops))
				}
				for _, st := range fac.Stops {
					if !finite(st.X) || !finite(st.Y) {
						t.Fatalf("accepted non-finite stop %+v", st)
					}
				}
			}
		case 1:
			req, u, err := DecodeInsertRequest(data)
			if err != nil {
				requireBadRequest(t, err)
				return
			}
			if req.TimeoutMS < 0 {
				t.Fatalf("accepted timeout_ms=%d", req.TimeoutMS)
			}
			if u.Len() < 2 || u.Len() > MaxPoints {
				t.Fatalf("accepted trajectory with %d points", u.Len())
			}
			for _, p := range u.Points {
				if !finite(p.X) || !finite(p.Y) {
					t.Fatalf("accepted non-finite point %+v", p)
				}
			}
		case 2:
			req, err := DecodeDeleteRequest(data)
			if err != nil {
				requireBadRequest(t, err)
				return
			}
			if req.TimeoutMS < 0 {
				t.Fatalf("accepted timeout_ms=%d", req.TimeoutMS)
			}
		}
	})
}

// requireBadRequest pins every decoder failure to the 4xx-mapped type —
// a decoder error must never surface as a 5xx.
func requireBadRequest(t *testing.T, err error) {
	t.Helper()
	if _, ok := err.(*badRequest); !ok {
		t.Fatalf("decoder error %v (%T) is not a badRequest", err, err)
	}
}
