package server

// The JSON wire format of the tqserve front end, and its hardened
// decoder. Every byte that arrives on /v1/* passes through DecodeRequest
// before it can reach the index: the decoder rejects malformed JSON,
// non-finite coordinates, non-positive k, out-of-range sizes, and
// anything else that could panic or wedge a worker — with a 4xx-mapped
// error, never a panic (FuzzDecodeRequest holds it to that).
//
// Numbers cross the wire as JSON float64. Go's encoder emits the
// shortest representation that round-trips, so a facility posted from
// decoded responses reproduces the original coordinates bit-exactly and
// answers stay byte-identical to direct library calls — the property the
// end-to-end tests pin.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	trajcover "github.com/trajcover/trajcover"
	"github.com/trajcover/trajcover/internal/replog"
)

// Decoder limits. Bodies are already capped by Config.MaxBodyBytes at
// the transport; these bound the decoded shapes so a small body cannot
// expand into a huge allocation or a quadratic validation pass.
const (
	// MaxFacilities bounds the facilities of one query request.
	MaxFacilities = 1 << 16
	// MaxStops bounds the stops of one facility.
	MaxStops = 1 << 14
	// MaxPoints bounds the points of one inserted trajectory.
	MaxPoints = 1 << 16
	// MaxK bounds a top-k request's k.
	MaxK = 1 << 20
	// MaxRequestWorkers caps the per-request worker hint; the effective
	// pool is further normalized by query.ResolveWorkers.
	MaxRequestWorkers = 256
)

// badRequest is a decoder/validation failure, mapped to 400.
type badRequest struct{ msg string }

func (e *badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequest{msg: fmt.Sprintf(format, args...)}
}

// FacilityJSON is one candidate facility on the wire.
type FacilityJSON struct {
	ID    uint32       `json:"id"`
	Stops [][2]float64 `json:"stops"`
}

// QueryRequest is the body of /v1/topk and /v1/servicevalues.
type QueryRequest struct {
	Facilities []FacilityJSON `json:"facilities"`
	// K is the number of results (topk only; ignored by servicevalues).
	K int `json:"k,omitempty"`
	// Scenario selects the service semantics: "binary" (default),
	// "pointcount", or "length".
	Scenario string `json:"scenario,omitempty"`
	// Psi is the serving distance threshold ψ (data units, >= 0).
	Psi float64 `json:"psi"`
	// Workers hints the per-request parallelism. 0 (the default) means
	// serial — one worker-pool slot does one request's work, and
	// concurrency comes from the pool itself, so Config.Workers stays
	// the bound on query CPU. Values above 1 let a single request fan
	// out (at most MaxRequestWorkers), trading pool fairness for that
	// request's latency.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at Config.MaxTimeout (and the tenant's max_timeout_ms).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tenant names the tenant this query runs against; it must agree
	// with the X-Tenant header when both are set. Empty means the
	// header's tenant, or "default".
	Tenant string `json:"tenant,omitempty"`
}

// InsertRequest is the body of /v1/insert.
type InsertRequest struct {
	ID        uint32       `json:"id"`
	Points    [][2]float64 `json:"points"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
	// Tenant names the tenant receiving the write (lazily created on
	// first write); see QueryRequest.Tenant.
	Tenant string `json:"tenant,omitempty"`
}

// DeleteRequest is the body of /v1/delete.
type DeleteRequest struct {
	ID        uint32 `json:"id"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Tenant names the tenant receiving the write; see
	// QueryRequest.Tenant.
	Tenant string `json:"tenant,omitempty"`
}

// RankedJSON is one facility of a top-k answer on the wire.
type RankedJSON struct {
	ID      uint32  `json:"id"`
	Service float64 `json:"service"`
}

// TopKResponse is the body of a /v1/topk answer.
type TopKResponse struct {
	Results []RankedJSON `json:"results"`
}

// ValuesResponse is the body of a /v1/servicevalues answer, indexed like
// the request's facilities.
type ValuesResponse struct {
	Values []float64 `json:"values"`
}

// BoundsResponse is the body of a /v1/upperbounds answer: per-facility
// initial upper bounds, indexed like the request's facilities. Each is
// a sound overestimate of the facility's exact service value, so a
// scatter-gather frontend may prune on sums of them without losing
// exactness.
type BoundsResponse struct {
	Bounds []float64 `json:"bounds"`
}

// ChangesResponse is the body of a /v1/changes answer: the primary's
// replication boot identity, its newest sequence number, and the
// ordered entries past the request's `after` cursor.
type ChangesResponse struct {
	BootID  string         `json:"boot_id"`
	Seq     uint64         `json:"seq"`
	Entries []replog.Entry `json:"entries"`
}

// InsertResponse reports the post-insert logical corpus size.
type InsertResponse struct {
	Len int `json:"len"`
}

// DeleteResponse reports whether the trajectory was present.
type DeleteResponse struct {
	Found bool `json:"found"`
}

// CompactResponse acknowledges a completed fold.
type CompactResponse struct {
	OK bool `json:"ok"`
}

// CheckpointResponse acknowledges a completed WAL checkpoint, reporting
// the post-truncation segment footprint.
type CheckpointResponse struct {
	OK          bool  `json:"ok"`
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseScenario maps the wire name to a Scenario; "" means Binary.
func parseScenario(s string) (trajcover.Scenario, error) {
	switch s {
	case "", "binary":
		return trajcover.Binary, nil
	case "pointcount":
		return trajcover.PointCount, nil
	case "length":
		return trajcover.Length, nil
	}
	return 0, badRequestf("unknown scenario %q (want binary, pointcount, or length)", s)
}

// finite rejects the NaN/Inf coordinates a lenient client (or an
// attacker) could smuggle in; geometry over non-finite values corrupts
// every bound the search prunes by.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// unmarshalStrict decodes with unknown fields and trailing data
// rejected: a typoed field ("timeoutms", "worker") must be a loud 400,
// not a silently applied server default.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("bad request body: %v", err)
	}
	if dec.More() {
		return badRequestf("bad request body: trailing data after JSON value")
	}
	return nil
}

func decodeFacilities(fjs []FacilityJSON) ([]*trajcover.Facility, error) {
	if len(fjs) > MaxFacilities {
		return nil, badRequestf("too many facilities: %d > %d", len(fjs), MaxFacilities)
	}
	out := make([]*trajcover.Facility, len(fjs))
	for i, fj := range fjs {
		if len(fj.Stops) == 0 {
			return nil, badRequestf("facility %d has no stops", fj.ID)
		}
		if len(fj.Stops) > MaxStops {
			return nil, badRequestf("facility %d has too many stops: %d > %d", fj.ID, len(fj.Stops), MaxStops)
		}
		stops := make([]trajcover.Point, len(fj.Stops))
		for j, st := range fj.Stops {
			if !finite(st[0]) || !finite(st[1]) {
				return nil, badRequestf("facility %d stop %d is not finite", fj.ID, j)
			}
			stops[j] = trajcover.Pt(st[0], st[1])
		}
		f, err := trajcover.NewFacility(trajcover.ID(fj.ID), stops)
		if err != nil {
			return nil, badRequestf("facility %d: %v", fj.ID, err)
		}
		out[i] = f
	}
	return out, nil
}

// DecodeQueryRequest parses and validates a /v1/topk (needK) or
// /v1/servicevalues body. Any error is a 4xx: the decoder never panics
// and never lets a non-finite, oversized, or non-positive-k request
// through to the index.
func DecodeQueryRequest(data []byte, needK bool) (*QueryRequest, []*trajcover.Facility, trajcover.Query, error) {
	var req QueryRequest
	if err := unmarshalStrict(data, &req); err != nil {
		return nil, nil, trajcover.Query{}, err
	}
	if needK && req.K <= 0 {
		return nil, nil, trajcover.Query{}, badRequestf("k must be >= 1, got %d", req.K)
	}
	if req.K > MaxK {
		return nil, nil, trajcover.Query{}, badRequestf("k too large: %d > %d", req.K, MaxK)
	}
	sc, err := parseScenario(req.Scenario)
	if err != nil {
		return nil, nil, trajcover.Query{}, err
	}
	if !finite(req.Psi) || req.Psi < 0 {
		return nil, nil, trajcover.Query{}, badRequestf("psi must be finite and >= 0, got %v", req.Psi)
	}
	// 0 or negative normalizes to 1, NOT to the library's GOMAXPROCS
	// default: a request must not widen past what it asked for, or the
	// bounded pool stops bounding CPU (admission control assumes one
	// slot ≈ one goroutine's worth of query work).
	if req.Workers < 1 {
		req.Workers = 1
	}
	if req.Workers > MaxRequestWorkers {
		req.Workers = MaxRequestWorkers
	}
	if req.TimeoutMS < 0 {
		return nil, nil, trajcover.Query{}, badRequestf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	facs, err := decodeFacilities(req.Facilities)
	if err != nil {
		return nil, nil, trajcover.Query{}, err
	}
	return &req, facs, trajcover.Query{Scenario: sc, Psi: req.Psi}, nil
}

// DecodeInsertRequest parses and validates a /v1/insert body.
func DecodeInsertRequest(data []byte) (*InsertRequest, *trajcover.Trajectory, error) {
	var req InsertRequest
	if err := unmarshalStrict(data, &req); err != nil {
		return nil, nil, err
	}
	if req.TimeoutMS < 0 {
		return nil, nil, badRequestf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	if len(req.Points) > MaxPoints {
		return nil, nil, badRequestf("too many points: %d > %d", len(req.Points), MaxPoints)
	}
	pts := make([]trajcover.Point, len(req.Points))
	for i, p := range req.Points {
		if !finite(p[0]) || !finite(p[1]) {
			return nil, nil, badRequestf("point %d is not finite", i)
		}
		pts[i] = trajcover.Pt(p[0], p[1])
	}
	u, err := trajcover.NewTrajectory(trajcover.ID(req.ID), pts)
	if err != nil {
		return nil, nil, badRequestf("trajectory %d: %v", req.ID, err)
	}
	return &req, u, nil
}

// DecodeDeleteRequest parses and validates a /v1/delete body.
func DecodeDeleteRequest(data []byte) (*DeleteRequest, error) {
	var req DeleteRequest
	if err := unmarshalStrict(data, &req); err != nil {
		return nil, err
	}
	if req.TimeoutMS < 0 {
		return nil, badRequestf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	return &req, nil
}

// CanonicalQueryHash digests exactly the answer-affecting fields of a
// query request — the endpoint, scenario, ψ, k (0 for endpoints that
// ignore it), and the facilities' IDs and stop coordinates, all
// bit-exact — and nothing operational: workers and timeout_ms change
// how fast an answer arrives, never what it is, so requests differing
// only there share one cache line. The tenant and the index version
// join the digest in the cache key, not here.
func CanonicalQueryHash(endpoint string, req *QueryRequest, k int, q trajcover.Query) [32]byte {
	h := sha256.New()
	var buf [8]byte
	wr := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	io.WriteString(h, endpoint)
	wr(uint64(q.Scenario))
	wr(math.Float64bits(q.Psi))
	wr(uint64(k))
	wr(uint64(len(req.Facilities)))
	for _, f := range req.Facilities {
		wr(uint64(f.ID))
		wr(uint64(len(f.Stops)))
		for _, st := range f.Stops {
			wr(math.Float64bits(st[0]))
			wr(math.Float64bits(st[1]))
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// MarshalTopKResponse encodes a top-k answer exactly as the handler
// does — exported so tests (and clients embedded in the bench harness)
// can assert byte identity against direct library calls.
func MarshalTopKResponse(results []trajcover.Ranked) []byte {
	out := TopKResponse{Results: make([]RankedJSON, len(results))}
	for i, r := range results {
		out.Results[i] = RankedJSON{ID: uint32(r.Facility.ID), Service: r.Service}
	}
	return mustMarshal(out)
}

// MarshalValuesResponse encodes a servicevalues answer exactly as the
// handler does.
func MarshalValuesResponse(values []float64) []byte {
	return mustMarshal(ValuesResponse{Values: values})
}

// MarshalBoundsResponse encodes an upperbounds answer exactly as the
// handler does.
func MarshalBoundsResponse(bounds []float64) []byte {
	return mustMarshal(BoundsResponse{Bounds: bounds})
}

// StreamChunk is one NDJSON line of a streamed servicevalues
// response: Values[i] is the service value of facility Start+i.
// Chunks arrive in facility order.
type StreamChunk struct {
	Start  int       `json:"start"`
	Values []float64 `json:"values"`
}

// StreamTrailer is the final NDJSON line of a complete stream: Count
// is the total number of facilities answered. Clients must treat a
// stream that ends without a trailer (or with an {"error": ...} line)
// as truncated.
type StreamTrailer struct {
	Done  bool `json:"done"`
	Count int  `json:"count"`
}

// MarshalStreamChunk encodes one stream line, newline-terminated,
// exactly as the streaming handler does.
func MarshalStreamChunk(start int, values []float64) []byte {
	return append(mustMarshal(StreamChunk{Start: start, Values: values}), '\n')
}

// mustMarshal encodes values whose shapes cannot fail (no NaN floats
// reach a response: inputs were validated finite and service sums of
// finite inputs stay finite).
func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: marshal response: %v", err))
	}
	return b
}
