// Package geo provides the planar geometry substrate used throughout the
// library: points, axis-aligned rectangles, distance computations, and the
// quadrant arithmetic the quadtree-based indexes are built on.
//
// All coordinates are planar (e.g. meters after an equirectangular
// projection); callers working with latitude/longitude should project first
// (see ProjectLatLon).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred primitive for threshold comparisons.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{X: p.X + dx, Y: p.Y + dy} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f,%.4f)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle [MinX,MaxX] × [MinY,MaxY].
// The zero Rect is the degenerate rectangle at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// RectOf returns the minimum bounding rectangle of pts. It panics if pts is
// empty, because an empty MBR has no meaningful value.
func RectOf(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: RectOf of empty point set")
	}
	r := Rect{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share any point (boundary inclusive).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// Expand returns r grown by d on every side. This is the EMBR ("extended
// MBR") operation from the paper: the serving area of a facility is its
// stop-point MBR expanded by the distance threshold ψ.
func (r Rect) Expand(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// ExtendPoint returns the smallest rectangle covering both r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// ExtendRect returns the smallest rectangle covering both r and s.
func (r Rect) ExtendRect(s Rect) Rect {
	if s.MinX < r.MinX {
		r.MinX = s.MinX
	}
	if s.MaxX > r.MaxX {
		r.MaxX = s.MaxX
	}
	if s.MinY < r.MinY {
		r.MinY = s.MinY
	}
	if s.MaxY > r.MaxY {
		r.MaxY = s.MaxY
	}
	return r
}

// Quadrant indexes follow the Z-curve visit order so that z-id digits and
// quadrant numbers agree everywhere in the library:
//
//	2 | 3        (NW=2, NE=3)
//	--+--
//	0 | 1        (SW=0, SE=1)
const (
	QuadSW = 0
	QuadSE = 1
	QuadNW = 2
	QuadNE = 3
)

// Quadrant returns the q-th quadrant of r (q in 0..3, see QuadSW..QuadNE).
func (r Rect) Quadrant(q int) Rect {
	cx := (r.MinX + r.MaxX) / 2
	cy := (r.MinY + r.MaxY) / 2
	switch q {
	case QuadSW:
		return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: cx, MaxY: cy}
	case QuadSE:
		return Rect{MinX: cx, MinY: r.MinY, MaxX: r.MaxX, MaxY: cy}
	case QuadNW:
		return Rect{MinX: r.MinX, MinY: cy, MaxX: cx, MaxY: r.MaxY}
	case QuadNE:
		return Rect{MinX: cx, MinY: cy, MaxX: r.MaxX, MaxY: r.MaxY}
	}
	panic(fmt.Sprintf("geo: quadrant index %d out of range", q))
}

// QuadrantOf returns which quadrant of r the point p falls in. Points on
// the center lines are assigned to the higher quadrant, matching the
// half-open partitioning the quadtree indexes use so every point belongs to
// exactly one quadrant.
func (r Rect) QuadrantOf(p Point) int {
	cx := (r.MinX + r.MaxX) / 2
	cy := (r.MinY + r.MaxY) / 2
	q := 0
	if p.X >= cx {
		q |= 1
	}
	if p.Y >= cy {
		q |= 2
	}
	return q
}

// DistToPoint returns the minimum distance from p to the rectangle r
// (zero when p is inside r).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2ToPoint returns the squared minimum distance from p to r.
func (r Rect) Dist2ToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4f,%.4f]x[%.4f,%.4f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// SegmentLength returns the Euclidean length of the segment ab.
func SegmentLength(a, b Point) float64 { return a.Dist(b) }

// DistPointSegment returns the minimum distance from p to the segment ab.
func DistPointSegment(p, a, b Point) float64 {
	abx := b.X - a.X
	aby := b.Y - a.Y
	den := abx*abx + aby*aby
	if den == 0 {
		return p.Dist(a)
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(Point{X: a.X + t*abx, Y: a.Y + t*aby})
}

// EarthRadiusMeters is the mean Earth radius used by ProjectLatLon.
const EarthRadiusMeters = 6371000.0

// ProjectLatLon converts a latitude/longitude pair (degrees) to planar
// meters using an equirectangular projection centered at (lat0, lon0).
// The approximation is accurate to well under 1% over city-scale extents,
// which is all the trajectory workloads in this library require.
func ProjectLatLon(lat, lon, lat0, lon0 float64) Point {
	rad := math.Pi / 180
	x := EarthRadiusMeters * (lon - lon0) * rad * math.Cos(lat0*rad)
	y := EarthRadiusMeters * (lat - lat0) * rad
	return Point{X: x, Y: y}
}
