package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Clamp inputs to a sane range to avoid overflow-driven noise.
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		c := Pt(math.Mod(cx, 1e6), math.Mod(cy, 1e6))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	want := Rect{MinX: 2, MinY: 1, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectOf(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	want := Rect{MinX: -2, MinY: -1, MaxX: 4, MaxY: 5}
	if got := RectOf(pts); got != want {
		t.Errorf("RectOf = %v, want %v", got, want)
	}
}

func TestRectOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RectOf(nil) did not panic")
		}
	}()
	RectOf(nil)
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},   // boundary
		{Pt(10, 10), true}, // boundary
		{Pt(10.01, 5), false},
		{Pt(-0.01, 5), false},
		{Pt(5, 11), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	tests := []struct {
		name string
		s    Rect
		want bool
	}{
		{"overlapping", Rect{5, 5, 15, 15}, true},
		{"contained", Rect{2, 2, 4, 4}, true},
		{"containing", Rect{-5, -5, 15, 15}, true},
		{"touching edge", Rect{10, 0, 20, 10}, true},
		{"touching corner", Rect{10, 10, 20, 20}, true},
		{"disjoint right", Rect{11, 0, 20, 10}, false},
		{"disjoint above", Rect{0, 11, 10, 20}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Intersects(tt.s); got != tt.want {
				t.Errorf("Intersects(%v) = %v, want %v", tt.s, got, tt.want)
			}
			// Intersection must be symmetric.
			if got := tt.s.Intersects(r); got != tt.want {
				t.Errorf("Intersects not symmetric for %v", tt.s)
			}
		})
	}
}

func TestRectIntersect(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got, ok := r.Intersect(Rect{5, 5, 15, 15})
	if !ok || got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect = %v,%v want {5 5 10 10},true", got, ok)
	}
	if _, ok := r.Intersect(Rect{20, 20, 30, 30}); ok {
		t.Error("Intersect of disjoint rects reported ok")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := r.Expand(2.5)
	want := Rect{MinX: -2.5, MinY: -2.5, MaxX: 12.5, MaxY: 12.5}
	if got != want {
		t.Errorf("Expand = %v, want %v", got, want)
	}
}

func TestQuadrantsPartitionRect(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	// The four quadrants must tile r exactly.
	union := r.Quadrant(0)
	var area float64
	for q := 0; q < 4; q++ {
		sub := r.Quadrant(q)
		area += sub.Width() * sub.Height()
		union = union.ExtendRect(sub)
	}
	if union != r {
		t.Errorf("quadrants union = %v, want %v", union, r)
	}
	if math.Abs(area-r.Width()*r.Height()) > 1e-9 {
		t.Errorf("quadrant areas sum to %v, want %v", area, r.Width()*r.Height())
	}
}

func TestQuadrantOfMatchesQuadrantRects(t *testing.T) {
	r := Rect{MinX: -4, MinY: -4, MaxX: 4, MaxY: 4}
	f := func(px, py float64) bool {
		p := Pt(math.Mod(math.Abs(px), 8)-4, math.Mod(math.Abs(py), 8)-4)
		q := r.QuadrantOf(p)
		return r.Quadrant(q).Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadrantOfCenterTieBreak(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if q := r.QuadrantOf(Pt(5, 5)); q != QuadNE {
		t.Errorf("center assigned to quadrant %d, want NE (%d)", q, QuadNE)
	}
	if q := r.QuadrantOf(Pt(5, 0)); q != QuadSE {
		t.Errorf("center-x bottom assigned to %d, want SE (%d)", q, QuadSE)
	}
}

func TestDistToPoint(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 5), 0},   // inside
		{Pt(0, 0), 0},   // corner
		{Pt(15, 5), 5},  // right of
		{Pt(5, -3), 3},  // below
		{Pt(13, 14), 5}, // diagonal 3-4-5
		{Pt(-3, -4), 5}, // diagonal other corner
	}
	for _, tt := range tests {
		if got := r.DistToPoint(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestDist2ToPointMatchesDistToPoint(t *testing.T) {
	r := Rect{MinX: -3, MinY: 2, MaxX: 9, MaxY: 17}
	f := func(px, py float64) bool {
		p := Pt(math.Mod(px, 100), math.Mod(py, 100))
		d := r.DistToPoint(p)
		return math.Abs(r.Dist2ToPoint(p)-d*d) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistPointSegment(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Point
		want    float64
	}{
		{"projects inside", Pt(5, 5), Pt(0, 0), Pt(10, 0), 5},
		{"clamps to a", Pt(-3, 4), Pt(0, 0), Pt(10, 0), 5},
		{"clamps to b", Pt(13, 4), Pt(0, 0), Pt(10, 0), 5},
		{"degenerate segment", Pt(3, 4), Pt(0, 0), Pt(0, 0), 5},
		{"point on segment", Pt(5, 0), Pt(0, 0), Pt(10, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DistPointSegment(tt.p, tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DistPointSegment = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistPointSegmentLowerBoundsEndpoints(t *testing.T) {
	// d(p, seg) <= min(d(p,a), d(p,b)) for all p.
	f := func(px, py, ax, ay, bx, by float64) bool {
		p := Pt(math.Mod(px, 1e4), math.Mod(py, 1e4))
		a := Pt(math.Mod(ax, 1e4), math.Mod(ay, 1e4))
		b := Pt(math.Mod(bx, 1e4), math.Mod(by, 1e4))
		d := DistPointSegment(p, a, b)
		return d <= p.Dist(a)+1e-9 && d <= p.Dist(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectLatLon(t *testing.T) {
	// One degree of latitude is ~111.19 km everywhere.
	p := ProjectLatLon(41.0, -74.0, 40.0, -74.0)
	if math.Abs(p.Y-111194.9) > 100 {
		t.Errorf("1 degree latitude = %v m, want ~111195", p.Y)
	}
	if math.Abs(p.X) > 1e-9 {
		t.Errorf("no longitude delta but X = %v", p.X)
	}
	// Longitude shrinks with cos(lat).
	q := ProjectLatLon(40.0, -73.0, 40.0, -74.0)
	want := 111194.9 * math.Cos(40*math.Pi/180)
	if math.Abs(q.X-want) > 100 {
		t.Errorf("1 degree longitude at 40N = %v m, want ~%v", q.X, want)
	}
}

func TestExtendPoint(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	r = r.ExtendPoint(Pt(5, -2))
	want := Rect{MinX: 0, MinY: -2, MaxX: 5, MaxY: 1}
	if r != want {
		t.Errorf("ExtendPoint = %v, want %v", r, want)
	}
	// Extending with an interior point is a no-op.
	if got := r.ExtendPoint(Pt(1, 0)); got != r {
		t.Errorf("ExtendPoint interior changed rect: %v", got)
	}
}

func TestCenterAndDims(t *testing.T) {
	r := Rect{MinX: 2, MinY: 4, MaxX: 10, MaxY: 8}
	if c := r.Center(); c != Pt(6, 6) {
		t.Errorf("Center = %v, want (6,6)", c)
	}
	if r.Width() != 8 || r.Height() != 4 {
		t.Errorf("Width,Height = %v,%v want 8,4", r.Width(), r.Height())
	}
}
